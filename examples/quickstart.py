#!/usr/bin/env python
"""Quickstart: schedule jobs across a small heterogeneous cluster.

Walks the library's core loop in four steps:

1. describe the system (relative computer speeds + load level);
2. compute workload allocations (simple weighted vs the paper's
   optimized closed form, Algorithm 1);
3. predict performance analytically (paper equations (1)–(3));
4. verify by discrete-event simulation with the four static policies
   and the Dynamic Least-Load yardstick.

Run:  python examples/quickstart.py [--duration SECONDS]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    OptimizedAllocator,
    SimulationConfig,
    WeightedAllocator,
    evaluate_policy,
    get_policy,
)
from repro.experiments import format_table

SPEEDS = (1.0, 1.0, 2.0, 4.0, 8.0)
UTILIZATION = 0.7


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=6.0e4,
                        help="simulated seconds per replication")
    parser.add_argument("--replications", type=int, default=3)
    args = parser.parse_args()

    # 1. The system: five computers, 16x speed spread, 70% busy overall.
    config = SimulationConfig(
        speeds=SPEEDS, utilization=UTILIZATION, duration=args.duration
    )
    network = config.network()
    print(f"cluster: speeds={SPEEDS}, utilization={UTILIZATION:.0%}, "
          f"arrival rate={network.arrival_rate:.3f} jobs/s\n")

    # 2. Allocations: weighted balances utilization; optimized (Algorithm 1)
    #    deliberately over-feeds the fast machines.
    weighted = WeightedAllocator().compute(network)
    optimized = OptimizedAllocator().compute(network)
    print(format_table(
        ["speed", "weighted α", "optimized α", "optimized server ρ"],
        [
            [s, float(w), float(o), float(r)]
            for s, w, o, r in zip(
                SPEEDS, weighted.alphas, optimized.alphas,
                optimized.per_server_utilization(),
            )
        ],
        title="Workload allocation (fractions of all jobs)",
    ))

    # 3. Analytic predictions (M/M/1-PS model, paper equation (3)).
    print(
        "\npredicted mean response ratio: "
        f"weighted={weighted.predicted_mean_response_ratio():.3f}  "
        f"optimized={optimized.predicted_mean_response_ratio():.3f}  "
        f"(-{1 - optimized.predicted_mean_response_ratio() / weighted.predicted_mean_response_ratio():.0%})\n"
    )

    # 4. Simulate the full policy matrix.
    rows = []
    for name in ("WRAN", "WRR", "ORAN", "ORR", "LEAST_LOAD"):
        ev = evaluate_policy(
            config, get_policy(name),
            replications=args.replications, base_seed=7,
        )
        rows.append([
            name,
            ev.mean_response_time.mean,
            ev.mean_response_ratio.mean,
            ev.fairness.mean,
        ])
    print(format_table(
        ["policy", "mean response time (s)", "mean response ratio", "fairness"],
        rows,
        title=f"Simulated performance ({args.replications} replications x "
              f"{args.duration:.0f} s)",
    ))
    print("\nORR (optimized allocation + round-robin dispatch) should be the "
          "best static policy,\napproaching the Dynamic Least-Load yardstick "
          "without any runtime load feedback.")


if __name__ == "__main__":
    main()
