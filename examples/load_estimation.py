#!/usr/bin/env python
"""Operating ORR with an estimated load: how much error is safe?

The optimized allocation needs the system utilization ρ as input, and in
production ρ is an estimate.  Section 5.4's operational guidance:

* **underestimating** ρ over-skews the allocation and can overload the
  fast machines — dangerous at high true load;
* **overestimating** just nudges the allocation toward the weighted
  scheme — nearly free insurance.

This example quantifies both directions on a mid-size cluster and
prints the paper's recommendation: measure a long-run average and pad
it slightly upward.

Run:  python examples/load_estimation.py [--duration SECONDS]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import MisestimatedOptimizedAllocator, SimulationConfig, evaluate_policy, get_policy
from repro.experiments import format_table

SPEEDS = (1.0,) * 6 + (4.0,) * 2 + (10.0,)
ERRORS = (-0.15, -0.05, 0.0, +0.05, +0.15)


def stability_report(true_rho: float) -> list[object]:
    """Which estimation errors keep every machine unsaturated?"""
    config = SimulationConfig(speeds=SPEEDS, utilization=true_rho, duration=1.0)
    network = config.network()
    row: list[object] = [true_rho]
    for err in ERRORS:
        allocator = MisestimatedOptimizedAllocator(err)
        row.append("ok" if allocator.is_feasible(network) else "OVERLOAD")
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=8.0e4)
    parser.add_argument("--replications", type=int, default=3)
    args = parser.parse_args()

    print(f"cluster: speeds={SPEEDS}\n")

    # 1. Analytic stability: which (true load, error) pairs saturate a
    #    machine outright?
    print(format_table(
        ["true rho"] + [f"err {e:+.0%}" for e in ERRORS],
        [stability_report(rho) for rho in (0.5, 0.7, 0.8, 0.9, 0.95)],
        title="Allocation feasibility under estimation error",
    ))
    print("\nUnderestimation at high load can make the allocation outright "
          "infeasible\n(the fast machines are handed more than their "
          "capacity).\n")

    # 2. Simulated cost of estimation error at a heavy but stable load.
    true_rho = 0.85
    rows = []
    for err in ERRORS:
        policy = (
            get_policy("ORR")
            if err == 0.0
            else get_policy("ORR", estimation_error=err)
        )
        config = SimulationConfig(
            speeds=SPEEDS, utilization=true_rho, duration=args.duration
        )
        ev = evaluate_policy(
            config, policy, replications=args.replications, base_seed=31
        )
        rows.append([
            f"{err:+.0%}" if err else "exact",
            ev.mean_response_ratio.mean,
            ev.fairness.mean,
        ])
    wrr = evaluate_policy(
        SimulationConfig(speeds=SPEEDS, utilization=true_rho, duration=args.duration),
        get_policy("WRR"),
        replications=args.replications,
        base_seed=31,
    )
    rows.append(["WRR (reference)", wrr.mean_response_ratio.mean, wrr.fairness.mean])
    print(format_table(
        ["estimate error", "mean response ratio", "fairness"],
        rows,
        title=f"Simulated cost of misestimation at true rho={true_rho}",
        float_fmt="{:.3f}",
    ))
    print("\nRecommendation (paper §5.4): use a long-run average utilization "
          "and\noverestimate slightly (a few percent) — overestimation "
          "degrades gracefully\ntoward WRR while underestimation risks "
          "overloading the fast machines.")


if __name__ == "__main__":
    main()
