#!/usr/bin/env python
"""Trace-driven evaluation: replay a recorded job trace through policies.

The paper's workload model is justified by trace measurements (Zhou's
inter-arrival CV of 2.64).  When you have an actual trace — arrival
timestamps and job sizes — you can skip the synthetic model entirely:

1. load (or here: synthesize and save) a two-column CSV trace;
2. inspect its moments: offered load, inter-arrival CV, size skew;
3. replay the *identical* job sequence through each static policy, so
   policy differences are exact (no sampling noise between policies);
4. pick balancer weights accordingly.

Run:  python examples/trace_replay.py [--trace FILE.csv]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro import OptimizedAllocator, WeightedAllocator
from repro.dispatch import RandomDispatcher, RoundRobinDispatcher
from repro.experiments import format_table
from repro.queueing import HeterogeneousNetwork
from repro.rng import StreamFactory
from repro.sim import JobTrace, Workload, run_trace_simulation

SPEEDS = (1.0, 1.0, 2.0, 6.0)


def synthesize_demo_trace(path: Path) -> None:
    """Write a demo trace shaped like the paper's workload (CV-3 bursty
    arrivals, Bounded Pareto sizes) at 65% offered load."""
    workload = Workload(total_speed=sum(SPEEDS), utilization=0.65)
    trace = JobTrace.synthesize(workload, StreamFactory(404).arrivals, horizon=6.0e4)
    # synthesize() reuses the arrival stream; sizes come from its own stream.
    trace.to_csv(path)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", type=Path, default=None,
                        help="two-column CSV (arrival_time, size); "
                             "a demo trace is generated if omitted")
    args = parser.parse_args()

    if args.trace is None:
        args.trace = Path(tempfile.gettempdir()) / "repro_demo_trace.csv"
        synthesize_demo_trace(args.trace)
        print(f"generated demo trace at {args.trace}")

    trace = JobTrace.from_csv(args.trace)
    rho = trace.offered_load(sum(SPEEDS))
    print(format_table(
        ["property", "value"],
        [
            ["jobs", trace.n_jobs],
            ["horizon (s)", trace.horizon],
            ["mean job size (s)", trace.mean_size],
            ["inter-arrival CV", trace.interarrival_cv],
            ["offered load vs cluster", rho],
        ],
        title=f"Trace properties against cluster speeds {SPEEDS}",
    ))

    # Compute both allocations from the trace's own offered load.
    network = HeterogeneousNetwork(np.asarray(SPEEDS), utilization=min(rho, 0.99))
    schemes = {
        "weighted + round-robin": (WeightedAllocator(), RoundRobinDispatcher()),
        "optimized + round-robin": (OptimizedAllocator(), RoundRobinDispatcher()),
        "optimized + random": (
            OptimizedAllocator(),
            RandomDispatcher(StreamFactory(7).dispatch),
        ),
    }
    rows = []
    for label, (allocator, dispatcher) in schemes.items():
        alphas = allocator.compute(network).alphas
        result = run_trace_simulation(
            trace, SPEEDS, dispatcher, alphas, warmup=0.1 * trace.horizon
        )
        rows.append([
            label,
            result.metrics.mean_response_ratio,
            result.metrics.fairness,
        ])
    print()
    print(format_table(
        ["scheme", "mean response ratio", "fairness"],
        rows,
        title="Replay of the identical job sequence (no cross-policy noise)",
    ))
    print("\nBecause every scheme saw the same jobs at the same instants, "
          "the differences\nabove are purely due to allocation and "
          "dispatching — the cleanest comparison\nthe simulator offers.")


if __name__ == "__main__":
    main()
