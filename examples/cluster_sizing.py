#!/usr/bin/env python
"""Cluster sizing: a few fast machines or many slow ones?

A procurement question the paper's model answers analytically: for a
fixed aggregate capacity, how does the *composition* of the cluster
(and the scheduling policy on top of it) change user-visible slowdown?

We compare three clusters with identical total speed 16:

* ``flat``   — 16 × speed-1 machines,
* ``mixed``  — 8 × speed-1 + 2 × speed-4 machines,
* ``skewed`` — 4 × speed-1 + 1 × speed-12 machine,

under the simple weighted scheme and under ORR, across the load range,
using both the analytic model (instant) and simulation (verification).

Run:  python examples/cluster_sizing.py [--simulate]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    HeterogeneousNetwork,
    OptimizedAllocator,
    SimulationConfig,
    WeightedAllocator,
    evaluate_policy,
    get_policy,
)
from repro.allocation import (
    best_single_upgrade,
    marginal_response_time,
    value_of_added_machine,
)
from repro.experiments import format_table
from repro.queueing import MMc

CLUSTERS = {
    "flat (16x1)": (1.0,) * 16,
    "mixed (8x1 + 2x4)": (1.0,) * 8 + (4.0,) * 2,
    "skewed (4x1 + 1x12)": (1.0,) * 4 + (12.0,),
}
LOADS = (0.3, 0.5, 0.7, 0.9)


def analytic_rows():
    rows = []
    for label, speeds in CLUSTERS.items():
        for scheme_label, allocator in (
            ("weighted", WeightedAllocator()),
            ("optimized", OptimizedAllocator()),
        ):
            row: list[object] = [label, scheme_label]
            for rho in LOADS:
                network = HeterogeneousNetwork(np.asarray(speeds), utilization=rho)
                result = allocator.compute(network)
                row.append(result.predicted_mean_response_ratio())
            rows.append(row)
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--simulate", action="store_true",
                        help="verify the analytic winners by simulation")
    parser.add_argument("--duration", type=float, default=6.0e4)
    args = parser.parse_args()

    print("All clusters have aggregate speed 16; lower slowdown is better.\n")
    print(format_table(
        ["cluster", "allocation"] + [f"rho={rho}" for rho in LOADS],
        analytic_rows(),
        title="Analytic mean response ratio (paper equation (3))",
        float_fmt="{:.3f}",
    ))
    print(
        "\nReadings:\n"
        "* under *weighted* allocation the model gives R = (n/Σs)/(1−ρ):\n"
        "  at fixed capacity, fewer-but-faster machines already win because\n"
        "  every job runs on a faster CPU;\n"
        "* *optimized* allocation widens the gap further, most dramatically\n"
        "  at low/moderate load where the speed-12 machine becomes a fast\n"
        "  lane for nearly all jobs (flat cluster: nothing to optimize);\n"
        "* at 90% load the optimization advantage narrows — saturation\n"
        "  forces the optimized scheme back toward proportional weights —\n"
        "  but the composition advantage remains."
    )

    # Pooled-queue reference: if the flat cluster's 16 machines shared a
    # single central queue (M/M/16), how much of the dispatch problem
    # would disappear?  (Only the homogeneous cluster has this form.)
    print("\nPooled central-queue reference (flat cluster, exponential "
          "work, normalized mu=1):")
    rows = []
    for rho in LOADS:
        pooled = MMc(arrival_rate=16.0 * rho, service_rate=1.0, servers=16)
        rows.append([rho, pooled.mean_response_time,
                     pooled.pooling_gain_vs_split()])
    print(format_table(
        ["rho", "M/M/16 mean response", "gain vs 16 split queues"],
        rows,
        title="Central queue (no dispatch decisions at all)",
        float_fmt="{:.3f}",
    ))

    # Procurement analysis on the mixed cluster via the closed form.
    mixed = HeterogeneousNetwork(
        np.asarray(CLUSTERS["mixed (8x1 + 2x4)"]), utilization=0.7
    )
    marginals = marginal_response_time(mixed)
    idx, gain = best_single_upgrade(mixed, 1.0)
    print("\nProcurement analysis (mixed cluster at rho=0.7):")
    print(f"* marginal value of +1 speed unit: slow machine "
          f"{-marginals[0]:.4g} s, fast machine {-marginals[-1]:.4g} s "
          f"of mean response time per unit")
    print(f"* best single +1.0 upgrade: machine {idx} "
          f"(speed {mixed.speeds[idx]:.0f}) — saves {gain:.4g} s")
    print(f"* adding a new speed-4 machine instead saves "
          f"{value_of_added_machine(mixed, 4.0):.4g} s")

    if args.simulate:
        print("\nSimulation check (ORR on each cluster):")
        rows = []
        for label, speeds in CLUSTERS.items():
            row: list[object] = [label]
            for rho in LOADS:
                config = SimulationConfig(
                    speeds=speeds, utilization=rho, duration=args.duration
                )
                ev = evaluate_policy(
                    config, get_policy("ORR"), replications=2, base_seed=23
                )
                row.append(ev.mean_response_ratio.mean)
            rows.append(row)
        print(format_table(
            ["cluster"] + [f"rho={rho}" for rho in LOADS],
            rows,
            title="Simulated mean response ratio under ORR",
            float_fmt="{:.3f}",
        ))


if __name__ == "__main__":
    main()
