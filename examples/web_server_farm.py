#!/usr/bin/env python
"""Heterogeneous web-server farm: optimized DNS/load-balancer weights.

The paper's introduction points at exactly this deployment: a cluster of
HTTP servers of mixed generations behind a request distributor (weighted
DNS or an L4 balancer).  Classic practice sets the weights proportional
to server capacity; Section 2.3 shows that is suboptimal whenever the
farm is not saturated.

This example models a farm with three server generations, compares

* capacity-proportional weights (what nginx `weight=` / DNS RR do),
* the paper's optimized weights (Algorithm 1),
* dynamic least-connections (the Least-Load yardstick),

under a bursty request stream (hyperexponential, CV 3) with heavy-tailed
response sizes, then re-runs the comparison across the farm's daily load
range to show where the optimized weights matter most.

Run:  python examples/web_server_farm.py [--duration SECONDS]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    OptimizedAllocator,
    SimulationConfig,
    WeightedAllocator,
    evaluate_policy,
    get_policy,
)
from repro.experiments import format_table

# The farm: 6 legacy servers, 4 mid-generation, 2 latest-generation.
# Speeds are relative request-processing capacities.
FARM = (1.0,) * 6 + (2.5,) * 4 + (8.0,) * 2


def weights_table(utilization: float) -> str:
    config = SimulationConfig(speeds=FARM, utilization=utilization, duration=1.0)
    network = config.network()
    weighted = WeightedAllocator().compute(network)
    optimized = OptimizedAllocator().compute(network)
    # Express as integer balancer weights per 1000 requests.
    rows = []
    for generation, speed in (("legacy", 1.0), ("mid", 2.5), ("latest", 8.0)):
        idx = FARM.index(speed)
        rows.append([
            generation,
            speed,
            round(1000 * float(weighted.alphas[idx])),
            round(1000 * float(optimized.alphas[idx])),
        ])
    return format_table(
        ["server class", "capacity", "proportional weight", "optimized weight"],
        rows,
        title=f"Per-server balancer weights (per 1000 requests) at {utilization:.0%} load",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=6.0e4)
    parser.add_argument("--replications", type=int, default=3)
    args = parser.parse_args()

    print(f"farm: {len(FARM)} servers, aggregate capacity {sum(FARM):.0f}x\n")

    # How the weights differ at typical vs peak load.
    print(weights_table(0.5))
    print()
    print(weights_table(0.9))
    print("\nNote how the optimized weights shift work toward the latest "
          "generation at\nmoderate load and converge toward proportional "
          "weights as the farm saturates.\n")

    # Simulated mean response ratio (a.k.a. request slowdown) over the
    # daily load range.
    loads = (0.4, 0.6, 0.8)
    policies = ("WRAN", "WRR", "ORR", "LEAST_LOAD")
    labels = {
        "WRAN": "proportional + random",
        "WRR": "proportional + round-robin",
        "ORR": "optimized + round-robin (paper)",
        "LEAST_LOAD": "least-connections (dynamic)",
    }
    rows = []
    for name in policies:
        row: list[object] = [labels[name]]
        for rho in loads:
            config = SimulationConfig(
                speeds=FARM, utilization=rho, duration=args.duration
            )
            ev = evaluate_policy(
                config, get_policy(name),
                replications=args.replications, base_seed=11,
            )
            row.append(ev.mean_response_ratio.mean)
        rows.append(row)
    print(format_table(
        ["distribution policy"] + [f"slowdown @ {rho:.0%}" for rho in loads],
        rows,
        title="Simulated request slowdown (mean response ratio)",
    ))
    print("\nTakeaway: swapping the balancer's proportional weights for the "
          "optimized ones\nis a config-only change (no feedback channel "
          "needed) that recovers most of the\ngap to dynamic "
          "least-connections.")


if __name__ == "__main__":
    main()
