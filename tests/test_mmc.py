"""Tests for the M/M/c (Erlang-C) module."""

import math

import numpy as np
import pytest

from repro.queueing import MM1, MMc, erlang_c


class TestErlangC:
    def test_single_server_equals_rho(self):
        """For c = 1, P(wait) = ρ (the M/M/1 busy probability)."""
        assert erlang_c(1, 0.7) == pytest.approx(0.7)

    def test_known_value(self):
        """Textbook case: c = 2, a = 1 → C = 1/3."""
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_matches_direct_formula(self):
        """Cross-check the recurrence against the direct sum."""
        c, a = 5, 3.5

        def direct(c, a):
            num = a**c / math.factorial(c) * c / (c - a)
            den = sum(a**k / math.factorial(k) for k in range(c)) + num
            return num / den

        assert erlang_c(c, a) == pytest.approx(direct(c, a), rel=1e-12)

    def test_monotone_in_load(self):
        values = [erlang_c(4, a) for a in (1.0, 2.0, 3.0, 3.9)]
        assert all(x < y for x, y in zip(values, values[1:]))

    def test_zero_load(self):
        assert erlang_c(3, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="unstable"):
            erlang_c(2, 2.0)
        with pytest.raises(ValueError, match="server"):
            erlang_c(0, 0.5)
        with pytest.raises(ValueError, match="non-negative"):
            erlang_c(2, -1.0)


class TestMMc:
    def test_c_one_matches_mm1(self):
        mmc = MMc(arrival_rate=0.7, service_rate=1.0, servers=1)
        mm1 = MM1(arrival_rate=0.7, service_rate=1.0)
        assert mmc.mean_response_time == pytest.approx(mm1.mean_response_time)
        assert mmc.mean_waiting_time == pytest.approx(mm1.mean_waiting_time_fcfs)

    def test_known_two_server_case(self):
        q = MMc(arrival_rate=1.0, service_rate=1.0, servers=2)
        assert q.probability_of_waiting == pytest.approx(1.0 / 3.0)
        assert q.mean_waiting_time == pytest.approx(1.0 / 3.0)
        assert q.mean_response_time == pytest.approx(4.0 / 3.0)

    def test_littles_law(self):
        q = MMc(arrival_rate=2.5, service_rate=1.0, servers=4)
        assert q.mean_number_in_system == pytest.approx(
            q.arrival_rate * q.mean_response_time
        )

    def test_pooling_gain(self):
        """Pooling c queues into one always helps, more at high load."""
        low = MMc(arrival_rate=2.0, service_rate=1.0, servers=4)
        high = MMc(arrival_rate=3.6, service_rate=1.0, servers=4)
        assert low.pooling_gain_vs_split() > 1.0
        assert high.pooling_gain_vs_split() > low.pooling_gain_vs_split()

    def test_unstable(self):
        q = MMc(arrival_rate=5.0, service_rate=1.0, servers=4)
        assert not q.stable
        with pytest.raises(ValueError, match="unstable"):
            _ = q.mean_response_time

    def test_validation(self):
        with pytest.raises(ValueError):
            MMc(arrival_rate=-1.0, service_rate=1.0, servers=1)
        with pytest.raises(ValueError):
            MMc(arrival_rate=1.0, service_rate=0.0, servers=1)
        with pytest.raises(ValueError):
            MMc(arrival_rate=1.0, service_rate=1.0, servers=0)

    def test_simulation_cross_check(self):
        """A homogeneous FCFS cluster fed by least-load dispatch is not
        exactly M/M/c, but a PS cluster with ideal dispatch approaches
        the pooled bound; here we only sanity-check the direction: the
        pooled M/M/c response is a lower bound for the split system."""
        q = MMc(arrival_rate=3.0, service_rate=1.0, servers=4)
        split = MM1(arrival_rate=0.75, service_rate=1.0)
        assert q.mean_response_time < split.mean_response_time
