"""Tests for the persistent replication cache."""

import json
import threading
import time

import numpy as np
import pytest

from repro.core.cache import ReplicationCache, config_signature, default_cache
from repro.core.executor import ReplicationTask, run_replication_grid
from repro.rng import replication_seeds
from repro.sim import SimulationConfig
from repro.sim.fastpath import KERNEL_VERSION

CONFIG = SimulationConfig(speeds=(1.0, 2.0), utilization=0.5, duration=1.0e4)
OUTCOME = (1.5, 0.75, 0.3, 1234, np.array([0.4, 0.6]))


class TestRoundTrip:
    def test_put_get_bit_exact(self, tmp_path):
        cache = ReplicationCache(tmp_path)
        key = cache.task_key(CONFIG, "ORR", None, 42)
        cache.put(key, OUTCOME)
        got = cache.get(key)
        # JSON shortest-repr float serialization round-trips bit-exactly.
        assert got[:4] == OUTCOME[:4]
        np.testing.assert_array_equal(got[4], OUTCOME[4])

    def test_missing_is_none(self, tmp_path):
        cache = ReplicationCache(tmp_path)
        assert cache.get("deadbeef" * 8) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ReplicationCache(tmp_path)
        key = cache.task_key(CONFIG, "ORR", None, 42)
        cache.put(key, OUTCOME)
        (tmp_path / f"{key}.json").write_text("{not json")
        assert cache.get(key) is None

    def test_len_and_clear(self, tmp_path):
        cache = ReplicationCache(tmp_path)
        for seed in (1, 2, 3):
            cache.put(cache.task_key(CONFIG, "ORR", None, seed), OUTCOME)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_seedsequence_keys_stable(self, tmp_path):
        cache = ReplicationCache(tmp_path)
        seeds = replication_seeds(2000, 2)
        keys = [cache.task_key(CONFIG, "ORR", None, s) for s in seeds]
        again = [cache.task_key(CONFIG, "ORR", None, s) for s in
                 replication_seeds(2000, 2)]
        assert keys == again
        assert keys[0] != keys[1]


class TestKeying:
    def test_distinct_inputs_distinct_keys(self, tmp_path):
        cache = ReplicationCache(tmp_path)
        base = cache.task_key(CONFIG, "ORR", None, 42)
        other_config = SimulationConfig(
            speeds=(1.0, 2.0), utilization=0.6, duration=1.0e4
        )
        assert cache.task_key(other_config, "ORR", None, 42) != base
        assert cache.task_key(CONFIG, "WRR", None, 42) != base
        assert cache.task_key(CONFIG, "ORR", 0.05, 42) != base
        assert cache.task_key(CONFIG, "ORR", None, 43) != base

    def test_policy_name_case_insensitive(self, tmp_path):
        cache = ReplicationCache(tmp_path)
        assert cache.task_key(CONFIG, "orr", None, 1) == cache.task_key(
            CONFIG, "ORR", None, 1
        )

    def test_kernel_version_bump_invalidates(self, tmp_path):
        current = ReplicationCache(tmp_path)
        key = current.task_key(CONFIG, "ORR", None, 42)
        current.put(key, OUTCOME)
        bumped = ReplicationCache(tmp_path, kernel_version=KERNEL_VERSION + "x")
        assert bumped.task_key(CONFIG, "ORR", None, 42) != key
        assert bumped.get(bumped.task_key(CONFIG, "ORR", None, 42)) is None

    def test_signature_covers_discipline(self):
        fcfs = SimulationConfig(
            speeds=(1.0, 2.0), utilization=0.5, duration=1.0e4,
            discipline="fcfs",
        )
        assert config_signature(fcfs) != config_signature(CONFIG)


class TestRobustness:
    """Concurrent writers and damaged entries must never poison reads."""

    def test_unreadable_entry_is_miss_then_rewritten(self, tmp_path):
        cache = ReplicationCache(tmp_path)
        key = cache.task_key(CONFIG, "ORR", None, 42)
        cache.put(key, OUTCOME)
        # Torn write: half the file is gone.
        entry = tmp_path / f"{key}.json"
        entry.write_text(entry.read_text()[:20])
        assert cache.get(key) is None
        cache.put(key, OUTCOME)  # miss → recompute → rewrite heals it
        got = cache.get(key)
        assert got is not None and got[:4] == OUTCOME[:4]

    def test_wrong_typed_entry_is_miss(self, tmp_path):
        cache = ReplicationCache(tmp_path)
        key = cache.task_key(CONFIG, "ORR", None, 42)
        (tmp_path / f"{key}.json").write_text('{"mean_response_time": "NaN?"}')
        assert cache.get(key) is None

    def test_concurrent_writers_never_tear(self, tmp_path):
        cache = ReplicationCache(tmp_path)
        key = cache.task_key(CONFIG, "ORR", None, 42)
        stop = threading.Event()
        errors: list[BaseException] = []

        def hammer():
            try:
                while not stop.is_set():
                    cache.put(key, OUTCOME)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                errors.append(exc)

        writers = [threading.Thread(target=hammer) for _ in range(4)]
        for w in writers:
            w.start()
        try:
            deadline = time.monotonic() + 1.0
            seen = 0
            while time.monotonic() < deadline:
                got = cache.get(key)
                if got is not None:
                    # A published entry is always complete and correct.
                    assert got[:4] == OUTCOME[:4]
                    seen += 1
        finally:
            stop.set()
            for w in writers:
                w.join()
        assert not errors
        assert seen > 0

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ReplicationCache(tmp_path)
        keys = [cache.task_key(CONFIG, "ORR", None, s) for s in range(8)]

        def write_all():
            for key in keys:
                cache.put(key, OUTCOME)

        writers = [threading.Thread(target=write_all) for _ in range(4)]
        for w in writers:
            w.start()
        for w in writers:
            w.join()
        assert len(list(tmp_path.glob("*.tmp"))) == 0
        assert len(cache) == len(keys)

    def test_fault_config_participates_in_key(self, tmp_path):
        from repro.faults import FaultConfig

        cache = ReplicationCache(tmp_path)
        plain = cache.task_key(CONFIG, "ORR", None, 42)
        faulty_config = SimulationConfig(
            speeds=(1.0, 2.0), utilization=0.5, duration=1.0e4,
            faults=FaultConfig(mtbf=500.0, mttr=50.0),
        )
        assert cache.task_key(faulty_config, "ORR", None, 42) != plain
        # Fault-free configs keep their pre-fault-injection signature.
        assert "faults" not in config_signature(CONFIG)

    def test_pre_fault_entry_reads_with_zero_loss(self, tmp_path):
        cache = ReplicationCache(tmp_path)
        key = cache.task_key(CONFIG, "ORR", None, 42)
        cache.put(key, OUTCOME)  # 5-tuple, as written before loss_rate
        entry = json.loads((tmp_path / f"{key}.json").read_text())
        entry.pop("loss_rate")
        (tmp_path / f"{key}.json").write_text(json.dumps(entry))
        got = cache.get(key)
        assert got is not None
        assert got[5] == 0.0


class TestDefaultCache:
    def test_unset_env_disables(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert default_cache() is None

    def test_env_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "store"))
        cache = default_cache()
        assert isinstance(cache, ReplicationCache)
        assert cache.directory == tmp_path / "store"


def _tasks(replications=2):
    return [
        ReplicationTask(
            key=r, config=CONFIG, policy_name="ORR",
            estimation_error=None, seed=seed,
        )
        for r, seed in enumerate(replication_seeds(2000, replications))
    ]


class TestGridIntegration:
    def test_second_run_hits_without_simulating(self, tmp_path, monkeypatch):
        cache = ReplicationCache(tmp_path)
        first = run_replication_grid(_tasks(), n_jobs=1, cache=cache)
        assert (first.cache_hits, first.cache_misses) == (0, 2)
        assert len(cache) == 2

        # Prove the warm pass never simulates: break the worker.
        def boom(task):
            raise AssertionError("cache hit should not re-simulate")

        monkeypatch.setattr("repro.core.executor._run_replication", boom)
        second = run_replication_grid(_tasks(), n_jobs=1, cache=cache)
        assert (second.cache_hits, second.cache_misses) == (2, 0)
        for r in range(2):
            a, b = first.outcomes[r], second.outcomes[r]
            assert a[:4] == b[:4]
            np.testing.assert_array_equal(a[4], b[4])

    def test_sweep_reports_cache_counters(self, tmp_path):
        from repro.experiments.base import SCALES
        from repro.experiments.figure3 import run_figure3

        cache = ReplicationCache(tmp_path)
        kwargs = dict(fast_speeds=(1.0,), policies=("ORR",))
        cold = run_figure3(SCALES["smoke"], cache=cache, **kwargs)
        warm = run_figure3(SCALES["smoke"], cache=cache, **kwargs)
        assert cold.cache_misses == 2 and cold.cache_hits == 0
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        assert (
            warm.cells[1.0]["ORR"].mean_response_ratio.mean
            == cold.cells[1.0]["ORR"].mean_response_ratio.mean
        )
