"""Tests for arrival streams, workload derivation, event queue, feedback."""

import numpy as np
import pytest

from repro.distributions import Deterministic, Exponential, paper_job_sizes
from repro.rng import StreamFactory
from repro.sim import (
    ArrivalStream,
    EventKind,
    EventQueue,
    FeedbackModel,
    Workload,
)


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(2.0, EventKind.ARRIVAL)
        q.push(1.0, EventKind.ARRIVAL)
        assert q.pop()[0] == 1.0
        assert q.pop()[0] == 2.0

    def test_departure_before_arrival_at_same_time(self):
        q = EventQueue()
        q.push(1.0, EventKind.ARRIVAL)
        q.push(1.0, EventKind.DEPARTURE, 3, 7)
        t, kind, a, b = q.pop()
        assert kind == EventKind.DEPARTURE
        assert (a, b) == (3, 7)

    def test_fifo_among_identical(self):
        q = EventQueue()
        q.push(1.0, EventKind.ARRIVAL, 1)
        q.push(1.0, EventKind.ARRIVAL, 2)
        assert q.pop()[2] == 1
        assert q.pop()[2] == 2

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(0.0, EventKind.ARRIVAL)
        assert len(q) == 1 and q

    def test_peek(self):
        q = EventQueue()
        q.push(5.0, EventKind.ARRIVAL)
        assert q.peek_time() == 5.0
        assert len(q) == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventKind.ARRIVAL)


class TestArrivalStream:
    def test_deterministic_spacing(self):
        s = ArrivalStream(Deterministic(2.0), np.random.default_rng(0))
        assert s.next_arrival() == pytest.approx(2.0)
        assert s.next_arrival() == pytest.approx(4.0)

    def test_monotone(self, rng):
        s = ArrivalStream(Exponential(1.0), rng)
        times = [s.next_arrival() for _ in range(1000)]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_arrivals_until_matches_sequential(self):
        d = Exponential(0.5)
        a = ArrivalStream(d, np.random.default_rng(3))
        batch = a.arrivals_until(100.0)
        b = ArrivalStream(d, np.random.default_rng(3))
        seq = []
        while True:
            t = b.next_arrival()
            if t > 100.0:
                break
            seq.append(t)
        np.testing.assert_allclose(batch, seq, rtol=1e-12)

    def test_stream_continues_past_horizon(self):
        s = ArrivalStream(Deterministic(1.0), np.random.default_rng(0))
        batch = s.arrivals_until(3.5)
        np.testing.assert_allclose(batch, [1.0, 2.0, 3.0])
        assert s.next_arrival() == pytest.approx(4.0)

    def test_empty_horizon(self):
        s = ArrivalStream(Deterministic(5.0), np.random.default_rng(0))
        assert s.arrivals_until(1.0).size == 0

    def test_rate_statistics(self, rng):
        s = ArrivalStream(Exponential(2.0), rng)
        times = s.arrivals_until(10_000.0)
        assert times.size / 10_000.0 == pytest.approx(2.0, rel=0.05)


class TestWorkload:
    def test_arrival_rate_formula(self):
        """λ = ρ · Σs / E[size] (Section 2's λ = ρ μ Σs)."""
        w = Workload(total_speed=44.0, utilization=0.7)
        assert w.arrival_rate == pytest.approx(0.7 * 44.0 / 76.8, rel=1e-3)
        assert w.mu == pytest.approx(1.0 / 76.8, rel=1e-3)

    def test_interarrival_moments(self):
        w = Workload(total_speed=10.0, utilization=0.5, arrival_cv=3.0)
        assert w.interarrival.mean == pytest.approx(1.0 / w.arrival_rate)
        assert w.interarrival.cv == pytest.approx(3.0)

    def test_poisson_option(self):
        w = Workload(total_speed=10.0, utilization=0.5, arrival_cv=1.0)
        from repro.distributions import Exponential as Exp

        assert isinstance(w.interarrival, Exp)

    def test_custom_sizes(self):
        w = Workload(
            total_speed=1.0, utilization=0.5, size_distribution=Exponential(1.0)
        )
        assert w.arrival_rate == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="total speed"):
            Workload(total_speed=0.0, utilization=0.5)
        with pytest.raises(ValueError, match="utilization"):
            Workload(total_speed=1.0, utilization=1.0)

    def test_sample_sizes(self, rng):
        w = Workload(total_speed=1.0, utilization=0.5)
        xs = w.sample_sizes(rng, 10_000)
        assert xs.min() >= 10.0
        assert xs.max() <= 21600.0


class TestFeedbackModel:
    def test_paper_defaults(self):
        m = FeedbackModel()
        assert m.detection_window == 1.0
        assert m.message_delay_mean == 0.05
        assert m.mean_lag == pytest.approx(0.55)

    def test_sample_statistics(self, rng):
        m = FeedbackModel()
        delays = np.array([m.sample_delay(rng) for _ in range(20_000)])
        assert delays.mean() == pytest.approx(0.55, rel=0.05)
        assert delays.min() >= 0.0

    def test_oracle_mode(self, rng):
        m = FeedbackModel(detection_window=0.0, message_delay_mean=0.0)
        assert m.sample_delay(rng) == 0.0
        assert m.mean_lag == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FeedbackModel(detection_window=-1.0)
        with pytest.raises(ValueError):
            FeedbackModel(message_delay_mean=-0.1)
