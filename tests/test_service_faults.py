"""Fault-tolerant serving: failure detector, retry/loss accounting,
SLO-targeted shedding, and crash-safe checkpoint/resume.

The scenarios are all scripted and seeded — every assertion here is a
deterministic regression gate, mirroring the chaos harness
(:mod:`repro.experiments.extension_chaos`) at unit-test scale.
"""

import json
import math

import numpy as np
import pytest

from repro.faults import survivor_fractions
from repro.faults.models import FaultConfig, FaultEvent, RetryPolicy
from repro.service import (
    STATE_VERSION,
    SchedulerService,
    ServerBank,
    ServiceCheckpoint,
    ServiceConfig,
    ServiceCrash,
    SyntheticJobSource,
)
from repro.service.controller import QuasiStaticController
from repro.sim.arrivals import Workload

SPEEDS = (1.0, 2.0, 3.0, 2.0)


def make_service(seed=11, duration=3000.0, utilization=0.7, events=None,
                 faults=None, slo_target=None, **kwargs):
    config = ServiceConfig(
        speeds=SPEEDS,
        duration=duration,
        control_period=100.0,
        slo_target=slo_target,
        min_responses_to_shed=10,
        faults=faults,
    )
    workload = Workload(total_speed=sum(SPEEDS), utilization=utilization)
    source = SyntheticJobSource(workload, seed)
    return SchedulerService(config, source, fault_events=events, **kwargs)


KILL_REPAIR = [FaultEvent(1050.0, "down", 2), FaultEvent(1450.0, "up", 2)]


# ----------------------------------------------------------------------
# ServerBank fault mode
# ----------------------------------------------------------------------


class TestServerBankFaults:
    def test_dispatch_to_down_server_returns_none(self):
        bank = ServerBank([1.0, 2.0])
        bank.fail(1, 5.0)
        assert bank.dispatch(1, 6.0, 1.0, origin=6.0, attempts=0) is None
        assert bank.dispatch(0, 6.0, 1.0, origin=6.0, attempts=0) is not None

    def test_fail_bounces_residents_and_clears_backlog(self):
        bank = ServerBank([1.0])
        bank.dispatch(0, 0.0, 4.0, origin=0.0, attempts=0)   # departs at 4
        bank.dispatch(0, 1.0, 4.0, origin=1.0, attempts=1)   # departs at 8
        done = bank.collect_completions(5.0)
        assert [d[1] for d in done] == [0.0]
        bounced = bank.fail(0, 5.0)
        assert bounced == [(1.0, 4.0, 1)]
        assert bank.free_at[0] == 5.0
        assert bank.inflight_count() == 0

    def test_repair_restores_membership_empty(self):
        bank = ServerBank([1.0, 1.0])
        bank.fail(0, 3.0)
        bank.repair(0, 9.0)
        assert bank.up[0]
        dep = bank.dispatch(0, 9.0, 2.0, origin=9.0, attempts=0)
        assert dep == pytest.approx(11.0)

    def test_degradation_rescales_in_flight_work_exactly(self):
        bank = ServerBank([2.0])
        bank.dispatch(0, 0.0, 8.0, origin=0.0, attempts=0)   # svc 4, departs 4
        bank.set_speed_factor(0, 2.0, 0.5)  # speed 2 -> 1 at t=2
        # 2 s of work remained; at half speed it takes 4 s: departs at 6.
        done = bank.collect_completions(10.0)
        assert done[0][4] == pytest.approx(6.0)
        assert bank.free_at[0] == pytest.approx(6.0)
        # Recovery rescales back: nothing in flight, free_at stays.
        bank.set_speed_factor(0, 7.0, 1.0)
        assert bank.free_at[0] == pytest.approx(6.0)

    def test_completions_are_server_major_fifo(self):
        bank = ServerBank([1.0, 1.0])
        bank.dispatch(1, 0.0, 1.0, origin=0.0, attempts=0)
        bank.dispatch(0, 0.0, 2.0, origin=0.0, attempts=0)
        bank.dispatch(0, 0.5, 1.0, origin=0.5, attempts=0)
        done = bank.collect_completions(10.0)
        assert [(d[0], d[1]) for d in done] == [(0, 0.0), (0, 0.5), (1, 0.0)]

    def test_state_round_trip(self):
        bank = ServerBank([1.0, 2.0])
        bank.dispatch(0, 0.0, 5.0, origin=0.0, attempts=2)
        bank.fail(1, 1.0)
        clone = ServerBank([1.0, 2.0])
        clone.load_state(json.loads(json.dumps(bank.state_dict())))
        assert np.array_equal(clone.free_at, bank.free_at)
        assert np.array_equal(clone.up, bank.up)
        assert clone.inflight_count() == bank.inflight_count()


# ----------------------------------------------------------------------
# Survivor re-solve (FA_ORR semantics)
# ----------------------------------------------------------------------


class TestSurvivorFractions:
    def test_down_servers_get_zero_share(self):
        speeds = np.array([1.0, 2.0, 3.0])
        up = np.array([True, False, True])
        alphas = survivor_fractions(speeds, up, 0.5)
        assert alphas[1] == 0.0
        assert alphas.sum() == pytest.approx(1.0)

    def test_total_outage_returns_none(self):
        assert survivor_fractions(
            np.array([1.0, 2.0]), np.array([False, False]), 0.5
        ) is None

    def test_overload_falls_back_to_capacity_proportional(self):
        speeds = np.array([1.0, 1.0, 2.0])
        up = np.array([True, False, True])
        alphas = survivor_fractions(speeds, up, 1.7)
        assert alphas[0] == pytest.approx(1.0 / 3.0)
        assert alphas[2] == pytest.approx(2.0 / 3.0)

    def test_mask_shape_is_validated(self):
        with pytest.raises(ValueError, match="membership mask"):
            survivor_fractions(np.array([1.0, 2.0]), np.array([True]), 0.5)


# ----------------------------------------------------------------------
# Failure detector in the controller
# ----------------------------------------------------------------------


class TestFailureDetector:
    def test_membership_change_bypasses_swap_hysteresis(self):
        ctl = QuasiStaticController(
            np.array([1.0, 1.0, 2.0]), window=100.0, swap_tolerance=0.9
        )
        rng = np.random.default_rng(0)
        t = 0.0
        for _ in range(500):
            t += rng.exponential(0.5)
            ctl.observe_arrival(t, 1.0)
            ctl.observe_service(0, 1.0, 0.5)
        before = ctl.resolve(t)
        assert not before.swapped  # tolerance 0.9 swallows everything
        ctl.mark_server_down(2, t)
        after = ctl.resolve(t + 100.0)
        assert after.swapped
        assert after.reason == "membership"
        assert after.alphas[2] == 0.0

    def test_detector_is_edge_triggered(self):
        ctl = QuasiStaticController(np.array([1.0, 1.0]), window=10.0)
        ctl.mark_server_down(0, 1.0)
        ctl.mark_server_down(0, 2.0)
        assert ctl.membership_events == 1
        ctl.mark_server_up(0, 3.0)
        assert ctl.membership_events == 2


# ----------------------------------------------------------------------
# End-to-end fault scenarios
# ----------------------------------------------------------------------


class TestFaultScenarios:
    def test_detector_to_reallocation_within_one_period(self):
        report = make_service(events=list(KILL_REPAIR)).run()
        kill = [w for w in report.windows if w.end >= 1050.0][0]
        assert kill.reason == "membership"
        assert kill.swapped
        assert kill.alphas[2] == 0.0
        assert kill.servers_up == 3
        assert (kill.end - 1050.0) <= 100.0
        repair = [w for w in report.windows if w.end >= 1450.0][0]
        assert repair.reason == "membership"
        assert repair.alphas[2] > 0.0
        assert repair.servers_up == 4

    def test_sequence_immutable_until_boundary_then_survivors_only(self):
        report = make_service(events=list(KILL_REPAIR)).run()
        windows = report.windows
        kill_idx = next(i for i, w in enumerate(windows) if w.end >= 1050.0)
        # Mid-window the sequence still routes to the dead server — those
        # dispatches bounce (drain-and-switch keeps the window immutable).
        assert windows[kill_idx].bounced > 0
        # After the boundary swap the survivor-only sequence never aims
        # at the dead server, so nothing bounces while it stays down.
        for w in windows[kill_idx + 1:]:
            if w.end <= 1450.0:
                assert w.bounced == 0
                assert w.alphas[2] == 0.0

    def test_job_conservation(self):
        report = make_service(events=list(KILL_REPAIR)).run()
        completed = sum(w.completed for w in report.windows)
        assert report.jobs_dispatched == (
            completed + report.jobs_lost + report.jobs_pending_retry
            + report.jobs_in_flight
        )

    def test_retry_mode_recovers_all_bounced_jobs(self):
        faults = FaultConfig(retry=RetryPolicy(base_delay=5.0))
        report = make_service(events=list(KILL_REPAIR), faults=faults).run()
        assert report.jobs_retried > 0
        assert report.jobs_lost == 0
        assert report.loss_rate == 0.0

    def test_lose_mode_counts_losses(self):
        faults = FaultConfig(on_failure="lose")
        report = make_service(events=list(KILL_REPAIR), faults=faults).run()
        assert report.jobs_retried == 0
        assert report.jobs_lost == sum(w.bounced for w in report.windows)
        assert report.loss_rate == pytest.approx(
            report.jobs_lost / report.jobs_offered
        )

    def test_steady_state_loss_zero_after_repair(self):
        report = make_service(events=list(KILL_REPAIR)).run()
        late = [w for w in report.windows if w.start >= 1650.0]
        assert late  # the run extends well past the repair
        assert sum(w.lost for w in late) == 0

    def test_markov_timeline_runs_clean(self):
        faults = FaultConfig(mtbf=600.0, mttr=100.0)
        report = make_service(faults=faults, events=None).run()
        assert report.clean_shutdown
        assert report.membership_changes > 0
        # Every window reports live membership out of 4 servers.
        assert all(0 <= w.servers_up <= 4 for w in report.windows)

    def test_response_quantiles_are_surfaced(self):
        report = make_service(events=list(KILL_REPAIR)).run()
        assert math.isfinite(report.p50)
        assert math.isfinite(report.p99)
        assert report.p99 >= report.p50
        payload = report.as_dict()
        assert "p50" in payload and "p99" in payload
        assert all("p50" in w and "p99" in w for w in payload["windows"])

    def test_fault_free_run_has_no_fault_accounting(self):
        report = make_service(events=None).run()
        assert report.jobs_lost == 0
        assert report.jobs_retried == 0
        assert report.membership_changes == 0
        assert report.loss_rate == 0.0
        assert all(w.servers_up == len(SPEEDS) for w in report.windows)
        assert math.isfinite(report.p99)


# ----------------------------------------------------------------------
# SLO-targeted shedding
# ----------------------------------------------------------------------


class TestSloShedding:
    def run_overloaded(self):
        return make_service(
            seed=3, utilization=0.92, slo_target=60.0, events=None
        ).run()

    def test_shedding_engages_only_while_slo_violated(self):
        report = self.run_overloaded()
        windows = report.windows
        assert windows[0].shed == 0  # nothing measured yet
        for prev, cur in zip(windows, windows[1:]):
            if cur.shed:
                assert math.isfinite(prev.p99) and prev.p99 > 60.0

    def test_shedding_engages_and_disengages(self):
        report = self.run_overloaded()
        windows = report.windows
        assert any(w.shed for w in windows)
        assert any(
            not cur.shed and math.isfinite(prev.p99) and prev.p99 <= 60.0
            for prev, cur in zip(windows, windows[1:])
        )

    def test_no_shedding_when_slo_met(self):
        report = make_service(
            seed=3, utilization=0.4, slo_target=1e6, events=None
        ).run()
        assert report.jobs_shed == 0


# ----------------------------------------------------------------------
# Crash-safe checkpoints and resume
# ----------------------------------------------------------------------


class TestCheckpointResume:
    def run_pair(self, tmp_path, *, events, faults=None, crash_after=11):
        baseline = make_service(events=events and list(events),
                                faults=faults).run()
        ck = ServiceCheckpoint(tmp_path / "state.jsonl")
        crashing = make_service(
            events=events and list(events), faults=faults,
            checkpoint=ck, checkpoint_every=3, crash_after=crash_after,
        )
        with pytest.raises(ServiceCrash):
            crashing.run()
        resumed_service = make_service(
            events=events and list(events), faults=faults, checkpoint=ck
        )
        resumed_service.restore(ck.load_last())
        return baseline, resumed_service.run()

    def test_resume_matches_uninterrupted_run_exactly(self, tmp_path):
        baseline, resumed = self.run_pair(tmp_path, events=KILL_REPAIR)
        assert json.dumps(baseline.as_dict(), sort_keys=True) == json.dumps(
            resumed.as_dict(), sort_keys=True
        )

    def test_resume_matches_on_markov_faults(self, tmp_path):
        faults = FaultConfig(mtbf=600.0, mttr=100.0)
        baseline, resumed = self.run_pair(
            tmp_path, events=None, faults=faults, crash_after=17
        )
        assert json.dumps(baseline.as_dict(), sort_keys=True) == json.dumps(
            resumed.as_dict(), sort_keys=True
        )

    def test_resume_matches_fault_free(self, tmp_path):
        baseline, resumed = self.run_pair(tmp_path, events=None)
        assert json.dumps(baseline.as_dict(), sort_keys=True) == json.dumps(
            resumed.as_dict(), sort_keys=True
        )

    def test_torn_final_line_falls_back_to_previous_snapshot(self, tmp_path):
        path = tmp_path / "state.jsonl"
        ck = ServiceCheckpoint(path)
        crashing = make_service(events=list(KILL_REPAIR), checkpoint=ck,
                                checkpoint_every=3, crash_after=11)
        with pytest.raises(ServiceCrash):
            crashing.run()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"next_window": 12, "trunc')  # simulated torn append
        state = ck.load_last()
        assert state is not None
        assert state["next_window"] == 9

    def test_version_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "state.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"next_window": 3, "version": STATE_VERSION + 1}))
            fh.write("\n")
        with pytest.raises(ValueError, match="version"):
            ServiceCheckpoint(path).load_last()

    def test_restore_rejects_mismatched_geometry(self, tmp_path):
        ck = ServiceCheckpoint(tmp_path / "state.jsonl")
        svc = make_service(events=list(KILL_REPAIR), checkpoint=ck,
                           checkpoint_every=3, crash_after=5)
        with pytest.raises(ServiceCrash):
            svc.run()
        other = SchedulerService(
            ServiceConfig(speeds=(1.0, 2.0), duration=3000.0,
                          control_period=100.0),
            SyntheticJobSource(
                Workload(total_speed=3.0, utilization=0.5), 11
            ),
            fault_events=[],
        )
        with pytest.raises(ValueError, match="different run configuration"):
            other.restore(ck.load_last())

    def test_empty_checkpoint_loads_none(self, tmp_path):
        assert ServiceCheckpoint(tmp_path / "missing.jsonl").load_last() is None


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------


class TestConfigValidation:
    def test_slo_target_must_be_positive(self):
        with pytest.raises(ValueError, match="slo_target"):
            ServiceConfig(speeds=SPEEDS, duration=100.0, control_period=10.0,
                          slo_target=0.0)

    def test_checkpoint_every_must_be_positive(self):
        config = ServiceConfig(speeds=SPEEDS, duration=100.0,
                               control_period=10.0)
        workload = Workload(total_speed=sum(SPEEDS), utilization=0.5)
        with pytest.raises(ValueError, match="checkpoint_every"):
            SchedulerService(config, SyntheticJobSource(workload, 0),
                             checkpoint_every=0)
