"""Tests for trace-driven simulation (repro.sim.trace)."""

import numpy as np
import pytest

from repro.dispatch import LeastLoadDispatcher, RoundRobinDispatcher
from repro.rng import StreamFactory
from repro.sim import JobTrace, Workload, run_static_simulation, run_trace_simulation
from repro.sim import SimulationConfig


def small_trace():
    return JobTrace(
        arrival_times=np.array([0.0, 1.0, 2.0, 3.0]),
        sizes=np.array([2.0, 1.0, 4.0, 0.5]),
    )


class TestJobTrace:
    def test_validation(self):
        with pytest.raises(ValueError, match="matching"):
            JobTrace(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError, match="non-decreasing"):
            JobTrace(np.array([2.0, 1.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError, match="positive"):
            JobTrace(np.array([1.0]), np.array([0.0]))
        with pytest.raises(ValueError, match="at least one"):
            JobTrace(np.array([]), np.array([]))
        with pytest.raises(ValueError, match="non-negative"):
            JobTrace(np.array([-1.0]), np.array([1.0]))

    def test_moments(self):
        t = small_trace()
        assert t.n_jobs == 4
        assert t.horizon == 3.0
        assert t.mean_size == pytest.approx(1.875)
        assert t.mean_interarrival == pytest.approx(1.0)
        assert t.interarrival_cv == pytest.approx(0.0)

    def test_offered_load(self):
        t = small_trace()
        assert t.offered_load(total_speed=2.5) == pytest.approx(7.5 / (3.0 * 2.5))
        with pytest.raises(ValueError):
            t.offered_load(0.0)

    def test_csv_roundtrip(self, tmp_path):
        t = small_trace()
        path = tmp_path / "trace.csv"
        t.to_csv(path)
        loaded = JobTrace.from_csv(path)
        np.testing.assert_array_equal(loaded.arrival_times, t.arrival_times)
        np.testing.assert_array_equal(loaded.sizes, t.sizes)

    def test_csv_skips_header_and_blank(self, tmp_path):
        path = tmp_path / "messy.csv"
        path.write_text("arrival_time,size\n\n0.5,2.0\nnot,a,number\n1.5,3.0\n")
        t = JobTrace.from_csv(path)
        assert t.n_jobs == 2

    def test_csv_empty_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError, match="no job records"):
            JobTrace.from_csv(path)

    def test_synthesize(self):
        w = Workload(total_speed=4.0, utilization=0.6)
        t = JobTrace.synthesize(w, StreamFactory(5).arrivals, horizon=5.0e4)
        assert t.horizon <= 5.0e4
        # Offered load vs target utilization (heavy tail ⇒ loose check).
        assert t.offered_load(4.0) == pytest.approx(0.6, rel=0.4)

    def test_cv_of_bursty_synthetic(self):
        w = Workload(total_speed=10.0, utilization=0.7, arrival_cv=3.0)
        streams = StreamFactory(6)
        t = JobTrace.synthesize(w, streams.arrivals, horizon=2.0e5)
        assert t.interarrival_cv == pytest.approx(3.0, rel=0.15)


class TestRunTraceSimulation:
    def test_matches_synthetic_fastpath(self):
        """Replaying a synthesized trace reproduces the synthetic run."""
        config = SimulationConfig(speeds=(1.0, 3.0), utilization=0.6, duration=2.0e4)
        d1 = RoundRobinDispatcher()
        alphas = np.array([0.25, 0.75])
        synthetic = run_static_simulation(config, d1, alphas, seed=77)

        workload = config.workload()
        streams = StreamFactory(77)
        trace = JobTrace(
            workload.arrival_stream(streams.arrivals).arrivals_until(config.duration),
            workload.sample_sizes(streams.sizes, synthetic.total_arrivals),
        )
        replayed = run_trace_simulation(
            trace, config.speeds, RoundRobinDispatcher(), alphas,
            warmup=config.warmup,
        )
        assert replayed.metrics.jobs == synthetic.metrics.jobs
        assert replayed.metrics.mean_response_ratio == pytest.approx(
            synthetic.metrics.mean_response_ratio, rel=1e-12
        )

    def test_hand_computed(self):
        """Single speed-1 server: trace = the PS hand example."""
        trace = JobTrace(np.array([0.0, 0.0]), np.array([2.0, 4.0]))
        d = RoundRobinDispatcher()
        result = run_trace_simulation(trace, [1.0], d, np.array([1.0]))
        # completions at 4 and 6 → response times 4, 6; ratios 2, 1.5.
        assert result.metrics.mean_response_time == pytest.approx(5.0)
        assert result.metrics.mean_response_ratio == pytest.approx(1.75)

    def test_warmup_respected(self):
        trace = JobTrace(np.array([0.0, 10.0]), np.array([1.0, 1.0]))
        result = run_trace_simulation(
            trace, [1.0], RoundRobinDispatcher(), np.array([1.0]), warmup=5.0
        )
        assert result.metrics.jobs == 1

    def test_rejects_dynamic_dispatcher(self):
        with pytest.raises(ValueError, match="static-only"):
            run_trace_simulation(
                small_trace(), [1.0], LeastLoadDispatcher([1.0]), None
            )

    def test_validation(self):
        with pytest.raises(ValueError, match="speeds"):
            run_trace_simulation(
                small_trace(), [], RoundRobinDispatcher(), np.array([1.0])
            )
        with pytest.raises(ValueError, match="warmup"):
            run_trace_simulation(
                small_trace(), [1.0], RoundRobinDispatcher(), np.array([1.0]),
                warmup=-1.0,
            )

    def test_record_trace(self):
        result = run_trace_simulation(
            small_trace(), [1.0, 1.0], RoundRobinDispatcher(),
            np.array([0.5, 0.5]), record_trace=True,
        )
        assert result.trace is not None
        assert result.trace.count == 4
