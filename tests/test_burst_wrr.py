"""Tests for the burst (quota) WRR contrast baseline."""

import numpy as np
import pytest

from repro.dispatch import BurstWeightedRoundRobinDispatcher, RoundRobinDispatcher
from repro.dispatch.burst_wrr import _largest_remainder_quotas


class TestLargestRemainderQuotas:
    def test_exact_fractions(self):
        q = _largest_remainder_quotas(np.array([0.25, 0.75]), 8)
        np.testing.assert_array_equal(q, [2, 6])

    def test_sums_to_cycle(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            alphas = rng.dirichlet(np.ones(5))
            q = _largest_remainder_quotas(alphas, 97)
            assert q.sum() == 97
            assert np.all(q >= 0)

    def test_rounding_favours_largest_remainder(self):
        # 0.26/0.26/0.48 over 10 → raw 2.6/2.6/4.8 → floor 2/2/4, short 2
        # goes to the two largest remainders (0.8 then 0.6-tie broken
        # stably by order).
        q = _largest_remainder_quotas(np.array([0.26, 0.26, 0.48]), 10)
        assert q.sum() == 10
        assert q[2] == 5


class TestBurstWrr:
    def test_paper_example_quotas(self):
        d = BurstWeightedRoundRobinDispatcher(cycle_length=8)
        d.reset([1 / 8, 1 / 8, 1 / 4, 1 / 2])
        np.testing.assert_array_equal(d.quotas, [1, 1, 2, 4])

    def test_bursts_are_consecutive(self):
        d = BurstWeightedRoundRobinDispatcher(cycle_length=8)
        d.reset([1 / 8, 1 / 8, 1 / 4, 1 / 2])
        seq = [d.select(1.0) for _ in range(8)]
        assert seq == [0, 1, 2, 2, 3, 3, 3, 3]

    def test_periodic(self):
        d = BurstWeightedRoundRobinDispatcher(cycle_length=4)
        d.reset([0.5, 0.5])
        seq = [d.select(1.0) for _ in range(12)]
        assert seq == [0, 0, 1, 1] * 3

    def test_batch_equals_sequential(self):
        alphas = [0.3, 0.3, 0.4]
        a = BurstWeightedRoundRobinDispatcher(cycle_length=10)
        a.reset(alphas)
        seq = [a.select(1.0) for _ in range(25)]
        b = BurstWeightedRoundRobinDispatcher(cycle_length=10)
        b.reset(alphas)
        assert b.select_batch(np.ones(25)).tolist() == seq

    def test_zero_fraction_excluded(self):
        d = BurstWeightedRoundRobinDispatcher(cycle_length=10)
        d.reset([0.0, 0.5, 0.5])
        targets = d.select_batch(np.ones(30))
        assert 0 not in targets

    def test_long_run_fractions(self):
        alphas = np.array([0.35, 0.22, 0.15, 0.12, 0.04, 0.04, 0.04, 0.04])
        d = BurstWeightedRoundRobinDispatcher(cycle_length=100)
        d.reset(alphas)
        targets = d.select_batch(np.ones(10_000))
        freq = np.bincount(targets, minlength=8) / 10_000
        np.testing.assert_allclose(freq, alphas, atol=0.005)

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstWeightedRoundRobinDispatcher(cycle_length=0)
        d = BurstWeightedRoundRobinDispatcher(cycle_length=5)
        with pytest.raises(RuntimeError, match="reset"):
            d.select(1.0)

    def test_burstier_than_algorithm2(self):
        """The defining contrast: same fractions, much burstier order."""
        alphas = np.array([0.5, 0.25, 0.25])

        def gap_cv(dispatcher):
            dispatcher.reset(alphas)
            targets = dispatcher.select_batch(np.ones(4000))
            cvs = []
            for i in range(3):
                gaps = np.diff(np.nonzero(targets == i)[0])
                cvs.append(gaps.std() / gaps.mean())
            return np.mean(cvs)

        burst = gap_cv(BurstWeightedRoundRobinDispatcher(cycle_length=100))
        smooth = gap_cv(RoundRobinDispatcher())
        assert smooth < 0.2 * burst
