"""Tests for the grid executor: n_jobs resolution, the shared pool,
and bit-identical serial/parallel aggregation."""

import numpy as np
import pytest

from repro.core import evaluate_policy, evaluate_policy_parallel, get_policy
from repro.core.executor import (
    ReplicationTask,
    resolve_n_jobs,
    run_replication_grid,
    shared_executor,
    shutdown_shared_executor,
    summarize_outcomes,
)
from repro.rng import replication_seeds
from repro.sim import SimulationConfig

SMOKE = dict(speeds=(1.0, 1.0, 10.0), utilization=0.6, duration=1.0e4)


class TestResolveNJobs:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_n_jobs(None) == 1

    def test_explicit_int(self):
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs("4") == 4

    def test_auto_uses_cpu_count(self):
        import os

        assert resolve_n_jobs("auto") == (os.cpu_count() or 1)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_n_jobs(None) == 5
        # Explicit argument wins over the environment.
        assert resolve_n_jobs(2) == 2

    @pytest.mark.parametrize("bad", ["bogus", "1.5", ""])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError, match="n_jobs"):
            resolve_n_jobs(bad)

    @pytest.mark.parametrize("bad", [0, -1, "0"])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError, match="positive"):
            resolve_n_jobs(bad)


class TestSharedExecutor:
    def test_pool_is_reused(self):
        a = shared_executor(2)
        b = shared_executor(2)
        assert a is b
        shutdown_shared_executor()

    def test_pool_recreated_on_size_change(self):
        a = shared_executor(1)
        b = shared_executor(2)
        assert a is not b
        shutdown_shared_executor()

    def test_shutdown_idempotent(self):
        shutdown_shared_executor()
        shutdown_shared_executor()


def _tasks(config, policy_name, replications=2, base_seed=2000):
    return [
        ReplicationTask(
            key=r,
            config=config,
            policy_name=policy_name,
            estimation_error=None,
            seed=seed,
        )
        for r, seed in enumerate(replication_seeds(base_seed, replications))
    ]


class TestReplicationGrid:
    def test_serial_grid_matches_evaluate_policy(self):
        config = SimulationConfig(**SMOKE)
        tasks = _tasks(config, "ORR")
        report = run_replication_grid(tasks, n_jobs=1)
        grid = summarize_outcomes(
            "ORR", config, [report.outcomes[r] for r in range(2)]
        )
        serial = evaluate_policy(
            config, get_policy("ORR"), replications=2, base_seed=2000
        )
        assert grid.mean_response_ratio.mean == serial.mean_response_ratio.mean
        assert grid.mean_response_time.mean == serial.mean_response_time.mean
        assert grid.fairness.mean == serial.fairness.mean
        np.testing.assert_array_equal(
            grid.dispatch_fractions, serial.dispatch_fractions
        )

    def test_parallel_grid_bit_identical_to_serial(self):
        config = SimulationConfig(**SMOKE)
        tasks = _tasks(config, "WRR", replications=3)
        serial = run_replication_grid(tasks, n_jobs=1)
        parallel = run_replication_grid(tasks, n_jobs=2)
        shutdown_shared_executor()
        for r in range(3):
            a, b = serial.outcomes[r], parallel.outcomes[r]
            # Outcome tuples: (time, ratio, fairness, jobs, fractions).
            assert a[:4] == b[:4]
            np.testing.assert_array_equal(a[4], b[4])

    def test_failures_are_aggregated(self):
        config = SimulationConfig(**SMOKE)
        tasks = _tasks(config, "NO_SUCH_POLICY")
        with pytest.raises(RuntimeError, match="grid tasks failed"):
            run_replication_grid(tasks, n_jobs=1)

    def test_timings_recorded(self):
        config = SimulationConfig(**SMOKE)
        report = run_replication_grid(_tasks(config, "ORR", 1), n_jobs=1)
        assert set(report.timings) >= {"cache_lookup", "simulate"}
        assert report.timings["simulate"] > 0


class TestEvaluatePolicyParallel:
    def test_matches_serial_evaluation(self):
        config = SimulationConfig(**SMOKE)
        par = evaluate_policy_parallel(
            config, "ORR", replications=2, base_seed=11, n_jobs=2
        )
        shutdown_shared_executor()
        ser = evaluate_policy(
            config, get_policy("ORR"), replications=2, base_seed=11
        )
        assert par.mean_response_ratio.mean == ser.mean_response_ratio.mean
        assert par.mean_response_ratio.half_width == pytest.approx(
            ser.mean_response_ratio.half_width
        )
        np.testing.assert_array_equal(
            par.dispatch_fractions, ser.dispatch_fractions
        )

    def test_default_base_seed_matches_sweep_scale(self):
        from repro.core.parallel import DEFAULT_BASE_SEED
        from repro.experiments.base import Scale

        assert DEFAULT_BASE_SEED == Scale("x", duration=1.0, replications=1).base_seed

    def test_rejects_zero_replications(self):
        config = SimulationConfig(**SMOKE)
        with pytest.raises(ValueError, match="replication"):
            evaluate_policy_parallel(config, "ORR", replications=0)

    def test_unknown_policy_fails_fast(self):
        config = SimulationConfig(**SMOKE)
        with pytest.raises(KeyError):
            evaluate_policy_parallel(config, "NOPE", replications=1)


class TestSweepThroughGrid:
    def test_figure3_subset_parallel_identical(self):
        """Acceptance: a figure3 smoke sweep with n_jobs=2 produces
        numerically identical series to the serial run."""
        from repro.experiments.base import SCALES
        from repro.experiments.figure3 import run_figure3

        scale = SCALES["smoke"]
        kwargs = dict(fast_speeds=(1.0, 10.0), policies=("ORR", "WRR"))
        serial = run_figure3(scale, **kwargs)
        parallel = run_figure3(scale, n_jobs=2, **kwargs)
        shutdown_shared_executor()
        for policy in kwargs["policies"]:
            for metric in ("mean_response_time", "mean_response_ratio", "fairness"):
                np.testing.assert_array_equal(
                    serial.series(policy, metric),
                    parallel.series(policy, metric),
                )

    def test_sweep_records_timings(self):
        from repro.experiments.base import SCALES
        from repro.experiments.figure3 import run_figure3

        result = run_figure3(
            SCALES["smoke"], fast_speeds=(1.0,), policies=("WRR",)
        )
        assert {"plan", "simulate", "aggregate"} <= set(result.timings)
