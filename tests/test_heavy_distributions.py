"""Tests for the Lognormal and Weibull size families."""

import math

import numpy as np
import pytest

from repro.distributions import Lognormal, Weibull


class TestLognormal:
    @pytest.mark.parametrize("mean,cv", [(76.8, 1.0), (1.0, 0.25), (500.0, 4.0)])
    def test_moment_fit_exact(self, mean, cv):
        d = Lognormal.from_mean_cv(mean, cv)
        assert d.mean == pytest.approx(mean, rel=1e-12)
        assert d.cv == pytest.approx(cv, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            Lognormal(0.0, 0.0)
        with pytest.raises(ValueError):
            Lognormal.from_mean_cv(-1.0, 1.0)
        with pytest.raises(ValueError):
            Lognormal.from_mean_cv(1.0, 0.0)

    def test_cdf_ppf_roundtrip(self):
        d = Lognormal.from_mean_cv(10.0, 2.0)
        q = np.linspace(0.01, 0.99, 21)
        np.testing.assert_allclose(d.cdf(d.ppf(q)), q, rtol=1e-9)

    def test_cdf_at_zero(self):
        d = Lognormal(0.0, 1.0)
        assert d.cdf(0.0) == 0.0
        assert d.cdf(-5.0) == 0.0

    def test_sampling_statistics(self, rng):
        d = Lognormal.from_mean_cv(5.0, 1.5)
        xs = d.sample(rng, 400_000)
        assert xs.mean() == pytest.approx(5.0, rel=0.03)
        assert xs.std() / xs.mean() == pytest.approx(1.5, rel=0.05)

    def test_median(self):
        d = Lognormal(2.0, 0.5)
        assert d.ppf(0.5) == pytest.approx(math.exp(2.0))


class TestWeibull:
    @pytest.mark.parametrize("mean,cv", [(76.8, 1.0), (1.0, 0.5), (10.0, 3.0)])
    def test_moment_fit_exact(self, mean, cv):
        d = Weibull.from_mean_cv(mean, cv)
        assert d.mean == pytest.approx(mean, rel=1e-9)
        assert d.cv == pytest.approx(cv, rel=1e-6)

    def test_cv_one_is_exponential_shape(self):
        d = Weibull.from_mean_cv(1.0, 1.0)
        assert d.shape == pytest.approx(1.0, rel=1e-6)

    def test_heavy_tail_shape_below_one(self):
        d = Weibull.from_mean_cv(1.0, 3.0)
        assert d.shape < 1.0

    def test_light_tail_shape_above_one(self):
        d = Weibull.from_mean_cv(1.0, 0.3)
        assert d.shape > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Weibull(0.0, 1.0)
        with pytest.raises(ValueError):
            Weibull(1.0, 0.0)
        with pytest.raises(ValueError):
            Weibull.from_mean_cv(0.0, 1.0)
        with pytest.raises(ValueError):
            Weibull.from_mean_cv(1.0, -1.0)

    def test_cdf_ppf_roundtrip(self):
        d = Weibull.from_mean_cv(10.0, 2.0)
        q = np.linspace(0.0, 0.999, 30)
        np.testing.assert_allclose(d.cdf(d.ppf(q)), q, atol=1e-12)

    def test_cdf_closed_form(self):
        d = Weibull(shape=2.0, scale=3.0)
        x = 3.0
        assert d.cdf(x) == pytest.approx(1.0 - math.exp(-1.0))

    def test_sampling_statistics(self, rng):
        d = Weibull.from_mean_cv(4.0, 0.5)
        xs = d.sample(rng, 300_000)
        assert xs.mean() == pytest.approx(4.0, rel=0.02)
        assert xs.std() / xs.mean() == pytest.approx(0.5, rel=0.05)

    def test_negative_x_cdf(self):
        assert Weibull(1.0, 1.0).cdf(-1.0) == 0.0
