"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(["run", "table1", "--scale", "smoke"])
        assert args.experiment == "table1"
        assert args.scale == "smoke"

    def test_invalid_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table1", "--scale", "huge"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure3" in out and "table1" in out

    def test_allocate(self, capsys):
        code = main(["allocate", "--speeds", "1,1.5,2", "--utilization", "0.7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimized alpha" in out
        assert "predicted mean response ratio" in out

    def test_allocate_drops_slow_machines(self, capsys):
        main(["allocate", "--speeds", "0.05,1,10", "--utilization", "0.3"])
        out = capsys.readouterr().out
        assert "zero work" in out

    def test_allocate_bad_speeds(self, capsys):
        assert main(["allocate", "--speeds", "a,b", "--utilization", "0.5"]) == 2
        assert "could not parse" in capsys.readouterr().err

    def test_allocate_empty_speeds(self, capsys):
        assert main(["allocate", "--speeds", ",", "--utilization", "0.5"]) == 2

    def test_allocate_bad_utilization(self, capsys):
        assert main(["allocate", "--speeds", "1,2", "--utilization", "1.5"]) == 2
        assert "utilization" in capsys.readouterr().err

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        assert "ORR" in capsys.readouterr().out

    def test_run_table3(self, capsys):
        assert main(["run", "table3"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "figure99"])
