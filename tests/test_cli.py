"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(["run", "table1", "--scale", "smoke"])
        assert args.experiment == "table1"
        assert args.scale == "smoke"

    def test_invalid_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table1", "--scale", "huge"])

    def test_run_n_jobs_and_cache_args(self):
        args = build_parser().parse_args(
            ["run", "figure3", "--n-jobs", "auto", "--cache", "/tmp/c"]
        )
        assert args.n_jobs == "auto"
        assert args.cache == "/tmp/c"

    def test_simulate_n_jobs_arg(self):
        args = build_parser().parse_args(
            ["simulate", "--speeds", "1,2", "--utilization", "0.5",
             "--n-jobs", "2"]
        )
        assert args.n_jobs == "2"

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.scale == "smoke"
        assert args.output == "BENCH_sweep.json"
        assert args.n_jobs is None and args.cache is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure3" in out and "table1" in out

    def test_allocate(self, capsys):
        code = main(["allocate", "--speeds", "1,1.5,2", "--utilization", "0.7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimized alpha" in out
        assert "predicted mean response ratio" in out

    def test_allocate_drops_slow_machines(self, capsys):
        main(["allocate", "--speeds", "0.05,1,10", "--utilization", "0.3"])
        out = capsys.readouterr().out
        assert "zero work" in out

    def test_allocate_bad_speeds(self, capsys):
        assert main(["allocate", "--speeds", "a,b", "--utilization", "0.5"]) == 2
        assert "could not parse" in capsys.readouterr().err

    def test_allocate_empty_speeds(self, capsys):
        assert main(["allocate", "--speeds", ",", "--utilization", "0.5"]) == 2

    def test_allocate_bad_utilization(self, capsys):
        assert main(["allocate", "--speeds", "1,2", "--utilization", "1.5"]) == 2
        assert "utilization" in capsys.readouterr().err

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        assert "ORR" in capsys.readouterr().out

    def test_run_table3(self, capsys):
        assert main(["run", "table3"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "figure99"])

    def test_run_rejects_bad_n_jobs(self, capsys):
        assert main(["run", "table2", "--n-jobs", "bogus"]) == 2
        assert "n_jobs" in capsys.readouterr().err

    def test_simulate_rejects_bad_n_jobs(self, capsys):
        code = main(["simulate", "--speeds", "1,2", "--utilization", "0.5",
                     "--n-jobs", "-3"])
        assert code == 2
        assert "positive" in capsys.readouterr().err

    def test_simulate_parallel_matches_serial(self, capsys):
        base = ["simulate", "--speeds", "1,1,10", "--utilization", "0.6",
                "--policies", "ORR", "--duration", "5e3",
                "--replications", "2"]
        assert main(base) == 0
        serial_out = capsys.readouterr().out
        assert main(base + ["--n-jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_run_with_cache_dir(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        code = main(["run", "figure3", "--scale", "smoke",
                     "--cache", str(cache_dir)])
        assert code == 0
        assert "ORR" in capsys.readouterr().out
        assert any(p.suffix == ".json" for p in cache_dir.iterdir())


class TestBench:
    def test_bench_appends_trajectory(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "BENCH_sweep.json"
        assert main(["bench", "--output", str(out_path)]) == 0
        text = capsys.readouterr().out
        assert "FCFS kernel" in text and "cache" in text
        trajectory = json.loads(out_path.read_text())
        assert len(trajectory) == 1
        record = trajectory[0]
        assert record["sweep"]["grid_identical"] is True
        assert record["replication"]["ps"]["agree"] is True
        assert record["replication"]["fcfs"]["agree"] is True
        assert record["sweep"]["cache_warm_hits"] > 0
        assert record["cell"]["cell_identical"] is True
        assert record["cell"]["cell_speedup"] > 0
        for point in record["cell"]["paired"]:
            assert point["paired_half_width"] >= 0
            assert point["unpaired_half_width"] > 0
            assert point["verdict"] in ("a_wins", "b_wins", "tie")

        # A second invocation appends rather than overwrites.
        assert main(["bench", "--output", str(out_path)]) == 0
        capsys.readouterr()
        assert len(json.loads(out_path.read_text())) == 2

    def test_bench_rejects_bad_n_jobs(self, capsys, tmp_path):
        code = main(["bench", "--n-jobs", "zero",
                     "--output", str(tmp_path / "b.json")])
        assert code == 2
        assert "n_jobs" in capsys.readouterr().err


class TestServe:
    def test_serve_json_smoke(self, capsys):
        import json

        code = main(["serve", "--speeds", "1,2,3", "--duration", "500",
                     "--resolve-period", "100", "--seed", "4", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean_shutdown"] is True
        assert payload["jobs_dispatched"] > 0
        assert payload["resolves"] == 5
        assert len(payload["final_alphas"]) == 3

    def test_serve_human_output(self, capsys):
        code = main(["serve", "--speeds", "1,2", "--duration", "300",
                     "--resolve-period", "100"])
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs dispatched" in out
        assert "final allocation" in out

    def test_serve_step_workload(self, capsys):
        import json

        code = main(["serve", "--speeds", "1,2,3", "--duration", "1000",
                     "--resolve-period", "100", "--workload", "step",
                     "--step-factor", "1.5", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean_shutdown"] is True
        # the step raises the late arrival rate above the early one
        windows = payload["windows"]
        early = sum(w["offered"] for w in windows[:5])
        late = sum(w["offered"] for w in windows[5:])
        assert late > early

    def test_serve_replay_trace(self, capsys, tmp_path):
        import json

        trace = tmp_path / "trace.csv"
        trace.write_text(
            "".join(f"{t * 0.1:.3f},1.0\n" for t in range(200))
        )
        code = main(["serve", "--speeds", "1,1", "--duration", "20",
                     "--resolve-period", "5", "--replay", str(trace),
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["jobs_dispatched"] == 200

    def test_serve_bad_speeds(self, capsys):
        assert main(["serve", "--speeds", "x,y", "--duration", "100",
                     "--resolve-period", "10"]) == 2
        assert "could not parse" in capsys.readouterr().err

    def test_serve_bad_utilization(self, capsys):
        assert main(["serve", "--speeds", "1,2", "--utilization", "1.3",
                     "--duration", "100", "--resolve-period", "10"]) == 2
        assert "utilization" in capsys.readouterr().err

    def test_serve_missing_trace(self, capsys):
        assert main(["serve", "--speeds", "1,2", "--duration", "100",
                     "--resolve-period", "10",
                     "--replay", "/nonexistent/trace.csv"]) == 2
        assert "could not read" in capsys.readouterr().err

    def test_serve_bad_period(self, capsys):
        assert main(["serve", "--speeds", "1,2", "--duration", "10",
                     "--resolve-period", "100"]) == 2
        assert "control_period" in capsys.readouterr().err
