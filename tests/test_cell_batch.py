"""Cell-batched simulation: stream pools, kernel v3 batching, CRN pairing.

The hard contract under test is bit-identity: a cell-batched run with
shared arrival pools must produce exactly the results of independent
per-replication runs with the same seeds — across the in-process pool,
the shared-memory pool, the compiled replay kernel, the cell grid
executor, and the sweep front end.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core import (
    CellTask,
    evaluate_cell,
    evaluate_cell_to_precision,
    evaluate_policy,
    get_policy,
    run_cell_grid,
    run_replication_grid,
)
from repro.core.cache import ReplicationCache
from repro.core.evaluate import run_policy_once
from repro.core.executor import ReplicationTask
from repro.metrics.ci import PairedSummary, summarize_paired
from repro.rng import replication_seeds, substream
from repro.sim import SimulationConfig, ckernel, run_cell
from repro.sim.fastpath import run_static_simulation
from repro.sim.streams import (
    SharedStreamPool,
    StreamPool,
    attach_streams,
    materialize_streams,
    stream_signature,
)


def small_config(discipline: str = "ps", speeds=(2.0, 1.0, 1.0)) -> SimulationConfig:
    return SimulationConfig(
        speeds=speeds,
        utilization=0.7,
        duration=6000.0,
        warmup=1500.0,
        discipline=discipline,
    )


def results_equal(a, b) -> bool:
    """Exact (bitwise) equality of two SimulationResults."""
    return (
        a.metrics.mean_response_time == b.metrics.mean_response_time
        and a.metrics.mean_response_ratio == b.metrics.mean_response_ratio
        and a.metrics.fairness == b.metrics.fairness
        and a.metrics.jobs == b.metrics.jobs
        and a.servers == b.servers
        and a.total_arrivals == b.total_arrivals
    )


class TestStreamPool:
    def test_pooled_arrays_bit_identical_to_private_draws(self):
        config = small_config()
        pool = StreamPool()
        times, sizes = pool.get(config, 1234)
        ref_times, ref_sizes = materialize_streams(config, 1234)
        np.testing.assert_array_equal(times, ref_times)
        np.testing.assert_array_equal(sizes, ref_sizes)

    def test_entries_memoized_and_read_only(self):
        config = small_config()
        pool = StreamPool()
        t1, s1 = pool.get(config, 7)
        t2, s2 = pool.get(config, 7)
        assert t1 is t2 and s1 is s2
        assert pool.hits == 1 and pool.misses == 1
        assert not t1.flags.writeable and not s1.flags.writeable
        with pytest.raises(ValueError):
            t1[0] = 0.0

    def test_lru_bound(self):
        config = small_config()
        pool = StreamPool(max_entries=2)
        pool.get(config, 1)
        pool.get(config, 2)
        pool.get(config, 3)  # evicts seed 1
        pool.get(config, 2)
        assert pool.hits == 1
        pool.get(config, 1)  # re-materialized
        assert pool.misses == 4

    def test_signature_ignores_dispatch_and_discipline_fields(self):
        ps = small_config("ps")
        fcfs = small_config("fcfs")
        assert stream_signature(ps) == stream_signature(fcfs)
        pool = StreamPool()
        t1, _ = pool.get(ps, 5)
        t2, _ = pool.get(fcfs, 5)
        assert t1 is t2  # same streams, one materialization

    def test_prime_inserts_external_arrays(self):
        config = small_config()
        times, sizes = materialize_streams(config, 9)
        pool = StreamPool()
        pool.prime(config, 9, times, sizes)
        t, s = pool.get(config, 9)
        assert t is times and s is sizes
        assert pool.misses == 0


class TestSharedStreamPool:
    def test_share_attach_roundtrip(self):
        config = small_config()
        ref_times, ref_sizes = materialize_streams(config, 42)
        with SharedStreamPool() as shared:
            handle = shared.share(config, 42)
            view = attach_streams(handle)
            np.testing.assert_array_equal(view.times, ref_times)
            np.testing.assert_array_equal(view.sizes, ref_sizes)
            assert not view.times.flags.writeable
            view.close()

    def test_close_unlinks_every_segment(self):
        config = small_config()
        shared = SharedStreamPool()
        handle = shared.share(config, 42)
        shared.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.times_name)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.sizes_name)

    def test_segments_unlinked_even_when_never_attached(self):
        # A worker that crashes before (or after) attaching must not be
        # able to leak /dev/shm space: the parent owns the unlink.
        config = small_config()
        with SharedStreamPool() as shared:
            handle = shared.share(config, 7)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.times_name)

    def test_context_manager_unlinks_on_error(self):
        config = small_config()
        with pytest.raises(RuntimeError):
            with SharedStreamPool() as shared:
                handle = shared.share(config, 3)
                raise RuntimeError("worker died")
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.sizes_name)


class TestRunCell:
    @pytest.mark.parametrize("discipline", ["ps", "fcfs"])
    def test_members_bit_identical_to_run_static_simulation(self, discipline):
        config = small_config(discipline)
        policies = [get_policy(n) for n in ("ORR", "WRR", "ORAN", "WRAN")]
        seeds = replication_seeds(11, 2)
        batch = run_cell(config, policies, seeds)
        network = config.network()
        for pi, policy in enumerate(policies):
            alphas = policy.fractions(network)
            for r, seed in enumerate(seeds):
                dispatcher = policy.build_dispatcher(
                    config.speeds, substream(seed, "dispatch")
                )
                ref = run_static_simulation(
                    config, dispatcher, alphas, seed=seed
                )
                assert results_equal(batch[(pi, r)], ref), (policy.name, r)

    def test_members_subset_restricts_work(self):
        config = small_config()
        policies = [get_policy("ORR"), get_policy("WRR")]
        seeds = replication_seeds(3, 3)
        batch = run_cell(config, policies, seeds, members=[(0, 1), (1, 2)])
        assert set(batch) == {(0, 1), (1, 2)}

    def test_identical_dispatch_plans_share_one_replay(self):
        # Two cell members with the same dispatch plan (here: the same
        # policy twice, which is what ORR vs WRR degenerates to whenever
        # the optimizer lands on exactly proportional fractions) must
        # share a single replayed result object per replication.
        config = small_config(speeds=(1.0, 1.0, 1.0))
        policies = [get_policy("WRR"), get_policy("WRR")]
        seeds = replication_seeds(5, 2)
        batch = run_cell(config, policies, seeds)
        for r in range(2):
            assert batch[(0, r)] is batch[(1, r)]
        # ... and the shared result is still exactly the private run.
        ref = run_policy_once(config, policies[1], seed=seeds[0])
        assert results_equal(batch[(1, 0)], ref)

    def test_compiled_and_python_replay_agree_exactly(self, monkeypatch):
        config = small_config()
        policies = [get_policy("ORR"), get_policy("ORAN")]
        seeds = replication_seeds(21, 2)
        with_c = run_cell(config, policies, seeds)
        monkeypatch.setattr(ckernel, "_fns", False)  # force Python loop
        without_c = run_cell(config, policies, seeds)
        for key in with_c:
            assert results_equal(with_c[key], without_c[key]), key

    def test_rejects_dynamic_policies_and_bad_members(self):
        config = small_config()
        policies = [get_policy("LEAST_LOAD")]
        with pytest.raises(ValueError, match="feedback"):
            run_cell(config, policies, replication_seeds(0, 1))
        with pytest.raises(IndexError):
            run_cell(config, [get_policy("ORR")], replication_seeds(0, 1),
                     members=[(0, 5)])


class TestPairedStatistics:
    def test_summarize_paired_cancels_shared_noise(self):
        rng = np.random.default_rng(0)
        noise = rng.normal(0.0, 5.0, 40)
        a = 10.0 + noise + rng.normal(0.0, 0.1, 40)
        b = 11.0 + noise + rng.normal(0.0, 0.1, 40)
        paired = summarize_paired(a, b, labels=("A", "B"))
        assert paired.verdict == "a_wins"  # a − b clearly negative
        assert paired.half_width < 0.2  # the ±5 shared noise cancelled
        assert paired.mean_diff == pytest.approx(-1.0, abs=0.2)

    def test_verdict_branches(self):
        assert PairedSummary("a", "b", -2.0, 0.1, 5, 0.5, 0.95).verdict == "a_wins"
        assert PairedSummary("a", "b", 2.0, 0.1, 5, 0.5, 0.95).verdict == "b_wins"
        assert PairedSummary("a", "b", 0.1, 0.1, 5, 0.5, 0.95).verdict == "tie"

    def test_single_pair_and_misaligned_inputs(self):
        single = summarize_paired([1.0], [2.0])
        assert single.n == 1 and single.half_width == 0.0
        with pytest.raises(ValueError, match="align"):
            summarize_paired([1.0, 2.0], [1.0])
        with pytest.raises(ValueError, match="no replication"):
            summarize_paired([], [])


class TestEvaluateCell:
    def test_matches_evaluate_policy_exactly(self):
        config = small_config()
        cell = evaluate_cell(
            config, ["ORR", "WRAN"], replications=3, base_seed=17
        )
        for name in ("ORR", "WRAN"):
            solo = evaluate_policy(
                config, get_policy(name), replications=3, base_seed=17
            )
            batched = cell[name]
            assert batched.mean_response_ratio.mean == solo.mean_response_ratio.mean
            assert batched.mean_response_time.mean == solo.mean_response_time.mean
            assert batched.fairness.mean == solo.fairness.mean
            np.testing.assert_array_equal(
                batched.dispatch_fractions, solo.dispatch_fractions
            )

    def test_streams_materialized_once_per_replication(self):
        config = small_config()
        cell = evaluate_cell(
            config, ["ORR", "WRR", "ORAN"], replications=4, base_seed=1
        )
        assert cell.stream_misses == 4  # not 12

    def test_paired_accessor_matches_manual_summary(self):
        config = small_config()
        cell = evaluate_cell(config, ["ORR", "WRR"], replications=4, base_seed=2)
        paired = cell.paired("ORR", "WRR", "mean_response_ratio")
        manual = summarize_paired(
            cell.samples["ORR"]["mean_response_ratio"],
            cell.samples["WRR"]["mean_response_ratio"],
            labels=("ORR", "WRR"),
        )
        assert paired.mean_diff == manual.mean_diff
        assert paired.half_width == manual.half_width

    def test_precision_stops_early_when_target_is_loose(self):
        config = small_config()
        cell = evaluate_cell_to_precision(
            config, ["ORR", "WRR"], target_relative_half_width=10.0,
            min_replications=2, max_replications=20, base_seed=4,
        )
        assert cell.replications == 2

    def test_precision_exhausts_budget_when_target_is_tight(self):
        config = small_config()
        cell = evaluate_cell_to_precision(
            config, ["ORR", "WRR"], target_relative_half_width=1e-9,
            min_replications=2, max_replications=4, base_seed=4,
        )
        assert cell.replications == 4

    def test_precision_paired_mode_converges_faster_than_absolute(self):
        # CRN differences are far tighter than absolute intervals, so the
        # paired stopping rule should need no more replications.
        config = small_config()
        paired = evaluate_cell_to_precision(
            config, ["ORR", "WRR"], target_relative_half_width=0.08,
            paired_baseline="WRR", min_replications=2, max_replications=30,
            base_seed=6,
        )
        absolute = evaluate_cell_to_precision(
            config, ["ORR", "WRR"], target_relative_half_width=0.08,
            min_replications=2, max_replications=30, base_seed=6,
        )
        assert paired.replications <= absolute.replications


def make_cells(config, policies, seeds, xs=(1.0, 4.0)):
    return [
        CellTask(
            x=x,
            config=config,
            policy_names=tuple(policies),
            base_names=tuple(policies),
            estimation_errors=(None,) * len(policies),
            seeds=tuple(seeds),
        )
        for x in xs
    ]


class TestCellGrid:
    def test_matches_flat_replication_grid(self):
        config = small_config()
        policies = ["ORR", "WRAN"]
        seeds = replication_seeds(2000, 2)
        cells = make_cells(config, policies, seeds)
        flat_tasks = [
            ReplicationTask(key=(x, name, r), config=config,
                            policy_name=name, estimation_error=None, seed=seed)
            for x in (1.0, 4.0)
            for name in policies
            for r, seed in enumerate(seeds)
        ]
        cell_report = run_cell_grid(cells, n_jobs=1)
        flat_report = run_replication_grid(flat_tasks, n_jobs=1)
        assert set(cell_report.outcomes) == set(flat_report.outcomes)
        for key, outcome in cell_report.outcomes.items():
            for got, want in zip(outcome, flat_report.outcomes[key]):
                if isinstance(want, np.ndarray):
                    np.testing.assert_array_equal(got, want)
                else:
                    assert got == want, key

    def test_parallel_cell_grid_identical_to_serial(self):
        config = small_config()
        policies = ["ORR", "WRR", "ORAN"]
        seeds = replication_seeds(77, 2)
        cells = make_cells(config, policies, seeds, xs=(1.0, 2.0, 3.0))
        serial = run_cell_grid(cells, n_jobs=1)
        parallel = run_cell_grid(cells, n_jobs=2)
        assert set(serial.outcomes) == set(parallel.outcomes)
        for key, outcome in serial.outcomes.items():
            for got, want in zip(parallel.outcomes[key], outcome):
                if isinstance(want, np.ndarray):
                    np.testing.assert_array_equal(got, want)
                else:
                    assert got == want, key

    def test_cell_grid_serves_cache_hits(self, tmp_path):
        config = small_config()
        cells = make_cells(config, ["ORR", "WRR"], replication_seeds(5, 2))
        cache = ReplicationCache(tmp_path)
        first = run_cell_grid(cells, n_jobs=1, cache=cache)
        second = run_cell_grid(cells, n_jobs=1, cache=cache)
        assert first.cache_misses == len(first.outcomes)
        assert second.cache_hits == len(first.outcomes)
        for key in first.outcomes:
            for got, want in zip(second.outcomes[key], first.outcomes[key]):
                if isinstance(want, np.ndarray):
                    np.testing.assert_array_equal(got, want)
                else:
                    assert got == want

    def test_non_fast_members_fall_back_to_engine(self):
        # LEAST_LOAD needs the event engine; the cell grid must still
        # evaluate it (per member) alongside batched static policies.
        config = small_config()
        seeds = replication_seeds(8, 1)
        cells = make_cells(config, ["ORR", "LEAST_LOAD"], seeds, xs=(1.0,))
        report = run_cell_grid(cells, n_jobs=1)
        ref = run_policy_once(config, get_policy("LEAST_LOAD"), seed=seeds[0])
        got = report.outcomes[(1.0, "LEAST_LOAD", 0)]
        assert got[1] == ref.metrics.mean_response_ratio


class TestSweepIntegration:
    def test_cell_batch_sweep_identical_to_flat_sweep(self):
        from repro.experiments.base import Scale, run_policy_sweep

        scale = Scale("test", duration=5000.0, replications=2, base_seed=99)

        def config_for_x(x):
            return SimulationConfig(
                speeds=(x, 1.0, 1.0), utilization=0.6,
                duration=scale.duration, warmup=scale.warmup,
            )

        common = dict(
            experiment_id="t", title="t", x_label="x",
            x_values=[1.0, 3.0], config_for_x=config_for_x,
            policies=["ORR", "WRAN"], scale=scale, cache=None,
        )
        flat = run_policy_sweep(cell_batch=False, **common)
        cell = run_policy_sweep(cell_batch=True, **common)
        default = run_policy_sweep(**common)  # routes to cells
        for p in ("ORR", "WRAN"):
            np.testing.assert_array_equal(
                flat.series(p, "mean_response_ratio"),
                cell.series(p, "mean_response_ratio"),
            )
            np.testing.assert_array_equal(
                cell.series(p, "mean_response_ratio"),
                default.series(p, "mean_response_ratio"),
            )

    def test_cell_batch_rejects_hardening_knobs(self):
        from repro.experiments.base import Scale, run_policy_sweep

        scale = Scale("test", duration=5000.0, replications=1)
        with pytest.raises(ValueError, match="cell_batch"):
            run_policy_sweep(
                experiment_id="t", title="t", x_label="x", x_values=[1.0],
                config_for_x=lambda x: small_config(), policies=["ORR"],
                scale=scale, cache=None, cell_batch=True, retries=2,
            )
