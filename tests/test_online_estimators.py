"""Tests for the quasi-static service estimators (repro.metrics.online)
and the absolute (un-normalized) rate profiles that drive them.

Satellite coverage: EWMA/windowed estimators converge to the true λ and
sᵢ on stationary streams, and re-converge after a step change within
the configured window (windowed) or a bounded number of observations
(EWMA).  Everything is seeded and tolerance-based.
"""

import math

import numpy as np
import pytest

from repro.metrics.online import (
    EwmaEstimator,
    EwmaRateEstimator,
    LatencyStats,
    OnlineWorkloadEstimator,
    P2Quantile,
    ServerSpeedEstimator,
    WindowedRateEstimator,
)
from repro.sim.modulated import RateProfile, drift_profile, step_profile


# ----------------------------------------------------------------------
# EwmaEstimator
# ----------------------------------------------------------------------


def test_ewma_first_update_is_exact():
    e = EwmaEstimator(0.05)
    assert math.isnan(e.value)
    assert e.update(7.25) == pytest.approx(7.25)


def test_ewma_bias_correction_early_window():
    """Early estimates equal the weighted mean of data seen so far, not
    a zero-pulled value."""
    e = EwmaEstimator(0.01)
    for x in (4.0, 4.0, 4.0):
        e.update(x)
    assert e.value == pytest.approx(4.0)


def test_ewma_converges_on_stationary_stream():
    rng = np.random.default_rng(42)
    e = EwmaEstimator(0.02)
    for x in rng.exponential(2.0, size=5000):
        e.update(x)
    assert e.value == pytest.approx(2.0, rel=0.15)


def test_ewma_rejects_bad_weight():
    with pytest.raises(ValueError):
        EwmaEstimator(0.0)
    with pytest.raises(ValueError):
        EwmaEstimator(1.5)


# ----------------------------------------------------------------------
# Rate estimators: stationary convergence
# ----------------------------------------------------------------------


def _poisson_times(rate, horizon, rng):
    gaps = rng.exponential(1.0 / rate, size=int(rate * horizon * 2) + 50)
    times = np.cumsum(gaps)
    return times[times <= horizon]


def test_ewma_rate_converges_to_true_lambda():
    rng = np.random.default_rng(7)
    est = EwmaRateEstimator(0.01)
    for t in _poisson_times(5.0, 2000.0, rng):
        est.observe(t)
    assert est.rate() == pytest.approx(5.0, rel=0.1)


def test_windowed_rate_converges_to_true_lambda():
    rng = np.random.default_rng(11)
    est = WindowedRateEstimator(window=200.0)
    times = _poisson_times(5.0, 1000.0, rng)
    for t in times:
        est.observe(t)
    assert est.rate(1000.0) == pytest.approx(5.0, rel=0.1)


def test_windowed_rate_early_times_unbiased():
    """Before one full window has elapsed, divide by elapsed time."""
    est = WindowedRateEstimator(window=100.0)
    for t in np.arange(0.5, 10.0, 0.5):  # 2 events per unit time
        est.observe(t)
    assert est.rate(10.0) == pytest.approx(2.0, rel=0.06)


def test_windowed_rate_empty_window_reads_zero():
    est = WindowedRateEstimator(window=10.0)
    est.observe(1.0)
    assert est.rate(100.0) == 0.0


def test_rate_estimators_reject_decreasing_timestamps():
    for est in (EwmaRateEstimator(0.05), WindowedRateEstimator(10.0)):
        est.observe(5.0)
        with pytest.raises(ValueError):
            est.observe(4.0)


# ----------------------------------------------------------------------
# Re-convergence after a step change
# ----------------------------------------------------------------------


def test_windowed_rate_reconverges_within_one_window():
    """One window after the step, the old regime is fully forgotten."""
    rng = np.random.default_rng(3)
    window = 100.0
    est = WindowedRateEstimator(window=window)
    before = _poisson_times(2.0, 500.0, rng)
    after = 500.0 + _poisson_times(4.0, 500.0, rng)
    for t in np.concatenate([before, after]):
        est.observe(t)
    assert est.rate(500.0 + window) == pytest.approx(4.0, rel=0.15)
    assert est.rate(1000.0) == pytest.approx(4.0, rel=0.15)


def test_ewma_rate_reconverges_after_step():
    rng = np.random.default_rng(5)
    est = EwmaRateEstimator(0.02)
    before = _poisson_times(2.0, 500.0, rng)
    after = 500.0 + _poisson_times(4.0, 500.0, rng)
    for t in np.concatenate([before, after]):
        est.observe(t)
    # ~2000 post-step observations against a 1/0.02 = 50-sample memory.
    assert est.rate() == pytest.approx(4.0, rel=0.1)


# ----------------------------------------------------------------------
# Speed estimator and the facade
# ----------------------------------------------------------------------


def test_speed_estimator_converges_and_keeps_nominal():
    rng = np.random.default_rng(13)
    est = ServerSpeedEstimator([1.0, 2.5], weight=0.05)
    for size in rng.exponential(1.0, size=500):
        est.observe(0, size, size / 3.0)  # server 0 actually runs at 3.0
    speeds = est.speeds()
    assert speeds[0] == pytest.approx(3.0, rel=1e-9)
    assert speeds[1] == 2.5  # no observations: nominal passes through


def test_speed_estimator_rejects_bad_inputs():
    with pytest.raises(ValueError):
        ServerSpeedEstimator([1.0, -1.0])
    est = ServerSpeedEstimator([1.0])
    with pytest.raises(ValueError):
        est.observe(0, 1.0, 0.0)


def test_workload_estimator_snapshot_tracks_utilization():
    rng = np.random.default_rng(29)
    speeds = np.array([1.0, 2.0])
    est = OnlineWorkloadEstimator(speeds, window=200.0, ewma_weight=0.002)
    lam, mean_size = 4.0, 0.5
    times = _poisson_times(lam, 1000.0, rng)
    sizes = rng.exponential(mean_size, size=times.size)
    for i, (t, x) in enumerate(zip(times, sizes)):
        est.observe_arrival(t, x)
        est.observe_service(i % 2, x, x / speeds[i % 2])
    snap = est.snapshot(1000.0)
    assert snap.usable
    true_rho = lam * mean_size / speeds.sum()
    assert snap.arrival_rate == pytest.approx(lam, rel=0.1)
    assert snap.mean_size == pytest.approx(mean_size, rel=0.15)
    np.testing.assert_allclose(snap.speeds, speeds, rtol=1e-9)
    assert snap.utilization == pytest.approx(true_rho, rel=0.2)


def test_workload_estimator_empty_snapshot_not_usable():
    snap = OnlineWorkloadEstimator([1.0], window=10.0).snapshot(0.0)
    assert not snap.usable
    assert math.isnan(snap.utilization)


# ----------------------------------------------------------------------
# Absolute (un-normalized) rate profiles
# ----------------------------------------------------------------------


def test_rate_profile_normalize_false_keeps_absolute_multipliers():
    p = RateProfile([2.0, 4.0], 10.0, normalize=False)
    assert not p.normalized
    assert p.multiplier_at(5.0) == 2.0
    assert p.multiplier_at(15.0) == 4.0
    assert p.cumulative(20.0) == pytest.approx(60.0)
    assert p.inverse_cumulative(60.0) == pytest.approx(20.0)


def test_step_profile_single_step_no_wrap():
    p = step_profile(step_time=100.0, factor=2.0, horizon=350.0)
    assert p.multiplier_at(50.0) == 1.0
    for t in (150.0, 250.0, 349.0):
        assert p.multiplier_at(t) == 2.0
    assert p.period >= 350.0  # the step never repeats within the run
    assert p.cumulative(300.0) == pytest.approx(100.0 + 2.0 * 200.0)


def test_step_profile_validation():
    with pytest.raises(ValueError):
        step_profile(step_time=0.0, factor=2.0, horizon=10.0)
    with pytest.raises(ValueError):
        step_profile(step_time=10.0, factor=2.0, horizon=5.0)


def test_drift_profile_ramps_monotonically():
    p = drift_profile(1.0, 3.0, horizon=640.0, segments=64)
    samples = [p.multiplier_at(t) for t in np.linspace(1.0, 639.0, 64)]
    assert all(b >= a for a, b in zip(samples, samples[1:]))
    assert samples[0] == pytest.approx(1.0, abs=0.05)
    assert samples[-1] == pytest.approx(3.0, abs=0.05)


# ----------------------------------------------------------------------
# P2Quantile (streaming p-quantile, Jain & Chlamtac 1985)
# ----------------------------------------------------------------------


def test_p2_small_sample_is_exact_quantile():
    q = P2Quantile(0.5)
    assert math.isnan(q.value)
    for x in (5.0, 1.0, 3.0):
        q.update(x)
    data = np.array([5.0, 1.0, 3.0])
    assert q.value == pytest.approx(
        float(np.quantile(data, 0.5, method="linear"))
    )


def test_p2_median_converges_on_exponential_stream():
    rng = np.random.default_rng(7)
    data = rng.exponential(10.0, size=20_000)
    q = P2Quantile(0.5)
    for x in data:
        q.update(float(x))
    true = 10.0 * math.log(2.0)
    assert q.value == pytest.approx(true, rel=0.05)


def test_p2_p99_tracks_tail():
    rng = np.random.default_rng(11)
    data = rng.exponential(1.0, size=50_000)
    q = P2Quantile(0.99)
    for x in data:
        q.update(float(x))
    assert q.value == pytest.approx(float(np.quantile(data, 0.99)), rel=0.1)


def test_p2_state_round_trip_continues_identically():
    rng = np.random.default_rng(3)
    data = [float(x) for x in rng.exponential(2.0, size=500)]
    a = P2Quantile(0.9)
    for x in data[:200]:
        a.update(x)
    b = P2Quantile(0.9)
    b.load_state(a.state_dict())
    for x in data[200:]:
        a.update(x)
        b.update(x)
    assert a.value == b.value
    assert a.count == b.count


def test_p2_state_rejects_probability_mismatch():
    a = P2Quantile(0.5)
    b = P2Quantile(0.99)
    with pytest.raises(ValueError, match="0.5"):
        b.load_state(a.state_dict())


def test_p2_rejects_bad_probability():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


# ----------------------------------------------------------------------
# Membership-aware workload estimation
# ----------------------------------------------------------------------


def _feed(est, rate=1.0, horizon=400.0, size=2.0, seed=0):
    rng = np.random.default_rng(seed)
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate)
        if t > horizon:
            break
        est.observe_arrival(t, size)
    return horizon


def test_membership_mask_shrinks_capacity():
    speeds = np.array([1.0, 2.0, 3.0])
    est = OnlineWorkloadEstimator(speeds, window=100.0)
    now = _feed(est, rate=1.0, size=2.0)
    full = est.snapshot(now)
    est.set_membership(np.array([True, True, False]))
    masked = est.snapshot(now)
    # Same offered load over half the capacity: utilization doubles.
    assert masked.utilization == pytest.approx(2.0 * full.utilization, rel=1e-9)
    assert masked.up is not None and not masked.up[2]
    # Speeds over survivors only must still be present for the solver.
    assert masked.usable


def test_membership_all_up_restores_full_capacity():
    speeds = np.array([1.0, 2.0, 3.0])
    est = OnlineWorkloadEstimator(speeds, window=100.0)
    now = _feed(est)
    full = est.snapshot(now)
    est.set_membership(np.array([True, False, True]))
    est.set_membership(np.array([True, True, True]))
    again = est.snapshot(now)
    assert again.utilization == full.utilization
    assert again.up is None


def test_membership_mask_shape_is_validated():
    est = OnlineWorkloadEstimator(np.array([1.0, 2.0]), window=50.0)
    with pytest.raises(ValueError):
        est.set_membership(np.array([True, True, False]))


def test_estimator_state_round_trip_continues_identically():
    speeds = np.array([1.0, 2.0, 3.0])
    a = OnlineWorkloadEstimator(speeds, window=100.0)
    _feed(a, horizon=200.0)
    a.observe_service(1, 2.0, 1.1)
    b = OnlineWorkloadEstimator(speeds, window=100.0)
    b.load_state(a.state_dict())
    for est in (a, b):
        est.observe_arrival(201.0, 2.0)
        est.observe_service(2, 3.0, 1.2)
    sa, sb = a.snapshot(210.0), b.snapshot(210.0)
    assert sa.arrival_rate == sb.arrival_rate
    assert sa.utilization == sb.utilization
    assert np.array_equal(sa.speeds, sb.speeds)


# ---------------------------------------------------------------------------
# LatencyStats (dispatch-plane wall-clock accounting)
# ---------------------------------------------------------------------------


def test_latency_stats_amortizes_over_jobs():
    ls = LatencyStats()
    ls.observe(0.002, jobs=100)
    ls.observe(0.001, jobs=50)
    assert ls.windows.count == 2
    assert ls.jobs == 150
    assert ls.total_seconds == pytest.approx(0.003)
    assert ls.ns_per_job == pytest.approx(0.003 * 1e9 / 150)


def test_latency_stats_empty_is_nan_not_zero():
    ls = LatencyStats()
    assert math.isnan(ls.ns_per_job)
    ls.observe(0.5, jobs=0)  # an empty window costs time but covers no jobs
    assert math.isnan(ls.ns_per_job)
    assert ls.total_seconds == 0.5


def test_latency_stats_rejects_negative_time():
    ls = LatencyStats()
    with pytest.raises(ValueError):
        ls.observe(-1e-9, jobs=1)


def test_latency_stats_as_dict_is_json_ready():
    import json

    ls = LatencyStats()
    for k in range(20):
        ls.observe(0.001 * (k + 1), jobs=10)
    d = ls.as_dict()
    json.dumps(d)  # must not raise
    assert d["windows"] == 20
    assert d["jobs"] == 200
    assert d["window_p50_s"] <= d["window_p99_s"]
