"""Tests for the queueing-theory substrate (repro.queueing)."""

import numpy as np
import pytest

from repro.distributions import BoundedPareto, Deterministic, Exponential, paper_job_sizes
from repro.queueing import (
    MG1,
    MM1,
    GG1Approximation,
    HeterogeneousNetwork,
    allen_cunneen_waiting_time,
    kingman_waiting_time,
    objective_gradient,
    objective_value,
    ps_conditional_response,
    require_stable,
    response_time_from_objective,
    theoretical_minimum,
    validate_allocation,
)

from .conftest import make_network


class TestMM1:
    def test_mean_response_time(self):
        q = MM1(arrival_rate=0.5, service_rate=1.0)
        assert q.mean_response_time == pytest.approx(2.0)

    def test_mean_response_ratio_equation_2(self):
        q = MM1(arrival_rate=0.7, service_rate=1.0)
        assert q.mean_response_ratio == pytest.approx(1.0 / 0.3)

    def test_littles_law(self):
        q = MM1(arrival_rate=0.6, service_rate=1.0)
        assert q.mean_number_in_system == pytest.approx(
            q.arrival_rate * q.mean_response_time
        )

    def test_fcfs_waiting(self):
        q = MM1(arrival_rate=0.5, service_rate=1.0)
        assert q.mean_waiting_time_fcfs == pytest.approx(1.0)
        assert q.mean_waiting_time_fcfs + 1.0 == pytest.approx(q.mean_response_time)

    def test_conditional_ps(self):
        q = MM1(arrival_rate=0.5, service_rate=1.0)
        assert q.conditional_response_ps(3.0) == pytest.approx(6.0)

    def test_unstable_raises(self):
        q = MM1(arrival_rate=2.0, service_rate=1.0)
        assert not q.stable
        with pytest.raises(ValueError, match="unstable"):
            _ = q.mean_response_time

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            MM1(arrival_rate=-1.0, service_rate=1.0)
        with pytest.raises(ValueError):
            MM1(arrival_rate=1.0, service_rate=0.0)

    def test_helpers(self):
        assert require_stable(0.5) == 0.5
        with pytest.raises(ValueError):
            require_stable(1.0)
        assert ps_conditional_response(2.0, 0.5) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            ps_conditional_response(-1.0, 0.5)


class TestMG1:
    def test_pk_formula_exponential_matches_mm1(self):
        lam, mu = 0.5, 1.0
        mg1 = MG1(arrival_rate=lam, service=Exponential(mu))
        mm1 = MM1(arrival_rate=lam, service_rate=mu)
        assert mg1.mean_waiting_time_fcfs == pytest.approx(mm1.mean_waiting_time_fcfs)

    def test_pk_deterministic_is_half_exponential_wait(self):
        lam = 0.5
        exp_wait = MG1(arrival_rate=lam, service=Exponential(1.0)).mean_waiting_time_fcfs
        det_wait = MG1(arrival_rate=lam, service=Deterministic(1.0)).mean_waiting_time_fcfs
        assert det_wait == pytest.approx(exp_wait / 2.0)

    def test_ps_insensitivity(self):
        """PS mean response depends on the service mean only."""
        lam = 0.005
        heavy = MG1(arrival_rate=lam, service=paper_job_sizes())
        light = MG1(arrival_rate=lam, service=Exponential.from_mean(76.8))
        assert heavy.mean_response_time_ps == pytest.approx(
            light.mean_response_time_ps, rel=1e-3
        )

    def test_ps_response_ratio(self):
        q = MG1(arrival_rate=0.005, service=paper_job_sizes())
        assert q.mean_response_ratio_ps == pytest.approx(1.0 / (1.0 - q.rho))

    def test_fcfs_much_worse_than_ps_for_heavy_tails(self):
        q = MG1(arrival_rate=0.008, service=paper_job_sizes())
        assert q.fcfs_to_ps_response_ratio > 5.0

    def test_conditional_ps(self):
        q = MG1(arrival_rate=0.005, service=paper_job_sizes())
        assert q.conditional_response_ps(100.0) == pytest.approx(100.0 / (1.0 - q.rho))
        with pytest.raises(ValueError):
            q.conditional_response_ps(-1.0)

    def test_unstable_raises(self):
        q = MG1(arrival_rate=1.0, service=paper_job_sizes())
        with pytest.raises(ValueError, match="unstable"):
            _ = q.mean_response_time_ps


class TestGG1:
    def test_reduces_to_mm1(self):
        lam, mu = 0.5, 1.0
        w = kingman_waiting_time(lam, mu, ca2=1.0, cs2=1.0)
        assert w == pytest.approx(MM1(lam, mu).mean_waiting_time_fcfs)

    def test_alias(self):
        assert allen_cunneen_waiting_time(0.5, 1.0, 2.0, 3.0) == pytest.approx(
            kingman_waiting_time(0.5, 1.0, 2.0, 3.0)
        )

    def test_burstiness_scales_waiting(self):
        calm = kingman_waiting_time(0.5, 1.0, 1.0, 1.0)
        bursty = kingman_waiting_time(0.5, 1.0, 9.0, 1.0)
        assert bursty == pytest.approx(5.0 * calm)

    def test_dataclass(self):
        q = GG1Approximation(0.5, 1.0, ca2=9.0, cs2=1.0)
        assert q.burstiness_multiplier == pytest.approx(5.0)
        assert q.mean_response_time == pytest.approx(q.mean_waiting_time + 1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="unstable"):
            kingman_waiting_time(1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="non-negative"):
            kingman_waiting_time(0.5, 1.0, -1.0, 1.0)


class TestValidateAllocation:
    def test_valid(self):
        a = validate_allocation([0.25, 0.75])
        np.testing.assert_allclose(a, [0.25, 0.75])

    def test_sum_violation(self):
        with pytest.raises(ValueError, match="sum to 1"):
            validate_allocation([0.5, 0.6])

    def test_range_violation(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            validate_allocation([-0.2, 1.2])

    def test_shape_violation(self):
        with pytest.raises(ValueError, match="1-D"):
            validate_allocation([[0.5, 0.5]])

    def test_clips_rounding_dust(self):
        a = validate_allocation([1.0 + 1e-12, -1e-12])
        assert a[0] <= 1.0 and a[1] >= 0.0


class TestHeterogeneousNetwork:
    def test_utilization_arrival_rate_roundtrip(self):
        net = make_network([1, 2, 3], utilization=0.6)
        assert net.utilization == pytest.approx(0.6)
        net2 = HeterogeneousNetwork([1, 2, 3], mu=1.0, arrival_rate=net.arrival_rate)
        assert net2.utilization == pytest.approx(0.6)

    def test_requires_exactly_one_load_spec(self):
        with pytest.raises(ValueError, match="exactly one"):
            HeterogeneousNetwork([1.0], mu=1.0)
        with pytest.raises(ValueError, match="exactly one"):
            HeterogeneousNetwork([1.0], mu=1.0, arrival_rate=0.5, utilization=0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError, match="positive"):
            HeterogeneousNetwork([0.0, 1.0], utilization=0.5)
        with pytest.raises(ValueError, match="mu"):
            HeterogeneousNetwork([1.0], mu=0.0, utilization=0.5)
        with pytest.raises(ValueError, match="utilization"):
            HeterogeneousNetwork([1.0], utilization=1.5)
        with pytest.raises(ValueError, match="non-empty"):
            HeterogeneousNetwork([], utilization=0.5)

    def test_capacity(self):
        net = HeterogeneousNetwork([2, 3], mu=0.5, utilization=0.5)
        assert net.capacity == pytest.approx(2.5)
        assert net.arrival_rate == pytest.approx(1.25)

    def test_per_server_response_time_equation(self):
        """T̄ᵢ = 1/(sᵢμ − αᵢλ) per the paper."""
        net = make_network([1, 4], utilization=0.5)
        alphas = np.array([0.2, 0.8])
        t = net.per_server_response_time(alphas)
        lam = net.arrival_rate
        np.testing.assert_allclose(
            t, [1.0 / (1.0 - 0.2 * lam), 1.0 / (4.0 - 0.8 * lam)]
        )

    def test_response_ratio_is_mu_times_time(self):
        net = HeterogeneousNetwork([1, 4], mu=2.0, utilization=0.5)
        a = [0.3, 0.7]
        assert net.mean_response_ratio(a) == pytest.approx(
            2.0 * net.mean_response_time(a)
        )

    def test_zero_share_servers_have_nan_response(self):
        net = make_network([1, 4], utilization=0.5)
        t = net.per_server_response_time([0.0, 1.0])
        assert np.isnan(t[0])
        assert np.isfinite(t[1])

    def test_saturating_allocation_raises(self):
        net = make_network([1, 1], utilization=0.9)
        # all load on one unit-speed server: alpha*lambda = 1.8 > 1
        with pytest.raises(ValueError, match="saturates"):
            net.mean_response_time([1.0, 0.0])

    def test_per_server_utilization(self):
        net = make_network([1, 3], utilization=0.5)
        rho = net.per_server_utilization([0.25, 0.75])
        np.testing.assert_allclose(rho, [0.25 * 2.0, 0.75 * 2.0 / 3.0])

    def test_with_utilization(self):
        net = make_network([1, 2], utilization=0.5)
        net2 = net.with_utilization(0.8)
        assert net2.utilization == pytest.approx(0.8)
        np.testing.assert_array_equal(net2.speeds, net.speeds)

    def test_mismatched_allocation_size(self):
        net = make_network([1, 2], utilization=0.5)
        with pytest.raises(ValueError, match="entries"):
            net.mean_response_time([1.0])


class TestObjective:
    def test_value_matches_definition(self):
        net = make_network([1, 2], utilization=0.5)
        a = np.array([0.3, 0.7])
        lam = net.arrival_rate
        expected = 1.0 / (1.0 - 0.3 * lam) + 2.0 / (2.0 - 0.7 * lam)
        assert objective_value(net, a) == pytest.approx(expected)

    def test_gradient_matches_finite_differences(self):
        net = make_network([1, 2, 5], utilization=0.6)
        a = np.array([0.1, 0.3, 0.6])
        g = objective_gradient(net, a)
        eps = 1e-7
        for i in range(3):
            # Perturb along a sum-preserving direction is not needed for
            # the raw partial derivative check; renormalization is not
            # applied by objective_value given both inputs sum to 1.
            up = a.copy()
            dn = a.copy()
            up[i] += eps
            dn[i] -= eps
            up /= up.sum()
            dn /= dn.sum()
            # Compare the directional derivative along (e_i - a)/1 style
            # renormalized move with the analytic one.
            num = (objective_value(net, up) - objective_value(net, dn)) / 2
            direction = np.zeros(3)
            direction[i] = 1.0
            direction = (direction - a) * eps / (1.0 + eps)
            ana = float(g @ direction)
            assert num == pytest.approx(ana, rel=1e-3)

    def test_response_time_recovery(self):
        net = make_network([1, 2], utilization=0.5)
        a = [0.3, 0.7]
        f = objective_value(net, a)
        assert response_time_from_objective(net, f) == pytest.approx(
            net.mean_response_time(a)
        )

    def test_theoretical_minimum_formula(self):
        net = make_network([4, 9], utilization=0.5)
        rates = net.service_rates()
        expected = (np.sqrt(rates).sum()) ** 2 / (rates.sum() - net.arrival_rate)
        assert theoretical_minimum(net) == pytest.approx(expected)

    def test_theoretical_minimum_unstable(self):
        net = HeterogeneousNetwork([1.0], mu=1.0, arrival_rate=2.0)
        with pytest.raises(ValueError, match="saturated"):
            theoretical_minimum(net)

    def test_saturating_allocation_raises(self):
        net = make_network([1, 1], utilization=0.9)
        with pytest.raises(ValueError, match="saturates"):
            objective_value(net, [1.0, 0.0])
