"""Theory-oracle tolerance tests: simulation vs the closed-form model.

The paper's equations 1-3 give the M/G/1-PS prediction for a static
split: per-server utilization ``rho_i = alpha_i * lambda / (s_i * mu)``
and mean response time ``E[T] = sum alpha_i / (s_i*mu - alpha_i*lambda)``.
With Poisson arrivals (cv=1) the model is exact for *random* splitting;
round-robin policies hand each server a strictly smoother (Erlang-thinned)
arrival stream, so their simulated response times fall **below** the
prediction — the model is a certified upper bound, and the zero-waiting
service time ``sum alpha_i / (s_i*mu)`` a certified lower bound.  The
oracle checks are therefore directional with CI-based slack rather than
symmetric:

    floor - CI  <=  measured  <=  predicted + CI

Utilization has no such smoothing sensitivity (it is a pure rate
balance), so it is checked tightly on both sides.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import get_policy
from repro.core.evaluate import evaluate_policy, run_policy_once
from repro.distributions import Exponential
from repro.experiments.configs import skewness_config
from repro.sim import SimulationConfig

#: Two skew points of the Figure 3 system (2 fast + 16 slow, rho=0.7).
SKEWS = (2.0, 10.0)
POLICIES = ("ORR", "WRR")


def _oracle_config(skew: float) -> SimulationConfig:
    base = skewness_config(skew, 0.7)
    # Exponential sizes + Poisson arrivals: the regime where eq. 1-3 are
    # an exact M/M/1-PS model (for random splitting), so every deviation
    # is attributable to the policy's arrival smoothing, not tail noise.
    return SimulationConfig(
        speeds=base.speeds, utilization=0.7,
        duration=1.0e4, warmup=2.5e3,
        size_distribution=Exponential(1.0), arrival_cv=1.0,
    )


@pytest.mark.parametrize("skew", SKEWS)
@pytest.mark.parametrize("policy_name", POLICIES)
class TestResponseTimeOracle:
    def test_measured_between_service_floor_and_prediction(
        self, skew, policy_name
    ):
        config = _oracle_config(skew)
        network = config.network()
        policy = get_policy(policy_name)
        alphas = policy.fractions(network)
        predicted = network.mean_response_time(alphas)
        floor = float(np.sum(alphas / (network.speeds * network.mu)))
        assert floor < predicted

        ev = evaluate_policy(config, policy, replications=4, base_seed=2000)
        measured = ev.mean_response_time.mean
        ci = ev.mean_response_time.half_width
        assert floor - ci <= measured, (
            f"measured {measured:.4f} below the zero-waiting floor "
            f"{floor:.4f} (CI {ci:.4f})"
        )
        assert measured <= predicted + ci, (
            f"measured {measured:.4f} above the M/G/1-PS prediction "
            f"{predicted:.4f} (CI {ci:.4f}) — RR smoothing should only "
            "ever reduce response time"
        )

    def test_round_robin_strictly_beats_the_poisson_model(
        self, skew, policy_name
    ):
        """RR's Erlang-thinned arrivals buy a real, CI-resolvable gain."""
        config = _oracle_config(skew)
        network = config.network()
        policy = get_policy(policy_name)
        predicted = network.mean_response_time(policy.fractions(network))
        ev = evaluate_policy(config, policy, replications=4, base_seed=2000)
        assert ev.mean_response_time.mean + ev.mean_response_time.half_width \
            < predicted


@pytest.mark.parametrize("skew", SKEWS)
@pytest.mark.parametrize("policy_name", POLICIES)
def test_per_server_utilization_matches_equation_one(skew, policy_name):
    """rho_i = alpha_i * lambda / (s_i * mu), tight on both sides."""
    config = _oracle_config(skew)
    network = config.network()
    policy = get_policy(policy_name)
    predicted = network.per_server_utilization(policy.fractions(network))
    result = run_policy_once(config, policy, seed=2000)
    np.testing.assert_allclose(
        result.per_server_utilization, predicted, atol=0.05
    )
