"""Tests for the distribution families (repro.distributions)."""

import math

import numpy as np
import pytest

from repro.distributions import (
    BoundedPareto,
    Deterministic,
    Erlang,
    Exponential,
    Hyperexponential,
    Scaled,
    Uniform,
    check_cv_achievable,
    distribution_from_mean_cv,
    fit_h2_balanced_means,
    paper_job_sizes,
)

N_SAMPLES = 200_000


def sample_mean_cv(dist, rng, n=N_SAMPLES):
    xs = np.asarray(dist.sample(rng, n))
    m = xs.mean()
    return m, xs.std() / m


class TestExponential:
    def test_moments(self):
        d = Exponential(0.5)
        assert d.mean == pytest.approx(2.0)
        assert d.second_moment == pytest.approx(8.0)
        assert d.variance == pytest.approx(4.0)
        assert d.cv == pytest.approx(1.0)

    def test_from_mean(self):
        assert Exponential.from_mean(4.0).rate == pytest.approx(0.25)

    def test_invalid_rate(self):
        with pytest.raises(ValueError, match="positive"):
            Exponential(0.0)
        with pytest.raises(ValueError, match="positive"):
            Exponential.from_mean(-1.0)

    def test_cdf_ppf_roundtrip(self):
        d = Exponential(1.7)
        q = np.linspace(0.01, 0.99, 25)
        np.testing.assert_allclose(d.cdf(d.ppf(q)), q, rtol=1e-12)

    def test_cdf_negative_is_zero(self):
        assert Exponential(1.0).cdf(-1.0) == 0.0

    def test_scalar_ppf_returns_float(self):
        assert isinstance(Exponential(1.0).ppf(0.5), float)

    def test_sampling_statistics(self, rng):
        m, cv = sample_mean_cv(Exponential(0.25), rng)
        assert m == pytest.approx(4.0, rel=0.02)
        assert cv == pytest.approx(1.0, rel=0.02)


class TestErlang:
    def test_moments(self):
        d = Erlang(4, 2.0)
        assert d.mean == pytest.approx(2.0)
        assert d.variance == pytest.approx(1.0)
        assert d.cv == pytest.approx(0.5)

    def test_from_mean_k(self):
        d = Erlang.from_mean_k(10.0, 9)
        assert d.mean == pytest.approx(10.0)
        assert d.cv == pytest.approx(1.0 / 3.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="positive integer"):
            Erlang(0, 1.0)
        with pytest.raises(ValueError, match="positive"):
            Erlang(2, -1.0)

    def test_cdf_ppf_roundtrip(self):
        d = Erlang(3, 1.0)
        q = np.linspace(0.05, 0.95, 10)
        np.testing.assert_allclose(d.cdf(d.ppf(q)), q, rtol=1e-9)

    def test_sampling_statistics(self, rng):
        m, cv = sample_mean_cv(Erlang(4, 0.8), rng)
        assert m == pytest.approx(5.0, rel=0.02)
        assert cv == pytest.approx(0.5, rel=0.02)


class TestDeterministic:
    def test_moments(self):
        d = Deterministic(3.0)
        assert d.mean == 3.0
        assert d.variance == pytest.approx(0.0)
        assert d.cv == pytest.approx(0.0)

    def test_samples_are_constant(self, rng):
        xs = Deterministic(2.5).sample(rng, 100)
        np.testing.assert_array_equal(xs, np.full(100, 2.5))

    def test_cdf_step(self):
        d = Deterministic(2.0)
        assert d.cdf(1.9) == 0.0
        assert d.cdf(2.0) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            Deterministic(0.0)


class TestUniform:
    def test_moments(self):
        d = Uniform(0.0, 1.0)
        assert d.mean == pytest.approx(0.5)
        assert d.second_moment == pytest.approx(1.0 / 3.0)
        assert d.std == pytest.approx(1.0 / math.sqrt(12.0))

    def test_invalid_bounds(self):
        with pytest.raises(ValueError, match="lo < hi"):
            Uniform(1.0, 1.0)
        with pytest.raises(ValueError, match="non-negative"):
            Uniform(-1.0, 1.0)

    def test_cdf_clipping(self):
        d = Uniform(1.0, 3.0)
        assert d.cdf(0.0) == 0.0
        assert d.cdf(4.0) == 1.0
        assert d.cdf(2.0) == pytest.approx(0.5)

    def test_ppf(self):
        d = Uniform(2.0, 6.0)
        assert d.ppf(0.25) == pytest.approx(3.0)


class TestHyperexponential:
    def test_balanced_means_fit_formulas(self):
        p1, r1, r2 = fit_h2_balanced_means(2.0, 3.0)
        # balanced means: each branch contributes half the mean
        assert p1 / r1 == pytest.approx((1 - p1) / r2)
        assert p1 / r1 + (1 - p1) / r2 == pytest.approx(2.0)

    @pytest.mark.parametrize("mean,cv", [(1.0, 1.0), (2.2, 3.0), (76.8, 2.64), (0.5, 10.0)])
    def test_fit_matches_target_moments(self, mean, cv):
        d = Hyperexponential.from_mean_cv(mean, cv)
        assert d.mean == pytest.approx(mean, rel=1e-12)
        assert d.cv == pytest.approx(cv, rel=1e-9)

    def test_cv_below_one_rejected(self):
        with pytest.raises(ValueError, match="cv < 1"):
            Hyperexponential.from_mean_cv(1.0, 0.8)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Hyperexponential(1.5, 1.0, 2.0)

    def test_invalid_rates(self):
        with pytest.raises(ValueError, match="rates"):
            Hyperexponential(0.5, -1.0, 2.0)

    def test_cdf_ppf_roundtrip(self):
        d = Hyperexponential.from_mean_cv(2.2, 3.0)
        q = np.linspace(0.0, 0.999, 40)
        np.testing.assert_allclose(d.cdf(d.ppf(q)), q, atol=1e-12)

    def test_ppf_rejects_bad_quantiles(self):
        d = Hyperexponential.from_mean_cv(1.0, 2.0)
        with pytest.raises(ValueError):
            d.ppf(1.0)
        with pytest.raises(ValueError):
            d.ppf(-0.1)

    def test_ppf_scalar(self):
        d = Hyperexponential.from_mean_cv(1.0, 2.0)
        x = d.ppf(0.5)
        assert isinstance(x, float)
        assert d.cdf(x) == pytest.approx(0.5, abs=1e-12)

    def test_sampling_statistics(self, rng):
        d = Hyperexponential.from_mean_cv(2.2, 3.0)
        m, cv = sample_mean_cv(d, rng, n=500_000)
        assert m == pytest.approx(2.2, rel=0.03)
        assert cv == pytest.approx(3.0, rel=0.05)

    def test_paper_arrival_cv(self):
        """Section 4.1 sets the inter-arrival CV to 3.0."""
        d = Hyperexponential.from_mean_cv(1.0, 3.0)
        assert d.scv == pytest.approx(9.0)


class TestBoundedPareto:
    def test_paper_mean_is_76_8_seconds(self):
        """Section 4.1: k=10, p=21600, alpha=1 gives average size 76.8 s."""
        assert paper_job_sizes().mean == pytest.approx(76.8, abs=0.05)

    def test_moment_log_case(self):
        d = BoundedPareto(10.0, 21600.0, 1.0)
        expected = (1.0 * 10.0 / (1 - 10.0 / 21600.0)) * math.log(21600.0 / 10.0)
        assert d.moment(1.0) == pytest.approx(expected, rel=1e-12)

    def test_moment_general_case_vs_quadrature(self):
        from scipy import integrate

        d = BoundedPareto(1.0, 100.0, 1.5)
        norm = 1 - (d.k / d.p) ** d.alpha

        def pdf(x):
            return d.alpha * d.k**d.alpha / norm * x ** (-d.alpha - 1)

        for j in (1.0, 2.0):
            num, _ = integrate.quad(lambda x: x**j * pdf(x), d.k, d.p)
            assert d.moment(j) == pytest.approx(num, rel=1e-8)

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="0 < k < p"):
            BoundedPareto(10.0, 5.0, 1.0)
        with pytest.raises(ValueError, match="alpha"):
            BoundedPareto(1.0, 2.0, 0.0)

    def test_cdf_bounds(self):
        d = paper_job_sizes()
        assert d.cdf(d.k) == pytest.approx(0.0)
        assert d.cdf(d.p) == pytest.approx(1.0)
        assert d.cdf(5.0) == 0.0
        assert d.cdf(1e9) == 1.0

    def test_ppf_cdf_roundtrip(self):
        d = paper_job_sizes()
        q = np.linspace(0.0, 1.0, 50)
        np.testing.assert_allclose(d.cdf(d.ppf(q)), q, atol=1e-10)

    def test_ppf_within_bounds(self, rng):
        d = paper_job_sizes()
        xs = d.sample(rng, 10_000)
        assert xs.min() >= d.k
        assert xs.max() <= d.p

    def test_ppf_rejects_bad_quantiles(self):
        with pytest.raises(ValueError):
            paper_job_sizes().ppf(1.5)

    def test_sampling_mean(self, rng):
        # alpha=1 heavy tail converges slowly; generous tolerance.
        xs = paper_job_sizes().sample(rng, 2_000_000)
        assert xs.mean() == pytest.approx(76.8, rel=0.05)

    def test_heavy_tail_load_share(self):
        """A small fraction of huge jobs carries a large load share."""
        d = paper_job_sizes()
        big = 1000.0
        prob_big = 1.0 - d.cdf(big)
        share_big = d.load_share_above(big)
        assert prob_big < 0.01
        assert share_big > 0.3

    def test_load_share_monotone_and_bounded(self):
        d = paper_job_sizes()
        xs = np.linspace(d.k, d.p, 20)
        shares = [d.load_share_above(x) for x in xs]
        assert shares[0] == pytest.approx(1.0)
        assert shares[-1] == pytest.approx(0.0, abs=1e-12)
        assert all(a >= b - 1e-12 for a, b in zip(shares, shares[1:]))

    def test_load_share_above_edges(self):
        d = paper_job_sizes()
        assert d.load_share_above(1.0) == 1.0
        assert d.load_share_above(1e9) == 0.0

    def test_load_share_general_alpha(self):
        d = BoundedPareto(1.0, 1000.0, 1.5)
        # Work above k is all the work.
        assert d.load_share_above(d.k) == pytest.approx(1.0)
        mid = d.load_share_above(10.0)
        assert 0.0 < mid < 1.0


class TestScaled:
    def test_moments(self):
        d = Scaled(Exponential(1.0), 3.0)
        assert d.mean == pytest.approx(3.0)
        assert d.cv == pytest.approx(1.0)

    def test_ppf_cdf(self):
        d = Exponential(1.0).scaled(2.0)
        assert d.cdf(d.ppf(0.3)) == pytest.approx(0.3)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            Exponential(1.0).scaled(0.0)


class TestFitting:
    def test_cv_zero_gives_deterministic(self):
        assert isinstance(distribution_from_mean_cv(2.0, 0.0), Deterministic)

    def test_cv_one_gives_exponential(self):
        assert isinstance(distribution_from_mean_cv(2.0, 1.0), Exponential)

    def test_cv_above_one_gives_h2(self):
        d = distribution_from_mean_cv(2.0, 3.0)
        assert isinstance(d, Hyperexponential)
        assert d.mean == pytest.approx(2.0)
        assert d.cv == pytest.approx(3.0)

    def test_cv_below_one_gives_erlang(self):
        d = distribution_from_mean_cv(2.0, 0.5)
        assert isinstance(d, Erlang)
        assert d.k == 4
        assert d.mean == pytest.approx(2.0)
        assert d.cv == pytest.approx(0.5)

    def test_mean_always_exact(self):
        for cv in (0.0, 0.3, 0.5, 1.0, 2.0, 5.0):
            assert distribution_from_mean_cv(7.7, cv).mean == pytest.approx(7.7)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            distribution_from_mean_cv(0.0, 1.0)
        with pytest.raises(ValueError):
            distribution_from_mean_cv(1.0, -0.5)

    def test_check_cv_achievable(self):
        assert check_cv_achievable(0.0)
        assert check_cv_achievable(1.0)
        assert check_cv_achievable(3.0)
        assert check_cv_achievable(0.5)  # Erlang-4
        assert not check_cv_achievable(0.7)  # 1/0.49 not integral
        assert not check_cv_achievable(-1.0)
