"""Tests for the vectorized static-policy path and engine equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import get_policy, run_policy_once
from repro.dispatch import CyclicDispatcher, LeastLoadDispatcher, RandomDispatcher
from repro.distributions import Exponential
from repro.rng import substream
from repro.sim import (
    SimulationConfig,
    fcfs_replay,
    ps_replay,
    run_simulation,
    run_static_simulation,
)
from repro.sim.fastpath import _fcfs_replay_loop, _ps_replay_loop


def _substream_strategy():
    """(arrival_times, sizes) pairs: bursty arrivals, wide size range."""
    return st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5.0),  # inter-arrival gaps
            st.floats(min_value=1e-3, max_value=50.0),  # job sizes
        ),
        min_size=1,
        max_size=60,
    ).map(
        lambda pairs: (
            np.cumsum([g for g, _ in pairs]),
            np.array([s for _, s in pairs]),
        )
    )


class TestPsReplay:
    def test_single_job(self):
        out = ps_replay(np.array([1.0]), np.array([4.0]), 2.0)
        np.testing.assert_allclose(out, [3.0])

    def test_hand_computed_sharing(self):
        # Same scenario as the server test: sizes 2 and 4 at t=0, speed 1.
        out = ps_replay(np.array([0.0, 0.0]), np.array([2.0, 4.0]), 1.0)
        np.testing.assert_allclose(out, [4.0, 6.0])

    def test_late_arrival(self):
        out = ps_replay(np.array([0.0, 1.0]), np.array([3.0, 1.0]), 1.0)
        np.testing.assert_allclose(out, [4.0, 3.0])

    def test_empty(self):
        assert ps_replay(np.empty(0), np.empty(0), 1.0).size == 0

    def test_idle_gap_resets(self):
        out = ps_replay(np.array([0.0, 100.0]), np.array([1.0, 1.0]), 1.0)
        np.testing.assert_allclose(out, [1.0, 101.0])

    def test_completions_bounded_below_by_solo_time(self, rng):
        n = 500
        times = np.sort(rng.random(n) * 100.0)
        sizes = rng.random(n) + 0.05
        out = ps_replay(times, sizes, 2.0)
        assert np.all(out >= times + sizes / 2.0 - 1e-12)

    def test_matches_event_server(self, rng):
        """ps_replay equals the event-driven PS server on random input."""
        from repro.sim import Job, ProcessorSharingServer

        n = 300
        times = np.sort(rng.random(n) * 50.0)
        sizes = rng.random(n) * 2.0 + 0.01
        replay = ps_replay(times, sizes, 1.5)

        server = ProcessorSharingServer(1.5)
        completions = np.empty(n)
        idx = 0
        while idx < n or server.n_active:
            nxt = server.next_event_time()
            if idx < n and (nxt is None or times[idx] < nxt):
                server.arrive(Job(idx, float(times[idx]), float(sizes[idx])), float(times[idx]))
                idx += 1
            else:
                job = server.on_event(nxt)
                completions[job.job_id] = nxt
        np.testing.assert_allclose(replay, completions, rtol=1e-9, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError, match="align"):
            ps_replay(np.array([1.0]), np.array([1.0, 2.0]), 1.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            ps_replay(np.array([2.0, 1.0]), np.array([1.0, 1.0]), 1.0)
        with pytest.raises(ValueError, match="positive"):
            ps_replay(np.array([1.0]), np.array([0.0]), 1.0)
        with pytest.raises(ValueError, match="speed"):
            ps_replay(np.array([1.0]), np.array([1.0]), 0.0)

    @settings(max_examples=60, deadline=None)
    @given(sub=_substream_strategy(), speed=st.floats(min_value=0.1, max_value=10.0))
    def test_matches_reference_loop(self, sub, speed):
        """Busy-period-segmented replay == the per-event reference loop."""
        times, sizes = sub
        np.testing.assert_allclose(
            ps_replay(times, sizes, speed),
            _ps_replay_loop(times, sizes, speed),
            rtol=1e-9,
            atol=1e-9,
        )


class TestFcfsReplay:
    def test_single_job(self):
        np.testing.assert_allclose(
            fcfs_replay(np.array([1.0]), np.array([4.0]), 2.0), [3.0]
        )

    def test_queueing_chain(self):
        # Three jobs back to back: each waits for its predecessors.
        out = fcfs_replay(np.array([0.0, 0.0, 1.0]), np.array([2.0, 2.0, 2.0]), 1.0)
        np.testing.assert_allclose(out, [2.0, 4.0, 6.0])

    def test_idle_gap_resets(self):
        out = fcfs_replay(np.array([0.0, 100.0]), np.array([1.0, 1.0]), 1.0)
        np.testing.assert_allclose(out, [1.0, 101.0])

    def test_empty(self):
        assert fcfs_replay(np.empty(0), np.empty(0), 1.0).size == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            fcfs_replay(np.array([2.0, 1.0]), np.array([1.0, 1.0]), 1.0)
        with pytest.raises(ValueError, match="speed"):
            fcfs_replay(np.array([1.0]), np.array([1.0]), -1.0)

    @settings(max_examples=100, deadline=None)
    @given(sub=_substream_strategy(), speed=st.floats(min_value=0.1, max_value=10.0))
    def test_lindley_matches_reference_loop(self, sub, speed):
        """The prefix-max Lindley recursion == the per-job reference loop."""
        times, sizes = sub
        np.testing.assert_allclose(
            fcfs_replay(times, sizes, speed),
            _fcfs_replay_loop(times, sizes, speed),
            rtol=1e-9,
            atol=1e-9,
        )

    def test_departures_ordered_and_bounded(self, rng):
        n = 500
        times = np.sort(rng.random(n) * 100.0)
        sizes = rng.random(n) + 0.05
        out = fcfs_replay(times, sizes, 2.0)
        # FCFS departures are non-decreasing and no job beats its solo time.
        assert np.all(np.diff(out) >= -1e-12)
        assert np.all(out >= times + sizes / 2.0 - 1e-12)


class TestReplayEdgeCases:
    """Degenerate substreams checked against the per-event oracles."""

    def _event_ps_oracle(self, times, sizes, speed):
        """Replay through the event-driven PS server, job by job."""
        from repro.sim import Job, ProcessorSharingServer

        n = times.size
        server = ProcessorSharingServer(speed)
        completions = np.empty(n)
        idx = 0
        while idx < n or server.n_active:
            nxt = server.next_event_time()
            if idx < n and (nxt is None or times[idx] < nxt):
                server.arrive(
                    Job(idx, float(times[idx]), float(sizes[idx])),
                    float(times[idx]),
                )
                idx += 1
            else:
                job = server.on_event(nxt)
                completions[job.job_id] = nxt
        return completions

    @pytest.mark.parametrize("replay", [ps_replay, fcfs_replay])
    def test_empty_substream(self, replay):
        out = replay(np.empty(0), np.empty(0), 3.0)
        assert out.shape == (0,)

    @pytest.mark.parametrize(
        "replay,oracle",
        [(ps_replay, _ps_replay_loop), (fcfs_replay, _fcfs_replay_loop)],
    )
    def test_single_job_matches_oracle(self, replay, oracle):
        times, sizes = np.array([7.0]), np.array([2.5])
        np.testing.assert_allclose(
            replay(times, sizes, 0.5), oracle(times, sizes, 0.5)
        )
        np.testing.assert_allclose(replay(times, sizes, 0.5), [12.0])

    @pytest.mark.parametrize("replay", [ps_replay, fcfs_replay])
    def test_zero_service_time_rejected(self, replay):
        # An idle-capable server cannot receive zero work: the kernels
        # refuse it rather than silently emitting completion == arrival.
        with pytest.raises(ValueError, match="positive"):
            replay(np.array([0.0, 1.0]), np.array([1.0, 0.0]), 1.0)

    @pytest.mark.parametrize(
        "replay,oracle",
        [(ps_replay, _ps_replay_loop), (fcfs_replay, _fcfs_replay_loop)],
    )
    def test_near_zero_service_times(self, replay, oracle):
        # Tiny jobs mixed with normal ones: segmentation must not merge
        # or split busy periods differently from the reference loop.
        times = np.array([0.0, 0.0, 1.0, 1.0 + 1e-12, 5.0])
        sizes = np.array([1e-12, 2.0, 1e-9, 1.0, 1e-15])
        out = replay(times, sizes, 1.0)
        np.testing.assert_allclose(
            out, oracle(times, sizes, 1.0), rtol=1e-9, atol=1e-12
        )
        assert np.all(out >= times)

    def test_ps_busy_period_ends_exactly_at_arrival(self):
        # Job 0 finishes at t=2, the precise instant job 1 arrives: the
        # depletion test `times[j] >= depletion[j-1]` must start a NEW
        # busy period (the event engine retires departures before
        # processing a simultaneous arrival).
        times, sizes = np.array([0.0, 2.0]), np.array([2.0, 1.0])
        out = ps_replay(times, sizes, 1.0)
        np.testing.assert_allclose(out, [2.0, 3.0])
        np.testing.assert_allclose(out, _ps_replay_loop(times, sizes, 1.0))
        np.testing.assert_allclose(out, self._event_ps_oracle(times, sizes, 1.0))

    def test_fcfs_boundary_arrival_does_not_wait(self):
        times, sizes = np.array([0.0, 2.0]), np.array([2.0, 1.0])
        out = fcfs_replay(times, sizes, 1.0)
        np.testing.assert_allclose(out, [2.0, 3.0])

    def test_ps_chained_exact_boundaries_match_event_engine(self):
        # Several consecutive busy periods, each ending exactly when the
        # next one starts — the worst case for >= vs > in segmentation.
        times = np.array([0.0, 1.0, 3.0, 3.0, 7.0])
        sizes = np.array([2.0, 1.0, 2.0, 2.0, 1.0])
        out = ps_replay(times, sizes, 1.0)
        np.testing.assert_allclose(
            out, self._event_ps_oracle(times, sizes, 1.0), rtol=1e-12
        )
        np.testing.assert_allclose(
            out, _ps_replay_loop(times, sizes, 1.0), rtol=1e-12
        )


class TestFastPathRestrictions:
    def test_rejects_dynamic_dispatcher(self):
        config = SimulationConfig(speeds=(1.0,), utilization=0.5, duration=1e3)
        with pytest.raises(ValueError, match="feedback"):
            run_static_simulation(config, LeastLoadDispatcher([1.0]), None, seed=0)

    def test_rejects_quantum_discipline(self):
        config = SimulationConfig(
            speeds=(1.0,), utilization=0.5, duration=1e3,
            discipline="rr_quantum", quantum=0.1,
        )
        with pytest.raises(ValueError, match="needs the event engine"):
            run_static_simulation(config, CyclicDispatcher(), np.array([1.0]), seed=0)

    def test_accepts_fcfs_discipline(self):
        config = SimulationConfig(
            speeds=(1.0,), utilization=0.5, duration=1e3, discipline="fcfs"
        )
        result = run_static_simulation(
            config, CyclicDispatcher(), np.array([1.0]), seed=0
        )
        assert result.metrics.jobs > 0


class TestEngineEquivalence:
    """The decomposed fast path must reproduce the event engine exactly
    (same streams, same boundaries) up to float accumulation order."""

    @pytest.mark.parametrize("policy_name", ["WRAN", "ORAN", "WRR", "ORR"])
    def test_policies_agree(self, policy_name):
        config = SimulationConfig(
            speeds=(1.0, 2.0, 5.0), utilization=0.6, duration=2.0e4
        )
        policy = get_policy(policy_name)
        fast = run_policy_once(config, policy, seed=42)
        slow = run_policy_once(config, policy, seed=42, force_engine=True)
        assert fast.total_arrivals == slow.total_arrivals
        assert fast.metrics.jobs == slow.metrics.jobs
        assert fast.metrics.mean_response_time == pytest.approx(
            slow.metrics.mean_response_time, rel=1e-9
        )
        assert fast.metrics.mean_response_ratio == pytest.approx(
            slow.metrics.mean_response_ratio, rel=1e-9
        )
        assert fast.metrics.fairness == pytest.approx(
            slow.metrics.fairness, rel=1e-6
        )

    @pytest.mark.parametrize("policy_name", ["WRAN", "ORR"])
    def test_fcfs_policies_agree(self, policy_name):
        config = SimulationConfig(
            speeds=(1.0, 2.0, 5.0), utilization=0.6, duration=2.0e4,
            discipline="fcfs",
        )
        policy = get_policy(policy_name)
        fast = run_policy_once(config, policy, seed=42)
        slow = run_policy_once(config, policy, seed=42, force_engine=True)
        assert fast.total_arrivals == slow.total_arrivals
        assert fast.metrics.jobs == slow.metrics.jobs
        assert fast.metrics.mean_response_time == pytest.approx(
            slow.metrics.mean_response_time, rel=1e-9
        )
        assert fast.metrics.mean_response_ratio == pytest.approx(
            slow.metrics.mean_response_ratio, rel=1e-9
        )
        assert fast.metrics.fairness == pytest.approx(
            slow.metrics.fairness, rel=1e-6
        )

    def test_dispatch_fractions_agree(self):
        config = SimulationConfig(
            speeds=(1.0, 4.0), utilization=0.5, duration=2.0e4
        )
        policy = get_policy("ORR")
        fast = run_policy_once(config, policy, seed=7)
        slow = run_policy_once(config, policy, seed=7, force_engine=True)
        np.testing.assert_allclose(
            fast.dispatch_fractions, slow.dispatch_fractions, atol=1e-12
        )

    def test_traces_agree(self):
        config = SimulationConfig(speeds=(1.0, 3.0), utilization=0.5, duration=5e3)
        policy = get_policy("WRR")
        fast = run_policy_once(config, policy, seed=9, record_trace=True)
        slow = run_policy_once(
            config, policy, seed=9, record_trace=True, force_engine=True
        )
        np.testing.assert_allclose(fast.trace.times, slow.trace.times, rtol=1e-12)
        np.testing.assert_array_equal(fast.trace.targets, slow.trace.targets)

    def test_busy_time_agrees(self):
        config = SimulationConfig(speeds=(1.0, 3.0), utilization=0.5, duration=1e4)
        policy = get_policy("WRAN")
        fast = run_policy_once(config, policy, seed=3)
        slow = run_policy_once(config, policy, seed=3, force_engine=True)
        np.testing.assert_allclose(
            [s.busy_time for s in fast.servers],
            [s.busy_time for s in slow.servers],
            rtol=1e-9,
        )


class TestFastPathStatistics:
    def test_mm1_ps_theory(self):
        config = SimulationConfig(
            speeds=(1.0,), utilization=0.5, duration=5.0e5, warmup=5.0e4,
            size_distribution=Exponential.from_mean(1.0), arrival_cv=1.0,
        )
        result = run_static_simulation(
            config, CyclicDispatcher(), np.array([1.0]), seed=30
        )
        assert result.metrics.mean_response_ratio == pytest.approx(2.0, rel=0.05)

    def test_two_server_weighted_matches_theory(self):
        """Weighted random split of Poisson arrivals keeps each server an
        independent M/G/1-PS at the system utilization."""
        config = SimulationConfig(
            speeds=(1.0, 3.0), utilization=0.6, duration=6.0e5, warmup=1.0e5,
            arrival_cv=1.0,
        )
        d = RandomDispatcher(substream(31, "dispatch"))
        result = run_static_simulation(config, d, np.array([0.25, 0.75]), seed=31)
        # Paper eq. (3): R̄ = Σ αᵢ μ/(sᵢμ − αᵢλ) = 0.25/0.4 + 0.75/1.2 = 1.25.
        expected = config.network().mean_response_ratio([0.25, 0.75])
        assert expected == pytest.approx(1.25)
        assert result.metrics.mean_response_ratio == pytest.approx(expected, rel=0.08)
