"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.queueing import HeterogeneousNetwork


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def make_network(speeds, utilization=0.7, mu=1.0):
    """Shorthand used across allocation/queueing tests."""
    return HeterogeneousNetwork(np.asarray(speeds, dtype=float), mu=mu,
                                utilization=utilization)


@pytest.fixture
def paper_network():
    """Table 1's system at the paper's 70% utilization."""
    return make_network([1.0, 1.5, 2.0, 3.0, 5.0, 9.0, 10.0], 0.7)


@pytest.fixture
def base_network():
    """Table 3's base configuration at 70% utilization."""
    speeds = [1.0] * 5 + [1.5] * 4 + [2.0] * 3 + [5.0, 10.0, 12.0]
    return make_network(speeds, 0.7)
