"""Property-based tests for the extension modules."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.allocation import (
    marginal_response_time,
    optimal_mean_response_time,
    optimized_fractions,
)
from repro.dispatch.burst_wrr import _largest_remainder_quotas
from repro.queueing import HeterogeneousNetwork, erlang_c
from repro.sim.modulated import RateProfile

speeds_strategy = st.lists(
    st.floats(min_value=0.05, max_value=50.0), min_size=1, max_size=10
)
rho_strategy = st.floats(min_value=0.05, max_value=0.95)


def network_from(speeds, rho):
    return HeterogeneousNetwork(np.asarray(speeds), mu=1.0, utilization=rho)


class TestPlanningProperties:
    @given(speeds=speeds_strategy, rho=rho_strategy)
    @settings(max_examples=75, deadline=None)
    def test_marginals_non_positive(self, speeds, rho):
        net = network_from(speeds, rho)
        marginals = marginal_response_time(net)
        assert np.all(marginals <= 1e-12)
        # Zero exactly on the zero-share machines.
        alphas = optimized_fractions(net)
        assert np.all(marginals[alphas == 0.0] == 0.0)

    @given(speeds=speeds_strategy, rho=rho_strategy,
           eps=st.floats(min_value=1e-4, max_value=1e-2))
    @settings(max_examples=50, deadline=None)
    def test_speedup_never_hurts(self, speeds, rho, eps):
        """Exact re-solve: making any machine faster never raises T̄*."""
        net = network_from(speeds, rho)
        before = optimal_mean_response_time(net)
        for i in range(net.n):
            faster = net.speeds.copy()
            faster[i] += eps
            after = optimal_mean_response_time(
                HeterogeneousNetwork(faster, mu=1.0,
                                     arrival_rate=net.arrival_rate)
            )
            assert after <= before + 1e-12

    @given(speeds=speeds_strategy, rho=rho_strategy)
    @settings(max_examples=40, deadline=None)
    def test_global_optimality_monte_carlo(self, speeds, rho):
        """Algorithm 1's F is ≤ F at random feasible allocations —
        a direct Monte-Carlo check of Theorems 1–3."""
        from repro.queueing import objective_value

        net = network_from(speeds, rho)
        best = objective_value(net, optimized_fractions(net))
        rng = np.random.default_rng(abs(hash((tuple(speeds), rho))) % 2**32)
        rates = net.service_rates()
        for _ in range(20):
            candidate = rng.dirichlet(np.ones(net.n))
            if np.any(candidate * net.arrival_rate >= rates):
                continue  # infeasible sample
            assert objective_value(net, candidate) >= best - 1e-9


class TestQuotaProperties:
    @given(
        alphas=st.lists(st.floats(0.01, 1.0), min_size=1, max_size=10).map(
            lambda xs: np.asarray(xs) / np.sum(xs)
        ),
        cycle=st.integers(1, 500),
    )
    @settings(max_examples=100, deadline=None)
    def test_quotas_sum_and_bounds(self, alphas, cycle):
        quotas = _largest_remainder_quotas(alphas, cycle)
        assert quotas.sum() == cycle
        assert np.all(quotas >= 0)
        # Largest-remainder apportionment never misses by a full job.
        assert np.all(np.abs(quotas - alphas * cycle) < 1.0)


class TestRateProfileProperties:
    @given(
        multipliers=st.lists(st.floats(0.1, 10.0), min_size=1, max_size=12),
        segment=st.floats(0.5, 1000.0),
        t=st.floats(0.0, 1e5),
    )
    @settings(max_examples=100, deadline=None)
    def test_cumulative_inverse_roundtrip(self, multipliers, segment, t):
        p = RateProfile(multipliers, segment)
        u = p.cumulative(t)
        back = p.inverse_cumulative(u)
        assert back == pytest.approx(t, rel=1e-9, abs=1e-6)

    @given(
        multipliers=st.lists(st.floats(0.1, 10.0), min_size=1, max_size=12),
        segment=st.floats(0.5, 1000.0),
    )
    @settings(max_examples=75, deadline=None)
    def test_normalization_preserves_long_run_rate(self, multipliers, segment):
        p = RateProfile(multipliers, segment)
        assert p.multipliers.mean() == pytest.approx(1.0, rel=1e-12)
        assert p.cumulative(p.period) == pytest.approx(p.period, rel=1e-12)

    @given(
        multipliers=st.lists(st.floats(0.1, 10.0), min_size=2, max_size=8),
        segment=st.floats(1.0, 100.0),
        t1=st.floats(0.0, 1e4),
        t2=st.floats(0.0, 1e4),
    )
    @settings(max_examples=75, deadline=None)
    def test_cumulative_monotone(self, multipliers, segment, t1, t2):
        p = RateProfile(multipliers, segment)
        lo, hi = min(t1, t2), max(t1, t2)
        assume(hi > lo)
        assert p.cumulative(hi) >= p.cumulative(lo)


class TestErlangCProperties:
    @given(c=st.integers(1, 50), rho=st.floats(0.01, 0.99))
    @settings(max_examples=100, deadline=None)
    def test_probability_bounds(self, c, rho):
        value = erlang_c(c, rho * c)
        assert 0.0 <= value <= 1.0

    @given(rho=st.floats(0.05, 0.95))
    @settings(max_examples=50, deadline=None)
    def test_more_servers_less_waiting(self, rho):
        """At equal per-server utilization, pooling more servers lowers
        the waiting probability (economy of scale)."""
        values = [erlang_c(c, rho * c) for c in (1, 2, 4, 8, 16)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
