"""Tests for metrics: streaming stats, response collectors, CIs."""

import math

import numpy as np
import pytest

from repro.metrics import (
    MetricsCollector,
    ReplicationSummary,
    RunningStats,
    summarize_replications,
)


class TestRunningStats:
    def test_matches_numpy(self, rng):
        xs = rng.lognormal(0.0, 1.5, 10_000)
        s = RunningStats()
        for x in xs:
            s.add(float(x))
        assert s.count == xs.size
        assert s.mean == pytest.approx(xs.mean(), rel=1e-10)
        assert s.variance == pytest.approx(xs.var(), rel=1e-8)
        assert s.std == pytest.approx(xs.std(), rel=1e-8)
        assert s.min == xs.min() and s.max == xs.max()
        assert s.total == pytest.approx(xs.sum(), rel=1e-10)

    def test_add_array_matches_scalar_path(self, rng):
        xs = rng.random(1000)
        a, b = RunningStats(), RunningStats()
        for x in xs:
            a.add(float(x))
        b.add_array(xs)
        assert b.mean == pytest.approx(a.mean, rel=1e-12)
        assert b.variance == pytest.approx(a.variance, rel=1e-9)

    def test_merge_matches_combined(self, rng):
        xs, ys = rng.random(500), rng.random(700) + 5.0
        a, b = RunningStats(), RunningStats()
        a.add_array(xs)
        b.add_array(ys)
        a.merge(b)
        both = np.concatenate([xs, ys])
        assert a.count == 1200
        assert a.mean == pytest.approx(both.mean(), rel=1e-12)
        assert a.variance == pytest.approx(both.var(), rel=1e-9)
        assert a.min == both.min() and a.max == both.max()

    def test_merge_into_empty(self, rng):
        xs = rng.random(10)
        a, b = RunningStats(), RunningStats()
        b.add_array(xs)
        a.merge(b)
        assert a.mean == pytest.approx(xs.mean())

    def test_merge_empty_noop(self):
        a = RunningStats()
        a.add(1.0)
        a.merge(RunningStats())
        assert a.count == 1

    def test_sample_variance(self):
        s = RunningStats()
        for x in (1.0, 2.0, 3.0):
            s.add(x)
        assert s.sample_variance == pytest.approx(1.0)
        assert s.variance == pytest.approx(2.0 / 3.0)

    def test_empty_raises(self):
        s = RunningStats()
        for prop in ("mean", "variance", "min", "max"):
            with pytest.raises(ValueError):
                getattr(s, prop)
        s.add(1.0)
        with pytest.raises(ValueError):
            s.sample_variance

    def test_add_empty_array_noop(self):
        s = RunningStats()
        s.add_array(np.empty(0))
        assert s.count == 0

    def test_numerical_stability_large_offset(self):
        """Welford must survive data with mean >> std."""
        base = 1e9
        xs = base + np.array([0.0, 1.0, 2.0])
        s = RunningStats()
        for x in xs:
            s.add(float(x))
        assert s.variance == pytest.approx(2.0 / 3.0, rel=1e-6)


class TestMetricsCollector:
    def test_response_metrics(self):
        c = MetricsCollector()
        c.record(arrival=0.0, completion=2.0, size=1.0)   # ratio 2
        c.record(arrival=1.0, completion=5.0, size=2.0)   # ratio 2
        m = c.finalize()
        assert m.jobs == 2
        assert m.mean_response_time == pytest.approx(3.0)
        assert m.mean_response_ratio == pytest.approx(2.0)
        assert m.fairness == pytest.approx(0.0)
        assert m.mean_job_size == pytest.approx(1.5)

    def test_fairness_is_std_of_ratio(self):
        c = MetricsCollector()
        c.record(0.0, 1.0, 1.0)   # ratio 1
        c.record(0.0, 3.0, 1.0)   # ratio 3
        m = c.finalize()
        assert m.fairness == pytest.approx(1.0)  # population std of {1, 3}
        assert m.max_response_ratio == pytest.approx(3.0)

    def test_warmup_filtering(self):
        c = MetricsCollector(warmup_end=10.0)
        c.record(5.0, 20.0, 1.0)    # arrives during warm-up: ignored
        c.record(11.0, 12.0, 1.0)
        assert c.jobs == 1
        assert c.finalize().mean_response_time == pytest.approx(1.0)

    def test_batch_equals_scalar(self, rng):
        arrivals = np.sort(rng.random(300) * 100)
        sizes = rng.random(300) + 0.1
        completions = arrivals + sizes * (1 + rng.random(300))
        a = MetricsCollector(warmup_end=25.0)
        for t, ct, s in zip(arrivals, completions, sizes):
            a.record(float(t), float(ct), float(s))
        b = MetricsCollector(warmup_end=25.0)
        b.record_batch(arrivals, completions, sizes)
        ma, mb = a.finalize(), b.finalize()
        assert mb.jobs == ma.jobs
        assert mb.mean_response_ratio == pytest.approx(ma.mean_response_ratio, rel=1e-12)
        assert mb.fairness == pytest.approx(ma.fairness, rel=1e-9)

    def test_merge(self):
        a = MetricsCollector()
        b = MetricsCollector()
        a.record(0.0, 1.0, 1.0)
        b.record(0.0, 3.0, 1.0)
        a.merge(b)
        assert a.finalize().mean_response_time == pytest.approx(2.0)

    def test_merge_warmup_mismatch(self):
        a, b = MetricsCollector(1.0), MetricsCollector(2.0)
        with pytest.raises(ValueError, match="warm-up"):
            a.merge(b)

    def test_validation(self):
        c = MetricsCollector()
        with pytest.raises(ValueError, match="precedes"):
            c.record(5.0, 4.0, 1.0)
        with pytest.raises(ValueError, match="size"):
            c.record(0.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            MetricsCollector(warmup_end=-1.0)
        with pytest.raises(ValueError, match="align"):
            c.record_batch(np.ones(2), np.ones(3), np.ones(2))

    def test_finalize_empty_raises(self):
        with pytest.raises(ValueError, match="no jobs"):
            MetricsCollector().finalize()

    def test_batch_all_warmup_noop(self):
        c = MetricsCollector(warmup_end=100.0)
        c.record_batch(np.array([1.0]), np.array([2.0]), np.array([1.0]))
        assert c.jobs == 0

    def test_as_dict(self):
        c = MetricsCollector()
        c.record(0.0, 1.0, 1.0)
        d = c.finalize().as_dict()
        assert set(d) == {
            "jobs",
            "mean_response_time",
            "mean_response_ratio",
            "fairness",
            "max_response_ratio",
            "mean_job_size",
        }


class TestReplicationSummary:
    def test_single_value(self):
        s = summarize_replications([4.2])
        assert s.mean == 4.2
        assert s.half_width == 0.0
        assert s.n == 1

    def test_t_interval(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        s = summarize_replications(values, confidence=0.95)
        from scipy import stats

        expected_half = (
            stats.t.ppf(0.975, df=4) * np.std(values, ddof=1) / math.sqrt(5)
        )
        assert s.half_width == pytest.approx(expected_half)
        assert s.lower == pytest.approx(s.mean - expected_half)
        assert s.upper == pytest.approx(s.mean + expected_half)

    def test_overlap(self):
        a = ReplicationSummary(1.0, 0.1, 5, 0.2, 0.95)
        b = ReplicationSummary(1.3, 0.1, 5, 0.2, 0.95)
        c = ReplicationSummary(2.0, 0.1, 5, 0.2, 0.95)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_relative_half_width(self):
        s = ReplicationSummary(2.0, 0.0, 3, 0.1, 0.95)
        assert s.relative_half_width == pytest.approx(0.05)
        z = ReplicationSummary(0.0, 0.0, 3, 0.1, 0.95)
        assert z.relative_half_width == math.inf

    def test_validation(self):
        with pytest.raises(ValueError, match="no replication"):
            summarize_replications([])
        with pytest.raises(ValueError, match="confidence"):
            summarize_replications([1.0, 2.0], confidence=1.5)


class TestDegenerateIntervals:
    """Satellite fix: degenerate inputs must yield flagged zero-width
    intervals, never NaN half-widths that poison precision loops."""

    def test_single_replication_flagged(self):
        s = summarize_replications([4.2])
        assert s.degenerate
        assert s.half_width == 0.0
        assert s.relative_half_width == 0.0

    def test_zero_variance_flagged(self):
        s = summarize_replications([3.0, 3.0, 3.0, 3.0])
        assert s.degenerate
        assert s.half_width == 0.0
        assert s.std == 0.0
        assert s.relative_half_width == 0.0

    def test_nonfinite_inputs_never_produce_nan_half_width(self):
        for values in ([1.0, math.nan, 2.0], [1.0, math.inf, 2.0]):
            s = summarize_replications(values)
            assert s.degenerate
            assert s.half_width == 0.0
            assert not math.isnan(s.half_width)
            # Non-finite mean: relative width is inf, so `<= target`
            # comparisons stay well-defined (False, never NaN).
            assert s.relative_half_width == math.inf
            assert not (s.relative_half_width <= 0.05)

    def test_healthy_inputs_not_flagged(self):
        s = summarize_replications([1.0, 2.0, 3.0])
        assert not s.degenerate
        assert s.half_width > 0.0

    def test_paired_single_pair_flagged(self):
        from repro.metrics import summarize_paired

        s = summarize_paired([1.0], [2.0])
        assert s.degenerate
        assert s.half_width == 0.0
        assert s.mean_diff == -1.0

    def test_paired_identical_policies_under_crn_flagged(self):
        from repro.metrics import summarize_paired

        # CRN with identical policies: the difference vector is exactly
        # zero — a real scenario, not a numerical accident.
        s = summarize_paired([1.5, 2.5, 3.5], [1.5, 2.5, 3.5])
        assert s.degenerate
        assert s.mean_diff == 0.0
        assert s.half_width == 0.0
        assert s.verdict == "tie"

    def test_paired_nonfinite_differences_flagged(self):
        from repro.metrics import summarize_paired

        s = summarize_paired([1.0, math.nan, 3.0], [1.0, 2.0, 3.0])
        assert s.degenerate
        assert not math.isnan(s.half_width)
