"""Tests for the server models (PS virtual time, FCFS, quantum RR)."""

import numpy as np
import pytest

from repro.sim import (
    FCFSServer,
    Job,
    ProcessorSharingServer,
    RoundRobinQuantumServer,
)


def drive(server, arrivals):
    """Feed (time, size) arrivals and run all events; return completion
    times keyed by job id."""
    completions = {}
    jobs = [Job(i, t, s) for i, (t, s) in enumerate(arrivals)]
    pending = sorted(jobs, key=lambda j: j.arrival_time)
    idx = 0
    now = 0.0
    while idx < len(pending) or server.n_active:
        nxt = server.next_event_time()
        next_arrival = pending[idx].arrival_time if idx < len(pending) else None
        if next_arrival is not None and (nxt is None or next_arrival < nxt):
            server.arrive(pending[idx], next_arrival)
            now = next_arrival
            idx += 1
        else:
            done = server.on_event(nxt)
            now = nxt
            if done is not None:
                completions[done.job_id] = nxt
    return completions


class TestJob:
    def test_properties(self):
        j = Job(0, 1.0, 2.0)
        assert not j.completed
        j.completion_time = 5.0
        assert j.completed
        assert j.response_time == pytest.approx(4.0)
        assert j.response_ratio == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="size"):
            Job(0, 0.0, 0.0)
        with pytest.raises(ValueError, match="arrival"):
            Job(0, -1.0, 1.0)

    def test_incomplete_response_raises(self):
        with pytest.raises(ValueError, match="not completed"):
            Job(0, 0.0, 1.0).response_time


class TestProcessorSharingServer:
    def test_single_job(self):
        s = ProcessorSharingServer(2.0)
        done = drive(s, [(1.0, 4.0)])
        # size 4 on speed 2 alone: 2 seconds.
        assert done[0] == pytest.approx(3.0)

    def test_two_overlapping_jobs_hand_computed(self):
        """Jobs (t=0, size=2) and (t=0, size=4) on speed 1.

        Shared until the small job finishes: each gets rate 1/2, so the
        small one completes at t=4 having received 2 units; the big one
        then runs alone with 2 remaining → completes at t=6.
        """
        s = ProcessorSharingServer(1.0)
        done = drive(s, [(0.0, 2.0), (0.0, 4.0)])
        assert done[0] == pytest.approx(4.0)
        assert done[1] == pytest.approx(6.0)

    def test_late_arrival_hand_computed(self):
        """Job A (t=0, size=3), job B (t=1, size=1), speed 1.

        A alone on [0,1): 1 unit done.  Shared on [1, 3): each +1 unit →
        B done at t=3.  A has 1 left, alone → done at t=4.
        """
        s = ProcessorSharingServer(1.0)
        done = drive(s, [(0.0, 3.0), (1.0, 1.0)])
        assert done[1] == pytest.approx(3.0)
        assert done[0] == pytest.approx(4.0)

    def test_speed_scales_everything(self):
        slow = drive(ProcessorSharingServer(1.0), [(0.0, 2.0), (0.0, 4.0)])
        fast = drive(ProcessorSharingServer(4.0), [(0.0, 2.0), (0.0, 4.0)])
        for k in slow:
            assert fast[k] == pytest.approx(slow[k] / 4.0)

    def test_work_conservation(self):
        s = ProcessorSharingServer(2.0)
        arrivals = [(0.0, 2.0), (0.5, 3.0), (0.7, 1.0)]
        done = drive(s, arrivals)
        # Continuous busy period: last completion = total work / speed.
        assert max(done.values()) == pytest.approx(6.0 / 2.0)
        assert s.busy_time == pytest.approx(3.0)

    def test_busy_time_with_idle_gap(self):
        s = ProcessorSharingServer(1.0)
        drive(s, [(0.0, 1.0), (10.0, 2.0)])
        assert s.busy_time == pytest.approx(3.0)
        assert s.utilization(20.0) == pytest.approx(0.15)

    def test_counters(self):
        s = ProcessorSharingServer(1.0)
        drive(s, [(0.0, 1.0), (0.0, 1.0)])
        assert s.jobs_received == 2
        assert s.jobs_completed == 2
        assert s.n_active == 0

    def test_version_bumps_on_state_change(self):
        s = ProcessorSharingServer(1.0)
        v0 = s.version
        s.arrive(Job(0, 0.0, 1.0), 0.0)
        assert s.version > v0
        v1 = s.version
        s.on_event(s.next_event_time())
        assert s.version > v1

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            ProcessorSharingServer(0.0)

    def test_equal_sizes_complete_together(self):
        s = ProcessorSharingServer(1.0)
        done = drive(s, [(0.0, 2.0), (0.0, 2.0)])
        assert done[0] == pytest.approx(4.0)
        assert done[1] == pytest.approx(4.0)


class TestFCFSServer:
    def test_sequential_service(self):
        s = FCFSServer(1.0)
        done = drive(s, [(0.0, 2.0), (0.0, 3.0)])
        assert done[0] == pytest.approx(2.0)
        assert done[1] == pytest.approx(5.0)

    def test_idle_restart(self):
        s = FCFSServer(2.0)
        done = drive(s, [(0.0, 2.0), (5.0, 2.0)])
        assert done[0] == pytest.approx(1.0)
        assert done[1] == pytest.approx(6.0)

    def test_order_preserved(self):
        s = FCFSServer(1.0)
        done = drive(s, [(0.0, 5.0), (0.1, 0.1)])
        assert done[1] > done[0]  # short job still waits behind long one

    def test_busy_time(self):
        s = FCFSServer(1.0)
        drive(s, [(0.0, 1.0), (0.0, 1.0)])
        assert s.busy_time == pytest.approx(2.0)


class TestRoundRobinQuantumServer:
    def test_single_job(self):
        s = RoundRobinQuantumServer(1.0, quantum=0.3)
        done = drive(s, [(0.0, 1.0)])
        assert done[0] == pytest.approx(1.0)

    def test_two_jobs_alternate(self):
        """Two size-1 jobs, quantum 0.5, speed 1: slices ABAB → A ends
        at 1.5, B at 2.0."""
        s = RoundRobinQuantumServer(1.0, quantum=0.5)
        done = drive(s, [(0.0, 1.0), (0.0, 1.0)])
        assert done[0] == pytest.approx(1.5)
        assert done[1] == pytest.approx(2.0)

    def test_converges_to_ps_as_quantum_shrinks(self):
        arrivals = [(0.0, 2.0), (0.0, 4.0), (1.0, 1.0)]
        ps_done = drive(ProcessorSharingServer(1.0), arrivals)
        rr_done = drive(RoundRobinQuantumServer(1.0, quantum=0.001), arrivals)
        for k in ps_done:
            assert rr_done[k] == pytest.approx(ps_done[k], abs=0.01)

    def test_large_quantum_is_fcfs(self):
        arrivals = [(0.0, 2.0), (0.0, 3.0)]
        fcfs_done = drive(FCFSServer(1.0), arrivals)
        rr_done = drive(RoundRobinQuantumServer(1.0, quantum=100.0), arrivals)
        for k in fcfs_done:
            assert rr_done[k] == pytest.approx(fcfs_done[k])

    def test_speed_applies_to_quantum_work(self):
        s = RoundRobinQuantumServer(2.0, quantum=0.5)
        done = drive(s, [(0.0, 2.0)])
        assert done[0] == pytest.approx(1.0)

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            RoundRobinQuantumServer(1.0, quantum=0.0)

    def test_work_conserving(self):
        s = RoundRobinQuantumServer(1.0, quantum=0.37)
        arrivals = [(0.0, 1.0), (0.2, 2.0), (0.4, 0.5)]
        done = drive(s, arrivals)
        assert max(done.values()) == pytest.approx(3.5)
