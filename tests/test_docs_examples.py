"""Keep the documentation honest: the README/docstring claims and the
example scripts must stay runnable."""

import compileall
import pathlib
import subprocess
import sys

import pytest

import repro

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[1] / "examples").glob("*.py")
)


class TestQuickTour:
    def test_package_docstring_claim(self):
        """The __init__ quick tour claims ORR beats WRR on (1,1,10,10)
        at rho=0.7 — verify the exact scenario (reduced duration)."""
        config = repro.SimulationConfig(
            speeds=(1, 1, 10, 10), utilization=0.7, duration=3.0e4
        )
        orr = repro.evaluate_policy(
            config, repro.get_policy("ORR"), replications=3, base_seed=0
        )
        wrr = repro.evaluate_policy(
            config, repro.get_policy("WRR"), replications=3, base_seed=0
        )
        assert orr.mean_response_ratio.mean < wrr.mean_response_ratio.mean

    def test_readme_allocation_example(self):
        """README's allocate example: fractions match the shown values."""
        net = repro.HeterogeneousNetwork([1, 1, 2, 4, 8], utilization=0.7)
        alphas = repro.OptimizedAllocator().compute(net).alphas
        assert alphas[4] == pytest.approx(0.567, abs=0.01)
        assert alphas[0] == pytest.approx(0.037, abs=0.005)

    def test_version_attribute(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"


class TestExamplesIntegrity:
    def test_examples_present(self):
        names = {p.name for p in EXAMPLES}
        assert "quickstart.py" in names
        assert len(EXAMPLES) >= 3

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_examples_compile(self, path):
        source = path.read_text()
        compile(source, str(path), "exec")

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_examples_have_main_guard_and_docstring(self, path):
        source = path.read_text()
        assert '__name__ == "__main__"' in source
        assert source.lstrip().startswith(('"""', "#!"))

    def test_quickstart_runs_tiny(self):
        """End-to-end: the quickstart exits 0 on a tiny horizon."""
        quickstart = next(p for p in EXAMPLES if p.name == "quickstart.py")
        proc = subprocess.run(
            [sys.executable, str(quickstart),
             "--duration", "4000", "--replications", "1"],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "Simulated performance" in proc.stdout
