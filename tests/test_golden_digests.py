"""Golden seed-stability digests: pinned SHAs over packed result vectors.

Every digest below is the SHA-256 of the little-endian float64 bytes of
the pinned-config result vectors (see :mod:`repro.obs.digest`).  They
freeze two things at once:

* **seed stability** — the RNG layout (base_seed 2000, spawn-key
  substreams) keeps producing the same trajectories release to release;
* **cross-path bit-identity** — the serial flat grid, the parallel
  grid, the cell-batched sweep, and the pure-Python PS kernel must all
  hash to the same digest, not merely be "close".

If a digest changes legitimately (an intentional RNG or kernel-order
change), recompute it with the corresponding ``run_*``/digest call and
update the constant — and bump ``KERNEL_VERSION`` if replay bits moved.
"""

from __future__ import annotations

from repro.core import get_policy
from repro.core.evaluate import run_policy_once
from repro.experiments.base import SCALES
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.obs.digest import figure2_digest, results_digest, sweep_digest
from repro.sim import SimulationConfig, ckernel

SMOKE = SCALES["smoke"]
FIGURE3_KWARGS = dict(fast_speeds=(1.0, 10.0), policies=("WRR", "ORR"))

#: SHA-256 of the figure3 smoke subset (2 points x WRR/ORR x 2 reps).
FIGURE3_SMOKE_DIGEST = (
    "946e55683b6f73e4d06256288a60a38ffb46ee7d66c47d97887e7ea151a0c97a"
)
#: SHA-256 of the figure2 smoke deviation series (round-robin + random).
FIGURE2_SMOKE_DIGEST = (
    "1e49e7190c02216636e14be0a08dc17127c5d540a5db4ed7198a6f1ba32fe954"
)
#: SHA-256 of one pinned ORR replication (speeds 1,1,10 at rho=0.7).
SINGLE_REPLICATION_DIGEST = (
    "e037a940ceeec49cb288dbf2c2699abaa73e348e3c289a120645ca6a5dca7b4b"
)


class TestFigure3GoldenDigest:
    def test_serial_flat_grid(self):
        result = run_figure3(SMOKE, cell_batch=False, **FIGURE3_KWARGS)
        assert sweep_digest(result) == FIGURE3_SMOKE_DIGEST

    def test_parallel_grid(self):
        result = run_figure3(
            SMOKE, cell_batch=False, n_jobs=2, **FIGURE3_KWARGS
        )
        assert sweep_digest(result) == FIGURE3_SMOKE_DIGEST

    def test_cell_batched(self):
        result = run_figure3(SMOKE, cell_batch=True, **FIGURE3_KWARGS)
        assert sweep_digest(result) == FIGURE3_SMOKE_DIGEST

    def test_python_kernel(self, monkeypatch):
        monkeypatch.setattr(ckernel, "_fns", False)  # force the Python loop
        result = run_figure3(SMOKE, cell_batch=False, **FIGURE3_KWARGS)
        assert sweep_digest(result) == FIGURE3_SMOKE_DIGEST


class TestOtherGoldenDigests:
    def test_figure2_deviations(self):
        assert figure2_digest(run_figure2("smoke")) == FIGURE2_SMOKE_DIGEST

    def test_single_replication(self):
        config = SimulationConfig(
            speeds=(1.0, 1.0, 10.0), utilization=0.7,
            duration=SMOKE.duration, warmup=SMOKE.warmup,
        )
        result = run_policy_once(
            config, get_policy("ORR"), seed=SMOKE.base_seed
        )
        assert results_digest(result) == SINGLE_REPLICATION_DIGEST

    def test_single_replication_python_kernel(self, monkeypatch):
        monkeypatch.setattr(ckernel, "_fns", False)
        config = SimulationConfig(
            speeds=(1.0, 1.0, 10.0), utilization=0.7,
            duration=SMOKE.duration, warmup=SMOKE.warmup,
        )
        result = run_policy_once(
            config, get_policy("ORR"), seed=SMOKE.base_seed
        )
        assert results_digest(result) == SINGLE_REPLICATION_DIGEST
