"""Integration tests for the event engine against queueing theory."""

import numpy as np
import pytest

from repro.dispatch import CyclicDispatcher, LeastLoadDispatcher, RandomDispatcher
from repro.distributions import Exponential
from repro.sim import FeedbackModel, SimulationConfig, run_simulation


def single_server_config(**overrides):
    defaults = dict(
        speeds=(1.0,),
        utilization=0.5,
        duration=5.0e5,
        warmup=5.0e4,
        size_distribution=Exponential.from_mean(1.0),
        arrival_cv=1.0,  # Poisson arrivals → exact M/M/1
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestSingleServerTheory:
    def test_mm1_ps_mean_response_time(self):
        """M/M/1-PS: T̄ = 1/(μ − λ) = 2 at ρ = 0.5, μ = 1."""
        config = single_server_config()
        d = CyclicDispatcher()
        result = run_simulation(config, d, np.array([1.0]), seed=11)
        assert result.metrics.mean_response_time == pytest.approx(2.0, rel=0.05)

    def test_mm1_ps_mean_response_ratio(self):
        """E[T/S] = 1/(1−ρ) = 2 at ρ = 0.5 under PS."""
        config = single_server_config()
        result = run_simulation(config, CyclicDispatcher(), np.array([1.0]), seed=12)
        assert result.metrics.mean_response_ratio == pytest.approx(2.0, rel=0.05)

    def test_mg1_ps_insensitivity(self):
        """Bounded Pareto sizes give the same mean response ratio as
        exponential sizes under PS (only the mean matters)."""
        heavy = SimulationConfig(
            speeds=(1.0,), utilization=0.5, duration=8.0e5, warmup=2.0e5,
            arrival_cv=1.0,
        )
        result = run_simulation(heavy, CyclicDispatcher(), np.array([1.0]), seed=13)
        assert result.metrics.mean_response_ratio == pytest.approx(2.0, rel=0.08)

    def test_mg1_fcfs_pollaczek_khinchine(self):
        """FCFS with exponential sizes: W = ρ/(μ−λ), T = 1/(μ−λ)."""
        config = single_server_config(discipline="fcfs")
        result = run_simulation(config, CyclicDispatcher(), np.array([1.0]), seed=14)
        assert result.metrics.mean_response_time == pytest.approx(2.0, rel=0.05)

    def test_utilization_measured(self):
        config = single_server_config(duration=2.0e5, warmup=0.0)
        result = run_simulation(config, CyclicDispatcher(), np.array([1.0]), seed=15)
        assert result.per_server_utilization[0] == pytest.approx(0.5, rel=0.05)

    def test_quantum_rr_close_to_ps(self):
        config = single_server_config(
            duration=1.0e5, warmup=1.0e4, discipline="rr_quantum", quantum=0.01
        )
        result = run_simulation(config, CyclicDispatcher(), np.array([1.0]), seed=16)
        assert result.metrics.mean_response_ratio == pytest.approx(2.0, rel=0.1)


class TestEngineBehaviour:
    def test_drain_false_stops_at_horizon(self):
        # Heavy-tailed paper sizes: a job is essentially always in
        # flight at the horizon, so truncation is observable.
        config = SimulationConfig(
            speeds=(1.0,), utilization=0.7, duration=1.0e4, warmup=0.0,
            drain=False,
        )
        result = run_simulation(config, CyclicDispatcher(), np.array([1.0]), seed=1)
        # Without drain some late arrivals never complete.
        assert result.metrics.jobs < result.total_arrivals

    def test_drain_true_completes_everything(self):
        config = single_server_config(duration=1.0e4, warmup=0.0, drain=True)
        result = run_simulation(config, CyclicDispatcher(), np.array([1.0]), seed=1)
        assert result.metrics.jobs == result.total_arrivals

    def test_trace_recorded(self):
        config = single_server_config(duration=5.0e3, warmup=0.0)
        result = run_simulation(
            config, CyclicDispatcher(), np.array([1.0]), seed=2, record_trace=True
        )
        assert result.trace is not None
        assert result.trace.count == result.total_arrivals
        assert np.all(np.diff(result.trace.times) >= 0)

    def test_same_seed_same_result(self):
        config = single_server_config(duration=1.0e4, warmup=0.0)
        a = run_simulation(config, CyclicDispatcher(), np.array([1.0]), seed=3)
        b = run_simulation(config, CyclicDispatcher(), np.array([1.0]), seed=3)
        assert a.metrics.mean_response_time == b.metrics.mean_response_time

    def test_different_seeds_differ(self):
        config = single_server_config(duration=1.0e4, warmup=0.0)
        a = run_simulation(config, CyclicDispatcher(), np.array([1.0]), seed=3)
        b = run_simulation(config, CyclicDispatcher(), np.array([1.0]), seed=4)
        assert a.metrics.mean_response_time != b.metrics.mean_response_time

    def test_dispatch_fractions_post_warmup(self, rng):
        config = SimulationConfig(
            speeds=(1.0, 1.0), utilization=0.4, duration=4.0e4, warmup=1.0e4,
            size_distribution=Exponential.from_mean(1.0), arrival_cv=1.0,
        )
        d = RandomDispatcher(rng)
        result = run_simulation(config, d, np.array([0.2, 0.8]), seed=5)
        np.testing.assert_allclose(
            result.dispatch_fractions, [0.2, 0.8], atol=0.02
        )

    def test_server_stats_consistency(self):
        config = single_server_config(duration=1.0e4, warmup=0.0)
        result = run_simulation(config, CyclicDispatcher(), np.array([1.0]), seed=6)
        s = result.servers[0]
        assert s.jobs_received == result.total_arrivals
        assert s.jobs_completed == s.jobs_received
        assert s.dispatch_fraction == pytest.approx(1.0)


class TestLeastLoadIntegration:
    def test_beats_random_on_heterogeneous_system(self):
        config = SimulationConfig(
            speeds=(1.0, 1.0, 8.0), utilization=0.7, duration=6.0e4, warmup=1.5e4,
        )
        ll = run_simulation(config, LeastLoadDispatcher(config.speeds), None, seed=21)
        rand = run_simulation(
            config,
            RandomDispatcher(np.random.default_rng(0)),
            np.array([0.1, 0.1, 0.8]),
            seed=21,
        )
        assert (
            ll.metrics.mean_response_ratio < rand.metrics.mean_response_ratio
        )

    def test_skews_load_to_fast_machines(self):
        config = SimulationConfig(
            speeds=(1.0, 10.0), utilization=0.6, duration=6.0e4, warmup=1.5e4,
        )
        result = run_simulation(
            config, LeastLoadDispatcher(config.speeds), None, seed=22
        )
        frac = result.dispatch_fractions
        # Far more skewed than the 1/11 speed share.
        assert frac[0] < 1.0 / 11.0
        assert frac[1] > 10.0 / 11.0

    def test_oracle_feedback_at_least_as_good(self):
        base = dict(speeds=(1.0, 1.0, 4.0), utilization=0.8, duration=6.0e4,
                    warmup=1.5e4)
        stale = SimulationConfig(**base)
        oracle = SimulationConfig(
            **base, feedback=FeedbackModel(detection_window=0.0, message_delay_mean=0.0)
        )
        r_stale = run_simulation(
            stale, LeastLoadDispatcher(stale.speeds), None, seed=23
        )
        r_oracle = run_simulation(
            oracle, LeastLoadDispatcher(oracle.speeds), None, seed=23
        )
        # Identical streams: fresher information can only help (allow noise).
        assert (
            r_oracle.metrics.mean_response_ratio
            <= r_stale.metrics.mean_response_ratio * 1.05
        )


class TestConfigValidation:
    def test_bad_speeds(self):
        with pytest.raises(ValueError):
            SimulationConfig(speeds=(), utilization=0.5)
        with pytest.raises(ValueError):
            SimulationConfig(speeds=(0.0,), utilization=0.5)

    def test_bad_utilization(self):
        with pytest.raises(ValueError):
            SimulationConfig(speeds=(1.0,), utilization=0.0)

    def test_bad_warmup(self):
        with pytest.raises(ValueError):
            SimulationConfig(speeds=(1.0,), utilization=0.5, duration=10.0, warmup=10.0)

    def test_default_warmup_quarter(self):
        c = SimulationConfig(speeds=(1.0,), utilization=0.5, duration=100.0)
        assert c.warmup == pytest.approx(25.0)

    def test_bad_discipline(self):
        with pytest.raises(ValueError, match="discipline"):
            SimulationConfig(speeds=(1.0,), utilization=0.5, discipline="lifo")

    def test_network_matches(self):
        c = SimulationConfig(speeds=(1.0, 3.0), utilization=0.6)
        net = c.network()
        assert net.utilization == pytest.approx(0.6)
        assert net.total_speed == 4.0

    def test_scaled(self):
        c = SimulationConfig(speeds=(1.0,), utilization=0.5, duration=100.0)
        c2 = c.scaled(1000.0)
        assert c2.duration == 1000.0
        assert c2.warmup == 250.0
        assert c2.speeds == c.speeds
