"""Tests for job dispatching (repro.dispatch) — Algorithm 2 et al."""

import numpy as np
import pytest

from repro.dispatch import (
    CyclicDispatcher,
    LeastLoadDispatcher,
    RandomDispatcher,
    RoundRobinDispatcher,
)


def dispatch_sequence(dispatcher, alphas, count, sizes=None):
    dispatcher.reset(alphas)
    sizes = sizes if sizes is not None else np.ones(count)
    return [dispatcher.select(float(s)) for s in sizes[:count]]


def literal_algorithm2(alphas, count, guard_init=1.0):
    """Straightforward transcription of the paper's Algorithm 2 listing,
    used as an independent oracle for the optimized implementation."""
    alphas = np.asarray(alphas, dtype=float)
    n = alphas.size
    assign = [0] * n
    nxt = [guard_init] * n
    out = []
    for _ in range(count):
        select, minnext, norassign = -1, None, None
        for i in range(n):
            if alphas[i] == 0:
                continue
            if select == -1 or nxt[i] < minnext:
                minnext = nxt[i]
                norassign = (assign[i] + 1) / alphas[i]
                select = i
            elif nxt[i] == minnext and (assign[i] + 1) / alphas[i] < norassign:
                norassign = (assign[i] + 1) / alphas[i]
                select = i
        if assign[select] == 0:
            nxt[select] = 0.0
        nxt[select] += 1.0 / alphas[select]
        assign[select] += 1
        out.append(select)
        for i in range(n):
            if assign[i] != 0:
                nxt[i] -= 1.0
    return out


class TestRoundRobinDispatcher:
    def test_paper_example_fractions(self):
        """Section 3.2's worked example: fractions (1/8, 1/8, 1/4, 1/2).

        The text's sequence c4,c3,c4,c2,... is the *ideal* spreading the
        paper says Algorithm 2 can only approximate; the listing itself
        produces a different phase but the same exact per-cycle counts
        (4, 2, 1, 1 jobs per 8 arrivals) and an 8-periodic schedule.
        """
        seq = dispatch_sequence(
            RoundRobinDispatcher(), [1 / 8, 1 / 8, 1 / 4, 1 / 2], 32
        )
        # Strictly periodic with the cycle length 8.
        assert seq[8:] == seq[:-8]
        counts = np.bincount(seq[:8], minlength=4)
        np.testing.assert_array_equal(counts, [1, 1, 2, 4])
        # Each computer's jobs are spread: c4 never waits more than 3
        # arrivals between consecutive jobs (ideal spacing is 2).
        c4_positions = [i for i, s in enumerate(seq) if s == 3]
        gaps = np.diff(c4_positions)
        assert gaps.max() <= 3

    def test_matches_literal_algorithm2(self):
        """The clock-based implementation replays the paper listing."""
        cases = [
            [0.35, 0.22, 0.15, 0.12, 0.04, 0.04, 0.04, 0.04],
            [0.5, 0.5],
            [0.6, 0.3, 0.1],
            [1.0],
            [0.25, 0.25, 0.25, 0.25],
        ]
        for alphas in cases:
            ours = dispatch_sequence(RoundRobinDispatcher(), alphas, 500)
            oracle = literal_algorithm2(alphas, 500)
            assert ours == oracle, f"diverged for {alphas}"

    def test_equal_fractions_degenerate_to_cyclic(self):
        """Equal fractions reduce Algorithm 2 to plain round robin."""
        n = 5
        alphas = [1.0 / n] * n
        seq = dispatch_sequence(RoundRobinDispatcher(), alphas, 25)
        cyc = CyclicDispatcher()
        expected = dispatch_sequence(cyc, alphas, 25)
        # Same multiset per cycle and strictly periodic with period n.
        assert seq[n:] == seq[:-n]
        assert sorted(seq[:n]) == sorted(expected[:n])

    def test_counts_track_fractions_closely(self):
        alphas = np.array([0.35, 0.22, 0.15, 0.12, 0.04, 0.04, 0.04, 0.04])
        d = RoundRobinDispatcher()
        d.reset(alphas)
        count = 10_000
        for _ in range(count):
            d.select(1.0)
        fractions = d.assigned_counts / count
        # Round robin tracks the target to within a couple of jobs.
        np.testing.assert_allclose(fractions, alphas, atol=3.0 / count)

    def test_short_interval_proportionality(self):
        """The defining property: even short windows stay near-target."""
        alphas = np.array([0.5, 0.25, 0.25])
        d = RoundRobinDispatcher()
        d.reset(alphas)
        window = 16
        seq = [d.select(1.0) for _ in range(window * 20)]
        for w in range(20):
            chunk = seq[w * window : (w + 1) * window]
            counts = np.bincount(chunk, minlength=3)
            np.testing.assert_allclose(counts / window, alphas, atol=2.0 / window)

    def test_zero_fraction_never_selected(self):
        seq = dispatch_sequence(RoundRobinDispatcher(), [0.0, 0.6, 0.4], 200)
        assert 0 not in seq

    def test_all_zero_rejected(self):
        d = RoundRobinDispatcher()
        with pytest.raises(ValueError):
            d.reset([0.0, 0.0])  # also fails allocation-sum validation

    def test_requires_reset(self):
        with pytest.raises(RuntimeError, match="reset"):
            RoundRobinDispatcher().select(1.0)

    def test_reset_clears_state(self):
        d = RoundRobinDispatcher()
        first = dispatch_sequence(d, [0.5, 0.5], 10)
        second = dispatch_sequence(d, [0.5, 0.5], 10)
        assert first == second

    def test_guard_init_zero_changes_startup(self):
        """The guard staggers small-fraction computers' first jobs."""
        alphas = [0.4, 0.3, 0.15, 0.15]
        guarded = dispatch_sequence(RoundRobinDispatcher(guard_init=1.0), alphas, 8)
        unguarded = dispatch_sequence(RoundRobinDispatcher(guard_init=0.0), alphas, 8)
        assert guarded != unguarded
        assert unguarded == literal_algorithm2(alphas, 8, guard_init=0.0)
        # Both equal-fraction small computers (2 and 3) start earlier and
        # closer together without the guard.
        first = {s: seq.index(s) for seq in (unguarded,) for s in (2, 3)}
        first_guarded = {s: guarded.index(s) for s in (2, 3)}
        assert first[3] < first_guarded[3]

    def test_invalid_guard(self):
        with pytest.raises(ValueError):
            RoundRobinDispatcher(guard_init=-1.0)

    def test_long_run_counts_stay_exact(self):
        """No drift over long runs: counts stay within one cycle of the
        target and the `next` fields stay bounded."""
        alphas = np.array([0.35, 0.22, 0.15, 0.12, 0.04, 0.04, 0.04, 0.04])
        d = RoundRobinDispatcher()
        d.reset(alphas)
        count = 200_000
        for _ in range(count):
            d.select(1.0)
        np.testing.assert_allclose(d.assigned_counts / count, alphas, atol=2e-5)
        # `next` values stay within ~one inter-selection period.
        assert np.all(np.abs(d.next_fields) <= 1.0 / alphas.min() + 1.0)

    def test_next_fields_property(self):
        d = RoundRobinDispatcher()
        d.reset([0.5, 0.5])
        np.testing.assert_allclose(d.next_fields, [1.0, 1.0])
        d.select(1.0)
        # Winner: next = 0 + 2 - 1 = 1; loser: untouched guard 1.
        np.testing.assert_allclose(sorted(d.next_fields), [1.0, 1.0])


class TestRandomDispatcher:
    def test_frequencies_match_alphas(self, rng):
        alphas = np.array([0.1, 0.2, 0.3, 0.4])
        d = RandomDispatcher(rng)
        d.reset(alphas)
        n = 100_000
        targets = d.select_batch(np.ones(n))
        freq = np.bincount(targets, minlength=4) / n
        np.testing.assert_allclose(freq, alphas, atol=0.01)

    def test_batch_equals_sequential(self):
        alphas = [0.2, 0.5, 0.3]
        d1 = RandomDispatcher(np.random.default_rng(5))
        d1.reset(alphas)
        seq = [d1.select(1.0) for _ in range(200)]
        d2 = RandomDispatcher(np.random.default_rng(5))
        d2.reset(alphas)
        batch = d2.select_batch(np.ones(200))
        assert seq == batch.tolist()

    def test_zero_fraction_never_selected(self, rng):
        d = RandomDispatcher(rng)
        d.reset([0.0, 1.0])
        assert set(d.select_batch(np.ones(1000)).tolist()) == {1}

    def test_deterministic_given_seed(self):
        a = RandomDispatcher(np.random.default_rng(1))
        b = RandomDispatcher(np.random.default_rng(1))
        a.reset([0.5, 0.5])
        b.reset([0.5, 0.5])
        np.testing.assert_array_equal(
            a.select_batch(np.ones(100)), b.select_batch(np.ones(100))
        )

    def test_requires_reset(self):
        with pytest.raises(RuntimeError, match="reset"):
            RandomDispatcher(np.random.default_rng(0)).select(1.0)


class TestCyclicDispatcher:
    def test_cycles_in_order(self):
        seq = dispatch_sequence(CyclicDispatcher(), [0.25] * 4, 8)
        assert seq == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_skips_zero_fractions(self):
        seq = dispatch_sequence(CyclicDispatcher(), [0.0, 0.5, 0.5], 4)
        assert seq == [1, 2, 1, 2]

    def test_batch_equals_sequential(self):
        d1 = CyclicDispatcher()
        seq = dispatch_sequence(d1, [1 / 3] * 3, 10)
        d2 = CyclicDispatcher()
        d2.reset([1 / 3] * 3)
        assert d2.select_batch(np.ones(10)).tolist() == seq

    def test_batch_position_advances(self):
        d = CyclicDispatcher()
        d.reset([0.5, 0.5])
        first = d.select_batch(np.ones(3))
        assert d.select(1.0) == (first[-1] + 1) % 2


class TestLeastLoadDispatcher:
    def test_picks_least_normalized_load(self):
        d = LeastLoadDispatcher([1.0, 2.0])
        d.reset(None)
        # Empty queues: normalized (0+1)/1=1 vs (0+1)/2=0.5 → server 1.
        assert d.select(1.0) == 1
        # Now q=[0,1]: 1/1 vs 2/2=1 → tie → fastest wins (server 1).
        assert d.select(1.0) == 1
        # q=[0,2]: 1 vs 3/2 → server 0.
        assert d.select(1.0) == 0

    def test_load_update_decrements(self):
        d = LeastLoadDispatcher([1.0, 1.0])
        d.reset(None)
        d.select(1.0)
        busy = int(np.argmax(d.known_queue_lengths))
        d.on_load_update(busy)
        np.testing.assert_array_equal(d.known_queue_lengths, [0, 0])

    def test_update_below_zero_raises(self):
        d = LeastLoadDispatcher([1.0])
        d.reset(None)
        with pytest.raises(RuntimeError, match="double-counted"):
            d.on_load_update(0)

    def test_update_out_of_range(self):
        d = LeastLoadDispatcher([1.0])
        d.reset(None)
        with pytest.raises(IndexError):
            d.on_load_update(5)

    def test_is_dynamic(self):
        assert LeastLoadDispatcher([1.0]).is_static is False

    def test_reset_with_alphas_validates_size(self):
        d = LeastLoadDispatcher([1.0, 1.0])
        with pytest.raises(ValueError, match="fractions"):
            d.reset([1.0])

    def test_requires_reset(self):
        with pytest.raises(RuntimeError, match="reset"):
            LeastLoadDispatcher([1.0]).select(1.0)

    def test_invalid_speeds(self):
        with pytest.raises(ValueError):
            LeastLoadDispatcher([0.0])
        with pytest.raises(ValueError):
            LeastLoadDispatcher([])

    def test_distribution_skews_to_fast_machines(self):
        """Sanity echo of Table 1: under backlog the dynamic policy
        keeps normalized queues equal, i.e. queue length ∝ speed."""
        speeds = [1.0, 4.0]
        d = LeastLoadDispatcher(speeds)
        d.reset(None)
        for _ in range(100):  # no departures: pure accumulation
            d.select(1.0)
        q = d.known_queue_lengths
        assert q[1] / q[0] == pytest.approx(4.0, rel=0.1)
