"""Tests for executor hardening: retries, timeouts, crash recovery,
quarantine, and sweep checkpointing.

Crash/stall injection uses the module-level ``_TEST_WORKER_HOOK`` seam:
set before the pool forks, it runs inside each worker ahead of the real
task.  Hooks coordinate through flag files so a task can fail exactly
once and then succeed — the retry path must finish the job.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core import executor as ex
from repro.core.checkpoint import SweepCheckpoint
from repro.core.executor import (
    GridTaskError,
    ReplicationTask,
    TaskFailure,
    run_replication_grid,
    shutdown_shared_executor,
)
from repro.rng import replication_seeds
from repro.sim import SimulationConfig

SMOKE = dict(speeds=(1.0, 1.0, 10.0), utilization=0.6, duration=5.0e3)


def _tasks(policies=("ORR",), replications=2):
    config = SimulationConfig(**SMOKE)
    seeds = replication_seeds(2000, replications)
    return [
        ReplicationTask(
            key=(1.0, p, r), config=config, policy_name=p,
            estimation_error=None, seed=seed,
        )
        for p in policies
        for r, seed in enumerate(seeds)
    ]


@pytest.fixture
def worker_hook():
    """Install a worker hook with a clean pool; restore both after."""
    shutdown_shared_executor()

    def install(hook):
        ex._TEST_WORKER_HOOK = hook

    yield install
    ex._TEST_WORKER_HOOK = None
    shutdown_shared_executor()


def _crash_once_hook(flag: str, victim_key, sig=None):
    """Crash (or raise) the first time *victim_key* is seen."""

    def hook(task):
        if task.key == victim_key and not os.path.exists(flag):
            with open(flag, "w") as fh:
                fh.write("crashed")
            if sig is None:
                raise RuntimeError("injected task failure")
            os.kill(os.getpid(), sig)

    return hook


class TestRetries:
    def test_serial_retry_recovers(self, worker_hook, tmp_path):
        tasks = _tasks()
        flag = str(tmp_path / "flag")
        worker_hook(_crash_once_hook(flag, tasks[0].key))
        report = run_replication_grid(tasks, n_jobs=1, retries=2)
        assert report.retried == 1
        assert set(report.outcomes) == {t.key for t in tasks}

    def test_serial_no_retries_still_aggregates_error(self, worker_hook,
                                                      tmp_path):
        tasks = _tasks()
        flag = str(tmp_path / "flag")
        worker_hook(_crash_once_hook(flag, tasks[0].key))
        with pytest.raises(GridTaskError, match="grid tasks failed"):
            run_replication_grid(tasks, n_jobs=1)

    def test_parallel_retry_recovers(self, worker_hook, tmp_path):
        tasks = _tasks(replications=3)
        flag = str(tmp_path / "flag")
        worker_hook(_crash_once_hook(flag, tasks[1].key))
        report = run_replication_grid(tasks, n_jobs=2, retries=2)
        assert report.retried >= 1
        assert set(report.outcomes) == {t.key for t in tasks}

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retries"):
            run_replication_grid(_tasks(), retries=-1)


class TestCrashRecovery:
    def test_killed_worker_matches_undisturbed_run(self, worker_hook,
                                                   tmp_path):
        tasks = _tasks(policies=("ORR", "WRR"), replications=2)
        undisturbed = run_replication_grid(tasks, n_jobs=1)

        flag = str(tmp_path / "flag")
        worker_hook(_crash_once_hook(flag, tasks[2].key, sig=signal.SIGKILL))
        report = run_replication_grid(tasks, n_jobs=2, retries=2)

        assert os.path.exists(flag)  # the kill really happened
        assert set(report.outcomes) == set(undisturbed.outcomes)
        for key, expected in undisturbed.outcomes.items():
            got = report.outcomes[key]
            assert got[:4] == expected[:4]
            np.testing.assert_array_equal(got[4], expected[4])

    def test_unrecoverable_crash_raises_structured_error(self, worker_hook):
        def always_die(task):
            if task.key[1] == "WRR":
                os.kill(os.getpid(), signal.SIGKILL)

        tasks = _tasks(policies=("ORR", "WRR"), replications=1)
        worker_hook(always_die)
        with pytest.raises(GridTaskError, match="grid tasks failed") as err:
            run_replication_grid(tasks, n_jobs=2, retries=1)
        assert all(isinstance(f, TaskFailure) for f in err.value.failures)
        assert {f.key[1] for f in err.value.failures} == {"WRR"}


class TestTimeout:
    def test_stuck_task_times_out_and_retries(self, worker_hook, tmp_path):
        flag = str(tmp_path / "flag")
        tasks = _tasks(replications=2)

        def stall_once(task):
            if task.key == tasks[0].key and not os.path.exists(flag):
                with open(flag, "w") as fh:
                    fh.write("stalled")
                time.sleep(15.0)

        worker_hook(stall_once)
        t0 = time.monotonic()
        report = run_replication_grid(tasks, n_jobs=2, retries=1,
                                      task_timeout=1.5)
        assert time.monotonic() - t0 < 14.0  # did not wait out the stall
        assert set(report.outcomes) == {t.key for t in tasks}
        assert report.retried >= 1

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError, match="task_timeout"):
            run_replication_grid(_tasks(), task_timeout=0.0)


class TestQuarantine:
    def test_quarantine_reports_instead_of_raising(self, worker_hook):
        def poison(task):
            if task.key[1] == "WRR":
                raise RuntimeError("poison task")

        tasks = _tasks(policies=("ORR", "WRR"), replications=2)
        worker_hook(poison)
        report = run_replication_grid(tasks, n_jobs=1, quarantine=True)
        assert {f.key[1] for f in report.failures} == {"WRR"}
        assert {k[1] for k in report.outcomes} == {"ORR"}
        described = report.failures[0].describe()
        assert "WRR" in described and "point" in described

    def test_failure_names_point_policy_replication(self):
        failure = TaskFailure(
            key=(4.0, "ORR", 1), policy_name="ORR", attempts=3,
            error="Traceback ...\nRuntimeError: boom",
        )
        text = failure.describe()
        assert "point 4.0" in text
        assert "policy ORR" in text
        assert "replication 1" in text
        assert "3 attempt" in text
        assert "boom" in text

    def test_sweep_survives_quarantined_policy(self, worker_hook):
        from repro.experiments import SCALES, run_policy_sweep
        from repro.experiments.configs import skewness_config

        def poison(task):
            if task.key[1] == "WRR":
                raise RuntimeError("poison task")

        worker_hook(poison)
        result = run_policy_sweep(
            "t", "t", "x", [4.0],
            lambda x: skewness_config(x, 0.6),
            ["ORR", "WRR"],
            SCALES["smoke"].with_replications(1),
            quarantine=True,
        )
        assert "ORR" in result.cells[4.0]
        assert "WRR" not in result.cells[4.0]
        assert len(result.failures) == 1


class TestCheckpoint:
    def test_resume_skips_finished_cells(self, worker_hook, tmp_path):
        path = tmp_path / "sweep.jsonl"
        tasks = _tasks(policies=("ORR", "WRR"), replications=2)
        first = run_replication_grid(tasks, n_jobs=1,
                                     checkpoint=SweepCheckpoint(path))
        assert first.checkpoint_hits == 0
        assert len(SweepCheckpoint(path)) == len(tasks)

        # Any recomputation would now blow up inside the worker.
        def explode(task):
            raise AssertionError("cell recomputed despite checkpoint")

        worker_hook(explode)
        second = run_replication_grid(tasks, n_jobs=1,
                                      checkpoint=SweepCheckpoint(path))
        assert second.checkpoint_hits == len(tasks)
        assert set(second.outcomes) == set(first.outcomes)
        for key in first.outcomes:
            assert second.outcomes[key][:4] == first.outcomes[key][:4]

    def test_partial_checkpoint_completes_rest(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        tasks = _tasks(policies=("ORR", "WRR"), replications=2)
        half = tasks[: len(tasks) // 2]
        run_replication_grid(half, n_jobs=1, checkpoint=SweepCheckpoint(path))

        report = run_replication_grid(tasks, n_jobs=1,
                                      checkpoint=SweepCheckpoint(path))
        assert report.checkpoint_hits == len(half)
        assert set(report.outcomes) == {t.key for t in tasks}
        # The file now covers the full grid.
        assert len(SweepCheckpoint(path)) == len(tasks)

    def test_corrupt_lines_recompute(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        tasks = _tasks(replications=2)
        run_replication_grid(tasks, n_jobs=1, checkpoint=SweepCheckpoint(path))
        lines = path.read_text().splitlines()
        lines[0] = lines[0][: len(lines[0]) // 2]  # torn append
        path.write_text("\n".join(lines) + "\n")

        report = run_replication_grid(tasks, n_jobs=1,
                                      checkpoint=SweepCheckpoint(path))
        assert report.checkpoint_hits == len(tasks) - 1
        assert set(report.outcomes) == {t.key for t in tasks}

    def test_checkpoint_round_trips_outcomes(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        cp = SweepCheckpoint(path)
        outcome = (1.5, 0.75, 0.2, 123, np.asarray([0.25, 0.75]), 0.01)
        cp.record((2.0, "ORR", 0), outcome)
        loaded = cp.load()[(2.0, "ORR", 0)]
        assert loaded[:4] == outcome[:4]
        np.testing.assert_array_equal(loaded[4], outcome[4])
        assert loaded[5] == outcome[5]
