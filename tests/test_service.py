"""Tests for the quasi-static scheduler service (repro.service).

Includes the two issue acceptance checks: stationary-workload service
MRT within 5% of oracle static ORR, and recovery to within 5% of the
new oracle allocation within two re-solve periods after a 2× step in λ.
"""

import numpy as np
import pytest

from repro.allocation.optimized import optimized_fractions
from repro.dispatch.round_robin import RoundRobinDispatcher
from repro.distributions import distribution_from_mean_cv
from repro.queueing.network import HeterogeneousNetwork
from repro.service import (
    AdmissionGate,
    SchedulerService,
    ServerBank,
    ServiceConfig,
    SyntheticJobSource,
    TraceJobSource,
)
from repro.sim.arrivals import Workload
from repro.sim.modulated import step_profile

SPEEDS = (1.0, 2.0, 3.0)


def make_source(rho, seed, *, profile=None, cv=1.0):
    workload = Workload(
        total_speed=sum(SPEEDS),
        utilization=rho,
        size_distribution=distribution_from_mean_cv(1.0, 1.0),
        arrival_cv=cv,
        rate_profile=profile,
    )
    return SyntheticJobSource(workload, seed)


# ----------------------------------------------------------------------
# ServerBank: windowed replay with carried backlog
# ----------------------------------------------------------------------


class TestServerBank:
    def test_windowed_replay_equals_whole(self):
        rng = np.random.default_rng(0)
        n_jobs = 400
        times = np.sort(rng.uniform(0.0, 100.0, n_jobs))
        sizes = rng.exponential(1.0, n_jobs)
        targets = rng.integers(0, len(SPEEDS), n_jobs)

        whole = ServerBank(SPEEDS)
        dep_whole, svc_whole = whole.replay_window(targets, times, sizes)

        chunked = ServerBank(SPEEDS)
        dep_parts, svc_parts = [], []
        for lo, hi in [(0, 100), (100, 150), (150, 400)]:
            d, s = chunked.replay_window(
                targets[lo:hi], times[lo:hi], sizes[lo:hi]
            )
            dep_parts.append(d)
            svc_parts.append(s)
        np.testing.assert_allclose(
            np.concatenate(dep_parts), dep_whole, rtol=1e-12
        )
        np.testing.assert_allclose(
            np.concatenate(svc_parts), svc_whole, rtol=1e-12
        )
        np.testing.assert_allclose(chunked.free_at, whole.free_at, rtol=1e-12)

    def test_fcfs_order_and_backlog(self):
        bank = ServerBank([1.0])
        dep, svc = bank.replay_window(
            np.zeros(3, dtype=int),
            np.array([0.0, 0.1, 0.2]),
            np.array([2.0, 1.0, 1.0]),
        )
        np.testing.assert_allclose(dep, [2.0, 3.0, 4.0])
        np.testing.assert_allclose(svc, [2.0, 1.0, 1.0])
        assert bank.free_at[0] == 4.0
        assert bank.backlog_at(1.5)[0] == pytest.approx(2.5)
        # An empty window leaves the backlog untouched.
        bank.replay_window(np.empty(0, dtype=int), np.empty(0), np.empty(0))
        assert bank.free_at[0] == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerBank([1.0, -2.0])
        bank = ServerBank([1.0])
        with pytest.raises(ValueError):
            bank.replay_window(np.zeros(2, dtype=int), np.zeros(3), np.zeros(3))


# ----------------------------------------------------------------------
# Admission gate
# ----------------------------------------------------------------------


class TestAdmissionGate:
    def test_exact_long_run_fraction(self):
        gate = AdmissionGate()
        admitted = sum(gate.admit_mask(100, 0.7).sum() for _ in range(10))
        assert int(admitted) == 700

    def test_keep_all_and_validation(self):
        gate = AdmissionGate()
        assert gate.admit_mask(5, 1.0).all()
        assert not gate.admit_mask(5, 0.0).any()
        with pytest.raises(ValueError):
            gate.admit_mask(5, 1.2)

    def test_even_spacing(self):
        mask = AdmissionGate().admit_mask(10, 0.5)
        assert mask.sum() == 5
        # Maximally even: no two consecutive shed decisions at f=0.5.
        assert not np.any(~mask[:-1] & ~mask[1:])


# ----------------------------------------------------------------------
# Trace source
# ----------------------------------------------------------------------


class TestTraceJobSource:
    def test_incremental_slices(self):
        src = TraceJobSource([1.0, 2.0, 3.0, 4.0], [1.0, 1.0, 2.0, 2.0])
        t1, s1 = src.jobs_until(2.5)
        np.testing.assert_array_equal(t1, [1.0, 2.0])
        t2, _ = src.jobs_until(10.0)
        np.testing.assert_array_equal(t2, [3.0, 4.0])
        assert src.remaining == 0
        with pytest.raises(ValueError):
            src.jobs_until(5.0)  # horizon went backwards

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceJobSource([2.0, 1.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            TraceJobSource([1.0], [0.0])


# ----------------------------------------------------------------------
# Acceptance: stationary MRT vs oracle static ORR
# ----------------------------------------------------------------------


def oracle_mrt(alphas, times, sizes):
    dispatcher = RoundRobinDispatcher()
    dispatcher.reset(alphas)
    targets = dispatcher.select_batch(sizes)
    bank = ServerBank(SPEEDS)
    departures, _ = bank.replay_window(targets, times, sizes)
    return float((departures - times).mean())


class TestServiceAcceptance:
    def test_stationary_mrt_within_5pct_of_oracle(self):
        rho = 0.7
        times, sizes = make_source(rho, seed=42).jobs_until(5000.0)
        config = ServiceConfig(
            speeds=SPEEDS, duration=5000.0, control_period=100.0
        )
        report = SchedulerService(config, TraceJobSource(times, sizes)).run()
        assert report.clean_shutdown
        assert report.jobs_shed == 0  # stationary ρ=0.7 must not shed
        assert report.jobs_dispatched == times.size

        oracle = optimized_fractions(
            HeterogeneousNetwork(np.asarray(SPEEDS), utilization=rho)
        )
        baseline = oracle_mrt(oracle, times, sizes)
        gap = abs(report.time_averaged_mrt - baseline) / baseline
        assert gap < 0.05, f"service MRT off oracle by {gap:.1%}"

    def test_step_recovery_within_two_resolve_periods(self):
        rho, period, step_at, duration = 0.35, 100.0, 3000.0, 6000.0
        profile = step_profile(step_time=step_at, factor=2.0, horizon=duration)
        source = make_source(rho, seed=7, profile=profile)
        config = ServiceConfig(
            speeds=SPEEDS, duration=duration, control_period=period
        )
        report = SchedulerService(config, source).run()

        network = HeterogeneousNetwork(np.asarray(SPEEDS), utilization=rho)
        oracle_post = optimized_fractions(network.with_utilization(2 * rho))
        recovered = [
            w for w in report.windows if w.end >= step_at + 2 * period
        ]
        assert recovered, "no windows after the recovery deadline"
        first = recovered[0]
        err = float(np.max(np.abs(first.alphas - oracle_post)))
        assert err < 0.05, (
            f"allocation {first.alphas} still {err:.3f} from oracle "
            f"{oracle_post} two periods after the step"
        )
        # ...and it stays recovered, not a lucky sample.
        tail_err = np.mean(
            [float(np.max(np.abs(w.alphas - oracle_post))) for w in recovered]
        )
        assert tail_err < 0.05


# ----------------------------------------------------------------------
# Service behaviour
# ----------------------------------------------------------------------


class TestSchedulerService:
    def test_deterministic_given_seed(self):
        config = ServiceConfig(
            speeds=SPEEDS, duration=1000.0, control_period=100.0
        )
        reports = [
            SchedulerService(config, make_source(0.6, seed=5)).run()
            for _ in range(2)
        ]
        a, b = reports
        assert a.jobs_dispatched == b.jobs_dispatched
        assert a.swaps == b.swaps
        assert a.time_averaged_mrt == b.time_averaged_mrt
        np.testing.assert_array_equal(a.final_alphas, b.final_alphas)

    def test_sheds_under_sustained_overload(self):
        duration = 5000.0
        profile = step_profile(step_time=1000.0, factor=1.6, horizon=duration)
        source = make_source(0.8, seed=11, profile=profile)  # offered ρ=1.28
        config = ServiceConfig(
            speeds=SPEEDS, duration=duration, control_period=100.0
        )
        report = SchedulerService(config, source).run()
        assert report.clean_shutdown
        assert report.jobs_shed > 0
        late = [w for w in report.windows if w.start >= duration * 0.7]
        shed_fraction = sum(w.shed for w in late) / sum(w.offered for w in late)
        # Deterministic thinning targets 1 − threshold/ρ̂ ≈ 0.26 here.
        assert shed_fraction == pytest.approx(1.0 - 0.95 / 1.28, abs=0.08)

    def test_report_serializes(self):
        import json

        config = ServiceConfig(
            speeds=SPEEDS, duration=500.0, control_period=100.0
        )
        report = SchedulerService(config, make_source(0.5, seed=3)).run()
        payload = json.dumps(report.as_dict())
        assert "jobs_dispatched" in payload
        assert report.allocation_history()
        assert len(report.windows) == 5

    def test_swap_only_at_boundaries(self):
        """Within a window the dispatcher object is untouched; swaps are
        visible only as new dispatcher objects between windows."""
        config = ServiceConfig(
            speeds=SPEEDS, duration=800.0, control_period=100.0
        )
        service = SchedulerService(config, make_source(0.6, seed=9))
        seen = [service.dispatcher]
        report = service.run()
        assert report.swaps == sum(w.swapped for w in report.windows)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(speeds=(), duration=10.0, control_period=1.0)
        with pytest.raises(ValueError):
            ServiceConfig(speeds=(1.0,), duration=10.0, control_period=20.0)
        with pytest.raises(ValueError):
            ServiceConfig(speeds=(1.0, -1.0), duration=10.0, control_period=1.0)
