"""Protocol conformance tests for the networked dispatcher wire format.

Property-based (hypothesis) round-trips over every message type, plus
the forward/backward-compatibility contract: unknown fields are
tolerated, a foreign protocol version is rejected loudly, and corrupt
frames name what went wrong.
"""

import asyncio
import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    PROTOCOL_VERSION,
    Complete,
    Dispatch,
    Heartbeat,
    ProtocolError,
    Register,
    Resolve,
    Shutdown,
    Submit,
    VersionMismatch,
    decode,
    encode,
    pack,
    unpack,
)
from repro.net.protocol import MAX_FRAME_BYTES, read_message, write_message

# ---------------------------------------------------------------------------
# Strategies: one per message type, finite floats only (JSON has no NaN)
# ---------------------------------------------------------------------------

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
float_seq = st.lists(finite, max_size=8).map(tuple)
window = st.integers(min_value=0, max_value=10_000)
server = st.integers(min_value=0, max_value=63)

submits = st.builds(
    Submit, window=window, times=float_seq, sizes=float_seq,
    final=st.booleans(),
)
dispatches = st.builds(
    Dispatch, window=window, server=server, times=float_seq, sizes=float_seq,
)
completes = st.builds(
    Complete, window=window, server=server, departures=float_seq,
    service_times=float_seq,
)
heartbeats = st.builds(
    Heartbeat, server=server,
    window=st.integers(min_value=-1, max_value=10_000), free_at=finite,
)
resolves = st.builds(
    Resolve, window=window, alphas=float_seq, swapped=st.booleans(),
    reason=st.sampled_from(["periodic", "membership", "slo"]),
    offered=st.integers(min_value=0, max_value=10**6),
    admitted=st.integers(min_value=0, max_value=10**6),
    shed=st.integers(min_value=0, max_value=10**6),
    lost=st.integers(min_value=0, max_value=10**6),
    final=st.booleans(),
    capacity=st.floats(
        min_value=0.0, allow_nan=False, allow_infinity=False, width=64
    ),
)
registers = st.builds(
    Register, server=server,
    speed=st.floats(
        min_value=0.001, allow_nan=False, allow_infinity=False, width=64
    ),
    window=window,
    incarnation=st.integers(min_value=0, max_value=100),
)
shutdowns = st.builds(Shutdown, reason=st.text(max_size=40))

messages = st.one_of(
    submits, dispatches, completes, heartbeats, registers, resolves,
    shutdowns,
)


# ---------------------------------------------------------------------------
# Round-trip properties
# ---------------------------------------------------------------------------


class TestRoundTrip:
    @given(msg=messages)
    @settings(max_examples=200)
    def test_codec_round_trip_is_exact(self, msg):
        assert decode(encode(msg)) == msg

    @given(msg=messages)
    @settings(max_examples=100)
    def test_frame_round_trip_is_exact(self, msg):
        assert unpack(pack(msg)) == msg

    @given(msg=messages)
    @settings(max_examples=100)
    def test_wire_json_floats_round_trip_bitwise(self, msg):
        # The equivalence harness leans on repr-exact JSON floats; a
        # codec that quantized them would still pass dataclass equality
        # on small ints, so check the raw payload too.
        body = pack(msg)[4:]
        assert json.loads(body) == encode(msg)

    def test_every_type_has_a_distinct_tag(self):
        tags = {
            cls.type
            for cls in (
                Submit, Dispatch, Complete, Heartbeat, Register, Resolve,
                Shutdown,
            )
        }
        assert len(tags) == 7


# ---------------------------------------------------------------------------
# Compatibility contract
# ---------------------------------------------------------------------------


class TestCompatibility:
    def test_unknown_fields_are_tolerated(self):
        obj = encode(Heartbeat(server=3, window=7, free_at=1.5))
        obj["ext_debug_tag"] = "from-a-newer-peer"
        obj["ext_numbers"] = [1, 2, 3]
        assert decode(obj) == Heartbeat(server=3, window=7, free_at=1.5)

    @given(version=st.integers().filter(lambda v: v != PROTOCOL_VERSION))
    @settings(max_examples=50)
    def test_foreign_version_is_rejected(self, version):
        obj = encode(Shutdown(reason="x"))
        obj["v"] = version
        with pytest.raises(VersionMismatch) as excinfo:
            decode(obj)
        message = str(excinfo.value)
        assert str(version) in message
        assert str(PROTOCOL_VERSION) in message

    def test_missing_version_is_a_version_mismatch(self):
        with pytest.raises(VersionMismatch):
            decode({"type": "shutdown"})

    def test_missing_required_field_names_it(self):
        obj = encode(Dispatch(window=1, server=2, times=(0.5,), sizes=(1.0,)))
        del obj["sizes"]
        with pytest.raises(ProtocolError, match="sizes"):
            decode(obj)

    def test_optional_fields_take_defaults(self):
        obj = encode(Submit(window=0, times=(), sizes=()))
        del obj["final"]
        assert decode(obj) == Submit(window=0, times=(), sizes=())

    def test_unknown_type_lists_known_ones(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode({"v": PROTOCOL_VERSION, "type": "teleport"})

    def test_non_object_payload_is_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode([1, 2, 3])

    def test_sequence_fields_normalize_to_tuples(self):
        obj = encode(Complete(
            window=1, server=0, departures=(1.0, 2.0), service_times=(0.5, 0.5)
        ))
        msg = decode(json.loads(json.dumps(obj)))  # lists after JSON
        assert isinstance(msg.departures, tuple)
        assert isinstance(msg.service_times, tuple)


# ---------------------------------------------------------------------------
# Frame hygiene
# ---------------------------------------------------------------------------


class TestFrames:
    def test_truncated_frame_is_rejected(self):
        frame = pack(Shutdown())
        with pytest.raises(ProtocolError, match="length prefix"):
            unpack(frame[:-1])

    def test_short_header_is_rejected(self):
        with pytest.raises(ProtocolError, match="truncated"):
            unpack(b"\x00\x00")

    def test_garbage_payload_is_rejected(self):
        body = b"not json at all"
        frame = struct.pack(">I", len(body)) + body
        with pytest.raises(ProtocolError, match="not valid JSON"):
            unpack(frame)

    def test_oversize_frame_refused_on_pack(self):
        msg = Shutdown(reason="x" * (MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="cap"):
            pack(msg)

    def test_pack_cap_violation_names_type_and_length(self):
        # The contract: a refused frame must say *which* message type
        # overflowed and *how large* the frame was, so an operator can
        # find the producer without a packet capture.
        msg = Shutdown(reason="x" * (MAX_FRAME_BYTES + 1))
        body_len = len(
            json.dumps(encode(msg), separators=(",", ":")).encode()
        )
        with pytest.raises(ProtocolError) as excinfo:
            pack(msg)
        text = str(excinfo.value)
        assert "'shutdown'" in text
        assert str(body_len) in text
        assert str(MAX_FRAME_BYTES) in text

    def test_read_cap_violation_names_length(self):
        bad = MAX_FRAME_BYTES + 17

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">I", bad))
            with pytest.raises(ProtocolError) as excinfo:
                await read_message(reader)
            text = str(excinfo.value)
            assert str(bad) in text
            assert str(MAX_FRAME_BYTES) in text

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Async stream I/O (StreamReader fed by hand — no sockets needed)
# ---------------------------------------------------------------------------


def _run(coro):
    return asyncio.run(coro)


class _SinkWriter:
    """Minimal stand-in capturing write_message output."""

    def __init__(self):
        self.buffer = b""

    def write(self, data):
        self.buffer += data


class TestStreamIO:
    def test_read_back_what_was_written(self):
        async def scenario():
            sink = _SinkWriter()
            sent = [
                Heartbeat(server=1),
                Dispatch(window=0, server=1, times=(0.25,), sizes=(2.0,)),
                Shutdown(reason="done"),
            ]
            for msg in sent:
                write_message(sink, msg)
            reader = asyncio.StreamReader()
            reader.feed_data(sink.buffer)
            reader.feed_eof()
            got = []
            while (msg := await read_message(reader)) is not None:
                got.append(msg)
            assert got == sent

        _run(scenario())

    def test_clean_eof_returns_none(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            assert await read_message(reader) is None

        _run(scenario())

    def test_eof_mid_frame_raises(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(pack(Shutdown())[:-2])
            reader.feed_eof()
            with pytest.raises(ProtocolError, match="mid-frame"):
                await read_message(reader)

        _run(scenario())

    def test_eof_mid_header_raises(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00")
            reader.feed_eof()
            with pytest.raises(ProtocolError, match="mid-frame"):
                await read_message(reader)

        _run(scenario())

    def test_absurd_length_prefix_refused_before_allocating(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="cap"):
                await read_message(reader)

        _run(scenario())
