"""Bit-identity of the vectorized serve hot path.

The serving loop's throughput work (compiled carry-state window sweep,
memoized dispatch slices, cumulative-sum admission, batched estimator
folds) is only admissible because every piece reproduces the per-job
reference computation *exactly* — same bits, not same-to-tolerance.
These tests pin each piece against its reference and then the whole
window pipeline against the untouched per-job loop, on whichever kernel
path (compiled or numpy fallback) the environment provides; the CI
matrix runs the file on both.
"""

import heapq
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dispatch import (
    RoundRobinDispatcher,
    SequenceRoundRobin,
    dispatch_sequence_slice,
)
from repro.distributions.fitting import distribution_from_mean_cv
from repro.metrics.online import (
    EwmaEstimator,
    EwmaRateEstimator,
    P2Quantile,
    WindowedRateEstimator,
)
from repro.obs.gate import check_gate
from repro.service.checkpoint import ServiceCheckpoint
from repro.service.controller import AdmissionGate
from repro.service.loop import (
    SchedulerService,
    ServiceConfig,
    ServiceCrash,
    ServiceReport,
)
from repro.service.replay import ServerBank
from repro.service.sources import SyntheticJobSource, Workload
from repro.sim import ckernel

# ---------------------------------------------------------------------------
# Strategies: job streams are generated from a drawn seed so hypothesis
# shrinks over geometry (counts, splits) while the floats stay realistic.
# ---------------------------------------------------------------------------

seed_strategy = st.integers(min_value=0, max_value=2**31 - 1)
nservers_strategy = st.integers(min_value=1, max_value=6)
njobs_strategy = st.integers(min_value=0, max_value=300)


def _stream(seed: int, n: int, nservers: int):
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.exponential(0.5, n))
    sizes = rng.lognormal(mean=0.0, sigma=1.2, size=n)
    targets = rng.integers(0, nservers, n)
    speeds = rng.uniform(0.2, 5.0, nservers)
    return times, sizes, targets.astype(np.int64), speeds


def _chunks(n: int, seed: int):
    """A random partition of range(n) into contiguous windows."""
    rng = np.random.default_rng(seed ^ 0x5EED)
    cuts = np.sort(rng.integers(0, n + 1, rng.integers(0, 6)))
    return np.concatenate([[0], cuts, [n]]).astype(int)


# ---------------------------------------------------------------------------
# Carry-state window sweep
# ---------------------------------------------------------------------------


class TestWindowSweepBitIdentity:
    @given(seed=seed_strategy, n=njobs_strategy, nservers=nservers_strategy)
    @settings(max_examples=120, deadline=None)
    def test_window_split_agrees_with_whole(self, seed, n, nservers):
        """Replaying one stream in control-period chunks agrees with
        replaying it whole to float-rounding accuracy (the split
        re-bases the cumulative sums, so exact bit equality is between
        *implementations* under one chunking, not between chunkings)."""
        times, sizes, targets, speeds = _stream(seed, n, nservers)
        whole = ServerBank(speeds)
        dep_whole, svc_whole = whole.replay_window(targets, times, sizes)

        split = ServerBank(speeds)
        deps, svcs = [], []
        bounds = _chunks(n, seed)
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            d, s = split.replay_window(
                targets[lo:hi], times[lo:hi], sizes[lo:hi]
            )
            deps.append(d)
            svcs.append(s)
        dep_split = np.concatenate(deps) if deps else np.empty(0)
        svc_split = np.concatenate(svcs) if svcs else np.empty(0)

        assert np.allclose(dep_whole, dep_split, rtol=1e-12, atol=0.0)
        # Service demands never re-base: exactly equal.
        assert np.array_equal(svc_whole, svc_split)
        assert np.allclose(whole.free_at, split.free_at, rtol=1e-12, atol=0.0)

    @pytest.mark.skipif(
        ckernel.window_fn() is None, reason="compiled kernel unavailable"
    )
    @given(seed=seed_strategy, n=njobs_strategy, nservers=nservers_strategy)
    @settings(max_examples=120, deadline=None)
    def test_compiled_matches_python_across_window_splits(
        self, seed, n, nservers
    ):
        """The C carry-state sweep and the numpy Lindley recursion emit
        identical bits — departures, grouping, carried free_at — for
        every control-period chunking of the same stream.  This is the
        invariant that lets the serve loop pick either backend without
        perturbing a single report field."""
        times, sizes, targets, speeds = _stream(seed, n, nservers)
        bank_c = ServerBank(speeds)
        bank_py = ServerBank(speeds)
        bounds = _chunks(n, seed)
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            ct, cs, cg = times[lo:hi], sizes[lo:hi], targets[lo:hi]
            out_c = bank_c.replay_window_grouped(cg, ct, cs)
            # Arena views: copy before the python path reuses them.
            out_c = tuple(a.copy() for a in out_c)
            out_py = bank_py._replay_grouped_python(cg, ct, cs)
            for got, want in zip(out_c, out_py):
                assert np.array_equal(got, want)
            assert np.array_equal(bank_c.free_at, bank_py.free_at)

    def test_grouped_offsets_partition_jobs(self):
        times, sizes, targets, speeds = _stream(7, 64, 4)
        bank = ServerBank(speeds)
        dep, svc, order, offsets = bank.replay_window_grouped(
            targets, times, sizes
        )
        assert offsets[0] == 0 and offsets[-1] == times.size
        for s in range(speeds.size):
            group = order[offsets[s]:offsets[s + 1]]
            assert np.all(targets[group] == s)
            # Stable grouping: arrival order preserved within a server.
            assert np.all(np.diff(group) > 0)

    def test_out_of_range_target_rejected_without_state_damage(self):
        times, sizes, targets, speeds = _stream(11, 32, 3)
        bank = ServerBank(speeds)
        bad = targets.copy()
        bad[17] = 3
        before = bank.free_at.copy()
        with pytest.raises(ValueError, match="target out of range"):
            bank.replay_window_grouped(bad, times, sizes)
        assert np.array_equal(bank.free_at, before)


# ---------------------------------------------------------------------------
# Memoized dispatch slices
# ---------------------------------------------------------------------------


class TestSequenceRoundRobin:
    @given(
        seed=seed_strategy,
        nservers=st.integers(min_value=1, max_value=5),
        total=st.integers(min_value=0, max_value=400),
    )
    @settings(max_examples=100, deadline=None)
    def test_chunked_slices_match_live_scan(self, seed, nservers, total):
        rng = np.random.default_rng(seed)
        alphas = rng.uniform(0.05, 1.0, nservers)
        alphas = alphas / alphas.sum()

        live = RoundRobinDispatcher()
        live.reset(alphas)
        want = live.select_batch(np.zeros(total))

        fast = SequenceRoundRobin()
        fast.reset(alphas)
        got = []
        bounds = _chunks(total, seed)
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            got.append(fast.select_batch(np.zeros(hi - lo)))
        got = np.concatenate(got) if got else np.empty(0, dtype=np.int64)
        assert np.array_equal(want, got)

    def test_state_round_trips_across_dispatcher_kinds(self):
        alphas = np.array([0.5, 0.3, 0.2])
        fast = SequenceRoundRobin()
        fast.reset(alphas)
        fast.select_batch(np.zeros(17))

        # Sequence state adopted by the live dispatcher (checkpoint
        # written by the fast path, resumed on the reference path) ...
        live = RoundRobinDispatcher()
        live.reset(alphas)
        live.load_state(fast.state_dict())
        # ... and live state adopted by the fast path.
        fast2 = SequenceRoundRobin()
        fast2.reset(alphas)
        fast2.load_state(live.state_dict())

        a = live.select_batch(np.zeros(23))
        b = fast2.select_batch(np.zeros(23))
        fast3 = SequenceRoundRobin()
        fast3.reset(alphas)
        fast3.select_batch(np.zeros(17))
        want = fast3.select_batch(np.zeros(23))
        assert np.array_equal(want, a)
        assert np.array_equal(want, b)

    def test_slice_prefix_property(self):
        alphas = np.array([0.6, 0.25, 0.15])
        whole = dispatch_sequence_slice(alphas, 0, 500)
        again = np.concatenate([
            dispatch_sequence_slice(alphas, 0, 123),
            dispatch_sequence_slice(alphas, 123, 500),
        ])
        assert np.array_equal(whole, again)


# ---------------------------------------------------------------------------
# Vectorized admission gate
# ---------------------------------------------------------------------------


class TestAdmissionGateVectorized:
    @given(
        keep=st.floats(min_value=0.0, max_value=1.0),
        counts=st.lists(
            st.integers(min_value=0, max_value=200), min_size=1, max_size=12
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_scalar_accumulator(self, keep, counts):
        """Identical masks window after window; the carried accumulators
        may differ in their last bits (closed form vs running sum — the
        class docstring scopes the guarantee) but stay within the 1e-9
        epsilon that keeps future masks aligned."""
        vec = AdmissionGate()
        ref = AdmissionGate()
        for count in counts:
            got = vec.admit_mask(count, keep)
            want = ref.admit_mask_scalar(count, keep)
            assert np.array_equal(want, got)
            assert abs(vec._acc - ref._acc) < 1e-9

    def test_exact_keep_fraction_over_many_windows(self):
        gate = AdmissionGate()
        admitted = sum(
            int(gate.admit_mask(100, 0.7).sum()) for _ in range(10)
        )
        assert admitted == 700


# ---------------------------------------------------------------------------
# Batched estimator folds
# ---------------------------------------------------------------------------


class TestBatchedEstimators:
    @given(seed=seed_strategy, n=st.integers(min_value=0, max_value=400))
    @settings(max_examples=100, deadline=None)
    def test_p2_batch_equals_sequential(self, seed, n):
        xs = np.random.default_rng(seed).lognormal(0.0, 1.0, n)
        for p in (0.5, 0.99):
            batch, seq = P2Quantile(p), P2Quantile(p)
            bounds = _chunks(n, seed)
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                batch.update_batch(xs[lo:hi])
            for x in xs:
                seq.update(float(x))
            assert batch.state_dict() == seq.state_dict()

    @given(seed=seed_strategy, n=st.integers(min_value=0, max_value=300))
    @settings(max_examples=100, deadline=None)
    def test_ewma_batch_equals_sequential(self, seed, n):
        xs = np.random.default_rng(seed).exponential(1.0, n)
        batch, seq = EwmaEstimator(0.05), EwmaEstimator(0.05)
        batch.update_batch(xs)
        for x in xs:
            seq.update(float(x))
        assert batch.state_dict() == seq.state_dict()

    @given(seed=seed_strategy, n=st.integers(min_value=0, max_value=300))
    @settings(max_examples=100, deadline=None)
    def test_rate_estimators_batch_equals_sequential(self, seed, n):
        times = np.cumsum(np.random.default_rng(seed).exponential(0.3, n))
        b1, s1 = EwmaRateEstimator(0.05), EwmaRateEstimator(0.05)
        b2, s2 = WindowedRateEstimator(5.0), WindowedRateEstimator(5.0)
        bounds = _chunks(n, seed)
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            b1.observe_batch(times[lo:hi])
            b2.observe_batch(times[lo:hi])
        for t in times:
            s1.observe(float(t))
            s2.observe(float(t))
        assert b1.state_dict() == s1.state_dict()
        assert b2.state_dict() == s2.state_dict()


# ---------------------------------------------------------------------------
# The whole pipeline: vectorized window vs the per-job reference loop
# ---------------------------------------------------------------------------


def _service(reference: bool, *, seed=3, utilization=0.9, slo=None,
             checkpoint=None, checkpoint_every=10, crash_after=None):
    speeds = (1.0, 2.0, 3.0)
    cfg = ServiceConfig(
        speeds=speeds, duration=400.0, control_period=10.0,
        slo_target=slo, min_responses_to_shed=30,
    )
    wl = Workload(
        total_speed=sum(speeds), utilization=utilization,
        size_distribution=distribution_from_mean_cv(1.0, 1.0),
    )
    return SchedulerService(
        cfg, SyntheticJobSource(wl, seed), reference=reference,
        checkpoint=checkpoint, checkpoint_every=checkpoint_every,
        crash_after=crash_after,
    )


def _report_text(report) -> str:
    # JSON text keeps NaN fields comparable (nan != nan under ==).
    return json.dumps(report.as_dict(), sort_keys=True)


class TestReferenceVsFast:
    @pytest.mark.parametrize(
        "utilization,slo",
        [(0.5, None), (0.85, None), (0.9, 0.8)],
        ids=["light", "loaded", "slo-shedding"],
    )
    def test_reports_field_for_field_identical(self, utilization, slo):
        ref = _service(True, utilization=utilization, slo=slo).run()
        fast = _service(False, utilization=utilization, slo=slo).run()
        assert _report_text(ref) == _report_text(fast)
        if slo is not None:
            # The scenario must actually exercise the thinning branch.
            assert fast.jobs_shed > 0

    def test_resume_round_trip_on_fast_path(self, tmp_path):
        """serve --resume on the vectorized path: crash mid-run, restore
        from the checkpoint, and finish to a report identical to the
        uninterrupted run's."""
        full = _service(False).run()

        ck = ServiceCheckpoint(tmp_path / "state.jsonl")
        crashed = _service(
            False, checkpoint=ck, checkpoint_every=5, crash_after=17
        )
        with pytest.raises(ServiceCrash):
            crashed.run()

        resumed_service = _service(False)
        resumed_service.restore(ck.load_last())
        resumed = resumed_service.run()
        assert _report_text(full) == _report_text(resumed)


# ---------------------------------------------------------------------------
# Pending-retry heap
# ---------------------------------------------------------------------------


class TestPendingRetryHeap:
    def test_bounce_orders_by_due_then_schedule(self):
        svc = _service(False)
        # Two distinct due times plus a tie: pops must come back sorted
        # by due time with the tie broken by bounce order.
        svc._bounce(10.0, 1.0, 5.0, 0)   # due 10 + delay
        svc._bounce(2.0, 2.0, 6.0, 0)
        svc._bounce(10.0, 3.0, 7.0, 0)   # same due as the first
        popped = [heapq.heappop(svc._pending) for _ in range(3)]
        assert [r[2] for r in popped] == [2.0, 1.0, 3.0]
        assert popped[0][0] < popped[1][0] == popped[2][0]

    def test_checkpoint_format_stays_four_field(self):
        """The external checkpoint format predates the heap: 4-field
        [due, origin, size, attempts] records in due order, no heap
        internals — old checkpoints restore into the heap unchanged."""
        svc = _service(False)
        svc._bounce(10.0, 1.0, 5.0, 0)
        svc._bounce(2.0, 2.0, 6.0, 0)
        state = svc.state_dict(1, ServiceReport(config=svc.config))
        pending = state["pending"]
        assert all(len(r) == 4 for r in pending)
        assert pending == sorted(pending)

        other = _service(False)
        other.restore(state)
        assert sorted(other._pending) == sorted(
            (r[0], i, r[1], r[2], r[3]) for i, r in enumerate(pending)
        )
        # Restored pops continue in the same order as the original heap.
        a = [heapq.heappop(svc._pending)[2:] for _ in range(2)]
        b = [heapq.heappop(other._pending)[2:] for _ in range(2)]
        assert a == b


# ---------------------------------------------------------------------------
# Gate floor for the serve benchmark
# ---------------------------------------------------------------------------


class TestServeGateFloor:
    def _record(self, speedup, backend):
        return {
            "scale": "quick",
            "serve": {
                "serve_speedup": speedup,
                "report_identical": True,
                "backend": backend,
            },
        }

    def test_floor_fails_slow_compiled_serve(self):
        result = check_gate(self._record(3.0, "c"), [])
        assert not result.passed
        assert any("serve" in f for f in result.failures)

    def test_floor_passes_fast_compiled_serve(self):
        assert check_gate(self._record(25.0, "c"), []).passed

    def test_floor_skipped_on_python_fallback(self):
        assert check_gate(self._record(1.1, "python"), []).passed

    def test_identity_divergence_fails_any_backend(self):
        record = self._record(25.0, "python")
        record["serve"]["report_identical"] = False
        result = check_gate(record, [])
        assert not result.passed
