"""Property tests for the compiled FCFS cell kernel (kernel v4).

The C kernel replays FCFS with an online per-server Lindley recursion in
one arrival-order sweep; the oracle here is the original numpy pipeline
(stable sort by target, per-server :func:`fcfs_replay`, scatter back).
Bit-identity — ``np.array_equal``, not ``allclose`` — is the contract:
the C code mirrors the numpy float op order and is compiled with
``-ffp-contract=off``, so any drift is a bug.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import ckernel
from repro.sim.fastpath import fcfs_replay

pytestmark = pytest.mark.skipif(
    not ckernel.kernel_available(),
    reason="compiled kernel unavailable (no C compiler)",
)


def oracle_fcfs(times, work, speeds, targets):
    """Grouped-replay oracle: completions in arrival order."""
    comp = np.empty_like(times)
    for s in range(speeds.size):
        mask = targets == s
        comp[mask] = fcfs_replay(times[mask], work[mask], float(speeds[s]))
    return comp


def replay(times, work, speeds, plans, **kw):
    fn = ckernel.cell_fn()
    assert fn is not None
    out = ckernel.replay_cell_c(fn, times, work, speeds, plans, False, **kw)
    comp, gw, offsets, tail, ok = out
    assert ok
    # Arena-backed views: copy before the arena is reused.
    return (
        comp.copy(),
        gw.copy(),
        offsets.copy(),
        None if tail is None else tuple(t.copy() for t in tail),
    )


def case(draw_n, draw_servers, seed, *, simultaneous=False):
    rng = np.random.default_rng(seed)
    times = np.sort(rng.exponential(1.0, draw_n))
    if simultaneous and draw_n >= 2:
        # Collapse pairs onto shared instants: ties must not reorder.
        times[1::2] = times[::2][: times[1::2].size]
        times = np.sort(times)
    work = rng.exponential(1.0, draw_n) + 1e-9
    speeds = rng.uniform(0.1, 10.0, draw_servers)
    targets = rng.integers(0, draw_servers, draw_n)
    return times, work, speeds, targets


class TestOracleIdentity:
    @given(
        n=st.integers(min_value=1, max_value=400),
        nservers=st.integers(min_value=1, max_value=24),
        nplans=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_numpy_oracle(self, n, nservers, nplans, seed):
        times, work, speeds, _ = case(n, nservers, seed)
        rng = np.random.default_rng(seed + 1)
        plans = [rng.integers(0, nservers, n) for _ in range(nplans)]
        comp, gw, offsets, _ = replay(times, work, speeds, plans)
        for k, targets in enumerate(plans):
            assert np.array_equal(comp[k], oracle_fcfs(times, work, speeds, targets))
            # Grouped work must be the stable per-server grouping.
            order = np.argsort(targets, kind="stable")
            assert np.array_equal(gw[k], work[order])
            assert np.array_equal(
                offsets[k][1:] - offsets[k][:-1],
                np.bincount(targets, minlength=nservers),
            )

    @given(
        n=st.integers(min_value=1, max_value=300),
        nservers=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=2**31),
        frac=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_tail_precursors_match_numpy(self, n, nservers, seed, frac):
        times, work, speeds, targets = case(n, nservers, seed)
        cut = int(frac * n)
        comp, _, _, tail = replay(times, work, speeds, [targets], warmup_cut=cut)
        if cut >= n:
            assert tail is None
            return
        resp, ratio, pcounts = tail
        want_resp = comp[0][cut:] - times[cut:]
        assert np.array_equal(resp[0], want_resp)
        assert np.array_equal(ratio[0], want_resp / work[cut:])
        assert np.array_equal(
            pcounts[0], np.bincount(targets[cut:], minlength=nservers)
        )


class TestEdgeCases:
    def test_empty_servers(self):
        """Servers no plan routes to stay empty and do not disturb the
        completions of the servers that do get jobs."""
        times, work, speeds, _ = case(50, 8, 7)
        targets = np.zeros(50, dtype=np.int64)  # servers 1..7 idle
        comp, _, offsets, _ = replay(times, work, speeds, [targets])
        assert np.array_equal(comp[0], oracle_fcfs(times, work, speeds, targets))
        assert np.array_equal(offsets[0][2:], np.full(7, 50))

    def test_singleton_job(self):
        times = np.array([0.5])
        work = np.array([2.0])
        speeds = np.array([0.25, 4.0])
        for s in (0, 1):
            targets = np.array([s], dtype=np.int64)
            comp, _, _, _ = replay(times, work, speeds, [targets])
            assert comp[0][0] == times[0] + work[0] / speeds[s]

    def test_simultaneous_arrivals(self):
        """Ties in arrival time queue FCFS in arrival order — exactly
        what the numpy oracle's stable sort encodes."""
        times, work, speeds, targets = case(120, 4, 11, simultaneous=True)
        comp, _, _, _ = replay(times, work, speeds, [targets])
        assert np.array_equal(comp[0], oracle_fcfs(times, work, speeds, targets))

    def test_tiny_n_smaller_than_server_state(self):
        """n < 2*nservers exercises the scratch-stride floor: the fused
        sweep needs 2*nservers doubles of per-server state per thread
        even when the job count is tiny."""
        times = np.array([0.1, 0.2])
        work = np.array([1.0, 1.0])
        speeds = np.linspace(1.0, 2.0, 18)
        targets = np.array([0, 17], dtype=np.int64)
        comp, _, _, _ = replay(times, work, speeds, [targets])
        assert np.array_equal(comp[0], oracle_fcfs(times, work, speeds, targets))

    def test_out_of_range_target_flags_not_crashes(self):
        times, work, speeds, targets = case(20, 3, 3)
        bad = targets.copy()
        bad[5] = 3  # == nservers, out of range
        fn = ckernel.cell_fn()
        *_, ok = ckernel.replay_cell_c(fn, times, work, speeds, [bad], False)
        assert not ok


class TestThreadIdentity:
    @pytest.mark.skipif(
        not ckernel.openmp_enabled(), reason="kernel built without OpenMP"
    )
    def test_threads_vs_serial_bit_identical(self):
        times, work, speeds, _ = case(5000, 10, 23)
        rng = np.random.default_rng(42)
        plans = [rng.integers(0, 10, 5000) for _ in range(6)]
        before = ckernel.omp_max_threads()
        try:
            ckernel.set_omp_threads(1)
            serial = replay(times, work, speeds, plans, warmup_cut=1000)
            ckernel.set_omp_threads(4)
            threaded = replay(times, work, speeds, plans, warmup_cut=1000)
        finally:
            ckernel.set_omp_threads(before)
        assert np.array_equal(serial[0], threaded[0])
        assert np.array_equal(serial[1], threaded[1])
        assert np.array_equal(serial[2], threaded[2])
        for a, b in zip(serial[3], threaded[3]):
            assert np.array_equal(a, b)
