"""Smoke tests for the remaining experiment runners (tiny custom scale)."""

import numpy as np
import pytest

from repro.experiments import (
    Scale,
    experiment_ids,
    run_figure4,
    run_figure5,
    run_figure6,
)
from repro.experiments import extension_adaptive
from repro.experiments.figure4 import format_figure4
from repro.experiments.figure5 import format_figure5
from repro.experiments.figure6 import format_figure6

TINY = Scale("tiny", duration=1.0e4, replications=1)


class TestFigure4Runner:
    def test_smoke(self):
        result = run_figure4(TINY, sizes=(2, 8), policies=("WRAN", "ORR"))
        assert result.x_values == [2.0, 8.0]
        out = format_figure4(result)
        assert "figure4" in out
        assert "lower is better" in out  # chart present

    def test_speeds_match_size(self):
        result = run_figure4(TINY, sizes=(4,), policies=("WRR",))
        cell = result.cells[4.0]["WRR"]
        assert len(cell.config.speeds) == 4


class TestFigure5Runner:
    def test_smoke(self):
        result = run_figure5(TINY, utilizations=(0.4, 0.7), policies=("WRR", "ORR"))
        assert result.x_values == [0.4, 0.7]
        series = result.series("ORR", "mean_response_ratio")
        # Response ratio grows with load.
        assert series[1] > series[0]
        assert "figure5" in format_figure5(result)

    def test_quick_scale_boosts_replications(self):
        from repro.experiments import SCALES

        # We don't run it (expensive); check the documented behavior by
        # inspecting the scale the result carries after a tiny override.
        result = run_figure5(TINY, utilizations=(0.4,), policies=("WRR",))
        assert result.scale.replications == 1  # tiny scale untouched


class TestFigure6Runner:
    def test_smoke(self):
        result = run_figure6(
            TINY, errors=(-0.10,), utilizations=(0.5, 0.7)
        )
        assert "ORR(-10%)" in result.policies
        assert "WRR" in result.policies and "ORR" in result.policies
        assert "figure6" in format_figure6(result)

    def test_panel_selection(self):
        under = run_figure6(TINY, panel="under", utilizations=(0.5,))
        assert any("-" in p for p in under.policies if p.startswith("ORR("))
        assert not any("+" in p for p in under.policies)
        with pytest.raises(ValueError, match="panel"):
            run_figure6(TINY, panel="sideways")


class TestAdaptiveRunner:
    def test_smoke(self, monkeypatch):
        monkeypatch.setattr(extension_adaptive, "MIN_DURATION", 2.0e4)
        result = extension_adaptive.run_adaptive_extension(TINY)
        assert set(result.evaluations) == {
            "WRR", "ORR (fixed rho)", "ADAPTIVE_ORR", "JSQ2", "LEAST_LOAD"
        }
        out = result.format()
        assert "diurnal" in out
        assert result.ratio("LEAST_LOAD") > 0


class TestRegistryComplete:
    def test_adaptive_registered(self):
        assert "adaptive" in experiment_ids()
