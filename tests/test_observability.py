"""Observability layer: spans, counters, conservation, gate, digests.

The differential pass at the heart of this module asserts that the job
ledger (``jobs.*`` / ``runs.*`` counters) is identical across every
execution path — serial flat grid, parallel grid, cell-batched, and the
pure-Python PS kernel — and that each run's ledger obeys conservation:
every dispatched job is completed, lost, awaiting retry, or resident at
the horizon.  Infra counters (kernel engagement, stream-pool reuse)
legitimately differ between paths and are excluded on purpose.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import get_policy
from repro.core.evaluate import run_policy_once
from repro.experiments.base import Scale, run_policy_sweep
from repro.experiments.configs import skewness_config
from repro.faults import FaultConfig
from repro.obs import (
    GateResult,
    JsonlSink,
    ProfileSink,
    add_sink,
    check_gate,
    counters,
    digest_arrays,
    remove_sink,
    span,
    tracing_enabled,
    validate_event,
)
from repro.obs.gate import find_baseline
from repro.obs.spans import _NOOP
from repro.sim import SimulationConfig, ckernel


class ListSink:
    """Collects every dispatched event for in-test inspection."""

    def __init__(self):
        self.events = []

    def handle(self, event):
        self.events.append(event)


@pytest.fixture
def sink():
    s = ListSink()
    add_sink(s)
    yield s
    remove_sink(s)


# ----------------------------------------------------------------------
# Span collector
# ----------------------------------------------------------------------


class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        assert not tracing_enabled()
        s1 = span("replay", server=3)
        s2 = span("dispatch")
        assert s1 is _NOOP and s2 is _NOOP  # no allocation when disabled

    def test_span_event_shape_and_nesting(self, sink):
        with span("outer", a=1):
            with span("inner"):
                pass
        inner, outer = sink.events
        assert inner["name"] == "inner" and inner["stack"] == ["outer", "inner"]
        assert outer["name"] == "outer" and outer["stack"] == ["outer"]
        # Parent's self time excludes the child's inclusive time.
        assert outer["self"] <= outer["dur"]
        assert outer["dur"] >= inner["dur"]
        for event in sink.events:
            validate_event(event)

    def test_span_set_attaches_attrs(self, sink):
        with span("replay") as sp:
            sp.set(backend="c", jobs=10)
        (event,) = sink.events
        assert event["attrs"] == {"backend": "c", "jobs": 10}

    def test_counter_events_validate(self, sink):
        counters.inc("cache.hit")
        counters.inc("jobs.lost", 3, server=1)
        kinds = [e["kind"] for e in sink.events]
        assert kinds == ["counter", "counter"]
        for event in sink.events:
            validate_event(event)

    def test_failing_sink_is_dropped_not_fatal(self):
        class Broken:
            def handle(self, event):
                raise OSError("disk full")

        broken = Broken()
        add_sink(broken)
        try:
            with span("replay"):
                pass
            assert not tracing_enabled()  # dropped after first failure
        finally:
            remove_sink(broken)

    def test_validate_event_rejects_bad_events(self):
        good = {"v": 1, "kind": "counter", "name": "x", "value": 1,
                "ts": 0.0, "pid": 1, "attrs": {}}
        validate_event(good)
        with pytest.raises(ValueError):
            validate_event({**good, "kind": "nope"})
        with pytest.raises(ValueError):
            validate_event({**good, "value": True})  # bool is not numeric
        with pytest.raises(ValueError):
            validate_event({**good, "v": 99})
        missing = dict(good)
        del missing["ts"]
        with pytest.raises(ValueError):
            validate_event(missing)
        span_event = {"v": 1, "kind": "span", "name": "a", "ts": 0.0,
                      "pid": 1, "attrs": {}, "dur": 1.0, "self": 0.5,
                      "stack": ["a"]}
        validate_event(span_event)
        with pytest.raises(ValueError):
            validate_event({**span_event, "stack": ["a", "b"]})
        with pytest.raises(ValueError):
            validate_event({**span_event, "stack": ["b", 3, "a"]})
        with pytest.raises(ValueError):
            validate_event({**span_event, "dur": -1.0})
        with pytest.raises(ValueError):
            validate_event(["not", "an", "object"])


class TestEnableTracing:
    def test_enable_disable_roundtrip(self, tmp_path):
        from repro.obs import disable_tracing, enable_tracing
        import os

        path = tmp_path / "env.jsonl"
        enable_tracing(path)
        try:
            assert tracing_enabled()
            assert os.environ["REPRO_TRACE"] == str(path)
            with span("replay", server=0):
                pass
        finally:
            disable_tracing()
        assert not tracing_enabled()
        assert "REPRO_TRACE" not in os.environ
        events = [json.loads(line)
                  for line in path.read_text().splitlines()]
        assert [e["name"] for e in events] == ["replay"]
        disable_tracing()  # idempotent

    def test_spawned_worker_autoinstall_from_env(self, tmp_path,
                                                 monkeypatch):
        """_maybe_enable_from_env is what spawn workers run at import."""
        from repro.obs import disable_tracing
        from repro.obs.spans import _maybe_enable_from_env

        path = tmp_path / "worker.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        _maybe_enable_from_env()
        try:
            assert tracing_enabled()
            with span("dispatch"):
                pass
        finally:
            disable_tracing()
        assert path.read_text().strip()


class TestJsonlSink:
    def test_emits_schema_valid_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        s = JsonlSink(path)
        add_sink(s)
        try:
            config = SimulationConfig(
                speeds=(1.0, 2.0), utilization=0.6,
                duration=2000.0, warmup=500.0,
            )
            run_policy_once(config, get_policy("ORR"), seed=7)
        finally:
            remove_sink(s)
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert events
        for event in events:
            validate_event(event)
        names = {e["name"] for e in events if e["kind"] == "span"}
        assert {"materialize", "dispatch", "replay", "summarize"} <= names


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------


class TestCounters:
    def test_key_roundtrip(self):
        k = counters.key("jobs.completed", server=3, policy="ORR")
        assert k == "jobs.completed{policy=ORR, server=3}"
        name, labels = counters.parse_key(k)
        assert name == "jobs.completed"
        assert labels == {"server": "3", "policy": "ORR"}
        assert counters.parse_key("plain") == ("plain", {})

    def test_scoped_delta(self):
        with counters.scoped() as delta:
            counters.inc("cache.hit")
            counters.inc("cache.hit")
            counters.inc("cache.miss")
        assert delta["cache.hit"] == 2
        assert delta["cache.miss"] == 1

    def test_merge_and_diff(self):
        before = counters.snapshot()
        counters.merge({"worker.thing": 5})
        counters.merge({})  # empty delta is a no-op
        delta = counters.diff_since(before)
        assert delta["worker.thing"] == 5

    def test_reset_zeroes_everything(self):
        counters.inc("to.be.cleared")
        snapshot_before_reset = counters.snapshot()
        try:
            counters.reset()
            assert counters.snapshot() == {}
        finally:
            counters.merge(snapshot_before_reset)  # restore for other tests


# ----------------------------------------------------------------------
# Conservation invariants (hypothesis)
# ----------------------------------------------------------------------

speeds_strategy = st.lists(
    st.floats(min_value=1.0, max_value=8.0), min_size=1, max_size=4
)


class TestConservation:
    @given(speeds=speeds_strategy,
           rho=st.floats(min_value=0.2, max_value=0.8),
           seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_fault_free_ledger_closes_exactly(self, speeds, rho, seed):
        """drain=True, no faults: every dispatched job completes, per server."""
        from repro.distributions import Exponential

        # Unit-mean sizes keep the arrival rate at rho * total_speed, so
        # even the smallest drawn system sees plenty of post-warm-up jobs.
        config = SimulationConfig(
            speeds=tuple(speeds), utilization=rho,
            duration=1500.0, warmup=300.0,
            size_distribution=Exponential(1.0),
        )
        result = run_policy_once(config, get_policy("WRR"), seed=seed)
        ledger = result.counters()
        dispatched = [s.jobs_received for s in result.servers]
        completed = [s.jobs_completed for s in result.servers]
        assert dispatched == completed  # per-server conservation
        assert sum(dispatched) == result.total_arrivals  # aggregate
        for i in range(len(speeds)):
            assert ledger[f"jobs.dispatched{{server={i}}}"] == dispatched[i]
            assert ledger[f"jobs.completed{{server={i}}}"] == completed[i]
        assert ledger["runs.completed"] == 1

    @given(seed=st.integers(0, 2**16),
           mtbf=st.floats(min_value=150.0, max_value=600.0))
    @settings(max_examples=10, deadline=None)
    def test_faulty_ledger_closes_with_losses_and_retries(self, seed, mtbf):
        """With failures: arrivals == completed + lost + pending-retry.

        drain=True empties every server and fires every queued retry, so
        nothing is resident at the end and the ledger closes exactly.
        """
        from repro.distributions import Exponential

        config = SimulationConfig(
            speeds=(1.0, 2.0, 4.0), utilization=0.6,
            duration=1500.0, warmup=300.0,
            size_distribution=Exponential(1.0),
            faults=FaultConfig(mtbf=mtbf, mttr=80.0),
        )
        result = run_policy_once(config, get_policy("WRR"), seed=seed)
        assert result.faults is not None
        completed = sum(s.jobs_completed for s in result.servers)
        closed = (completed + result.faults.jobs_lost_total
                  + result.faults.jobs_pending_retry)
        assert closed == result.total_arrivals

    def test_no_drain_leaves_nonnegative_residue(self):
        config = SimulationConfig(
            speeds=(1.0, 3.0), utilization=0.7,
            duration=1500.0, warmup=300.0, drain=False,
            faults=FaultConfig(mtbf=250.0, mttr=60.0),
        )
        result = run_policy_once(config, get_policy("WRR"), seed=11)
        completed = sum(s.jobs_completed for s in result.servers)
        accounted = (completed + result.faults.jobs_lost_total
                     + result.faults.jobs_pending_retry)
        # Whatever is not accounted for was resident at the horizon.
        assert 0 <= result.total_arrivals - accounted


# ----------------------------------------------------------------------
# Differential: the ledger is identical across all execution paths
# ----------------------------------------------------------------------


def _ledger(counter_delta: dict) -> dict:
    """Job-conservation keys only: infra counters (kernel engagement,
    stream-pool reuse, plan dedup) legitimately differ across paths."""
    return {k: v for k, v in counter_delta.items()
            if k.startswith(("jobs.", "runs."))}


def _mini_sweep(**kwargs):
    scale = Scale("obs-test", duration=4.0e3, replications=2)
    return run_policy_sweep(
        "obs-test", "obs", "fast speed", [2.0, 6.0],
        lambda x: skewness_config(x, 0.7, n_fast=1, n_slow=3),
        ["WRR", "ORR"], scale, **kwargs,
    )


class TestCounterIdentityAcrossPaths:
    def test_serial_grid_cell_and_python_kernel_agree(self, monkeypatch):
        serial = _mini_sweep(cell_batch=False)
        reference = _ledger(serial.counters)
        assert reference["runs.completed"] == 8  # 2 points x 2 policies x 2
        assert sum(v for k, v in reference.items()
                   if k.startswith("jobs.dispatched")) > 0

        grid = _mini_sweep(cell_batch=False, n_jobs=2)
        assert _ledger(grid.counters) == reference

        cell = _mini_sweep(cell_batch=True)
        assert _ledger(cell.counters) == reference

        monkeypatch.setattr(ckernel, "_fns", False)  # force the Python loop
        python_path = _mini_sweep(cell_batch=False)
        assert _ledger(python_path.counters) == reference

    def test_sweep_counters_match_summed_run_ledgers(self):
        """SweepResult.counters equals the sum of each member's ledger."""
        sweep = _mini_sweep(cell_batch=False)
        expected: dict = {}
        scale = Scale("obs-test", duration=4.0e3, replications=2)
        from repro.rng import replication_seeds

        for x in [2.0, 6.0]:
            config = SimulationConfig(
                speeds=skewness_config(x, 0.7, n_fast=1, n_slow=3).speeds,
                utilization=0.7, duration=scale.duration,
                warmup=scale.warmup,
            )
            for name in ["WRR", "ORR"]:
                for seed in replication_seeds(scale.base_seed,
                                              scale.replications):
                    run = run_policy_once(config, get_policy(name), seed=seed)
                    for k, v in run.counters().items():
                        expected[k] = expected.get(k, 0) + v
        assert _ledger(sweep.counters) == _ledger(expected)


# ----------------------------------------------------------------------
# Bit-identity: tracing must not perturb results
# ----------------------------------------------------------------------


class TestTraceBitIdentity:
    def test_results_identical_with_tracing_on(self, tmp_path):
        config = SimulationConfig(
            speeds=(1.0, 4.0), utilization=0.7,
            duration=3000.0, warmup=750.0,
        )
        plain = run_policy_once(config, get_policy("ORR"), seed=5)
        s = JsonlSink(tmp_path / "t.jsonl")
        add_sink(s)
        try:
            traced = run_policy_once(config, get_policy("ORR"), seed=5)
        finally:
            remove_sink(s)
        assert plain.metrics.mean_response_time == traced.metrics.mean_response_time
        assert plain.metrics.mean_response_ratio == traced.metrics.mean_response_ratio
        assert np.array_equal(plain.dispatch_fractions,
                              traced.dispatch_fractions)

    def test_cli_stdout_identical_with_and_without_trace(self, tmp_path,
                                                        capsys):
        from repro.cli import main

        argv = ["simulate", "--speeds", "1,2", "--utilization", "0.6",
                "--duration", "2000", "--replications", "2"]
        assert main(list(argv)) == 0
        plain_out = capsys.readouterr().out
        assert main(argv + ["--trace", str(tmp_path / "o.jsonl")]) == 0
        captured = capsys.readouterr()
        assert captured.out == plain_out  # stdout is byte-identical
        assert "trace written" in captured.err
        assert (tmp_path / "o.jsonl").exists()


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------


class TestProfile:
    def test_phase_table_and_folded_output(self):
        prof = ProfileSink()
        add_sink(prof)
        try:
            config = SimulationConfig(
                speeds=(1.0, 2.0), utilization=0.6,
                duration=2000.0, warmup=500.0,
            )
            run_policy_once(config, get_policy("WRR"), seed=3)
        finally:
            remove_sink(prof)
        table = prof.table()
        for phase in ("materialize", "dispatch", "replay", "summarize"):
            assert phase in table
        folded = prof.folded()
        for line in folded.splitlines():
            stack, weight = line.rsplit(" ", 1)
            assert stack and int(weight) > 0  # microsecond weights


# ----------------------------------------------------------------------
# Perf gate
# ----------------------------------------------------------------------


def _record(scale="smoke", fcfs=10.0, ps=10.0, identical=True, ts="t1"):
    return {
        "timestamp": ts,
        "scale": scale,
        "kernels": {"fcfs_speedup": fcfs, "ps_speedup": ps},
        "sweep": {"grid_identical": identical, "cache_speedup": 4.0},
        "cell": {"cell_identical": identical, "cell_speedup": 1.2},
        "replication": {
            "ps": {"speedup": 5.0, "agree": identical},
            "fcfs": {"speedup": 30.0, "agree": identical},
        },
        "telemetry": {"trace_identical": identical},
    }


class TestGate:
    def test_passes_against_equal_baseline(self):
        base = _record(ts="t0")
        result = check_gate(_record(ts="t1"), [base])
        assert isinstance(result, GateResult)
        assert result.passed
        assert result.baseline_timestamp == "t0"
        assert "PASS" in result.summary()

    def test_fails_on_injected_25_percent_slowdown(self):
        base = _record(fcfs=10.0, ts="t0")
        slowed = _record(fcfs=7.5, ts="t1")  # 25% > the 20% default
        result = check_gate(slowed, [base])
        assert not result.passed
        assert any("fcfs_speedup" in f for f in result.failures)
        assert "FAIL" in result.summary()

    def test_threshold_is_respected(self):
        base = _record(fcfs=10.0, ts="t0")
        slowed = _record(fcfs=7.5, ts="t1")
        assert check_gate(slowed, [base], threshold=0.30).passed
        assert not check_gate(slowed, [base], threshold=0.10).passed

    def test_identity_divergence_fails_at_any_threshold(self):
        base = _record(ts="t0")
        diverged = _record(identical=False, ts="t1")
        result = check_gate(diverged, [base], threshold=1000.0)
        assert not result.passed
        assert any("bit-identity" in f for f in result.failures)

    def test_no_baseline_passes_vacuously(self):
        result = check_gate(_record(scale="paper"), [_record(scale="smoke")])
        assert result.passed
        assert result.baseline_timestamp is None
        assert any("no baseline" in n for n in result.notes)

    def test_baseline_is_most_recent_same_scale(self):
        history = [_record(scale="smoke", ts="t0"),
                   _record(scale="quick", ts="t1"),
                   _record(scale="smoke", ts="t2")]
        assert find_baseline(history, _record(scale="smoke"))["timestamp"] == "t2"

    def test_speedup_improvements_never_fail(self):
        base = _record(fcfs=10.0, ts="t0")
        faster = _record(fcfs=100.0, ts="t1")
        assert check_gate(faster, [base]).passed

    def test_net_dispatch_ceiling_fails_when_breached(self):
        from repro.obs.gate import NET_DISPATCH_CEILING_NS

        record = _record(ts="t1")
        record["net"] = {
            "report_identical": True,
            "overload_report_identical": True,
            "dispatch_ns_per_job": NET_DISPATCH_CEILING_NS * 2,
        }
        result = check_gate(record, [])
        assert not result.passed
        assert any("dispatch" in f and "ceiling" in f for f in result.failures)

    def test_net_dispatch_under_ceiling_passes_at_every_scale(self):
        # Scale None in the ceiling table means "every scale" — unlike
        # floors, which pin one scale each.
        for scale in ("smoke", "quick", "paper"):
            record = _record(scale=scale, ts="t1")
            record["cell"]["cell_speedup"] = 2.5  # stay above the quick floor
            record["net"] = {"dispatch_ns_per_job": 1000.0}
            assert check_gate(record, []).passed

    def test_net_identity_flags_are_enforced(self):
        record = _record(ts="t1")
        record["net"] = {
            "report_identical": True,
            "overload_report_identical": False,
            "dispatch_ns_per_job": 1000.0,
        }
        result = check_gate(record, [])
        assert not result.passed
        assert any("overload_report_identical" in f for f in result.failures)


# ----------------------------------------------------------------------
# Digests
# ----------------------------------------------------------------------


class TestDigests:
    def test_digest_is_deterministic_and_order_sensitive(self):
        a = np.arange(10, dtype=float)
        b = np.ones(3)
        d1 = digest_arrays([("a", a), ("b", b)])
        d2 = digest_arrays([("a", a.copy()), ("b", b.copy())])
        assert d1 == d2
        assert digest_arrays([("b", b), ("a", a)]) != d1
        assert digest_arrays([("a", a + 1e-9), ("b", b)]) != d1  # one ulp off

    def test_digest_normalizes_dtype_not_values(self):
        ints = np.arange(5)
        floats = np.arange(5, dtype=float)
        assert digest_arrays([("x", ints)]) == digest_arrays([("x", floats)])
