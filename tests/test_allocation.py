"""Tests for workload allocation (repro.allocation) — Algorithm 1 et al."""

import numpy as np
import pytest

from repro.allocation import (
    AllocationResult,
    EqualAllocator,
    ExplicitAllocator,
    MisestimatedOptimizedAllocator,
    NumericAllocator,
    OptimizedAllocator,
    WeightedAllocator,
    clamp_estimated_utilization,
    compare_with_closed_form,
    numeric_fractions,
    optimized_fractions,
    unconstrained_fractions,
    zero_share_cutoff,
)
from repro.queueing import HeterogeneousNetwork, objective_gradient, objective_value

from .conftest import make_network


class TestWeightedAllocator:
    def test_proportional_to_speed(self):
        net = make_network([1, 3], utilization=0.5)
        a = WeightedAllocator().fractions(net)
        np.testing.assert_allclose(a, [0.25, 0.75])

    def test_equalizes_utilization(self):
        net = make_network([1, 2, 5], utilization=0.6)
        result = WeightedAllocator().compute(net)
        rho = result.per_server_utilization()
        np.testing.assert_allclose(rho, 0.6)

    def test_result_metadata(self):
        net = make_network([1, 1], utilization=0.5)
        result = WeightedAllocator().compute(net)
        assert result.allocator_name == "weighted"
        assert result.n == 2
        assert result.zero_share_indices == []
        assert result.active_count == 2


class TestEqualAllocator:
    def test_uniform(self):
        net = make_network([1, 2, 3], utilization=0.3)
        a = EqualAllocator().fractions(net)
        np.testing.assert_allclose(a, 1.0 / 3.0)

    def test_saturation_rejected(self):
        # Equal split at 90% load saturates the speed-1 machine.
        net = make_network([1, 9], utilization=0.9)
        with pytest.raises(ValueError, match="saturates"):
            EqualAllocator().compute(net)


class TestExplicitAllocator:
    def test_passthrough(self):
        net = make_network([1, 1], utilization=0.5)
        a = ExplicitAllocator([0.3, 0.7]).fractions(net)
        np.testing.assert_allclose(a, [0.3, 0.7])

    def test_size_mismatch(self):
        net = make_network([1, 1], utilization=0.5)
        with pytest.raises(ValueError, match="entries"):
            ExplicitAllocator([1.0]).compute(net)

    def test_invalid_fractions(self):
        net = make_network([1, 1], utilization=0.5)
        with pytest.raises(ValueError):
            ExplicitAllocator([0.7, 0.7]).compute(net)


class TestUnconstrainedFractions:
    def test_theorem_1_formula(self):
        net = make_network([1, 4], utilization=0.7)
        rates = net.service_rates()
        lam = net.arrival_rate
        c = (rates.sum() - lam) / np.sqrt(rates).sum()
        expected = (rates - np.sqrt(rates) * c) / lam
        np.testing.assert_allclose(unconstrained_fractions(net), expected)

    def test_sums_to_one(self):
        net = make_network([1, 2, 7, 9], utilization=0.4)
        assert unconstrained_fractions(net).sum() == pytest.approx(1.0)

    def test_can_be_negative_for_slow_machines(self):
        # Very slow machine at low load: Theorem 1 goes negative.
        net = make_network([0.1, 10.0], utilization=0.2)
        a = unconstrained_fractions(net)
        assert a[0] < 0.0

    def test_requires_positive_load(self):
        net = HeterogeneousNetwork([1.0, 2.0], mu=1.0, arrival_rate=0.0)
        with pytest.raises(ValueError, match="positive arrival rate"):
            unconstrained_fractions(net)


class TestZeroShareCutoff:
    def test_no_drop_when_all_fast_enough(self):
        net = make_network([1, 1, 1], utilization=0.9)
        rates = np.sort(net.service_rates())
        assert zero_share_cutoff(rates, net.arrival_rate) == 0

    def test_drops_slow_machines_at_low_load(self):
        net = make_network([0.1, 0.1, 10.0], utilization=0.2)
        rates = np.sort(net.service_rates())
        m = zero_share_cutoff(rates, net.arrival_rate)
        assert m == 2

    def test_never_drops_everything(self):
        for rho in (0.01, 0.1, 0.5, 0.9, 0.99):
            net = make_network([1, 2, 4, 8], utilization=rho)
            rates = np.sort(net.service_rates())
            assert zero_share_cutoff(rates, net.arrival_rate) < 4

    def test_matches_linear_scan(self):
        """Binary search equals the obvious O(n²) predicate scan."""
        rng = np.random.default_rng(3)
        for _ in range(50):
            n = int(rng.integers(1, 12))
            speeds = rng.uniform(0.05, 10.0, n)
            rho = float(rng.uniform(0.05, 0.95))
            net = make_network(speeds, utilization=rho)
            rates = np.sort(net.service_rates())
            lam = net.arrival_rate
            sqrt = np.sqrt(rates)
            m_scan = 0
            for i in range(n):
                if sqrt[i] * sqrt[i:].sum() < rates[i:].sum() - lam:
                    m_scan = i + 1
                else:
                    break
            assert zero_share_cutoff(rates, lam) == m_scan


class TestOptimizedFractions:
    def test_valid_allocation(self, paper_network):
        a = optimized_fractions(paper_network)
        assert a.sum() == pytest.approx(1.0)
        assert np.all(a >= 0.0)
        assert np.all(a * paper_network.arrival_rate < paper_network.service_rates())

    def test_beats_weighted_on_objective(self, paper_network):
        opt = optimized_fractions(paper_network)
        weighted = paper_network.speeds / paper_network.total_speed
        assert objective_value(paper_network, opt) < objective_value(
            paper_network, weighted
        )

    def test_homogeneous_system_is_uniform(self):
        net = make_network([2, 2, 2, 2], utilization=0.7)
        np.testing.assert_allclose(optimized_fractions(net), 0.25, rtol=1e-12)

    def test_kkt_equal_gradients_on_active_set(self, base_network):
        a = optimized_fractions(base_network)
        g = objective_gradient(base_network, a)[a > 0]
        assert np.ptp(g) == pytest.approx(0.0, abs=1e-9 * g.mean())

    def test_skew_toward_fast_machines(self, paper_network):
        """Fast machines get over-proportional share, slow under (§2.3)."""
        result = OptimizedAllocator().compute(paper_network)
        skew = result.skewness_vs_weighted()
        order = np.argsort(paper_network.speeds)
        assert skew[order[0]] < 1.0  # slowest: starved
        assert skew[order[-1]] > 1.0  # fastest: over-fed

    def test_more_skewed_at_lower_load(self):
        speeds = [1.0, 10.0]
        low = optimized_fractions(make_network(speeds, utilization=0.3))
        high = optimized_fractions(make_network(speeds, utilization=0.9))
        assert low[1] > high[1]

    def test_degenerates_to_weighted_at_full_load(self):
        net = make_network([1, 2, 5], utilization=1.0 - 1e-9)
        weighted = net.speeds / net.total_speed
        np.testing.assert_allclose(optimized_fractions(net), weighted, atol=1e-6)

    def test_zero_share_for_very_slow_machines(self):
        net = make_network([0.05, 1.0, 10.0], utilization=0.3)
        a = optimized_fractions(net)
        assert a[0] == 0.0
        assert a[1:].sum() == pytest.approx(1.0)

    def test_order_independence(self):
        """Unsorted speed input maps back to the right computers."""
        rho = 0.5
        sorted_net = make_network([1, 2, 8], utilization=rho)
        shuffled_net = make_network([8, 1, 2], utilization=rho)
        a_sorted = optimized_fractions(sorted_net)
        a_shuffled = optimized_fractions(shuffled_net)
        np.testing.assert_allclose(a_shuffled, a_sorted[[2, 0, 1]], rtol=1e-12)

    def test_single_computer(self):
        net = make_network([3.0], utilization=0.7)
        np.testing.assert_allclose(optimized_fractions(net), [1.0])

    def test_depends_only_on_rho_and_speeds(self):
        """μ and λ enter only through ρ (Algorithm 1's key property)."""
        a1 = optimized_fractions(
            HeterogeneousNetwork([1, 5], mu=1.0, utilization=0.6)
        )
        a2 = optimized_fractions(
            HeterogeneousNetwork([1, 5], mu=123.4, utilization=0.6)
        )
        np.testing.assert_allclose(a1, a2, rtol=1e-12)

    def test_saturated_system_rejected(self):
        net = HeterogeneousNetwork([1.0, 1.0], mu=1.0, arrival_rate=2.5)
        with pytest.raises(ValueError, match="saturated"):
            optimized_fractions(net)

    def test_ties_in_speed_get_equal_share(self):
        net = make_network([1, 1, 5, 5], utilization=0.6)
        a = optimized_fractions(net)
        assert a[0] == pytest.approx(a[1], rel=1e-12)
        assert a[2] == pytest.approx(a[3], rel=1e-12)


class TestOptimizedAllocator:
    def test_compute(self, paper_network):
        result = OptimizedAllocator().compute(paper_network)
        assert isinstance(result, AllocationResult)
        assert result.allocator_name == "optimized"

    def test_prediction_beats_weighted(self, base_network):
        opt = OptimizedAllocator().compute(base_network)
        wei = WeightedAllocator().compute(base_network)
        assert (
            opt.predicted_mean_response_ratio() < wei.predicted_mean_response_ratio()
        )

    def test_utilization_override(self, base_network):
        direct = OptimizedAllocator(utilization_override=0.5).compute(base_network)
        at_half = OptimizedAllocator().compute(base_network.with_utilization(0.5))
        np.testing.assert_allclose(direct.alphas, at_half.alphas, rtol=1e-12)

    def test_invalid_override(self):
        with pytest.raises(ValueError, match="utilization_override"):
            OptimizedAllocator(utilization_override=1.5)


class TestNumericAllocator:
    @pytest.mark.parametrize("rho", [0.2, 0.5, 0.7, 0.9])
    def test_matches_closed_form(self, rho):
        net = make_network([1, 1.5, 2, 3, 5, 9, 10], utilization=rho)
        closed = optimized_fractions(net)
        numeric = numeric_fractions(net)
        np.testing.assert_allclose(numeric, closed, atol=5e-6)

    def test_matches_closed_form_with_zero_shares(self):
        net = make_network([0.05, 1.0, 10.0], utilization=0.3)
        closed = optimized_fractions(net)
        numeric = numeric_fractions(net)
        np.testing.assert_allclose(numeric, closed, atol=5e-6)
        assert numeric[0] == 0.0

    def test_random_systems(self):
        rng = np.random.default_rng(17)
        for _ in range(10):
            n = int(rng.integers(2, 9))
            net = make_network(
                rng.uniform(0.2, 10.0, n), utilization=float(rng.uniform(0.1, 0.95))
            )
            gap = objective_value(net, numeric_fractions(net)) - objective_value(
                net, optimized_fractions(net)
            )
            assert abs(gap) < 1e-6

    def test_compare_helper(self, paper_network):
        report = compare_with_closed_form(paper_network)
        assert report["max_abs_alpha_gap"] < 1e-5
        assert report["objective_numeric"] == pytest.approx(
            report["objective_closed_form"], rel=1e-9
        )

    def test_allocator_wrapper(self, paper_network):
        result = NumericAllocator().compute(paper_network)
        assert result.allocator_name == "numeric"
        assert result.alphas.sum() == pytest.approx(1.0)

    def test_unstable_rejected(self):
        net = HeterogeneousNetwork([1.0], mu=1.0, arrival_rate=2.0)
        with pytest.raises(ValueError, match="saturated"):
            numeric_fractions(net)


class TestMisestimatedAllocator:
    def test_clamp(self):
        assert clamp_estimated_utilization(0.5) == 0.5
        assert clamp_estimated_utilization(1.2) < 1.0
        with pytest.raises(ValueError):
            clamp_estimated_utilization(0.0)

    def test_zero_error_matches_exact(self, base_network):
        exact = OptimizedAllocator().compute(base_network).alphas
        zero_err = MisestimatedOptimizedAllocator(0.0).compute(base_network).alphas
        np.testing.assert_allclose(zero_err, exact, rtol=1e-12)

    def test_underestimation_more_skewed(self, base_network):
        exact = OptimizedAllocator().compute(base_network).alphas
        under = MisestimatedOptimizedAllocator(-0.15).compute(base_network).alphas
        fastest = int(np.argmax(base_network.speeds))
        assert under[fastest] > exact[fastest]

    def test_overestimation_approaches_weighted(self, base_network):
        weighted = WeightedAllocator().compute(base_network).alphas
        exact = OptimizedAllocator().compute(base_network).alphas
        over = MisestimatedOptimizedAllocator(+0.15).compute(base_network).alphas
        assert np.abs(over - weighted).max() < np.abs(exact - weighted).max()

    def test_huge_overestimation_equals_weighted(self, base_network):
        over = MisestimatedOptimizedAllocator(+5.0).compute(base_network).alphas
        weighted = WeightedAllocator().compute(base_network).alphas
        np.testing.assert_allclose(over, weighted, atol=1e-6)

    def test_name_formatting(self):
        assert MisestimatedOptimizedAllocator(-0.10).name == "optimized(-10%)"
        assert MisestimatedOptimizedAllocator(+0.05).name == "optimized(+5%)"

    def test_invalid_error(self):
        with pytest.raises(ValueError, match="-100%"):
            MisestimatedOptimizedAllocator(-1.0)

    def test_feasibility_detection(self):
        """Underestimation at very high true load saturates fast machines."""
        net = make_network([1.0, 20.0], utilization=0.98)
        assert MisestimatedOptimizedAllocator(0.0).is_feasible(net)
        assert not MisestimatedOptimizedAllocator(-0.15).is_feasible(net)
