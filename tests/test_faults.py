"""Tests for the fault-injection subsystem (repro.faults + engine)."""

import numpy as np
import pytest

from repro.allocation import OptimizedAllocator, WeightedAllocator
from repro.core import get_policy, run_policy_once
from repro.dispatch import RoundRobinDispatcher
from repro.faults import (
    FailureAwareDispatcher,
    FaultConfig,
    RetryPolicy,
    build_timeline,
)
from repro.faults.models import DEGRADE_END, DEGRADE_START, DOWN, UP
from repro.sim import SimulationConfig, run_simulation
from repro.sim.server import FCFSServer, ProcessorSharingServer, RoundRobinQuantumServer
from repro.sim.job import Job


SPEEDS = (1.0, 1.0, 4.0)


def _config(**kw):
    kw.setdefault("speeds", SPEEDS)
    kw.setdefault("utilization", 0.6)
    kw.setdefault("duration", 2.0e4)
    return SimulationConfig(**kw)


class TestFaultConfig:
    def test_disabled_by_default(self):
        assert not FaultConfig().enabled

    def test_enabled_by_mtbf_or_degrade(self):
        assert FaultConfig(mtbf=100.0).enabled
        assert FaultConfig(degrade_rate=0.01, degrade_duration=5.0).enabled

    def test_parse_round_trip(self):
        fc = FaultConfig.parse("mtbf=500,mttr=50,on_failure=lose,max_attempts=3")
        assert fc.mtbf == 500.0
        assert fc.mttr == 50.0
        assert fc.on_failure == "lose"
        assert fc.retry.max_attempts == 3

    def test_parse_rejects_unknown_key_listing_valid_ones(self):
        with pytest.raises(ValueError, match="unknown") as excinfo:
            FaultConfig.parse("mtbf=500,bogus=1")
        message = str(excinfo.value)
        assert "bogus" in message
        for valid in FaultConfig.PARSE_KEYS:
            assert valid in message

    def test_parse_missing_equals_lists_valid_keys(self):
        with pytest.raises(ValueError, match="key=value") as excinfo:
            FaultConfig.parse("mtbf")
        assert "mttr" in str(excinfo.value)

    def test_parse_rejects_duplicate_key(self):
        with pytest.raises(ValueError, match="duplicate") as excinfo:
            FaultConfig.parse("mtbf=500,mtbf=600")
        assert "mtbf" in str(excinfo.value)

    def test_parse_rejects_duplicate_retry_key(self):
        # Retry knobs route to a nested RetryPolicy; the duplicate check
        # must still see them as one flat namespace.
        with pytest.raises(ValueError, match="duplicate"):
            FaultConfig.parse("base_delay=1,base_delay=2")

    def test_parse_accepts_each_key_once(self):
        fc = FaultConfig.parse("mtbf=500,mttr=50,base_delay=1,backoff=3")
        assert fc.mtbf == 500.0
        assert fc.retry.backoff == 3.0

    def test_retry_delay_is_bounded(self):
        rp = RetryPolicy(base_delay=1.0, backoff=2.0, max_delay=5.0)
        delays = [rp.delay(k) for k in range(10)]
        assert delays[0] == 1.0
        assert max(delays) == 5.0

    def test_config_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            _config(faults="mtbf=500")


class TestTimeline:
    def test_deterministic(self):
        fc = FaultConfig(mtbf=500.0, mttr=50.0, degrade_rate=0.001,
                         degrade_duration=20.0)
        a = build_timeline(fc, 3, 1.0e4, seed=42)
        b = build_timeline(fc, 3, 1.0e4, seed=42)
        assert [(e.time, e.kind, e.server) for e in a] == [
            (e.time, e.kind, e.server) for e in b
        ]
        assert a  # the horizon is many MTBFs long

    def test_seed_changes_timeline(self):
        fc = FaultConfig(mtbf=500.0, mttr=50.0)
        a = build_timeline(fc, 3, 1.0e4, seed=1)
        b = build_timeline(fc, 3, 1.0e4, seed=2)
        assert [e.time for e in a] != [e.time for e in b]

    def test_alternates_down_up_per_server(self):
        fc = FaultConfig(mtbf=300.0, mttr=30.0)
        events = build_timeline(fc, 2, 1.0e4, seed=7)
        for s in range(2):
            kinds = [e.kind for e in events if e.server == s]
            assert kinds
            assert kinds[0] == DOWN
            for i, k in enumerate(kinds):
                assert k == (DOWN if i % 2 == 0 else UP)

    def test_servers_filter(self):
        fc = FaultConfig(mtbf=300.0, mttr=30.0, servers=(1,))
        events = build_timeline(fc, 3, 1.0e4, seed=7)
        assert events and all(e.server == 1 for e in events)

    def test_degrade_episodes_do_not_self_overlap(self):
        fc = FaultConfig(degrade_rate=0.01, degrade_duration=40.0)
        events = build_timeline(fc, 1, 1.0e4, seed=3)
        state = 0
        for e in events:
            if e.kind == DEGRADE_START:
                assert state == 0
                state = 1
            elif e.kind == DEGRADE_END:
                assert state == 1
                state = 0


class TestServerFaultHooks:
    def test_ps_fail_returns_jobs_in_arrival_order(self):
        srv = ProcessorSharingServer(1.0)
        jobs = [Job(i, float(i), 10.0) for i in range(3)]
        for j in jobs:
            srv.arrive(j, j.arrival_time)
        evicted = srv.fail(5.0)
        assert [j.job_id for j in evicted] == [0, 1, 2]
        assert not srv.is_up and srv.n_active == 0
        srv.repair(7.0)
        assert srv.is_up
        srv.arrive(Job(9, 7.0, 2.0), 7.0)
        assert srv.next_event_time() == pytest.approx(9.0)

    def test_fcfs_retime_preserves_remaining_work(self):
        srv = FCFSServer(1.0)
        srv.arrive(Job(0, 0.0, 10.0), 0.0)
        srv.set_speed(2.0, 5.0)  # 5 units left, now at speed 2
        assert srv.next_event_time() == pytest.approx(7.5)

    def test_ps_retime_keeps_departure_consistent(self):
        srv = ProcessorSharingServer(1.0)
        srv.arrive(Job(0, 0.0, 10.0), 0.0)
        srv.set_speed(2.0, 5.0)
        assert srv.next_event_time() == pytest.approx(7.5)

    def test_rr_quantum_retime_charges_partial_slice(self):
        srv = RoundRobinQuantumServer(1.0, quantum=4.0)
        srv.arrive(Job(0, 0.0, 10.0), 0.0)
        srv.set_speed(2.0, 2.0)  # 2 units done; 8 left at speed 2
        # Fresh slice: min(quantum, 8/2) = 4 → next event at 6.0
        assert srv.next_event_time() == pytest.approx(6.0)
        job = None
        t = srv.next_event_time()
        while job is None:
            job = srv.on_event(t)
            t = srv.next_event_time() or t
        assert job.completion_time == pytest.approx(6.0)

    def test_down_server_accrues_no_busy_time(self):
        srv = FCFSServer(1.0)
        srv.arrive(Job(0, 0.0, 4.0), 0.0)
        srv.fail(2.0)
        busy_at_fail = srv.busy_time
        srv.repair(100.0)
        srv.arrive(Job(1, 100.0, 1.0), 100.0)
        srv.on_event(srv.next_event_time())
        assert srv.busy_time == pytest.approx(busy_at_fail + 1.0)


class TestEngineFaults:
    def test_disabled_faults_bit_identical(self):
        pol = get_policy("ORR")
        base = run_policy_once(_config(), pol, seed=7, force_engine=True)
        noop = FaultConfig()  # no mtbf, no degradation: disabled
        with_field = run_policy_once(
            _config(faults=noop), pol, seed=7, force_engine=True
        )
        assert base.metrics.mean_response_time == with_field.metrics.mean_response_time
        assert base.metrics.fairness == with_field.metrics.fairness
        assert base.faults is None and with_field.faults is None

    def test_faulty_run_is_reproducible(self):
        cfg = _config(faults=FaultConfig(mtbf=2000.0, mttr=200.0))
        pol = get_policy("ORR")
        a = run_policy_once(cfg, pol, seed=7)
        b = run_policy_once(cfg, pol, seed=7)
        assert a.faults == b.faults
        assert a.faults.fault_events > 0
        assert a.metrics.mean_response_time == b.metrics.mean_response_time

    def test_faults_force_engine_path(self):
        cfg = _config(faults=FaultConfig(mtbf=2000.0, mttr=200.0))
        result = run_policy_once(cfg, get_policy("ORR"), seed=7)
        assert result.faults is not None  # fast path would return None

    def test_lose_mode_drops_without_retry(self):
        cfg = _config(
            faults=FaultConfig(mtbf=1000.0, mttr=300.0, on_failure="lose")
        )
        result = run_policy_once(cfg, get_policy("ORR"), seed=7)
        assert result.faults.jobs_lost_total > 0
        assert result.faults.jobs_retried == 0
        assert result.loss_rate > 0.0

    def test_retry_mode_salvages_jobs(self):
        cfg = _config(faults=FaultConfig(mtbf=1000.0, mttr=300.0))
        lose = run_policy_once(
            _config(faults=FaultConfig(mtbf=1000.0, mttr=300.0,
                                       on_failure="lose")),
            get_policy("ORR"), seed=7,
        )
        retry = run_policy_once(cfg, get_policy("ORR"), seed=7)
        assert retry.faults.jobs_retried > 0
        assert retry.faults.jobs_lost_total < lose.faults.jobs_lost_total

    def test_degradation_only_keeps_all_jobs(self):
        cfg = _config(
            faults=FaultConfig(degrade_rate=1e-3, degrade_duration=100.0,
                               degrade_factor=0.25)
        )
        plain = run_policy_once(_config(), get_policy("ORR"), seed=7,
                                force_engine=True)
        degraded = run_policy_once(cfg, get_policy("ORR"), seed=7)
        assert degraded.faults.fault_events > 0
        assert degraded.faults.jobs_lost_total == 0
        assert degraded.metrics.jobs == plain.metrics.jobs
        # Quarter-speed episodes must hurt response times.
        assert (degraded.metrics.mean_response_time
                > plain.metrics.mean_response_time)

    def test_loss_rate_zero_without_faults(self):
        result = run_policy_once(_config(), get_policy("ORR"), seed=7)
        assert result.loss_rate == 0.0


class TestFailureAwareDispatcher:
    def _make(self, allocator=None):
        fa = FailureAwareDispatcher(
            RoundRobinDispatcher(), allocator or OptimizedAllocator(),
            np.asarray(SPEEDS),
        )
        fa.reset(np.asarray([0.2, 0.2, 0.6]))
        return fa

    def test_membership_change_zeroes_down_servers(self):
        fa = self._make()
        fa.on_membership_change(np.asarray([True, True, False]), 0.9)
        assert fa.alphas[2] == 0.0
        assert fa.alphas.sum() == pytest.approx(1.0)
        assert fa.reallocations == 1

    def test_overloaded_survivors_fall_back_to_weighted(self):
        fa = self._make()
        # Offered load exceeds surviving capacity: rho_s > 1.
        fa.on_membership_change(np.asarray([True, False, False]), 2.5)
        np.testing.assert_allclose(fa.alphas, [1.0, 0.0, 0.0])

    def test_total_outage_keeps_last_allocation(self):
        fa = self._make()
        before = fa.alphas.copy()
        fa.on_membership_change(np.asarray([False, False, False]), 0.9)
        np.testing.assert_array_equal(fa.alphas, before)
        assert fa.reallocations == 0

    def test_delegates_like_inner_between_changes(self):
        fa = self._make()
        rr = RoundRobinDispatcher()
        rr.reset(np.asarray([0.2, 0.2, 0.6]))
        assert [fa.select(1.0) for _ in range(20)] == [
            rr.select(1.0) for _ in range(20)
        ]

    def test_failure_aware_reduces_losses(self):
        cfg = _config(faults=FaultConfig(mtbf=2000.0, mttr=200.0))
        oblivious = run_policy_once(cfg, get_policy("ORR"), seed=7)
        aware = run_policy_once(cfg, get_policy("FA_ORR"), seed=7)
        assert aware.faults.reallocations > 0
        assert aware.faults.jobs_lost_total < oblivious.faults.jobs_lost_total

    def test_fa_policy_matches_orr_without_faults(self):
        plain = run_policy_once(_config(), get_policy("ORR"), seed=7,
                                force_engine=True)
        fa = run_policy_once(_config(), get_policy("FA_ORR"), seed=7,
                             force_engine=True)
        assert fa.metrics.mean_response_time == plain.metrics.mean_response_time

    def test_weighted_allocator_variant(self):
        fa = self._make(WeightedAllocator())
        fa.on_membership_change(np.asarray([True, True, False]), 0.9)
        np.testing.assert_allclose(fa.alphas, [0.5, 0.5, 0.0])


class TestGridDeterminism:
    def test_faulty_sweep_serial_parallel_identical(self):
        from repro.core.executor import (
            ReplicationTask,
            run_replication_grid,
            shutdown_shared_executor,
        )
        from repro.rng import replication_seeds

        cfg = _config(faults=FaultConfig(mtbf=2000.0, mttr=200.0),
                      duration=1.0e4)
        tasks = [
            ReplicationTask(
                key=(p, r), config=cfg, policy_name=p,
                estimation_error=None, seed=seed,
            )
            for p in ("ORR", "FA_ORR")
            for r, seed in enumerate(replication_seeds(2000, 2))
        ]
        serial = run_replication_grid(tasks, n_jobs=1)
        try:
            grid = run_replication_grid(tasks, n_jobs=2)
        finally:
            shutdown_shared_executor()
        assert set(serial.outcomes) == set(grid.outcomes)
        for key in serial.outcomes:
            a, b = serial.outcomes[key], grid.outcomes[key]
            assert a[:4] == b[:4]
            np.testing.assert_array_equal(a[4], b[4])
            assert a[5] == b[5]
