"""Capacity-aware shard router: discretization and client-split tests.

The router contract (DESIGN.md §11): the weighted split is the same
virtual-deadline discretization as the Algorithm 2 dispatch sequence —
deterministic, CRN-stable, and never more than one job away from each
shard's exact fractional share over any run from a reset.
Property-based over random capacity vectors, plus the client-side
plumbing: weight-lag determinism, the legacy even split, and stream
conservation.
"""

import numpy as np
import pytest
from hypothesis import assume, example, given, settings
from hypothesis import strategies as st

from repro.net import CapacityRouter, LoadClient
from repro.net.protocol import Resolve

weight_vectors = st.lists(
    st.floats(min_value=0.01, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=8,
)
job_counts = st.integers(min_value=0, max_value=400)


def _counts(targets: np.ndarray, n_shards: int) -> np.ndarray:
    return np.bincount(targets, minlength=n_shards)


def _had_tie(weights, count: int) -> bool:
    """Whether the deadline argmin ever saw an exact tie.

    Reference replay of the router: at each step, collect the virtual
    deadlines of the shards actually considered (the eligible set, or
    all shards on the empty-eligible fallback) and flag any step where
    the minimum is shared.  Only those runs depend on the index
    tie-break, so only those are excluded from the permutation test.
    """
    fractions = np.asarray(weights, dtype=float)
    fractions = fractions / fractions.sum()
    counts = np.zeros(fractions.size, dtype=np.int64)
    for n in range(count):
        eligible = counts <= n * fractions
        if not np.any(eligible):
            eligible = np.ones(fractions.size, dtype=bool)
        deadlines = np.where(eligible, (counts + 1) / fractions, np.inf)
        if np.count_nonzero(deadlines == deadlines.min()) > 1:
            return True
        counts[int(np.argmin(deadlines))] += 1
    return False


class TestCapacityRouter:
    @given(weights=weight_vectors, count=job_counts)
    # Regression: under a plain largest-claim accumulator the tied
    # 45.5-weight pair starved one shard 1.013 jobs below its share;
    # the eligibility gate keeps it within one.
    @example(weights=[1.0, 1.0, 1.0, 4.0, 8.0, 45.5, 45.5, 52.5], count=115)
    @settings(max_examples=200, deadline=None)
    def test_counts_stay_within_one_job_of_fractional_share(
        self, weights, count
    ):
        router = CapacityRouter(weights)
        targets = router.route(count)
        fractions = np.asarray(weights) / np.sum(weights)
        deviation = _counts(targets, len(weights)) - count * fractions
        assert np.all(np.abs(deviation) <= 1.0 + 1e-6)

    @given(weights=weight_vectors, count=job_counts)
    @settings(max_examples=100, deadline=None)
    def test_routing_is_deterministic(self, weights, count):
        a = CapacityRouter(weights).route(count)
        b = CapacityRouter(weights).route(count)
        assert np.array_equal(a, b)

    @given(weights=weight_vectors, count=job_counts, seed=st.integers(0, 99))
    @settings(max_examples=100, deadline=None)
    def test_split_is_permutation_stable(self, weights, count, seed):
        # Permuting the capacity vector must permute the per-shard
        # counts identically — shard identity is not load-bearing.
        # Exact deadline ties break by index, so tied runs (where the
        # winner legitimately depends on position) are discarded.
        assume(not _had_tie(weights, count))
        perm = np.random.default_rng(seed).permutation(len(weights))
        base = _counts(CapacityRouter(weights).route(count), len(weights))
        permuted = _counts(
            CapacityRouter(np.asarray(weights)[perm]).route(count),
            len(weights),
        )
        assert np.array_equal(permuted, base[perm])

    def test_deadline_state_carries_across_windows(self):
        # Routing 7 then 5 jobs must equal routing 12 in one call: the
        # deadline state carries across window boundaries, which is
        # what keeps the within-one-job bound global, not per-window.
        split = CapacityRouter((3.0, 9.0))
        whole = CapacityRouter((3.0, 9.0))
        chunked = np.concatenate([split.route(7), split.route(5)])
        assert np.array_equal(chunked, whole.route(12))

    def test_rescaled_weights_are_a_noop(self):
        router = CapacityRouter((1.0, 3.0))
        router.route(5)  # accrue fractional debt
        counts_before = list(router._counts)
        assert router.set_weights((2.0, 6.0)) is False
        assert router._counts == counts_before
        assert router._jobs == 5

    def test_changed_weights_reset_the_deadline_state(self):
        router = CapacityRouter((1.0, 3.0))
        router.route(5)
        assert router.set_weights((1.0, 1.0)) is True
        assert router._counts == [0, 0]
        assert router._jobs == 0

    def test_zero_weight_shard_receives_nothing(self):
        targets = CapacityRouter((2.0, 0.0, 1.0)).route(300)
        assert not np.any(targets == 1)

    def test_invalid_weights_are_rejected(self):
        with pytest.raises(ValueError):
            CapacityRouter(())
        with pytest.raises(ValueError):
            CapacityRouter((1.0, -0.5))
        with pytest.raises(ValueError):
            CapacityRouter((0.0, 0.0))
        with pytest.raises(ValueError):
            CapacityRouter((1.0, float("inf")))


class _StubSource:
    """Deterministic job source: one arrival per integer second."""

    def __init__(self):
        self.clock = 0.0

    def jobs_until(self, end):
        times = np.arange(self.clock, end)
        self.clock = end
        return times, np.ones_like(times)


def _resolve(window, capacity):
    return Resolve(
        window=window, alphas=(), swapped=False, reason="periodic",
        offered=0, admitted=0, shed=0, capacity=capacity,
    )


class TestLoadClientSplit:
    def make_client(self, split="capacity", weights=(3.0, 9.0)):
        return LoadClient(
            _StubSource(), duration=400.0, control_period=100.0,
            n_shards=2, shard_weights=weights, split=split,
        )

    def test_even_split_is_the_legacy_interleave(self):
        client = self.make_client(split="even")
        submits = client.next_submits()
        assert submits[0].times == tuple(np.arange(0.0, 100.0, 2.0))
        assert submits[1].times == tuple(np.arange(1.0, 100.0, 2.0))

    def test_capacity_split_conserves_the_stream_in_order(self):
        client = self.make_client()
        submits = client.next_submits()
        merged = sorted(submits[0].times + submits[1].times)
        assert merged == list(np.arange(0.0, 100.0))
        for sub in submits:  # order-preserving within each shard
            assert list(sub.times) == sorted(sub.times)

    def test_capacity_split_follows_the_weights(self):
        client = self.make_client(weights=(1.0, 3.0))
        submits = client.next_submits()
        assert len(submits[0].times) == 25
        assert len(submits[1].times) == 75

    def test_published_capacities_apply_with_max_inflight_lag(self):
        # max_inflight=1: window k routes on window k-1's publication.
        client = self.make_client(weights=(1.0, 1.0))
        w0 = client.next_submits()
        assert len(w0[0].times) == 50  # initial nominal weights
        client.handle_resolve(_resolve(0, 1.0), 0)
        client.handle_resolve(_resolve(0, 3.0), 1)
        w1 = client.next_submits()
        assert len(w1[0].times) == 25  # window 0's publication applied
        assert len(w1[1].times) == 75

    def test_all_dead_publication_falls_back_to_nominal(self):
        client = self.make_client(weights=(1.0, 1.0))
        client.next_submits()
        client.handle_resolve(_resolve(0, 0.0), 0)
        client.handle_resolve(_resolve(0, 0.0), 1)
        w1 = client.next_submits()
        assert len(w1[0].times) == 50

    def test_rtt_is_observed_per_shard_ack(self):
        client = self.make_client()
        client.next_submits()
        client.handle_resolve(_resolve(0, 3.0), 0)
        client.handle_resolve(_resolve(0, 9.0), 1)
        assert client.rtt.jobs == 0  # RTT samples carry no job weight
        assert np.isfinite(client.rtt.p50.value)
        assert np.isfinite(client.rtt.p99.value)
