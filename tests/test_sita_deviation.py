"""Tests for the SITA extension dispatcher and the deviation metric."""

import numpy as np
import pytest

from repro.dispatch import (
    DeviationSeries,
    SitaDispatcher,
    allocation_deviation,
    interval_deviations,
    sita_cutoffs,
)
from repro.distributions import BoundedPareto, paper_job_sizes


class TestSitaCutoffs:
    def test_equal_shares_split_work_equally(self):
        d = paper_job_sizes()
        cutoffs = sita_cutoffs(d, [0.5, 0.5])
        assert cutoffs[0] == d.k and cutoffs[-1] == d.p
        # Work below the middle cutoff is half the work.
        assert 1.0 - d.load_share_above(cutoffs[1]) == pytest.approx(0.5, abs=1e-9)

    def test_unequal_shares(self):
        d = paper_job_sizes()
        cutoffs = sita_cutoffs(d, [0.2, 0.3, 0.5])
        w1 = 1.0 - d.load_share_above(cutoffs[1])
        w2 = 1.0 - d.load_share_above(cutoffs[2])
        assert w1 == pytest.approx(0.2, abs=1e-9)
        assert w2 == pytest.approx(0.5, abs=1e-9)

    def test_cutoffs_monotone(self):
        cutoffs = sita_cutoffs(paper_job_sizes(), [0.25, 0.25, 0.25, 0.25])
        assert np.all(np.diff(cutoffs) > 0)

    def test_zero_share_gives_zero_width_band(self):
        d = paper_job_sizes()
        cutoffs = sita_cutoffs(d, [0.5, 0.0, 0.5])
        assert cutoffs[2] == pytest.approx(cutoffs[1], rel=1e-9)

    def test_validation(self):
        d = paper_job_sizes()
        with pytest.raises(ValueError, match="sum to 1"):
            sita_cutoffs(d, [0.5, 0.6])
        with pytest.raises(ValueError, match="non-negative"):
            sita_cutoffs(d, [-0.5, 1.5])
        with pytest.raises(ValueError, match="non-empty"):
            sita_cutoffs(d, [])


class TestSitaDispatcher:
    def make(self, speeds=(1.0, 4.0)):
        d = SitaDispatcher(paper_job_sizes(), speeds)
        weights = np.asarray(speeds) / np.sum(speeds)
        d.reset(weights)
        return d

    def test_small_jobs_to_slow_machine(self):
        d = self.make()
        assert d.select(10.5) == 0  # near the lower bound
        assert d.select(21000.0) == 1  # an elephant

    def test_batch_equals_sequential(self, rng):
        d = self.make((1.0, 2.0, 5.0))
        sizes = paper_job_sizes().sample(rng, 500)
        batch = d.select_batch(sizes)
        seq = [d.select(float(s)) for s in sizes]
        assert batch.tolist() == seq

    def test_work_balanced_per_band(self, rng):
        """Each server's received *work* share ≈ its weighted share."""
        speeds = np.array([1.0, 3.0])
        d = self.make(tuple(speeds))
        sizes = paper_job_sizes().sample(rng, 500_000)
        targets = d.select_batch(sizes)
        work = np.array([sizes[targets == i].sum() for i in range(2)])
        share = work / work.sum()
        # alpha=1 tail converges slowly: generous tolerance.
        np.testing.assert_allclose(share, speeds / speeds.sum(), atol=0.1)

    def test_slowest_gets_smallest_band(self):
        d = SitaDispatcher(paper_job_sizes(), (5.0, 1.0))  # unsorted speeds
        d.reset(np.array([5 / 6, 1 / 6]))
        # Smallest jobs must go to the *slow* machine (index 1 here).
        assert d.select(10.1) == 1

    def test_size_mismatch(self):
        d = SitaDispatcher(paper_job_sizes(), (1.0, 1.0))
        with pytest.raises(ValueError, match="fractions"):
            d.reset([1.0])

    def test_invalid_speeds(self):
        with pytest.raises(ValueError):
            SitaDispatcher(paper_job_sizes(), (0.0, 1.0))

    def test_cutoffs_property(self):
        d = self.make()
        cutoffs = d.cutoffs
        assert cutoffs[0] == 10.0
        assert cutoffs[-1] == 21600.0

    def test_out_of_range_sizes_clamped(self):
        d = self.make()
        assert d.select(1.0) == 0       # below k → smallest band
        assert d.select(1e9) == 1       # above p → largest band


class TestAllocationDeviation:
    def test_perfect_match_is_zero(self):
        assert allocation_deviation([0.5, 0.5], [10, 10]) == pytest.approx(0.0)

    def test_hand_computed(self):
        # expected (0.5, 0.5), actual (0.75, 0.25): 2 * 0.25^2 = 0.125.
        assert allocation_deviation([0.5, 0.5], [3, 1]) == pytest.approx(0.125)

    def test_empty_interval_is_zero(self):
        assert allocation_deviation([0.3, 0.7], [0, 0]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="shape"):
            allocation_deviation([0.5, 0.5], [1, 2, 3])
        with pytest.raises(ValueError, match="non-negative"):
            allocation_deviation([0.5, 0.5], [-1, 2])


class TestIntervalDeviations:
    def test_windows_assigned_correctly(self):
        expected = [0.5, 0.5]
        times = np.array([0.5, 1.5, 2.5, 3.5])
        targets = np.array([0, 0, 1, 1])
        series = interval_deviations(expected, times, targets, 2.0, 2)
        # interval 0: jobs to server 0 only; interval 1: server 1 only.
        np.testing.assert_allclose(series.deviations, [0.5, 0.5])
        np.testing.assert_array_equal(series.counts, [[2, 0], [0, 2]])

    def test_empty_interval_zero(self):
        series = interval_deviations(
            [0.5, 0.5], np.array([0.1]), np.array([0]), 1.0, 3
        )
        np.testing.assert_allclose(series.deviations[1:], 0.0)

    def test_out_of_window_jobs_ignored(self):
        series = interval_deviations(
            [1.0], np.array([-1.0, 0.5, 10.0]), np.array([0, 0, 0]), 1.0, 2
        )
        assert series.counts.sum() == 1

    def test_start_time_offset(self):
        series = interval_deviations(
            [1.0], np.array([5.5]), np.array([0]), 1.0, 2, start_time=5.0
        )
        assert series.counts[0, 0] == 1

    def test_summary_stats(self):
        series = DeviationSeries(
            deviations=np.array([0.1, 0.3]),
            counts=np.zeros((2, 1)),
            interval_length=1.0,
            start_time=0.0,
        )
        assert series.mean == pytest.approx(0.2)
        assert series.max == pytest.approx(0.3)
        assert series.n_intervals == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="align"):
            interval_deviations([1.0], np.array([1.0]), np.array([0, 1]), 1.0, 1)
        with pytest.raises(ValueError, match="interval_length"):
            interval_deviations([1.0], np.array([1.0]), np.array([0]), 0.0, 1)
        with pytest.raises(ValueError, match="n_intervals"):
            interval_deviations([1.0], np.array([1.0]), np.array([0]), 1.0, 0)
        with pytest.raises(ValueError, match="out of range"):
            interval_deviations([1.0], np.array([0.5]), np.array([3]), 1.0, 1)
