"""Tests for the extension components: JSQ(d), modulated arrivals,
adaptive ORR."""

import numpy as np
import pytest

from repro.core import get_policy, run_policy_once
from repro.core.adaptive import AdaptiveOrrDispatcher
from repro.dispatch import PowerOfDChoicesDispatcher
from repro.distributions import Exponential
from repro.rng import StreamFactory
from repro.sim import SimulationConfig, run_simulation
from repro.sim.modulated import ModulatedArrivalStream, RateProfile, diurnal_profile


class TestPowerOfDChoices:
    def make(self, speeds=(1.0, 1.0, 4.0), d=2, seed=0, **kw):
        disp = PowerOfDChoicesDispatcher(
            speeds, d=d, rng=np.random.default_rng(seed), **kw
        )
        disp.reset(None)
        return disp

    def test_d_equals_n_is_least_load(self):
        from repro.dispatch import LeastLoadDispatcher

        speeds = (1.0, 2.0, 4.0)
        jsq = self.make(speeds, d=3)
        ll = LeastLoadDispatcher(speeds)
        ll.reset(None)
        for _ in range(50):
            assert jsq.select(1.0) == ll.select(1.0)

    def test_d_one_weighted_matches_speed_shares(self):
        d = self.make((1.0, 4.0), d=1, seed=1)
        picks = np.array([d.select(1.0) for _ in range(5000)])
        # d=1 weighted sampling ≈ weighted random dispatch.
        frac_fast = (picks == 1).mean()
        assert frac_fast == pytest.approx(0.8, abs=0.03)
        # Known queue must track picks.
        counts = np.bincount(picks, minlength=2)
        np.testing.assert_array_equal(d.known_queue_lengths, counts)

    def test_uniform_sampling_option(self):
        d = self.make((1.0, 4.0), d=1, seed=1, weighted_sampling=False)
        picks = np.array([d.select(1.0) for _ in range(5000)])
        assert (picks == 1).mean() == pytest.approx(0.5, abs=0.03)
        assert "uniform" in d.name

    def test_load_update(self):
        d = self.make()
        server = d.select(1.0)
        d.on_load_update(server)
        assert d.known_queue_lengths[server] == 0
        with pytest.raises(RuntimeError):
            d.on_load_update(server)
        with pytest.raises(IndexError):
            d.on_load_update(99)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="d must lie"):
            PowerOfDChoicesDispatcher((1.0, 1.0), d=3, rng=rng)
        with pytest.raises(ValueError, match="positive"):
            PowerOfDChoicesDispatcher((0.0,), d=1, rng=rng)

    def test_requires_reset(self):
        d = PowerOfDChoicesDispatcher((1.0,), d=1, rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError, match="reset"):
            d.select(1.0)

    def test_prefers_less_loaded_sample(self):
        d = self.make((1.0, 1.0), d=2, seed=0)
        first = d.select(1.0)
        second = d.select(1.0)
        assert second != first  # the other queue is shorter

    def test_integration_beats_random_on_homogeneous(self):
        config = SimulationConfig(
            speeds=(1.0,) * 4, utilization=0.8, duration=4.0e4
        )
        jsq = run_policy_once(config, get_policy("JSQ2"), seed=5)
        wran = run_policy_once(config, get_policy("WRAN"), seed=5)
        assert jsq.metrics.mean_response_ratio < wran.metrics.mean_response_ratio


class TestRateProfile:
    def test_normalization(self):
        p = RateProfile([1.0, 3.0], segment_length=10.0)
        np.testing.assert_allclose(p.multipliers, [0.5, 1.5])
        assert p.period == 20.0
        assert p.area_per_period == pytest.approx(20.0)

    def test_cumulative_piecewise(self):
        p = RateProfile([1.0, 3.0], segment_length=10.0)
        assert p.cumulative(0.0) == 0.0
        assert p.cumulative(10.0) == pytest.approx(5.0)    # 10 * 0.5
        assert p.cumulative(20.0) == pytest.approx(20.0)   # + 10 * 1.5
        assert p.cumulative(30.0) == pytest.approx(25.0)   # next period

    def test_inverse_roundtrip(self):
        p = RateProfile([0.5, 2.0, 1.5], segment_length=7.0)
        ts = np.linspace(0.0, 100.0, 57)
        back = p.inverse_cumulative(np.array([p.cumulative(t) for t in ts]))
        np.testing.assert_allclose(back, ts, atol=1e-9)

    def test_multiplier_at(self):
        p = RateProfile([1.0, 3.0], segment_length=10.0)
        assert p.multiplier_at(5.0) == pytest.approx(0.5)
        assert p.multiplier_at(15.0) == pytest.approx(1.5)
        assert p.multiplier_at(25.0) == pytest.approx(0.5)  # periodic

    def test_validation(self):
        with pytest.raises(ValueError):
            RateProfile([], 1.0)
        with pytest.raises(ValueError):
            RateProfile([1.0, -1.0], 1.0)
        with pytest.raises(ValueError):
            RateProfile([1.0], 0.0)
        with pytest.raises(ValueError):
            RateProfile([1.0], 1.0).cumulative(-1.0)

    def test_diurnal_profile(self):
        p = diurnal_profile(peak_to_trough=3.0, segments=24, period=86400.0)
        assert p.period == pytest.approx(86400.0)
        assert p.multipliers.mean() == pytest.approx(1.0)
        # segment midpoints never hit sin = ±1 exactly; ~3 is close enough
        assert p.multipliers.max() / p.multipliers.min() == pytest.approx(3.0, rel=0.05)

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            diurnal_profile(peak_to_trough=0.5)
        with pytest.raises(ValueError):
            diurnal_profile(segments=1)


class TestModulatedArrivalStream:
    def make(self, seed=0):
        profile = RateProfile([0.5, 1.5], segment_length=500.0)
        dist = Exponential(1.0)  # base rate 1/s
        return ModulatedArrivalStream(dist, profile, np.random.default_rng(seed)), profile

    def test_rate_tracks_profile(self):
        stream, profile = self.make()
        times = stream.arrivals_until(100_000.0)
        # Long-run rate preserved.
        assert times.size / 100_000.0 == pytest.approx(1.0, rel=0.03)
        # Per-phase rates follow the multipliers (0.5 vs 1.5).
        phase = times % profile.period
        slow = np.count_nonzero(phase < 500.0)
        fast = times.size - slow
        assert fast / slow == pytest.approx(3.0, rel=0.1)

    def test_next_arrival_matches_batch(self):
        a, _ = self.make(seed=3)
        batch = a.arrivals_until(2000.0)
        b, _ = self.make(seed=3)
        seq = []
        while True:
            t = b.next_arrival()
            if t > 2000.0:
                break
            seq.append(t)
        np.testing.assert_allclose(batch, seq, rtol=1e-9)

    def test_monotone(self):
        stream, _ = self.make(seed=5)
        times = stream.arrivals_until(5000.0)
        assert np.all(np.diff(times) > 0)

    def test_config_integration(self):
        profile = diurnal_profile(peak_to_trough=2.0, period=1.0e4, segments=8)
        config = SimulationConfig(
            speeds=(2.0, 2.0), utilization=0.5, duration=3.0e4,
            rate_profile=profile,
        )
        result = run_policy_once_all = run_policy_once(
            config, get_policy("WRR"), seed=1
        )
        assert result.metrics.jobs > 0
        # Mean utilization preserved: busy fraction near 0.5.
        assert result.per_server_utilization.mean() == pytest.approx(0.5, abs=0.12)


class TestAdaptiveOrrDispatcher:
    def test_validation(self):
        with pytest.raises(ValueError, match="update_interval"):
            AdaptiveOrrDispatcher((1.0,), update_interval=0.0)
        with pytest.raises(ValueError, match="safety_margin"):
            AdaptiveOrrDispatcher((1.0,), safety_margin=-0.1)
        with pytest.raises(ValueError, match="ewma_weight"):
            AdaptiveOrrDispatcher((1.0,), ewma_weight=0.0)
        with pytest.raises(ValueError, match="initial_utilization"):
            AdaptiveOrrDispatcher((1.0,), initial_utilization=1.0)
        with pytest.raises(ValueError, match="positive"):
            AdaptiveOrrDispatcher((0.0,))

    def test_requires_reset(self):
        d = AdaptiveOrrDispatcher((1.0, 2.0))
        with pytest.raises(RuntimeError, match="reset"):
            d.select(1.0)

    def test_initial_fractions_from_initial_utilization(self):
        from repro.allocation import optimized_fractions
        from repro.queueing import HeterogeneousNetwork

        speeds = (1.0, 4.0)
        d = AdaptiveOrrDispatcher(speeds, initial_utilization=0.6,
                                  safety_margin=0.0)
        d.reset()
        expected = optimized_fractions(
            HeterogeneousNetwork(np.asarray(speeds), utilization=0.6)
        )
        np.testing.assert_allclose(d.alphas, expected, rtol=1e-12)

    def test_estimate_converges_to_offered_load(self):
        """Feed a steady synthetic stream: the estimate approaches the
        true utilization within a few windows."""
        speeds = (1.0, 1.0)
        d = AdaptiveOrrDispatcher(
            speeds, update_interval=100.0, ewma_weight=1.0,
            safety_margin=0.0, initial_utilization=0.2,
        )
        d.reset()
        # Jobs of size 1.4 arriving every 1 s on capacity 2 → rho = 0.7.
        t = 0.0
        for _ in range(500):
            d.observe_arrival(t)
            d.select(1.4)
            t += 1.0
        assert d.current_estimate == pytest.approx(0.7, rel=0.05)
        assert d.updates_applied >= 4

    def test_no_feedback_wanted(self):
        d = AdaptiveOrrDispatcher((1.0,))
        assert d.wants_feedback is False
        assert d.is_static is False

    def test_engine_integration(self):
        config = SimulationConfig(
            speeds=(1.0, 1.0, 8.0), utilization=0.6, duration=3.0e4
        )
        dispatcher = AdaptiveOrrDispatcher(
            config.speeds, update_interval=2000.0, initial_utilization=0.3
        )
        result = run_simulation(config, dispatcher, None, seed=9)
        assert result.metrics.jobs > 0
        # Moved from the 0.3 prior toward the true 0.6 load.  The
        # heavy-tailed sizes make single windows noisy (one elephant
        # can double a window's offered work), so the band is wide.
        assert 0.45 <= dispatcher.current_estimate <= 0.95

    def test_policy_registry(self):
        policy = get_policy("ADAPTIVE_ORR")
        assert not policy.is_static
        config = SimulationConfig(speeds=(1.0, 4.0), utilization=0.5,
                                  duration=1.5e4)
        result = run_policy_once(config, policy, seed=2)
        assert result.metrics.jobs > 0
