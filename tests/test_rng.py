"""Tests for seeded stream management (repro.rng)."""

import numpy as np
import pytest

from repro.rng import StreamFactory, replication_seeds, substream


class TestSubstream:
    def test_same_seed_same_role_is_deterministic(self):
        a = substream(42, "arrivals").random(5)
        b = substream(42, "arrivals").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_roles_differ(self):
        a = substream(42, "arrivals").random(5)
        b = substream(42, "sizes").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = substream(1, "arrivals").random(5)
        b = substream(2, "arrivals").random(5)
        assert not np.array_equal(a, b)

    def test_unknown_role_raises(self):
        with pytest.raises(KeyError, match="unknown stream role"):
            substream(0, "nonsense")

    def test_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        a = substream(seq, "dispatch").random(3)
        b = substream(np.random.SeedSequence(7), "dispatch").random(3)
        np.testing.assert_array_equal(a, b)

    def test_all_roles_pairwise_distinct(self):
        roles = ["arrivals", "sizes", "dispatch", "feedback", "service", "misc"]
        draws = {r: tuple(substream(0, r).random(4)) for r in roles}
        assert len(set(draws.values())) == len(roles)


class TestReplicationSeeds:
    def test_count(self):
        assert len(replication_seeds(0, 10)) == 10

    def test_zero_replications(self):
        assert replication_seeds(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            replication_seeds(0, -1)

    def test_prefix_stability(self):
        """Adding replications never changes earlier ones."""
        few = replication_seeds(5, 3)
        many = replication_seeds(5, 10)
        for a, b in zip(few, many):
            assert substream(a, "arrivals").random() == substream(b, "arrivals").random()

    def test_replications_are_independent(self):
        seeds = replication_seeds(5, 4)
        draws = [tuple(substream(s, "arrivals").random(4)) for s in seeds]
        assert len(set(draws)) == 4


class TestStreamFactory:
    def test_roles_cached(self):
        f = StreamFactory(9)
        assert f.arrivals is f.arrivals

    def test_roles_match_substream(self):
        f = StreamFactory(9)
        direct = substream(9, "sizes").random(3)
        np.testing.assert_array_equal(f.sizes.random(3), direct)

    def test_all_properties_exist(self):
        f = StreamFactory(1)
        for role in ("arrivals", "sizes", "dispatch", "feedback", "service", "misc"):
            assert isinstance(getattr(f, role), np.random.Generator)

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            StreamFactory(1).get("bogus")
