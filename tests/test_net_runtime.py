"""Runtime drills for the networked dispatcher: kills and backpressure.

The chaos-facing half of the net test suite: a server stub killed
mid-run must be detected within one control period, survivors must get
exactly the failure-aware optimal fractions, and the socket transport
must report the *same bytes* as the in-process simulation even for the
kill runs — the crash script is deterministic (drop the connection at
the first dispatch after the scripted window), so fault-injected runs
are regression-gated too, not just fault-free ones.
"""

import asyncio
import json

import numpy as np

from repro.distributions import distribution_from_mean_cv
from repro.experiments.extension_chaos import SCENARIOS
from repro.faults.aware import survivor_fractions
from repro.net import run_in_process, run_sockets
from repro.obs import counters
from repro.service import ServiceConfig, SyntheticJobSource
from repro.sim.arrivals import Workload

SPEEDS = (1.0, 2.0, 3.0, 2.0)
CONTROL_PERIOD = 100.0


def make_config(**kw):
    kw.setdefault("speeds", SPEEDS)
    kw.setdefault("duration", 2000.0)
    kw.setdefault("control_period", CONTROL_PERIOD)
    return ServiceConfig(**kw)


def make_source(rho=0.6, seed=21):
    workload = Workload(
        total_speed=sum(SPEEDS),
        utilization=rho,
        size_distribution=distribution_from_mean_cv(1.0, 1.0),
    )
    return SyntheticJobSource(workload, seed)


def report_bytes(report) -> str:
    return json.dumps(report.as_dict(), sort_keys=True)


# Kill server 2 at its first dispatch after window 9 — the failure
# "happens" inside window 10 (t in (1000, 1100]) on both transports.
KILL = {2: 9}
KILL_WINDOW_END = 1100.0


class TestNetKill:
    def test_socket_kill_matches_in_process_kill_byte_for_byte(self):
        config = make_config()
        sim = run_in_process(config, make_source(), kill=KILL)
        live = asyncio.run(run_sockets(config, make_source(), kill=KILL))
        assert report_bytes(live.report) == report_bytes(sim.report)

    def test_detection_lands_within_one_control_period(self):
        config = make_config()
        net = run_in_process(config, make_source(), kill=KILL)
        report = net.report
        assert report.membership_changes == 1
        assert report.clean_shutdown
        boundary = [w for w in report.windows if w.end == KILL_WINDOW_END]
        assert len(boundary) == 1
        assert boundary[0].reason == "membership"
        assert boundary[0].alphas[2] == 0.0
        # Every later window keeps the dead server at zero share.
        for w in report.windows:
            if w.end > KILL_WINDOW_END:
                assert w.alphas[2] == 0.0

    def test_survivors_get_failure_aware_optimal_fractions(self):
        config = make_config()
        net = run_in_process(config, make_source(), kill=KILL)
        decision = next(
            d
            for shard in net.decisions
            for d in shard
            if d.reason == "membership" and d.resolved
        )
        up = np.array([True, True, False, True])
        expected = survivor_fractions(
            decision.estimate.speeds,
            up,
            min(decision.estimate.utilization, config.rho_cap),
        )
        np.testing.assert_array_equal(decision.alphas, expected)

    def test_in_flight_jobs_on_the_dead_server_are_counted_lost(self):
        config = make_config()
        before = counters.snapshot()
        net = run_in_process(config, make_source(), kill=KILL)
        delta = counters.diff_since(before)
        report = net.report
        assert report.jobs_lost > 0
        assert report.jobs_offered == (
            report.jobs_dispatched + report.jobs_shed
        )
        window_lost = sum(w.lost for w in report.windows)
        assert window_lost == report.jobs_lost
        assert int(delta.get("service.jobs_lost", 0)) == report.jobs_lost
        assert int(delta.get("net.server_down", 0)) == 1

    def test_chaos_roster_includes_the_net_kill_drill(self):
        names = {s.name for s in SCENARIOS}
        assert "net-kill" in names
        scenario = next(s for s in SCENARIOS if s.name == "net-kill")
        assert scenario.net_kill
        assert any(kind == "down" for _, kind, _ in scenario.events)


# Server 2 restarts and re-registers for window 14: membership folds it
# back in at the window-14 boundary (start 1400), the forced re-solve at
# t=1500 restores the full-bank optimum.
REJOIN = {2: 14}
REJOIN_BOUNDARY = 1400.0


class TestRejoin:
    def test_socket_rejoin_matches_in_process_byte_for_byte(self):
        config = make_config()
        sim = run_in_process(
            config, make_source(), kill=KILL, rejoin=REJOIN
        )
        live = asyncio.run(
            run_sockets(config, make_source(), kill=KILL, rejoin=REJOIN)
        )
        assert report_bytes(live.report) == report_bytes(sim.report)

    def test_rejoin_restores_the_full_bank_optimum(self):
        config = make_config()
        before = counters.snapshot()
        net = run_in_process(config, make_source(), kill=KILL, rejoin=REJOIN)
        delta = counters.diff_since(before)
        report = net.report
        assert report.membership_changes == 2  # one down, one up
        assert report.clean_shutdown
        assert int(delta.get("net.server_rejoin", 0)) == 1
        # The rejoin resolve lands at the first boundary after the
        # registration window opens, with full-bank optimal fractions.
        rejoined = [
            w for w in report.windows
            if w.end > REJOIN_BOUNDARY and w.alphas[2] > 0.0
        ]
        assert rejoined
        assert rejoined[0].end == REJOIN_BOUNDARY + CONTROL_PERIOD
        assert rejoined[0].reason == "membership"
        assert rejoined[0].servers_up == len(SPEEDS)
        decision = next(
            d
            for shard in net.decisions
            for d in shard
            if d.reason == "membership" and d.resolved and d.alphas[2] > 0.0
        )
        expected = survivor_fractions(
            decision.estimate.speeds,
            np.ones(len(SPEEDS), dtype=bool),
            min(decision.estimate.utilization, config.rho_cap),
        )
        np.testing.assert_array_equal(decision.alphas, expected)

    def test_rejoined_server_warms_up_at_nominal_speed(self):
        # The warm-up guard: the restarted server's speed EWMA is reset,
        # so the rejoin re-solve sees its *nominal* speed, not a stale
        # pre-crash estimate.
        config = make_config()
        net = run_in_process(config, make_source(), kill=KILL, rejoin=REJOIN)
        decision = next(
            d
            for shard in net.decisions
            for d in shard
            if d.reason == "membership" and d.resolved and d.alphas[2] > 0.0
        )
        assert float(decision.estimate.speeds[2]) == SPEEDS[2]

    def test_no_jobs_lost_after_the_rejoin_boundary(self):
        config = make_config()
        net = run_in_process(config, make_source(), kill=KILL, rejoin=REJOIN)
        late = [w for w in net.report.windows if w.start >= REJOIN_BOUNDARY]
        assert late
        assert sum(w.lost for w in late) == 0

    def test_rejoin_without_a_kill_never_fires(self):
        config = make_config()
        plain = run_in_process(config, make_source())
        scripted = run_in_process(config, make_source(), rejoin=REJOIN)
        assert report_bytes(scripted.report) == report_bytes(plain.report)
        assert scripted.report.membership_changes == 0

    def test_chaos_roster_includes_the_net_rejoin_drill(self):
        names = {s.name for s in SCENARIOS}
        assert "net-rejoin" in names
        scenario = next(s for s in SCENARIOS if s.name == "net-rejoin")
        assert scenario.net_rejoin
        assert any(kind == "up" for _, kind, _ in scenario.events)


class TestStaleness:
    def test_hung_stub_is_declared_dead_by_the_staleness_timeout(self):
        # A hang keeps the connection open, so EOF detection never
        # fires — only the reply-timeout fallback can catch it, and it
        # must say so via the counter and the run metrics.
        config = make_config(duration=1500.0)
        before = counters.snapshot()
        live = asyncio.run(
            run_sockets(
                config, make_source(), hang={2: 9}, reply_timeout=0.5
            )
        )
        delta = counters.diff_since(before)
        report = live.report
        assert report.clean_shutdown
        assert report.membership_changes == 1
        assert report.jobs_lost > 0
        assert live.metrics.stale_timeouts >= 1
        assert live.metrics.suspect_shards == 1
        assert int(delta.get("net.heartbeat_stale{shard=0}", 0)) >= 1
        # Post-detection the dead server keeps zero share, like a kill.
        boundary = [w for w in report.windows if w.end == KILL_WINDOW_END]
        assert boundary[0].alphas[2] == 0.0

    def test_fault_free_run_reports_no_staleness(self):
        config = make_config(duration=500.0)
        live = asyncio.run(run_sockets(config, make_source()))
        assert live.metrics.stale_timeouts == 0
        assert live.metrics.suspect_shards == 0

    def test_rtt_percentiles_are_populated(self):
        config = make_config(duration=500.0)
        live = asyncio.run(run_sockets(config, make_source()))
        m = live.metrics
        assert np.isfinite(m.rtt_p50_s) and m.rtt_p50_s > 0.0
        assert np.isfinite(m.rtt_p99_s) and m.rtt_p99_s >= m.rtt_p50_s
        assert {"rtt_p50_s", "rtt_p99_s", "stale_timeouts",
                "suspect_shards"} <= m.as_dict().keys()


class TestBackpressure:
    def test_client_pipeline_saturates_and_queue_bound_holds(self):
        config = make_config(duration=1000.0)
        live = asyncio.run(
            run_sockets(
                config, make_source(), max_inflight=6, queue_limit=2
            )
        )
        m = live.metrics
        assert m.transport == "sockets"
        assert m.max_inflight == 6
        assert m.peak_inflight == 6  # the client pipeline filled up
        assert m.queue_limit == 2
        assert m.peak_submit_queue <= 2  # the orchestrator bound held
        assert live.report.clean_shutdown

    def test_default_flow_control_is_stop_and_wait(self):
        config = make_config(duration=500.0)
        live = asyncio.run(run_sockets(config, make_source()))
        assert live.metrics.peak_inflight == 1
        assert live.report.clean_shutdown

    def test_heartbeats_are_recorded_per_server(self):
        config = make_config(duration=500.0)
        net = run_in_process(config, make_source())
        shard = net.shards[0]
        assert set(shard.last_heartbeat) == set(range(len(SPEEDS)))
