"""Simulation-vs-live equivalence for the networked dispatcher service.

The acceptance bar for the client / orchestrator / server split: on a
pinned seed, the networked stack — in-process transport and real
asyncio sockets alike — must reproduce the fault-free
:class:`~repro.service.loop.SchedulerService` report **byte for byte**
(JSON-serialized with sorted keys).  Anything weaker would let the two
serving paths drift apart one rounding error at a time.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.distributions import distribution_from_mean_cv
from repro.net import run_in_process, run_sockets
from repro.service import (
    SchedulerService,
    ServiceConfig,
    SyntheticJobSource,
    TraceJobSource,
)
from repro.sim.arrivals import Workload

SPEEDS = (1.0, 2.0, 3.0)


def make_config(**kw):
    kw.setdefault("speeds", SPEEDS)
    kw.setdefault("duration", 2000.0)
    kw.setdefault("control_period", 100.0)
    return ServiceConfig(**kw)


def make_source(rho=0.6, seed=1):
    workload = Workload(
        total_speed=sum(SPEEDS),
        utilization=rho,
        size_distribution=distribution_from_mean_cv(1.0, 1.0),
    )
    return SyntheticJobSource(workload, seed)


def report_bytes(report) -> str:
    return json.dumps(report.as_dict(), sort_keys=True)


def service_report(config, source):
    return SchedulerService(config, source).run()


class TestInProcessEquivalence:
    def test_reproduces_service_report_byte_for_byte(self):
        """The issue's acceptance check, pinned seed and geometry."""
        config = make_config()
        baseline = service_report(config, make_source())
        net = run_in_process(config, make_source())
        assert report_bytes(net.report) == report_bytes(baseline)

    def test_equivalence_without_codec_round_trip(self):
        # codec=True routes every message through unpack(pack(.)); both
        # modes must agree, proving the JSON framing is lossless.
        config = make_config()
        direct = run_in_process(config, make_source(), codec=False)
        framed = run_in_process(config, make_source(), codec=True)
        assert report_bytes(direct.report) == report_bytes(framed.report)

    def test_equivalence_under_admission_shedding(self):
        # Overload engages the gate's shedding path; the orchestrator
        # must shed the same jobs in the same order.
        config = make_config(duration=1500.0, shed_threshold=0.6)
        source = lambda: make_source(rho=0.9, seed=5)  # noqa: E731
        baseline = service_report(config, source())
        net = run_in_process(config, source())
        assert baseline.jobs_shed > 0
        assert report_bytes(net.report) == report_bytes(baseline)

    def test_equivalence_on_trace_with_empty_windows(self):
        # All arrivals land in the first two windows; the remaining
        # windows are empty and must still resolve identically.
        times = np.sort(np.linspace(0.0, 180.0, 40))
        sizes = np.full(40, 1.5)
        config = make_config(duration=1000.0)
        baseline = service_report(config, TraceJobSource(times, sizes))
        net = run_in_process(config, TraceJobSource(times, sizes))
        assert report_bytes(net.report) == report_bytes(baseline)

    def test_metrics_are_sane(self):
        config = make_config()
        net = run_in_process(config, make_source())
        m = net.metrics
        assert m.transport == "inproc"
        assert m.windows == 20
        assert m.jobs_offered == net.report.jobs_offered
        assert m.jobs_dispatched == net.report.jobs_dispatched
        assert m.jobs_per_sec > 0
        assert np.isfinite(m.dispatch_ns_per_job)
        assert m.dispatch_ns_per_job > 0


class TestSocketEquivalence:
    def test_live_sockets_reproduce_service_report(self):
        config = make_config()
        baseline = service_report(config, make_source())
        live = asyncio.run(run_sockets(config, make_source()))
        assert report_bytes(live.report) == report_bytes(baseline)

    def test_live_sockets_under_backpressure_overload(self):
        # Deep client pipeline against a shallow orchestrator queue: the
        # credit window saturates, the bounded submit buffer holds, and
        # the report still cannot drift.
        config = make_config()
        baseline = service_report(config, make_source())
        live = asyncio.run(
            run_sockets(config, make_source(), max_inflight=8, queue_limit=2)
        )
        assert report_bytes(live.report) == report_bytes(baseline)
        assert live.metrics.peak_inflight == 8
        assert live.metrics.peak_submit_queue <= 2
        assert live.metrics.jobs_per_sec > 0


class TestSharding:
    def test_two_shards_conserve_the_offered_stream(self):
        config = make_config()
        single = run_in_process(config, make_source())
        sharded = run_in_process(config, make_source(), n_shards=2)
        assert len(sharded.reports) == 2
        assert sum(r.jobs_offered for r in sharded.reports) == (
            single.report.jobs_offered
        )
        # The capacity-aware split sizes each shard's stream to its
        # live capacity, and every offered job must still be accounted
        # for somewhere.
        for r in sharded.reports:
            assert r.jobs_dispatched + r.jobs_shed + r.jobs_lost == (
                r.jobs_offered
            )
        assert all(r.clean_shutdown for r in sharded.reports)

    def test_sharded_sockets_match_sharded_in_process(self):
        config = make_config()
        inproc = run_in_process(config, make_source(), n_shards=2)
        live = asyncio.run(run_sockets(config, make_source(), n_shards=2))
        for a, b in zip(inproc.reports, live.reports):
            assert report_bytes(b) == report_bytes(a)

    def test_capacity_split_ends_shedding_the_even_split_causes(self):
        # The rebalanced-overload drill: an imbalanced pool — shard 0
        # owns 3 units of speed, shard 1 owns 9 — at a total load the
        # full bank carries with room to spare.  The heterogeneity-blind
        # even split halves the stream and drives shard 0 to rho = 1.2,
        # shedding hard; the capacity-aware split holds both shards at
        # the offered utilization and must shed nothing at all.
        speeds = (1.0, 4.0, 2.0, 5.0)
        config = make_config(speeds=speeds, duration=3000.0)

        def source(seed=7):
            wl = Workload(
                total_speed=sum(speeds), utilization=0.6,
                size_distribution=distribution_from_mean_cv(1.0, 1.0),
            )
            return SyntheticJobSource(wl, seed)

        even = run_in_process(config, source(), n_shards=2, split="even")
        cap = run_in_process(config, source(), n_shards=2, split="capacity")
        assert even.metrics.jobs_shed > 0
        assert cap.metrics.jobs_shed == 0
        # Same offered stream either way, and the capacity split's
        # socket run must still match the in-process run byte for byte.
        assert cap.metrics.jobs_offered == even.metrics.jobs_offered
        live = asyncio.run(
            run_sockets(config, source(), n_shards=2, split="capacity")
        )
        for a, b in zip(cap.reports, live.reports):
            assert report_bytes(b) == report_bytes(a)

    def test_single_shard_report_accessor_guards_sharded_runs(self):
        config = make_config()
        sharded = run_in_process(config, make_source(), n_shards=2)
        with pytest.raises(ValueError, match="2 shards"):
            sharded.report
