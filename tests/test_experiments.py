"""Tests for the experiment harness (smoke scale)."""

import numpy as np
import pytest

from repro.experiments import (
    BASE_SPEEDS,
    SCALES,
    Scale,
    active_scale,
    base_config,
    experiment_ids,
    format_table,
    run_experiment,
    run_figure3,
    run_table1,
    run_table2,
    size_config,
    skewness_config,
)
from repro.experiments.figure2 import run_figure2

SMOKE = SCALES["smoke"]


class TestScale:
    def test_presets(self):
        assert set(SCALES) == {"smoke", "quick", "paper"}
        assert SCALES["paper"].duration == 4.0e6
        assert SCALES["paper"].replications == 10

    def test_warmup_quarter(self):
        assert SMOKE.warmup == pytest.approx(SMOKE.duration / 4)

    def test_active_scale_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert active_scale().name == "quick"
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert active_scale().name == "smoke"
        assert active_scale("paper").name == "paper"
        assert active_scale(SMOKE) is SMOKE

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            active_scale("huge")

    def test_validation(self):
        with pytest.raises(ValueError):
            Scale("bad", duration=0.0, replications=1)
        with pytest.raises(ValueError):
            Scale("bad", duration=1.0, replications=0)

    def test_with_replications(self):
        assert SMOKE.with_replications(7).replications == 7


class TestConfigs:
    def test_base_speeds_table3(self):
        assert len(BASE_SPEEDS) == 15
        assert sum(BASE_SPEEDS) == pytest.approx(44.0)

    def test_base_config(self):
        c = base_config(0.8)
        assert c.utilization == 0.8
        assert c.total_speed == pytest.approx(44.0)

    def test_skewness_config(self):
        c = skewness_config(10.0)
        assert len(c.speeds) == 18
        assert sorted(set(c.speeds)) == [1.0, 10.0]
        assert c.speeds.count(10.0) == 2

    def test_skewness_homogeneous(self):
        c = skewness_config(1.0)
        assert set(c.speeds) == {1.0}

    def test_skewness_validation(self):
        with pytest.raises(ValueError):
            skewness_config(0.5)

    def test_size_config(self):
        c = size_config(8)
        assert len(c.speeds) == 8
        assert c.speeds.count(10.0) == 4
        assert c.speeds.count(1.0) == 4

    def test_size_validation(self):
        with pytest.raises(ValueError):
            size_config(3)
        with pytest.raises(ValueError):
            size_config(0)


class TestTable1:
    def test_shape_matches_paper(self):
        result = run_table1(SMOKE)
        measured = result.measured_percent
        # Shares increase with speed.
        assert np.all(np.diff(measured) > 0)
        # Slow machines starved far below their proportional share ...
        assert measured[0] < 0.5 * result.proportional_percent[0]
        # ... fastest gets at least its proportional share.
        assert measured[-1] > result.proportional_percent[-1] * 0.95
        assert measured.sum() == pytest.approx(100.0, abs=1e-6)

    def test_format(self):
        text = run_table1(SMOKE).format()
        assert "Table 1" in text
        assert "least-load %" in text


class TestTable2:
    def test_matrix(self):
        result = run_table2()
        assert result.matrix[("round-robin", "optimized")] == "ORR"
        assert "WRAN" in result.format()


class TestFigure2:
    def test_round_robin_far_smoother(self):
        result = run_figure2(SMOKE)
        assert result.round_robin.mean < result.random.mean / 3.0
        assert result.round_robin.std < result.random.std

    def test_thirty_intervals(self):
        result = run_figure2(SMOKE)
        assert result.round_robin.n_intervals == 30
        assert result.random.n_intervals == 30

    def test_format(self):
        assert "Figure 2" in run_figure2(SMOKE).format()

    def test_seed_override(self):
        a = run_figure2(SMOKE, seed=1)
        b = run_figure2(SMOKE, seed=2)
        assert a.random.mean != b.random.mean


class TestSweeps:
    def test_figure3_smoke_shape(self):
        # Two sweep points, static policies only (fast + cheap).
        result = run_figure3(
            SMOKE, fast_speeds=(1.0, 10.0), policies=("WRAN", "ORR")
        )
        assert result.x_values == [1.0, 10.0]
        # At 10:1 skew ORR clearly beats WRAN on mean response ratio.
        improvement = result.improvement("ORR", "WRAN", "mean_response_ratio")
        assert improvement[1] > 0.15
        series = result.series("ORR", "mean_response_ratio")
        assert series.shape == (2,)

    def test_series_unknown_policy(self):
        result = run_figure3(SMOKE, fast_speeds=(2.0,), policies=("WRR",))
        with pytest.raises(KeyError):
            result.series("ORR", "fairness")

    def test_cells_structure(self):
        result = run_figure3(SMOKE, fast_speeds=(2.0,), policies=("WRR",))
        cell = result.cells[2.0]["WRR"]
        assert cell.policy_name == "WRR"
        assert cell.replications == SMOKE.replications


class TestRegistry:
    def test_ids(self):
        ids = experiment_ids()
        for expected in ("table1", "table2", "table3", "figure2", "figure3",
                         "figure4", "figure5", "figure6"):
            assert expected in ids

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("figure9")

    def test_cheap_runners(self):
        assert "Table 2" in run_experiment("table2")
        out = run_experiment("table3")
        assert "44" in out and "Table 3" in out

    def test_figure2_runner(self):
        assert "deviation" in run_experiment("figure2", SMOKE)


class TestFormatTable:
    def test_basic(self):
        out = format_table(["a", "b"], [[1, 2.5], ["x", 3.0]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "2.5" in out

    def test_title(self):
        assert format_table(["a"], [[1]], title="T").splitlines()[0] == "T"

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_empty_headers(self):
        with pytest.raises(ValueError):
            format_table([], [])


class TestOnlineExtension:
    def test_registered(self):
        from repro.experiments import experiment_ids

        assert "online" in experiment_ids()

    def test_smoke_run_meets_acceptance(self):
        from repro.experiments.extension_online import run_online_extension

        result = run_online_extension(SMOKE)
        out = result.format()
        assert "quasi-static service" in out
        for cell in result.cells:
            assert np.isfinite(cell.service_mrt)
            # Service stays within 5% of oracle static ORR on the same
            # trace, stationary AND step (the step oracle re-solves at
            # the step, the best a quasi-static scheme could do).
            assert cell.mrt_ratio < 1.05, (
                f"{cell.workload}@{cell.control_period}: "
                f"ratio {cell.mrt_ratio:.3f}"
            )
            assert cell.tracking_error < 0.05
        for period in (50.0, 100.0):
            step = result.cell("step", period)
            assert step.recovery_periods <= 2.0
