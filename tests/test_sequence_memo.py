"""Regression tests for the memoized Algorithm 2 sequence builder.

The memo used to store the *caller's* dispatcher alongside the cached
targets; a caller that reset that same object to a different allocation
and later triggered a prefix extension got the extension generated under
the wrong allocation — zero-share servers leaked into the cached
sequence.  The builder now owns a private dispatcher per entry, and the
key carries the full allocation byte pattern so vectors differing only
in which server is zeroed never share an entry.
"""

import numpy as np
import pytest

from repro.dispatch import RoundRobinDispatcher, build_dispatch_sequence
from repro.dispatch import round_robin as rr_module
from repro.dispatch import sequence_memo_key
from repro.sim import fastpath


@pytest.fixture(autouse=True)
def clean_memo():
    rr_module._sequence_memo.clear()
    yield
    rr_module._sequence_memo.clear()


def oracle_sequence(alphas, count, guard_init=1.0):
    """Fresh-dispatcher reference: no memo, no shared state."""
    d = RoundRobinDispatcher(guard_init=guard_init)
    d.reset(np.asarray(alphas, dtype=float))
    return d.select_batch(np.zeros(count))


def test_matches_fresh_dispatcher_bit_exactly():
    alphas = np.array([0.1, 0.2, 0.3, 0.4])
    seq, status = build_dispatch_sequence(alphas, 500)
    assert status == "miss"
    np.testing.assert_array_equal(seq, oracle_sequence(alphas, 500))
    assert seq.dtype == np.int64


def test_prefix_statuses_and_consistency():
    alphas = np.array([0.25, 0.75])
    full, status = build_dispatch_sequence(alphas, 200)
    assert status == "miss"
    prefix, status = build_dispatch_sequence(alphas, 50)
    assert status == "hit"
    np.testing.assert_array_equal(prefix, full[:50])
    extended, status = build_dispatch_sequence(alphas, 400)
    assert status == "extend"
    np.testing.assert_array_equal(extended[:200], full)
    np.testing.assert_array_equal(extended, oracle_sequence(alphas, 400))


def test_caller_reset_cannot_corrupt_extension():
    """The confirmed aliasing bug: one dispatcher object reused across
    allocations, then a prefix extension of the first entry.

    With the memo holding the live caller dispatcher, the extension ran
    under the *second* allocation and dispatched jobs to server 2 —
    which holds an exactly zero share under the first allocation.
    """
    first = np.array([0.5, 0.5, 0.0])
    second = np.array([0.2, 0.2, 0.6])
    shared = RoundRobinDispatcher()

    shared.reset(first)
    seq, _ = build_dispatch_sequence(shared.alphas, 64, guard_init=shared.guard_init)
    shared.reset(second)  # caller moves on; memo entry must not notice
    build_dispatch_sequence(shared.alphas, 64, guard_init=shared.guard_init)

    fresh = RoundRobinDispatcher()
    fresh.reset(first)
    extended, status = build_dispatch_sequence(
        fresh.alphas, 256, guard_init=fresh.guard_init
    )
    assert status == "extend"
    np.testing.assert_array_equal(extended, oracle_sequence(first, 256))
    assert 2 not in extended  # the zero-share server never appears


def test_zero_share_servers_never_dispatched():
    alphas = np.array([0.0, 0.4, 0.0, 0.6, 0.0])
    seq, _ = build_dispatch_sequence(alphas, 300)
    assert set(np.unique(seq)) <= {1, 3}
    counts = np.bincount(seq, minlength=5)
    np.testing.assert_allclose(counts / 300, alphas, atol=0.02)


def test_key_distinguishes_which_server_is_zero():
    a = np.array([0.5, 0.5, 0.0])
    b = np.array([0.5, 0.0, 0.5])
    assert sequence_memo_key(a) != sequence_memo_key(b)
    seq_a, _ = build_dispatch_sequence(a, 100)
    seq_b, _ = build_dispatch_sequence(b, 100)
    assert len(rr_module._sequence_memo) == 2
    assert 2 not in seq_a
    assert 1 not in seq_b
    np.testing.assert_array_equal(seq_a, oracle_sequence(a, 100))
    np.testing.assert_array_equal(seq_b, oracle_sequence(b, 100))


def test_key_distinguishes_guard_init():
    alphas = np.array([0.3, 0.7])
    build_dispatch_sequence(alphas, 50, guard_init=1.0)
    build_dispatch_sequence(alphas, 50, guard_init=0.0)
    assert len(rr_module._sequence_memo) == 2


def test_memo_is_lru_bounded():
    for i in range(2, 2 + rr_module._SEQUENCE_MEMO_ENTRIES + 3):
        alphas = np.full(i, 1.0 / i)
        build_dispatch_sequence(alphas, 10)
    assert len(rr_module._sequence_memo) == rr_module._SEQUENCE_MEMO_ENTRIES


def test_fastpath_wrapper_uses_builder():
    """`_dispatch_targets` must delegate for round robin (memo statuses
    preserved) and bypass for everything else."""
    alphas = np.array([0.5, 0.5, 0.0])
    d = RoundRobinDispatcher()
    d.reset(alphas)
    targets = fastpath._dispatch_targets(d, np.ones(128))
    np.testing.assert_array_equal(targets, oracle_sequence(alphas, 128))
    # Caller resets its dispatcher mid-flight; the cached entry survives.
    d.reset(np.array([0.2, 0.2, 0.6]))
    d.reset(alphas)
    extended = fastpath._dispatch_targets(d, np.ones(512))
    np.testing.assert_array_equal(extended, oracle_sequence(alphas, 512))
    assert 2 not in extended
