"""Edge-case and property tests for Algorithm 1's cutoff (Theorems 1–3).

The closed-form allocation has two documented boundary hazards (cf.
Mondal's note on optimal static load balancing): homogeneous-speed
networks at very light load, where the drop predicate's gap is pure
floating-point noise, and near-saturation loads, where the Theorem 1
numerators approach zero.  These tests pin the deterministic-tolerance
behaviour: Σα = 1, α monotone in speed, and zero shares exactly for the
machines failing the Theorem 3 condition.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.optimized import (
    CUTOFF_RTOL,
    optimized_fractions,
    unconstrained_fractions,
    zero_share_cutoff,
)
from repro.queueing.network import HeterogeneousNetwork

SPEED_CHOICES = [1e-3, 0.05, 0.1, 1.0, 1.0, 2.0, 5.0, 10.0, 1e3]


def _theorem3_cutoff_linear(rates: np.ndarray, lam: float) -> int:
    """Reference linear scan of the (tolerance-relaxed) drop predicate."""
    sq = np.sqrt(rates)
    m = 0
    for i in range(rates.size):
        gap = (rates[i:].sum() - lam) - sq[i] * sq[i:].sum()
        if gap > CUTOFF_RTOL * max(rates[i:].sum(), lam):
            m += 1
        else:
            break
    return m


@given(
    speeds=st.lists(st.sampled_from(SPEED_CHOICES), min_size=1, max_size=24),
    rho=st.floats(min_value=1e-6, max_value=0.999),
)
@settings(max_examples=200, deadline=None)
def test_allocation_properties(speeds, rho):
    network = HeterogeneousNetwork(np.asarray(speeds), utilization=rho)
    alphas = optimized_fractions(network)

    # Σα = 1 within a deterministic tolerance, every entry finite.
    assert np.all(np.isfinite(alphas))
    assert abs(float(alphas.sum()) - 1.0) < 1e-9
    assert np.all(alphas >= 0.0)

    # α monotone in speed: a faster machine never gets less work.
    order = np.argsort(network.speeds, kind="stable")
    assert np.all(np.diff(alphas[order]) >= -1e-9)

    # Zero share iff the Theorem 3 condition: the m slowest machines
    # identified by the cutoff get exactly zero, everyone else > 0.
    rates = np.sort(network.service_rates())
    m = zero_share_cutoff(rates, network.arrival_rate)
    sorted_alphas = alphas[order]
    assert np.all(sorted_alphas[:m] == 0.0)
    assert np.all(sorted_alphas[m:] > 0.0)

    # Binary search agrees with the linear scan of the same predicate
    # (the monotonicity that justifies Algorithm 1's steps 4–5).
    assert m == _theorem3_cutoff_linear(rates, network.arrival_rate)

    # Theorem 3 restated on the active suffix: dropped machines fail
    # sqrt(sᵢμ) > c over the *kept* set, kept machines satisfy it.
    active = rates[m:]
    c = (active.sum() - network.arrival_rate) / np.sqrt(active).sum()
    if m > 0:
        assert np.sqrt(rates[m - 1]) <= c * (1.0 + 1e-9)
    assert np.all(np.sqrt(active) >= c * (1.0 - 1e-9) - 1e-300)


@pytest.mark.parametrize("n", [2, 7, 64, 1000, 2987])
@pytest.mark.parametrize("speed", [0.1, 1.0 / 3.0, 1.1, 3.3])
@pytest.mark.parametrize("rho", [1e-15, 1e-12, 1e-6, 0.5, 1.0 - 1e-9])
def test_homogeneous_never_drops(n, speed, rho):
    """Equal speeds ⇒ equal shares at every load level.

    Before the deterministic tolerance, λ below the suffix-sum rounding
    noise mis-dropped hundreds of machines of a homogeneous network.
    """
    network = HeterogeneousNetwork(np.full(n, speed), utilization=rho)
    rates = np.sort(network.service_rates())
    assert zero_share_cutoff(rates, network.arrival_rate) == 0
    alphas = optimized_fractions(network)
    assert np.all(np.isfinite(alphas))
    assert abs(float(alphas.sum()) - 1.0) < 1e-9
    assert np.all(alphas > 0.0)
    np.testing.assert_allclose(alphas, 1.0 / n, rtol=1e-9)


@pytest.mark.parametrize("rho", [0.999, 1.0 - 1e-9, 1.0 - 1e-12])
def test_near_saturation_keeps_slowest(rho):
    """ρ → 1⁻: every machine must work, α → capacity-proportional."""
    speeds = np.array([0.05, 1.0, 1.0, 2.0, 10.0])
    network = HeterogeneousNetwork(speeds, utilization=rho)
    alphas = optimized_fractions(network)
    assert np.all(alphas > 0.0)
    assert abs(float(alphas.sum()) - 1.0) < 1e-9
    # At saturation the optimum converges to the weighted (capacity-
    # proportional) split; at ρ = 1 − 1e-12 it is there to ~1e-6.
    if rho >= 1.0 - 1e-9:
        np.testing.assert_allclose(alphas, speeds / speeds.sum(), rtol=1e-4)


def test_light_load_drops_all_but_fastest():
    """λ → 0 on a skewed network: Theorem 3 sheds every slow machine."""
    network = HeterogeneousNetwork(
        np.array([1.0, 1.0, 1.0, 10.0]), utilization=1e-6
    )
    alphas = optimized_fractions(network)
    np.testing.assert_allclose(alphas, [0.0, 0.0, 0.0, 1.0], atol=1e-9)


def test_unconstrained_negative_signals_drop():
    """A negative interior solution is exactly the Theorem 2 signal."""
    network = HeterogeneousNetwork(
        np.array([0.05, 1.0, 1.0, 10.0]), utilization=0.3
    )
    raw = unconstrained_fractions(network)
    assert raw.min() < 0.0
    alphas = optimized_fractions(network)
    assert alphas[np.argmin(network.speeds)] == 0.0


def test_tie_speeds_share_equally():
    """Stable sort + closed form: identical speeds get identical α."""
    network = HeterogeneousNetwork(
        np.array([2.0, 1.0, 2.0, 1.0]), utilization=0.9
    )
    alphas = optimized_fractions(network)
    assert alphas[0] == alphas[2]
    assert alphas[1] == alphas[3]
