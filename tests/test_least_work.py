"""Tests for the least-work dispatcher (load-index ablation support)."""

import numpy as np
import pytest

from repro.core import run_policy_once
from repro.core.policies import SchedulingPolicy
from repro.dispatch import LeastWorkDispatcher
from repro.sim import SimulationConfig


class TestLeastWorkDispatcher:
    def make(self, speeds=(1.0, 2.0), **kw):
        d = LeastWorkDispatcher(speeds, **kw)
        d.reset(None)
        return d

    def test_routes_by_normalized_work(self):
        d = self.make()
        # Empty: (0+size)/1 vs (0+size)/2 → faster machine.
        assert d.select(4.0) == 1
        # Now machine 1 holds 4 work: next job of size 1 → (0+1)/1 = 1
        # vs (4+1)/2 = 2.5 → machine 0.
        assert d.select(1.0) == 0
        np.testing.assert_allclose(d.known_outstanding_work, [1.0, 4.0])

    def test_mean_size_mode_ignores_actual_sizes(self):
        d = self.make(use_sizes=False, mean_size=2.0)
        d.select(1000.0)
        np.testing.assert_allclose(sorted(d.known_outstanding_work), [0.0, 2.0])

    def test_load_update_retires_fifo_work(self):
        d = self.make(speeds=(1.0,))
        d.select(3.0)
        d.select(5.0)
        d.on_load_update(0)
        assert d.known_outstanding_work[0] == pytest.approx(5.0)
        d.on_load_update(0)
        assert d.known_outstanding_work[0] == pytest.approx(0.0)

    def test_update_without_outstanding_raises(self):
        d = self.make(speeds=(1.0,))
        with pytest.raises(RuntimeError, match="no outstanding"):
            d.on_load_update(0)

    def test_update_out_of_range(self):
        d = self.make(speeds=(1.0,))
        with pytest.raises(IndexError):
            d.on_load_update(3)

    def test_requires_reset(self):
        d = LeastWorkDispatcher((1.0,))
        with pytest.raises(RuntimeError, match="reset"):
            d.select(1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            LeastWorkDispatcher((0.0,))
        with pytest.raises(ValueError, match="mean_size"):
            LeastWorkDispatcher((1.0,), mean_size=0.0)
        d = LeastWorkDispatcher((1.0, 1.0))
        with pytest.raises(ValueError, match="fractions"):
            d.reset([1.0])

    def test_names(self):
        assert LeastWorkDispatcher((1.0,)).name == "least_work"
        assert LeastWorkDispatcher((1.0,), use_sizes=False).name == "least_count_work"

    def test_ties_to_fastest(self):
        d = self.make(speeds=(2.0, 1.0, 2.0))
        # Empty queues, size 2: normalized 1/1/1 → tie → fastest, lowest
        # index among the fastest.
        assert d.select(2.0) == 0

    def test_engine_integration(self):
        config = SimulationConfig(speeds=(1.0, 4.0), utilization=0.6,
                                  duration=1.5e4, warmup=0.0)
        policy = SchedulingPolicy(
            name="LW", allocator=None,
            dispatcher_factory=lambda s, rng: LeastWorkDispatcher(s),
            is_static=False,
        )
        result = run_policy_once(config, policy, seed=3)
        assert result.metrics.jobs > 0
        assert result.metrics.jobs == result.total_arrivals
