"""Tests for the ASCII figure rendering."""

import numpy as np
import pytest

from repro.experiments.plotting import ascii_plot


class TestAsciiPlot:
    def test_basic_structure(self):
        out = ascii_plot(
            [0.0, 1.0, 2.0],
            {"a": [0.0, 1.0, 2.0], "b": [2.0, 1.0, 0.0]},
            width=20,
            height=5,
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "o=a" in lines[-1] and "x=b" in lines[-1]
        # 5 grid rows + axis + x labels + legend + title.
        assert len(lines) == 9

    def test_extremes_on_borders(self):
        out = ascii_plot([0.0, 1.0], {"a": [0.0, 10.0]}, width=16, height=4)
        lines = out.splitlines()
        # max at top-right, min at bottom-left of the grid.
        assert lines[0].rstrip().endswith("o|")
        grid_rows = [l for l in lines if "|" in l]
        assert grid_rows[-1].split("|")[1][0] == "o"

    def test_y_labels(self):
        out = ascii_plot([0, 1], {"a": [2.0, 8.0]}, width=16, height=4)
        assert "8" in out.splitlines()[0]
        assert "2" in out.splitlines()[3]

    def test_flat_series(self):
        out = ascii_plot([0, 1, 2], {"a": [1.0, 1.0, 1.0]}, width=16, height=4)
        assert "o" in out

    def test_validation(self):
        with pytest.raises(ValueError, match="two x"):
            ascii_plot([1.0], {"a": [1.0]})
        with pytest.raises(ValueError, match="one series"):
            ascii_plot([0, 1], {})
        with pytest.raises(ValueError, match="points"):
            ascii_plot([0, 1], {"a": [1.0]})
        with pytest.raises(ValueError, match="grid too small"):
            ascii_plot([0, 1], {"a": [0.0, 1.0]}, width=4, height=2)
        with pytest.raises(ValueError, match="non-finite"):
            ascii_plot([0, 1], {"a": [0.0, np.nan]})
        with pytest.raises(ValueError, match="at most"):
            ascii_plot([0, 1], {f"s{i}": [0.0, 1.0] for i in range(20)})

    def test_series_overwrite_order(self):
        # Identical series: later marker wins the cells.
        out = ascii_plot([0, 1], {"a": [0.0, 1.0], "b": [0.0, 1.0]},
                         width=16, height=4)
        assert "x" in out and out.count("o") <= 2  # only legend/title 'o's
