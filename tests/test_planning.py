"""Tests for the capacity-planning module (envelope-theorem marginals)."""

import numpy as np
import pytest

from repro.allocation import (
    best_single_upgrade,
    marginal_response_time,
    optimal_mean_response_time,
    optimized_fractions,
    value_of_added_machine,
)
from repro.queueing import HeterogeneousNetwork

from .conftest import make_network


class TestOptimalMeanResponseTime:
    def test_matches_objective_recovery(self, paper_network):
        t = optimal_mean_response_time(paper_network)
        alphas = optimized_fractions(paper_network)
        assert t == pytest.approx(paper_network.mean_response_time(alphas))

    def test_decreases_with_capacity(self):
        small = make_network([1, 2], utilization=0.7)
        # Same arrival rate, more capacity.
        big = HeterogeneousNetwork(
            [1, 2, 2], mu=1.0, arrival_rate=small.arrival_rate
        )
        assert optimal_mean_response_time(big) < optimal_mean_response_time(small)


class TestMarginalResponseTime:
    def test_matches_finite_differences(self, paper_network):
        marginals = marginal_response_time(paper_network)
        eps = 1e-6
        for i in range(paper_network.n):
            up = paper_network.speeds.copy()
            dn = paper_network.speeds.copy()
            up[i] += eps
            dn[i] -= eps
            t_up = optimal_mean_response_time(
                HeterogeneousNetwork(up, mu=paper_network.mu,
                                     arrival_rate=paper_network.arrival_rate)
            )
            t_dn = optimal_mean_response_time(
                HeterogeneousNetwork(dn, mu=paper_network.mu,
                                     arrival_rate=paper_network.arrival_rate)
            )
            numeric = (t_up - t_dn) / (2 * eps)
            assert marginals[i] == pytest.approx(numeric, rel=1e-4, abs=1e-10)

    def test_matches_envelope_direct_partial(self, base_network):
        """Envelope theorem: dT*/ds_i equals the direct partial of the
        objective at the fixed optimal allocation."""
        alphas = optimized_fractions(base_network)
        rates = base_network.service_rates()
        lam = base_network.arrival_rate
        direct = np.zeros(base_network.n)
        active = alphas > 0
        denom = rates - alphas * lam
        direct[active] = (
            -base_network.mu * alphas[active] * lam / denom[active] ** 2
        ) / lam
        np.testing.assert_allclose(
            marginal_response_time(base_network), direct, rtol=1e-9, atol=1e-15
        )

    def test_all_non_positive(self, base_network):
        assert np.all(marginal_response_time(base_network) <= 1e-15)

    def test_zero_for_dropped_machines(self):
        net = make_network([0.05, 1.0, 10.0], utilization=0.3)
        alphas = optimized_fractions(net)
        # At rho=0.3 Algorithm 1 drops both the 0.05 and 1.0 machines.
        assert alphas[0] == 0.0 and alphas[1] == 0.0
        marginals = marginal_response_time(net)
        assert marginals[0] == 0.0 and marginals[1] == 0.0
        assert marginals[2] < 0.0

    def test_fastest_machine_most_valuable_per_unit(self, paper_network):
        """Upgrading already-fast machines helps more per speed unit?
        Not necessarily — check the actual ordering is consistent with
        finite differences rather than assuming a direction."""
        marginals = marginal_response_time(paper_network)
        idx, gain = best_single_upgrade(paper_network, 1e-4)
        assert idx == int(np.argmin(marginals))
        assert gain == pytest.approx(-marginals[idx] * 1e-4, rel=1e-3)


class TestValueOfAddedMachine:
    def test_useful_machine_reduces_response(self, paper_network):
        assert value_of_added_machine(paper_network, 10.0) > 0.0

    def test_useless_machine_worth_nothing(self):
        net = make_network([10.0, 10.0], utilization=0.3)
        # A speed-0.01 machine is below the Theorem 2 cutoff at rho=0.3.
        assert value_of_added_machine(net, 0.01) == 0.0

    def test_bigger_machine_worth_more(self, paper_network):
        small = value_of_added_machine(paper_network, 1.0)
        large = value_of_added_machine(paper_network, 10.0)
        assert large > small

    def test_validation(self, paper_network):
        with pytest.raises(ValueError):
            value_of_added_machine(paper_network, 0.0)


class TestBestSingleUpgrade:
    def test_exhaustive_consistency(self, base_network):
        idx, gain = best_single_upgrade(base_network, 1.0)
        assert 0 <= idx < base_network.n
        assert gain > 0.0
        # Verify it really is the argmax by re-solving every option.
        before = optimal_mean_response_time(base_network)
        for i in range(base_network.n):
            speeds = base_network.speeds.copy()
            speeds[i] += 1.0
            after = optimal_mean_response_time(
                HeterogeneousNetwork(speeds, mu=base_network.mu,
                                     arrival_rate=base_network.arrival_rate)
            )
            assert before - after <= gain + 1e-12

    def test_validation(self, base_network):
        with pytest.raises(ValueError):
            best_single_upgrade(base_network, -1.0)
