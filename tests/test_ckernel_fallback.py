"""Graceful ckernel degradation: no compiler means fallback, not failure.

The contract (see ``ckernel._ensure_fns``): every unavailability mode —
no gcc/cc on PATH, a failed compile, a bad shared object, or an explicit
``REPRO_DISABLE_CKERNEL`` — leaves the bit-identical Python loop in
place and records *why* as a telemetry counter.  Nothing in the stack
may raise because a host happens to be stripped down.
"""

from __future__ import annotations

import shutil

import numpy as np
import pytest

from repro.core import get_policy
from repro.core.evaluate import run_policy_once
from repro.obs import counters
from repro.obs.digest import results_digest
from repro.sim import SimulationConfig, ckernel


@pytest.fixture
def no_compiler(monkeypatch, tmp_path):
    """A world with no gcc/cc, an empty kernel cache, and a fresh probe."""
    monkeypatch.setenv("PATH", "")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
    monkeypatch.delenv("REPRO_DISABLE_CKERNEL", raising=False)
    monkeypatch.setattr(ckernel, "_fns", None)  # force a re-probe
    yield


CONFIG = SimulationConfig(
    speeds=(1.0, 2.0, 5.0), utilization=0.7,
    duration=3000.0, warmup=750.0, discipline="ps",
)


class TestNoCompilerFallback:
    def test_degrades_with_counter_not_exception(self, no_compiler):
        with counters.scoped() as delta:
            assert ckernel.kernel_available() is False  # no raise
        assert delta.get(
            counters.key("ckernel.unavailable", reason="no-compiler")
        ) == 1
        assert ckernel.ps_periods_fn() is None
        assert ckernel.ps_servers_fn() is None

    def test_probe_failure_is_cached_and_counted_once(self, no_compiler):
        ckernel.kernel_available()
        with counters.scoped() as delta:
            ckernel.kernel_available()  # second probe hits the cached False
        assert not delta

    def test_simulation_still_runs_on_python_loop(self, no_compiler):
        result = run_policy_once(CONFIG, get_policy("ORR"), seed=9)
        assert result.metrics.mean_response_time > 0

    def test_python_fallback_is_bit_identical(self, monkeypatch, tmp_path):
        reference = run_policy_once(CONFIG, get_policy("ORR"), seed=9)
        monkeypatch.setenv("PATH", "")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        monkeypatch.setattr(ckernel, "_fns", None)
        fallback = run_policy_once(CONFIG, get_policy("ORR"), seed=9)
        assert results_digest(fallback) == results_digest(reference)


class TestExplicitDisable:
    def test_disable_env_records_dedicated_counter(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_CKERNEL", "1")
        monkeypatch.setattr(ckernel, "_fns", None)
        with counters.scoped() as delta:
            assert ckernel.kernel_available() is False
        assert delta.get("ckernel.disabled") == 1


@pytest.mark.skipif(
    shutil.which("gcc") is None and shutil.which("cc") is None,
    reason="needs a compiler to stage the cached shared object",
)
class TestCachedLibrarySurvivesCompilerLoss:
    def test_existing_so_loads_without_a_compiler(self, monkeypatch):
        # Ensure the .so exists (compiles on demand with the real PATH) …
        monkeypatch.setattr(ckernel, "_fns", None)
        assert ckernel.kernel_available() is True
        assert ckernel.compiled_library_path().exists()
        # … then drop the compiler: the cached library must still load.
        monkeypatch.setenv("PATH", "")
        monkeypatch.setattr(ckernel, "_fns", None)
        with counters.scoped() as delta:
            assert ckernel.kernel_available() is True
        assert not any(k.startswith("ckernel.") for k in delta)


def test_fallback_replay_matches_reference_loop():
    """The degraded path is the reference loop — same bits by definition."""
    from repro.sim.fastpath import _ps_replay_loop, ps_replay

    rng = np.random.default_rng(4)
    times = np.cumsum(rng.exponential(1.0, 2000))
    work = rng.lognormal(0.0, 1.0, 2000)
    fast = ps_replay(times, work, 3.0)
    ref = _ps_replay_loop(times, work, 3.0)
    assert np.array_equal(np.sort(fast), np.sort(ref))
