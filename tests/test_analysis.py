"""Tests for the analysis tools (MSER warm-up, theory validation)."""

import numpy as np
import pytest

from repro.analysis import (
    ValidationReport,
    batch_means,
    mser,
    mser5,
    validate_against_theory,
)
from repro.core import get_policy
from repro.distributions import Exponential
from repro.sim import SimulationConfig


class TestBatchMeans:
    def test_basic(self):
        out = batch_means(np.arange(10, dtype=float), 5)
        np.testing.assert_allclose(out, [2.0, 7.0])

    def test_remainder_dropped(self):
        out = batch_means(np.arange(11, dtype=float), 5)
        assert out.size == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="batch_size"):
            batch_means(np.arange(10.0), 0)
        with pytest.raises(ValueError, match="at least"):
            batch_means(np.arange(3.0), 5)
        with pytest.raises(ValueError, match="1-D"):
            batch_means(np.zeros((2, 2)), 1)


class TestMser:
    def test_detects_transient(self, rng):
        """A decaying start-up bias is truncated, the tail kept."""
        transient = 10.0 * np.exp(-np.arange(100) / 10.0)
        stationary = rng.normal(1.0, 0.1, 900)
        series = np.concatenate([transient + 1.0, stationary])
        result = mser(series)
        # Truncation should land inside/near the 100-sample transient.
        assert 20 <= result.truncation <= 200
        assert result.truncated_mean == pytest.approx(1.0, abs=0.05)

    def test_stationary_series_keeps_everything(self, rng):
        series = rng.normal(5.0, 1.0, 1000)
        result = mser(series)
        # No transient: truncation stays tiny (noise can pick a few).
        assert result.truncation_fraction < 0.2
        assert result.truncated_mean == pytest.approx(5.0, abs=0.15)

    def test_max_fraction_cap(self, rng):
        series = np.concatenate([np.full(800, 100.0), rng.normal(0, 1, 200)])
        result = mser(series, max_fraction=0.5)
        assert result.truncation <= 500

    def test_matches_naive_implementation(self, rng):
        series = rng.random(200)

        def naive(x):
            best_d, best_stat = 0, np.inf
            for d in range(len(x) // 2):
                tail = x[d:]
                stat = ((tail - tail.mean()) ** 2).sum() / tail.size**2
                if stat < best_stat:
                    best_stat, best_d = stat, d
            return best_d, best_stat

        d, stat = naive(series)
        result = mser(series)
        assert result.truncation == d
        assert result.statistic == pytest.approx(stat, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least two"):
            mser(np.array([1.0]))
        with pytest.raises(ValueError, match="max_fraction"):
            mser(np.arange(10.0), max_fraction=0.0)

    def test_mser5_counts_batches(self, rng):
        series = np.concatenate([np.full(50, 10.0), rng.normal(1, 0.1, 450)])
        result = mser5(series)
        assert result.n == 100  # 500 observations / 5
        assert 5 <= result.truncation <= 20


class TestValidateAgainstTheory:
    def test_poisson_matches_model(self):
        """Under Poisson arrivals the M/G/1-PS prediction is exact."""
        config = SimulationConfig(
            speeds=(1.0, 4.0), utilization=0.6, duration=4.0e5, warmup=1.0e5,
            arrival_cv=1.0,
        )
        report = validate_against_theory(
            config, get_policy("WRAN"), replications=4, base_seed=3
        )
        assert abs(report.response_ratio_error) < 0.08
        assert abs(report.response_time_error) < 0.08
        assert "WRAN" in report.summary()

    def test_bursty_arrivals_exceed_model(self):
        """CV-3 arrivals congest servers beyond the Poisson model, and
        random dispatching cannot smooth them: measured > predicted."""
        config = SimulationConfig(
            speeds=(1.0, 4.0), utilization=0.7, duration=2.0e5, warmup=5.0e4,
            arrival_cv=3.0,
        )
        report = validate_against_theory(
            config, get_policy("WRAN"), replications=3, base_seed=3
        )
        assert report.response_ratio_error > 0.05

    def test_round_robin_closer_to_model_than_random(self):
        """The dispatcher's whole point: smoothing narrows the gap."""
        config = SimulationConfig(
            speeds=(2.0, 2.0), utilization=0.8, duration=2.0e5, warmup=5.0e4,
            arrival_cv=3.0,
        )
        rr = validate_against_theory(
            config, get_policy("WRR"), replications=3, base_seed=5
        )
        rand = validate_against_theory(
            config, get_policy("WRAN"), replications=3, base_seed=5
        )
        assert rr.response_ratio_error < rand.response_ratio_error

    def test_dynamic_policy_rejected(self):
        config = SimulationConfig(speeds=(1.0,), utilization=0.5, duration=1e3)
        with pytest.raises(ValueError, match="no static fraction"):
            validate_against_theory(config, get_policy("LEAST_LOAD"))

    def test_report_properties(self):
        report = ValidationReport(
            policy_name="X", utilization=0.5, arrival_cv=1.0,
            predicted_response_time=2.0, measured_response_time=2.2,
            measured_response_time_half_width=0.1,
            predicted_response_ratio=2.0, measured_response_ratio=2.1,
            measured_response_ratio_half_width=0.15, replications=5,
        )
        assert report.response_time_error == pytest.approx(0.1)
        assert report.response_ratio_error == pytest.approx(0.05)
        assert report.within_ci
