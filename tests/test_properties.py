"""Property-based tests (hypothesis) on the core algorithms' invariants."""

import heapq

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.allocation import optimized_fractions, unconstrained_fractions
from repro.dispatch import RoundRobinDispatcher
from repro.distributions import BoundedPareto, Hyperexponential
from repro.metrics import RunningStats
from repro.queueing import HeterogeneousNetwork, objective_gradient, objective_value
from repro.sim import ps_replay

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

speeds_strategy = st.lists(
    st.floats(min_value=0.05, max_value=50.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=12,
)
rho_strategy = st.floats(min_value=0.01, max_value=0.98)


def network_from(speeds, rho):
    return HeterogeneousNetwork(np.asarray(speeds), mu=1.0, utilization=rho)


# ---------------------------------------------------------------------------
# Algorithm 1 — optimized allocation
# ---------------------------------------------------------------------------


class TestOptimizedAllocationProperties:
    @given(speeds=speeds_strategy, rho=rho_strategy)
    @settings(max_examples=150, deadline=None)
    def test_always_feasible(self, speeds, rho):
        net = network_from(speeds, rho)
        a = optimized_fractions(net)
        assert a.shape == (net.n,)
        assert np.all(a >= 0.0)
        assert a.sum() == pytest.approx(1.0, abs=1e-9)
        # No individual computer saturated.
        assert np.all(a * net.arrival_rate < net.service_rates() + 1e-12)

    @given(speeds=speeds_strategy, rho=rho_strategy)
    @settings(max_examples=100, deadline=None)
    def test_never_worse_than_weighted(self, speeds, rho):
        net = network_from(speeds, rho)
        opt = optimized_fractions(net)
        weighted = net.speeds / net.total_speed
        assert objective_value(net, opt) <= objective_value(net, weighted) + 1e-9

    @given(speeds=speeds_strategy, rho=rho_strategy)
    @settings(max_examples=100, deadline=None)
    def test_kkt_stationarity(self, speeds, rho):
        """Active computers share one gradient value; zero-share computers
        have gradient at least that value (KKT complementary slackness)."""
        net = network_from(speeds, rho)
        a = optimized_fractions(net)
        g = objective_gradient(net, a)
        active = a > 1e-12
        if np.any(active):
            g_active = g[active]
            level = g_active.mean()
            np.testing.assert_allclose(g_active, level, rtol=1e-6)
            if np.any(~active):
                assert np.all(g[~active] >= level * (1 - 1e-9))

    @given(speeds=speeds_strategy, rho=rho_strategy)
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_speed(self, speeds, rho):
        """Faster computers never receive a smaller fraction."""
        net = network_from(speeds, rho)
        a = optimized_fractions(net)
        order = np.argsort(net.speeds, kind="stable")
        assert np.all(np.diff(a[order]) >= -1e-12)

    @given(speeds=speeds_strategy, rho=rho_strategy, seed=st.integers(0, 2**16))
    @settings(max_examples=75, deadline=None)
    def test_permutation_equivariance(self, speeds, rho, seed):
        net = network_from(speeds, rho)
        perm = np.random.default_rng(seed).permutation(net.n)
        net_p = network_from(np.asarray(speeds)[perm], rho)
        a = optimized_fractions(net)
        a_p = optimized_fractions(net_p)
        np.testing.assert_allclose(a_p, a[perm], atol=1e-9)

    @given(speeds=speeds_strategy, rho=rho_strategy,
           scale=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=75, deadline=None)
    def test_speed_scale_invariance(self, speeds, rho, scale):
        """Only *relative* speeds matter."""
        a = optimized_fractions(network_from(speeds, rho))
        b = optimized_fractions(network_from(np.asarray(speeds) * scale, rho))
        np.testing.assert_allclose(a, b, atol=1e-9)

    @given(speeds=speeds_strategy, rho=rho_strategy)
    @settings(max_examples=75, deadline=None)
    def test_matches_unconstrained_when_all_positive(self, speeds, rho):
        net = network_from(speeds, rho)
        raw = unconstrained_fractions(net)
        assume(np.all(raw > 1e-9))
        np.testing.assert_allclose(optimized_fractions(net), raw, atol=1e-9)


# ---------------------------------------------------------------------------
# Algorithm 2 — round-robin dispatching
# ---------------------------------------------------------------------------

fractions_strategy = st.lists(
    st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=8
).map(lambda xs: np.asarray(xs) / np.sum(xs))


class TestRoundRobinProperties:
    @given(alphas=fractions_strategy, count=st.integers(1, 2000))
    @settings(max_examples=75, deadline=None)
    def test_counts_track_targets(self, alphas, count):
        """|assigned/count − α| stays within one inter-selection period:
        the dispatcher never drifts from the target fractions."""
        d = RoundRobinDispatcher()
        d.reset(alphas)
        for _ in range(count):
            d.select(1.0)
        counts = d.assigned_counts
        assert counts.sum() == count
        # Each computer has received within ±2 of its ideal count.
        np.testing.assert_allclose(counts, alphas * count, atol=2.0)

    @given(alphas=fractions_strategy)
    @settings(max_examples=50, deadline=None)
    def test_deterministic(self, alphas):
        a = RoundRobinDispatcher()
        b = RoundRobinDispatcher()
        a.reset(alphas)
        b.reset(alphas)
        for _ in range(100):
            assert a.select(1.0) == b.select(1.0)

    @given(alphas=fractions_strategy)
    @settings(max_examples=50, deadline=None)
    def test_next_fields_bounded(self, alphas):
        d = RoundRobinDispatcher()
        d.reset(alphas)
        # A winner's `next` is at most (previous minimum ≤ guard) + 1/α.
        bound = 1.0 / np.min(alphas[alphas > 0]) + 2.0
        for _ in range(500):
            d.select(1.0)
            assert np.all(np.abs(d.next_fields) <= bound)


# ---------------------------------------------------------------------------
# Processor-sharing replay
# ---------------------------------------------------------------------------

workload_strategy = st.integers(1, 60).flatmap(
    lambda n: st.tuples(
        hnp.arrays(np.float64, n, elements=st.floats(0.0, 100.0)),
        hnp.arrays(np.float64, n, elements=st.floats(0.01, 20.0)),
        st.floats(min_value=0.2, max_value=8.0),
    )
)


class TestPsReplayProperties:
    @given(data=workload_strategy)
    @settings(max_examples=150, deadline=None)
    def test_physical_invariants(self, data):
        raw_times, sizes, speed = data
        times = np.sort(raw_times)
        done = ps_replay(times, sizes, speed)
        # 1. A job can never finish faster than running alone.
        assert np.all(done >= times + sizes / speed - 1e-9)
        # 2. A job can never finish later than its arrival plus *all*
        #    work in the trace (the server is work-conserving).
        assert np.all(done <= times + sizes.sum() / speed + 1e-6)
        # 3. No time travel.
        assert np.all(done >= times - 1e-12)

    @given(data=workload_strategy)
    @settings(max_examples=100, deadline=None)
    def test_busy_period_work_conservation(self, data):
        """Within each busy period, the last completion equals the busy
        period's start plus its total work divided by speed."""
        raw_times, sizes, speed = data
        times = np.sort(raw_times)
        done = ps_replay(times, sizes, speed)
        # Sweep arrivals tracking busy periods: PS is work-conserving,
        # so each period ends exactly at start + period_work/speed, and
        # the last completion of the period's jobs equals that end.
        start = times[0]
        work = float(sizes[0])
        members = [0]
        for j in range(1, times.size):
            end = start + work / speed
            if times[j] >= end - 1e-12:  # server idle at this arrival
                assert done[members].max() == pytest.approx(end, rel=1e-9)
                start = float(times[j])
                work = 0.0
                members = []
            work += float(sizes[j])
            members.append(j)
        assert done[members].max() == pytest.approx(start + work / speed, rel=1e-9)

    @given(data=workload_strategy, split=st.integers(1, 59))
    @settings(max_examples=75, deadline=None)
    def test_incremental_equals_batch(self, data, split):
        """Replaying a prefix + drain is consistent with physics even if
        the stream is cut: the first `split` jobs' completions can only
        be earlier or equal when later arrivals are removed."""
        raw_times, sizes, speed = data
        assume(split < raw_times.size)
        times = np.sort(raw_times)
        full = ps_replay(times, sizes, speed)
        partial = ps_replay(times[:split], sizes[:split], speed)
        assert np.all(partial <= full[:split] + 1e-9)


# ---------------------------------------------------------------------------
# Distributions and statistics
# ---------------------------------------------------------------------------


class TestDistributionProperties:
    @given(mean=st.floats(0.01, 1e4), cv=st.floats(1.0, 25.0))
    @settings(max_examples=100, deadline=None)
    def test_h2_fit_roundtrip(self, mean, cv):
        d = Hyperexponential.from_mean_cv(mean, cv)
        assert d.mean == pytest.approx(mean, rel=1e-9)
        assert d.cv == pytest.approx(cv, rel=1e-6)

    @given(
        k=st.floats(0.01, 100.0),
        ratio=st.floats(1.5, 1e4),
        alpha=st.floats(0.1, 3.0),
        q=st.floats(0.0, 1.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_bounded_pareto_ppf_in_support(self, k, ratio, alpha, q):
        d = BoundedPareto(k, k * ratio, alpha)
        x = d.ppf(q)
        assert d.k - 1e-12 <= x <= d.p + 1e-12
        assert d.cdf(x) == pytest.approx(q, abs=1e-9)

    @given(
        xs=hnp.arrays(
            np.float64,
            st.integers(1, 300),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_running_stats_matches_numpy(self, xs):
        s = RunningStats()
        s.add_array(xs)
        assert s.mean == pytest.approx(xs.mean(), rel=1e-9, abs=1e-9)
        assert s.variance == pytest.approx(xs.var(), rel=1e-6, abs=1e-6)

    @given(
        xs=hnp.arrays(np.float64, st.integers(1, 100), elements=st.floats(-100, 100)),
        ys=hnp.arrays(np.float64, st.integers(1, 100), elements=st.floats(-100, 100)),
    )
    @settings(max_examples=100, deadline=None)
    def test_running_stats_merge_associative(self, xs, ys):
        merged = RunningStats()
        merged.add_array(xs)
        other = RunningStats()
        other.add_array(ys)
        merged.merge(other)
        direct = RunningStats()
        direct.add_array(np.concatenate([xs, ys]))
        assert merged.mean == pytest.approx(direct.mean, rel=1e-9, abs=1e-9)
        assert merged.variance == pytest.approx(direct.variance, rel=1e-6, abs=1e-6)
