"""Tests for queue sampling and workload characterization."""

import numpy as np
import pytest

from repro.analysis import characterize
from repro.dispatch import CyclicDispatcher
from repro.distributions import Exponential
from repro.rng import StreamFactory
from repro.sim import (
    JobTrace,
    QueueSampler,
    SimulationConfig,
    Workload,
    run_simulation,
)


class TestQueueSampler:
    def run_sampled(self, interval=5.0, duration=2.0e4, rho=0.5):
        config = SimulationConfig(
            speeds=(1.0,), utilization=rho, duration=duration, warmup=0.0,
            size_distribution=Exponential.from_mean(1.0), arrival_cv=1.0,
        )
        sampler = QueueSampler(interval)
        result = run_simulation(
            config, CyclicDispatcher(), np.array([1.0]), seed=5,
            sampler=sampler,
        )
        return sampler, result

    def test_sample_grid(self):
        sampler, _ = self.run_sampled(interval=100.0, duration=1000.0)
        np.testing.assert_allclose(sampler.times, np.arange(0, 1001, 100.0))

    def test_littles_law_cross_check(self):
        """L from the sampler matches lambda * T from job statistics."""
        sampler, result = self.run_sampled(interval=1.0, duration=1.0e5)
        lam = result.total_arrivals / result.duration
        expected_l = lam * result.metrics.mean_response_time
        assert sampler.time_average_number_in_system() == pytest.approx(
            expected_l, rel=0.1
        )

    def test_mm1_occupancy(self):
        """M/M/1 at rho=0.5: L = rho/(1-rho) = 1."""
        sampler, _ = self.run_sampled(interval=1.0, duration=2.0e5)
        assert sampler.time_average_number_in_system() == pytest.approx(1.0, rel=0.1)

    def test_per_server_mean_shape(self):
        sampler, _ = self.run_sampled()
        assert sampler.per_server_mean().shape == (1,)

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueSampler(0.0)
        with pytest.raises(ValueError, match="no samples"):
            QueueSampler(1.0).time_average_number_in_system()


class TestCharacterize:
    def make_trace(self, cv=3.0, horizon=2.0e5):
        w = Workload(total_speed=10.0, utilization=0.7, arrival_cv=cv)
        return JobTrace.synthesize(w, StreamFactory(3).arrivals, horizon)

    def test_paper_workload_detected(self):
        report = characterize(self.make_trace())
        assert report.heavy_tailed
        assert report.bursty
        assert report.interarrival_cv == pytest.approx(3.0, rel=0.2)
        assert report.size_cv > 2.0
        assert report.top1pct_load_share > 0.2

    def test_poisson_workload_not_bursty(self):
        report = characterize(self.make_trace(cv=1.0))
        assert not report.bursty
        assert report.dispersion_index == pytest.approx(1.0, abs=0.4)

    def test_percentiles_ordered(self):
        report = characterize(self.make_trace())
        p = report.size_percentiles
        assert p[50] <= p[90] <= p[99]
        assert p[50] >= 10.0  # Bounded Pareto lower bound

    def test_recommended_model(self):
        report = characterize(self.make_trace())
        model = report.recommended_model()
        assert model["size_mean"] == pytest.approx(report.mean_size)
        assert model["interarrival_cv"] >= 1.0

    def test_summary_text(self):
        out = characterize(self.make_trace()).summary()
        assert "heavy-tailed" in out and "bursty" in out

    def test_validation(self):
        tiny = JobTrace(np.array([0.0, 1.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError, match="three jobs"):
            characterize(tiny)
        trace = self.make_trace()
        with pytest.raises(ValueError, match="windows"):
            characterize(trace, n_windows=1)
