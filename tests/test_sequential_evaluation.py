"""Tests for precision-driven sequential replication."""

import pytest

from repro.core import evaluate_policy, evaluate_policy_to_precision, get_policy
from repro.sim import SimulationConfig

CONFIG = SimulationConfig(speeds=(1.0, 4.0), utilization=0.5, duration=1.5e4)


class TestEvaluateToPrecision:
    def test_stops_when_precise(self):
        ev = evaluate_policy_to_precision(
            CONFIG, get_policy("WRR"),
            target_relative_half_width=5.0,  # very loose: stops at minimum
            min_replications=3, max_replications=20, base_seed=4,
        )
        assert ev.replications == 3
        assert ev.mean_response_ratio.relative_half_width <= 5.0

    def test_keeps_going_for_tight_target(self):
        loose = evaluate_policy_to_precision(
            CONFIG, get_policy("WRR"),
            target_relative_half_width=0.5,
            min_replications=3, max_replications=12, base_seed=4,
        )
        tight = evaluate_policy_to_precision(
            CONFIG, get_policy("WRR"),
            target_relative_half_width=0.02,
            min_replications=3, max_replications=12, base_seed=4,
        )
        assert tight.replications >= loose.replications

    def test_caps_at_max(self):
        ev = evaluate_policy_to_precision(
            CONFIG, get_policy("WRAN"),
            target_relative_half_width=1e-9,  # unreachable
            min_replications=2, max_replications=4, base_seed=4,
        )
        assert ev.replications == 4

    def test_prefix_matches_fixed_evaluation(self):
        """Sequential runs extend the deterministic replication seeds,
        so the first k replications match evaluate_policy exactly."""
        seq = evaluate_policy_to_precision(
            CONFIG, get_policy("ORR"),
            target_relative_half_width=1e-9,
            min_replications=3, max_replications=3, base_seed=9,
        )
        fixed = evaluate_policy(
            CONFIG, get_policy("ORR"), replications=3, base_seed=9
        )
        assert seq.mean_response_ratio.mean == fixed.mean_response_ratio.mean

    def test_metric_selection(self):
        ev = evaluate_policy_to_precision(
            CONFIG, get_policy("WRR"),
            target_relative_half_width=0.5, metric="fairness",
            min_replications=2, max_replications=6, base_seed=1,
        )
        assert ev.replications <= 6

    def test_validation(self):
        with pytest.raises(ValueError, match="half-width"):
            evaluate_policy_to_precision(
                CONFIG, get_policy("WRR"), target_relative_half_width=0.0
            )
        with pytest.raises(ValueError, match="min_replications"):
            evaluate_policy_to_precision(
                CONFIG, get_policy("WRR"),
                min_replications=5, max_replications=2,
            )
        with pytest.raises(KeyError, match="unknown metric"):
            evaluate_policy_to_precision(
                CONFIG, get_policy("WRR"), metric="latency",
                min_replications=1, max_replications=2,
            )
