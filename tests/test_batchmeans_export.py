"""Tests for batch-means CIs and sweep export."""

import json

import numpy as np
import pytest

from repro.analysis import batch_means_ci
from repro.experiments import (
    Scale,
    load_sweep_json,
    run_figure3,
    save_sweep_csv,
    save_sweep_json,
    sweep_to_dict,
)

TINY = Scale("tiny", duration=8.0e3, replications=2)


class TestBatchMeansCi:
    def test_iid_coverage(self, rng):
        """On iid data the CI behaves like a plain t interval."""
        xs = rng.normal(10.0, 2.0, 10_000)
        result = batch_means_ci(xs, n_batches=25)
        assert result.mean == pytest.approx(10.0, abs=0.15)
        assert result.lower < 10.0 < result.upper
        assert result.batches_look_independent

    def test_correlated_data_flagged(self):
        """A strong AR(1) with tiny batches leaves correlated means."""
        rng = np.random.default_rng(0)
        n = 4000
        xs = np.empty(n)
        xs[0] = 0.0
        noise = rng.normal(0, 1, n)
        for i in range(1, n):
            xs[i] = 0.999 * xs[i - 1] + noise[i]
        result = batch_means_ci(xs, n_batches=100)
        assert not result.batches_look_independent

    def test_batch_sizing(self):
        result = batch_means_ci(np.arange(105, dtype=float), n_batches=10)
        assert result.batch_size == 10
        assert result.n_batches == 10

    def test_validation(self):
        with pytest.raises(ValueError, match="batches"):
            batch_means_ci(np.arange(10.0), n_batches=1)
        with pytest.raises(ValueError, match="cannot fill"):
            batch_means_ci(np.arange(3.0), n_batches=10)
        with pytest.raises(ValueError, match="confidence"):
            batch_means_ci(np.arange(100.0), confidence=1.2)
        with pytest.raises(ValueError, match="1-D"):
            batch_means_ci(np.zeros((5, 5)))

    def test_str(self):
        out = str(batch_means_ci(np.random.default_rng(1).random(200)))
        assert "batches" in out


class TestSweepExport:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_figure3(TINY, fast_speeds=(1.0, 5.0), policies=("WRAN", "ORR"))

    def test_to_dict_structure(self, sweep):
        d = sweep_to_dict(sweep)
        assert d["experiment_id"] == "figure3"
        assert d["policies"] == ["WRAN", "ORR"]
        assert len(d["points"]) == 2
        cell = d["points"][0]["policies"]["ORR"]["mean_response_ratio"]
        assert set(cell) == {"mean", "half_width", "n"}
        assert cell["n"] == TINY.replications

    def test_json_roundtrip(self, sweep, tmp_path):
        path = save_sweep_json(sweep, tmp_path / "fig3.json")
        loaded = load_sweep_json(path)
        assert loaded == sweep_to_dict(sweep)
        # Valid JSON by construction.
        json.loads(path.read_text())

    def test_csv_rows(self, sweep, tmp_path):
        path = save_sweep_csv(sweep, tmp_path / "fig3.csv")
        lines = path.read_text().strip().splitlines()
        # header + 2 x-values * 2 policies * 3 metrics.
        assert len(lines) == 1 + 2 * 2 * 3
        assert lines[0].startswith("fast speed,policy,metric")

    def test_csv_values_parse_back(self, sweep, tmp_path):
        import csv as csv_mod

        path = save_sweep_csv(sweep, tmp_path / "fig3.csv")
        with open(path) as fh:
            rows = list(csv_mod.DictReader(fh))
        for row in rows:
            float(row["mean"])  # parses
            assert row["policy"] in ("WRAN", "ORR")
