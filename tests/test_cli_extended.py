"""Tests for the simulate/validate CLI subcommands."""

import pytest

from repro.cli import main


class TestSimulateCommand:
    def test_runs_policies(self, capsys):
        code = main([
            "simulate", "--speeds", "1,4", "--utilization", "0.5",
            "--duration", "5000", "--replications", "1",
            "--policies", "ORR,WRR",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ORR" in out and "WRR" in out
        assert "mean resp ratio" in out

    def test_bad_speeds(self, capsys):
        assert main([
            "simulate", "--speeds", "x", "--utilization", "0.5",
        ]) == 2
        assert "could not parse" in capsys.readouterr().err

    def test_bad_utilization(self, capsys):
        assert main([
            "simulate", "--speeds", "1,2", "--utilization", "2.0",
        ]) == 2

    def test_unknown_policy(self, capsys):
        assert main([
            "simulate", "--speeds", "1,2", "--utilization", "0.5",
            "--policies", "NOPE",
        ]) == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_least_load_via_cli(self, capsys):
        code = main([
            "simulate", "--speeds", "1,4", "--utilization", "0.5",
            "--duration", "5000", "--replications", "1",
            "--policies", "LEAST_LOAD",
        ])
        assert code == 0
        assert "LEAST_LOAD" in capsys.readouterr().out


class TestValidateCommand:
    def test_poisson_validation(self, capsys):
        code = main([
            "validate", "--speeds", "1,4", "--utilization", "0.5",
            "--duration", "50000", "--replications", "2",
            "--arrival-cv", "1.0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "predicted" in out
        assert "Poisson arrivals" in out

    def test_bursty_message(self, capsys):
        code = main([
            "validate", "--speeds", "1,1", "--utilization", "0.5",
            "--duration", "20000", "--replications", "1",
            "--arrival-cv", "3.0",
        ])
        assert code == 0
        assert "burstiness penalty" in capsys.readouterr().out

    def test_dynamic_policy_rejected(self, capsys):
        assert main([
            "validate", "--speeds", "1,1", "--utilization", "0.5",
            "--policy", "LEAST_LOAD", "--duration", "5000",
        ]) == 2
        assert "no static fraction" in capsys.readouterr().err

    def test_bad_speeds(self, capsys):
        assert main([
            "validate", "--speeds", ",", "--utilization", "0.5",
        ]) == 2


class TestRunJsonExport:
    def test_json_for_sweep(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        out_path = tmp_path / "fig.json"
        # smoke scale keeps this test feasible; figure6 is the cheapest
        # sweep in job count per point at small utilization coverage.
        from repro.cli import main as cli_main
        code = cli_main(["run", "figure3", "--json", str(out_path),
                         "--scale", "smoke"])
        assert code == 0
        assert out_path.exists()
        import json
        data = json.loads(out_path.read_text())
        assert data["experiment_id"] == "figure3"

    def test_json_rejected_for_tables(self, capsys):
        from repro.cli import main as cli_main
        assert cli_main(["run", "table2", "--json", "/tmp/x.json"]) == 2
        assert "--json supports" in capsys.readouterr().err

    def test_all_rejects_json(self, capsys):
        from repro.cli import main as cli_main
        assert cli_main(["run", "all", "--json", "/tmp/x.json"]) == 2


class TestCharacterizeCommand:
    def test_characterize_trace(self, capsys, tmp_path):
        import numpy as np
        from repro.rng import StreamFactory
        from repro.sim import JobTrace, Workload

        w = Workload(total_speed=10.0, utilization=0.7)
        trace = JobTrace.synthesize(w, StreamFactory(1).arrivals, 5.0e4)
        path = tmp_path / "trace.csv"
        trace.to_csv(path)

        assert main(["characterize", str(path), "--speeds", "2,8"]) == 0
        out = capsys.readouterr().out
        assert "suggested synthetic model" in out
        assert "offered load" in out

    def test_missing_file(self, capsys):
        assert main(["characterize", "/nonexistent/trace.csv"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_speeds(self, capsys, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0.0,1.0\n1.0,1.0\n2.0,1.0\n")
        assert main(["characterize", str(path), "--speeds", "zz"]) == 2
