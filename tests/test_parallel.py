"""Tests for parallel replicated evaluation."""

import pytest

from repro.core import evaluate_policy, evaluate_policy_parallel, get_policy
from repro.sim import SimulationConfig

CONFIG = SimulationConfig(speeds=(1.0, 4.0), utilization=0.5, duration=8.0e3)


class TestEvaluatePolicyParallel:
    def test_bit_identical_to_serial(self):
        par = evaluate_policy_parallel(
            CONFIG, "ORR", replications=3, base_seed=7, n_jobs=2
        )
        ser = evaluate_policy(
            CONFIG, get_policy("ORR"), replications=3, base_seed=7
        )
        assert par.mean_response_time.mean == ser.mean_response_time.mean
        assert par.mean_response_ratio.mean == ser.mean_response_ratio.mean
        assert par.fairness.mean == ser.fairness.mean
        assert par.replications == ser.replications

    def test_n_jobs_one_serial_path(self):
        a = evaluate_policy_parallel(
            CONFIG, "WRR", replications=2, base_seed=3, n_jobs=1
        )
        b = evaluate_policy_parallel(
            CONFIG, "WRR", replications=2, base_seed=3, n_jobs=2
        )
        assert a.mean_response_ratio.mean == b.mean_response_ratio.mean

    def test_estimation_error_variant(self):
        ev = evaluate_policy_parallel(
            CONFIG, "ORR", estimation_error=-0.10,
            replications=2, base_seed=3, n_jobs=2,
        )
        assert ev.policy_name == "ORR(-10%)"

    def test_dynamic_policy(self):
        ev = evaluate_policy_parallel(
            CONFIG, "LEAST_LOAD", replications=2, base_seed=3, n_jobs=2
        )
        assert ev.jobs_per_replication > 0

    def test_unknown_policy_fails_fast(self):
        with pytest.raises(KeyError, match="unknown policy"):
            evaluate_policy_parallel(CONFIG, "NOPE", replications=1)

    def test_validation(self):
        with pytest.raises(ValueError, match="replication"):
            evaluate_policy_parallel(CONFIG, "ORR", replications=0)
        with pytest.raises(ValueError, match="n_jobs"):
            evaluate_policy_parallel(CONFIG, "ORR", replications=1, n_jobs=0)
