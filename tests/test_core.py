"""Tests for the core policy layer and evaluation protocol."""

import numpy as np
import pytest

from repro.allocation import (
    MisestimatedOptimizedAllocator,
    OptimizedAllocator,
    WeightedAllocator,
)
from repro.core import (
    PAPER_POLICIES,
    evaluate_policy,
    get_policy,
    policy_names,
    run_policy_once,
)
from repro.dispatch import (
    LeastLoadDispatcher,
    RandomDispatcher,
    RoundRobinDispatcher,
    SitaDispatcher,
)
from repro.sim import SimulationConfig

CONFIG = SimulationConfig(speeds=(1.0, 2.0, 8.0), utilization=0.6, duration=1.5e4)


class TestPolicyRegistry:
    def test_paper_policies_present(self):
        assert PAPER_POLICIES == ("WRAN", "ORAN", "WRR", "ORR", "LEAST_LOAD")
        for name in PAPER_POLICIES:
            assert get_policy(name).name == name

    def test_policy_names_order(self):
        names = policy_names()
        assert names[:5] == PAPER_POLICIES
        assert "SITA" in names

    def test_case_insensitive(self):
        assert get_policy("orr").name == "ORR"

    def test_unknown_policy(self):
        with pytest.raises(KeyError, match="unknown policy"):
            get_policy("FIFO")

    def test_table2_component_matrix(self):
        rng = np.random.default_rng(0)
        speeds = np.ones(3)
        cases = {
            "WRAN": (WeightedAllocator, RandomDispatcher),
            "ORAN": (OptimizedAllocator, RandomDispatcher),
            "WRR": (WeightedAllocator, RoundRobinDispatcher),
            "ORR": (OptimizedAllocator, RoundRobinDispatcher),
        }
        for name, (alloc_cls, disp_cls) in cases.items():
            p = get_policy(name)
            assert isinstance(p.allocator, alloc_cls)
            assert isinstance(p.build_dispatcher(speeds, rng), disp_cls)

    def test_least_load_is_dynamic(self):
        p = get_policy("LEAST_LOAD")
        assert not p.is_static
        assert p.allocator is None
        assert p.fractions(CONFIG.network()) is None
        d = p.build_dispatcher(np.array([1.0, 2.0]), np.random.default_rng(0))
        assert isinstance(d, LeastLoadDispatcher)

    def test_sita_extension(self):
        p = get_policy("SITA")
        d = p.build_dispatcher(np.array([1.0, 2.0]), np.random.default_rng(0))
        assert isinstance(d, SitaDispatcher)

    def test_estimation_error_variant(self):
        p = get_policy("ORR", estimation_error=-0.10)
        assert p.name == "ORR(-10%)"
        assert isinstance(p.allocator, MisestimatedOptimizedAllocator)
        assert p.allocator.relative_error == -0.10

    def test_estimation_error_rejected_for_weighted(self):
        with pytest.raises(ValueError, match="optimized-allocation"):
            get_policy("WRR", estimation_error=0.05)

    def test_fractions_match_allocator(self):
        net = CONFIG.network()
        np.testing.assert_allclose(
            get_policy("WRR").fractions(net),
            net.speeds / net.total_speed,
        )


class TestRunPolicyOnce:
    def test_static_uses_fast_path_equivalently(self):
        fast = run_policy_once(CONFIG, get_policy("ORR"), seed=1)
        slow = run_policy_once(CONFIG, get_policy("ORR"), seed=1, force_engine=True)
        assert fast.metrics.mean_response_ratio == pytest.approx(
            slow.metrics.mean_response_ratio, rel=1e-9
        )

    def test_common_random_numbers(self):
        """Same seed ⇒ identical arrival stream across policies."""
        a = run_policy_once(CONFIG, get_policy("WRR"), seed=5, record_trace=True)
        b = run_policy_once(CONFIG, get_policy("ORR"), seed=5, record_trace=True)
        np.testing.assert_array_equal(a.trace.times, b.trace.times)

    def test_least_load_runs(self):
        result = run_policy_once(CONFIG, get_policy("LEAST_LOAD"), seed=2)
        assert result.metrics.jobs > 0

    def test_sita_runs(self):
        result = run_policy_once(CONFIG, get_policy("SITA"), seed=2)
        assert result.metrics.jobs > 0


class TestEvaluatePolicy:
    def test_replication_aggregation(self):
        ev = evaluate_policy(CONFIG, get_policy("WRAN"), replications=3, base_seed=1)
        assert ev.replications == 3
        assert ev.mean_response_ratio.n == 3
        assert ev.jobs_per_replication > 0
        assert ev.dispatch_fractions.sum() == pytest.approx(1.0)

    def test_metric_lookup(self):
        ev = evaluate_policy(CONFIG, get_policy("WRAN"), replications=2, base_seed=1)
        assert ev.metric("fairness") is ev.fairness
        with pytest.raises(KeyError, match="unknown metric"):
            ev.metric("latency")

    def test_deterministic_given_base_seed(self):
        a = evaluate_policy(CONFIG, get_policy("ORR"), replications=2, base_seed=9)
        b = evaluate_policy(CONFIG, get_policy("ORR"), replications=2, base_seed=9)
        assert a.mean_response_ratio.mean == b.mean_response_ratio.mean

    def test_invalid_replications(self):
        with pytest.raises(ValueError):
            evaluate_policy(CONFIG, get_policy("ORR"), replications=0)

    def test_orr_beats_wran_on_skewed_system(self):
        """The headline claim at small scale: ORR < WRAN in response ratio."""
        config = SimulationConfig(
            speeds=(1.0,) * 4 + (10.0,) * 2, utilization=0.7, duration=4.0e4
        )
        orr = evaluate_policy(config, get_policy("ORR"), replications=3, base_seed=3)
        wran = evaluate_policy(config, get_policy("WRAN"), replications=3, base_seed=3)
        assert orr.mean_response_ratio.mean < wran.mean_response_ratio.mean
        assert orr.fairness.mean < wran.fairness.mean
