"""Edge-case tests for the event engine and fast path."""

import numpy as np
import pytest

from repro.dispatch import CyclicDispatcher, LeastLoadDispatcher, RoundRobinDispatcher
from repro.distributions import Deterministic
from repro.sim import (
    EventKind,
    EventQueue,
    FeedbackModel,
    Job,
    ProcessorSharingServer,
    SimulationConfig,
    run_simulation,
    run_static_simulation,
)


class TestSimultaneousEvents:
    def test_departure_processed_before_arrival(self):
        """Deterministic workload engineered so a departure and an
        arrival coincide: the freed server state must be visible to the
        arriving job (event-kind priority)."""
        # One server, speed 1; jobs of size 2 arriving every 2 s: each
        # job departs exactly when the next arrives → the queue never
        # builds beyond a single job.
        config = SimulationConfig(
            speeds=(1.0,),
            utilization=0.999999 * (2.0 / 2.0),  # placeholder, overridden below
            duration=100.0,
            warmup=0.0,
            size_distribution=Deterministic(2.0),
            arrival_cv=0.0,
        )
        # utilization parameter must produce inter-arrival exactly 2.0:
        # lambda = rho * total_speed / mean_size → rho = 1 would be
        # needed, which is invalid; instead construct utilization just
        # below 1 and check the system stays near-critical but ordered.
        config = SimulationConfig(
            speeds=(1.0,), utilization=0.999, duration=100.0, warmup=0.0,
            size_distribution=Deterministic(2.0), arrival_cv=0.0,
        )
        result = run_simulation(config, CyclicDispatcher(), np.array([1.0]), seed=0)
        # D/D/1 with rho<1: every response time equals ~the solo time.
        assert result.metrics.mean_response_ratio == pytest.approx(1.0, rel=0.01)

    def test_equal_tag_ps_departures(self):
        """Two identical jobs arriving together depart together; the
        engine must process both stale-free."""
        server = ProcessorSharingServer(1.0)
        a, b = Job(0, 0.0, 1.0), Job(1, 0.0, 1.0)
        server.arrive(a, 0.0)
        server.arrive(b, 0.0)
        t1 = server.next_event_time()
        first = server.on_event(t1)
        t2 = server.next_event_time()
        second = server.on_event(t2)
        assert t1 == pytest.approx(2.0)
        assert t2 == pytest.approx(2.0)
        assert {first.job_id, second.job_id} == {0, 1}


class TestBoundaryConditions:
    def test_arrival_exactly_at_horizon_included(self):
        """Arrivals with t <= duration are dispatched (strict > stops)."""
        config = SimulationConfig(
            speeds=(1.0,), utilization=0.5, duration=10.0, warmup=0.0,
            size_distribution=Deterministic(1.0), arrival_cv=0.0,
        )
        # Deterministic inter-arrival = mean_size/(rho*speed) = 2.0;
        # arrivals at 2,4,6,8,10 — the t=10 one included.
        result = run_simulation(config, CyclicDispatcher(), np.array([1.0]), seed=0)
        assert result.total_arrivals == 5

    def test_fastpath_same_boundary(self):
        config = SimulationConfig(
            speeds=(1.0,), utilization=0.5, duration=10.0, warmup=0.0,
            size_distribution=Deterministic(1.0), arrival_cv=0.0,
        )
        result = run_static_simulation(
            config, CyclicDispatcher(), np.array([1.0]), seed=0
        )
        assert result.total_arrivals == 5

    def test_zero_warmup_counts_everything(self):
        config = SimulationConfig(
            speeds=(1.0,), utilization=0.4, duration=2000.0, warmup=0.0,
        )
        result = run_simulation(config, CyclicDispatcher(), np.array([1.0]), seed=1)
        assert result.metrics.jobs == result.total_arrivals


class TestFeedbackOrdering:
    def test_stale_updates_drain_after_horizon(self):
        """With drain on, late LOAD_UPDATE events must still be consumed
        without corrupting the dispatcher's queue view."""
        config = SimulationConfig(
            speeds=(1.0, 1.0), utilization=0.6, duration=3000.0, warmup=0.0,
            feedback=FeedbackModel(detection_window=1.0, message_delay_mean=50.0),
        )
        dispatcher = LeastLoadDispatcher(config.speeds)
        result = run_simulation(config, dispatcher, None, seed=2)
        # All jobs completed, so after the drain every departure message
        # has been delivered: the known queue must be exactly empty.
        np.testing.assert_array_equal(dispatcher.known_queue_lengths, [0, 0])
        assert result.metrics.jobs == result.total_arrivals

    def test_oracle_feedback_keeps_view_consistent(self):
        config = SimulationConfig(
            speeds=(1.0, 2.0), utilization=0.5, duration=2000.0, warmup=0.0,
            feedback=FeedbackModel(detection_window=0.0, message_delay_mean=0.0),
        )
        dispatcher = LeastLoadDispatcher(config.speeds)
        run_simulation(config, dispatcher, None, seed=3)
        np.testing.assert_array_equal(dispatcher.known_queue_lengths, [0, 0])


class TestEventQueueStress:
    def test_many_interleaved_pushes(self):
        rng = np.random.default_rng(0)
        q = EventQueue()
        times = rng.random(5000) * 100
        for t in times:
            q.push(float(t), EventKind.ARRIVAL)
        popped = [q.pop()[0] for _ in range(len(times))]
        assert popped == sorted(popped)
        assert not q


class TestDispatcherReuseAcrossRuns:
    def test_round_robin_reset_between_runs(self):
        """run_simulation resets the dispatcher: two runs with one
        instance equal two runs with fresh instances."""
        config = SimulationConfig(
            speeds=(1.0, 3.0), utilization=0.5, duration=2000.0, warmup=0.0,
        )
        shared = RoundRobinDispatcher()
        a1 = run_simulation(config, shared, np.array([0.25, 0.75]), seed=4)
        a2 = run_simulation(config, shared, np.array([0.25, 0.75]), seed=4)
        assert a1.metrics.mean_response_time == a2.metrics.mean_response_time
