"""Tests for the analytic sensitivity module."""

import numpy as np
import pytest

from repro.allocation import (
    improvement_curve,
    predicted_improvement,
    response_time_load_derivative,
    speed_dispersion,
)
from repro.queueing import HeterogeneousNetwork

from .conftest import make_network


class TestSpeedDispersion:
    def test_homogeneous_is_zero(self):
        assert speed_dispersion([3.0, 3.0, 3.0]) == pytest.approx(0.0)

    def test_grows_with_skew(self):
        values = [speed_dispersion([1.0, f]) for f in (1.0, 2.0, 5.0, 20.0)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_bounds(self):
        assert 0.0 <= speed_dispersion([1.0, 100.0]) < 1.0

    def test_scale_invariant(self):
        assert speed_dispersion([1.0, 4.0]) == pytest.approx(
            speed_dispersion([10.0, 40.0])
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            speed_dispersion([])
        with pytest.raises(ValueError):
            speed_dispersion([0.0, 1.0])


class TestPredictedImprovement:
    def test_homogeneous_no_improvement(self):
        net = make_network([2.0] * 6, utilization=0.7)
        assert predicted_improvement(net) == pytest.approx(0.0, abs=1e-9)

    def test_figure3_analytic_shape(self):
        """Improvement grows with fast-machine speed (Figure 3 trend)."""
        values = [
            predicted_improvement(
                make_network([f] * 2 + [1.0] * 16, utilization=0.7)
            )
            for f in (1.0, 4.0, 10.0, 20.0)
        ]
        assert all(a < b + 1e-12 for a, b in zip(values, values[1:]))
        # At 20:1 skew the model predicts a large double-digit gap.
        assert values[-1] > 0.25

    def test_figure5_analytic_shape(self):
        """Improvement decreases with load toward the dispersion limit
        (NOT zero — the alphas converge to weighted but the slack
        distribution does not)."""
        speeds = [1.0] * 5 + [1.5] * 4 + [2.0] * 3 + [5.0, 10.0, 12.0]
        curve = improvement_curve(speeds, (0.3, 0.5, 0.7, 0.9, 0.999))
        assert all(a >= b - 1e-12 for a, b in zip(curve, curve[1:]))
        assert curve[0] > 0.4
        # Limit = speed dispersion; rho=0.999 is essentially there.
        assert curve[-1] == pytest.approx(speed_dispersion(speeds), abs=0.01)
        # The paper measures ~24% at rho=0.9; the model says ~22%.
        assert curve[3] == pytest.approx(0.22, abs=0.02)

    def test_curve_validation(self):
        with pytest.raises(ValueError):
            improvement_curve([1.0, 2.0], (0.5, 1.5))

    def test_positive_whenever_heterogeneous(self):
        net = make_network([1.0, 1.5], utilization=0.6)
        assert predicted_improvement(net) > 0.0


class TestLoadDerivative:
    def test_positive_and_growing(self):
        """T* increases with load, ever more steeply."""
        speeds = [1.0, 2.0, 8.0]
        d_low = response_time_load_derivative(make_network(speeds, 0.3))
        d_high = response_time_load_derivative(make_network(speeds, 0.9))
        assert 0.0 < d_low < d_high

    def test_matches_wide_difference(self):
        net = make_network([1.0, 4.0], utilization=0.6)
        from repro.allocation import optimal_mean_response_time

        wide = (
            optimal_mean_response_time(net.with_utilization(0.65))
            - optimal_mean_response_time(net.with_utilization(0.55))
        ) / 0.1
        assert response_time_load_derivative(net) == pytest.approx(wide, rel=0.05)

    def test_boundary_validation(self):
        net = make_network([1.0], utilization=0.5)
        with pytest.raises(ValueError, match="boundary"):
            response_time_load_derivative(net, eps=0.6)
