"""Bench: regenerate Figure 6 (sensitivity to load estimation, §5.4).

Paper claims encoded below:
* at light load, under- and overestimation barely matter;
* underestimation at heavy load erodes ORR's advantage — with a large
  error ORR can fall behind WRR;
* overestimation is nearly harmless at every load (it nudges the
  allocation toward the weighted scheme).
"""

from repro.experiments import format_figure6, run_figure6

from .conftest import run_once


def test_figure6_load_estimation(benchmark, scale):
    result = run_once(benchmark, run_figure6, scale)
    print()
    print(format_figure6(result))

    ratio = {p: result.series(p, "mean_response_ratio") for p in result.policies}
    xs = result.x_values
    light = xs.index(0.3)
    heavy = xs.index(0.9)

    # Light load: estimation errors are benign (within 10% of exact ORR).
    for p in ("ORR(-15%)", "ORR(+15%)"):
        assert abs(ratio[p][light] - ratio["ORR"][light]) < 0.10 * ratio["ORR"][light]

    # Heavy load: underestimating by 15% makes the allocation outright
    # infeasible (fast machines handed more than capacity — the paper's
    # instability warning), so its backlog grows with the horizon and it
    # loses to plain WRR.
    assert ratio["ORR(-15%)"][heavy] > ratio["WRR"][heavy]
    assert ratio["ORR(-15%)"][heavy] > ratio["ORR(-5%)"][heavy]

    # Overestimation is nearly harmless: it interpolates toward WRR, so
    # it should never do materially worse than WRR.  The ρ = 0.9 points
    # carry residual replication noise below paper scale.
    slack = 1.05 if scale.name == "paper" else 1.15
    for i in range(len(xs)):
        assert ratio["ORR(+10%)"][i] <= ratio["WRR"][i] * slack
        assert ratio["ORR(+5%)"][i] <= ratio["WRR"][i] * slack
    # Away from the noisy extreme, overestimation tracks exact ORR.
    mid = xs.index(0.7)
    assert ratio["ORR(+5%)"][mid] < ratio["WRR"][mid]
