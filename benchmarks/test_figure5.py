"""Bench: regenerate Figure 5 (effect of system load, Section 5.3).

Paper claims encoded below:
* ORR is the best static policy at every load level;
* at 90% load ORR's mean response ratio is far below WRR (paper: −24%)
  and WRAN (paper: −34%);
* at low/moderate load the optimized policies run close to Least-Load;
* the Least-Load advantage grows under heavy load.
"""

import numpy as np

from repro.experiments import format_figure5, run_figure5

from .conftest import run_once


def test_figure5_system_load(benchmark, scale):
    result = run_once(benchmark, run_figure5, scale)
    print()
    print(format_figure5(result))

    ratio = {p: result.series(p, "mean_response_ratio") for p in result.policies}
    xs = result.x_values
    heavy = xs.index(0.9)
    light = xs.index(0.3)

    # ORR is the best static at every load.  Tolerance covers ORAN ties
    # at light load (dispatching barely matters) and the residual noise
    # of the ρ = 0.9 point, whose variance shrinks only with the paper's
    # full 4e6 s × 10-run protocol.
    tol = 1.03 if scale.name == "paper" else 1.08
    for p in ("WRAN", "ORAN", "WRR"):
        assert np.all(ratio["ORR"] <= ratio[p] * tol), f"ORR not best vs {p}"

    # Heavy-load gains (paper: 24% vs WRR, 34% vs WRAN at 4e6 s; the
    # gap grows with horizon — measured ~8%/25% at 1.5e5 s, ~21%/24% at
    # 6e5 s — so reduced scales assert correspondingly reduced floors).
    gain_wrr = 1.0 - ratio["ORR"][heavy] / ratio["WRR"][heavy]
    gain_wran = 1.0 - ratio["ORR"][heavy] / ratio["WRAN"][heavy]
    wrr_floor, wran_floor = (0.15, 0.25) if scale.name == "paper" else (0.0, 0.10)
    assert gain_wrr > wrr_floor, f"ORR gain over WRR at rho=0.9 only {gain_wrr:.0%}"
    assert gain_wran > wran_floor, f"ORR gain over WRAN at rho=0.9 only {gain_wran:.0%}"

    # Light load: optimized statics sit near the dynamic yardstick
    # (while weighted statics sit several times above it).
    assert ratio["ORR"][light] < 1.5 * ratio["LEAST_LOAD"][light]
    assert ratio["WRAN"][light] > 2.0 * ratio["LEAST_LOAD"][light]

    # The dynamic advantage grows with load.
    rel = ratio["ORR"] / ratio["LEAST_LOAD"]
    assert rel[heavy] > rel[light]

    # Fairness: optimized beats weighted across the sweep.
    fair = {p: result.series(p, "fairness") for p in ("ORR", "WRR", "ORAN", "WRAN")}
    assert np.all(fair["ORR"] < fair["WRR"] * 1.02)
    assert np.all(fair["ORAN"] < fair["WRAN"] * 1.02)
