"""Bench: regenerate Figure 3 (effect of speed skewness, Section 5.1).

Paper claims encoded below:
* homogeneous system (fast speed 1): optimized ≈ weighted allocation;
* the O-vs-W gap grows with skew; at 20:1 ORR beats WRR by tens of
  percent in mean response ratio (paper: 42%) and ORAN beats WRAN
  (paper: 49%);
* crossover: WRR > ORAN near homogeneity, ORAN > WRR at high skew;
* optimized allocation has much better fairness than weighted;
* Least-Load lower-bounds the statics and O* approaches it at high skew.
"""

from repro.experiments import format_figure3, run_figure3

from .conftest import run_once


def test_figure3_speed_skewness(benchmark, scale):
    result = run_once(benchmark, run_figure3, scale)
    print()
    print(format_figure3(result))

    ratio = {p: result.series(p, "mean_response_ratio") for p in result.policies}
    fairness = {p: result.series(p, "fairness") for p in result.policies}
    xs = result.x_values
    homo = xs.index(1.0)
    skewed = xs.index(20.0)

    # Homogeneous: allocation scheme is irrelevant (same dispatcher).
    assert abs(ratio["ORR"][homo] - ratio["WRR"][homo]) < 0.1 * ratio["WRR"][homo]
    assert abs(ratio["ORAN"][homo] - ratio["WRAN"][homo]) < 0.1 * ratio["WRAN"][homo]

    # High skew: optimized allocation wins big (paper: 42% / 49%).
    orr_gain = 1.0 - ratio["ORR"][skewed] / ratio["WRR"][skewed]
    oran_gain = 1.0 - ratio["ORAN"][skewed] / ratio["WRAN"][skewed]
    assert orr_gain > 0.25, f"ORR gain over WRR at 20:1 only {orr_gain:.0%}"
    assert oran_gain > 0.30, f"ORAN gain over WRAN at 20:1 only {oran_gain:.0%}"

    # The gain grows with skew.
    gains = result.improvement("ORR", "WRR", "mean_response_ratio")
    assert gains[skewed] > gains[homo] + 0.15

    # Crossover: dispatcher dominates near homogeneity, allocator at skew.
    assert ratio["WRR"][homo] < ratio["ORAN"][homo]
    assert ratio["ORAN"][skewed] < ratio["WRR"][skewed]

    # Least-Load is the yardstick everywhere; O* approaches it at skew.
    for p in ("WRAN", "ORAN", "WRR", "ORR"):
        assert ratio["LEAST_LOAD"][skewed] <= ratio[p][skewed] * 1.02
    assert ratio["ORR"][skewed] < 1.5 * ratio["LEAST_LOAD"][skewed]

    # Fairness: optimized allocation is much fairer at high skew.
    assert fairness["ORR"][skewed] < fairness["WRR"][skewed]
    assert fairness["ORAN"][skewed] < fairness["WRAN"][skewed]
