"""Extension benches (beyond the paper's matrix; see DESIGN.md §4).

1. Diurnal load — the paper's "use a long-run average ρ" advice breaks
   when instantaneous load swings ±50% around the mean: the fixed-ρ̄
   allocation behaves like Figure 6's underestimation case at every
   peak, and plain WRR overtakes it.  The adaptive controller (windowed
   re-estimation, still zero inter-computer messages) restores the ORR
   advantage.
2. JSQ(d) information spectrum — capacity-weighted power-of-two-choices
   sits between ORR and Least-Load, while *uniform* JSQ(2) on a
   slow-machine-heavy cluster is outright unstable (offered load per
   speed class follows head-count, not capacity).
3. Feedback staleness — Dynamic Least-Load's advantage decays as its
   load-update messages age; with sufficiently stale information the
   expensive dynamic policy does no better than free static ORR, which
   is the paper's core argument for static scheduling.
"""

import numpy as np
import pytest

from repro.core import evaluate_policy, get_policy, run_policy_once
from repro.core.policies import SchedulingPolicy
from repro.dispatch import PowerOfDChoicesDispatcher
from repro.experiments import format_table
from repro.experiments.extension_adaptive import run_adaptive_extension
from repro.sim import FeedbackModel, SimulationConfig

from .conftest import run_once


def test_extension_adaptive_orr_under_diurnal_load(benchmark, scale):
    result = run_once(benchmark, run_adaptive_extension, scale)
    print()
    print(result.format())

    fixed = result.ratio("ORR (fixed rho)")
    adaptive = result.ratio("ADAPTIVE_ORR")
    wrr = result.ratio("WRR")
    least_load = result.ratio("LEAST_LOAD")

    # The headline: adaptation beats both the stale-average ORR and WRR.
    assert adaptive < fixed
    assert adaptive < wrr
    # Fixed-rho ORR loses its edge under the swing (peaks behave like
    # Figure 6's underestimation): it no longer clearly beats WRR.
    assert fixed > wrr * 0.95
    # Ordering against the fully dynamic yardstick still holds.
    assert least_load < adaptive


def test_extension_jsq_information_spectrum(benchmark, scale):
    duration = min(scale.duration, 1.5e5)
    speeds = (1.0,) * 4 + (8.0,) * 2  # slow machines outnumber capacity share
    config = SimulationConfig(speeds=speeds, utilization=0.7, duration=duration)

    def uniform_jsq_policy():
        return SchedulingPolicy(
            name="JSQ2-uniform",
            allocator=None,
            dispatcher_factory=lambda s, rng: PowerOfDChoicesDispatcher(
                s, d=2, rng=rng, weighted_sampling=False
            ),
            is_static=False,
        )

    def run():
        out = {}
        for label, policy in (
            ("ORR", get_policy("ORR")),
            ("JSQ2 (weighted)", get_policy("JSQ2")),
            ("JSQ2 (uniform)", uniform_jsq_policy()),
            ("LEAST_LOAD", get_policy("LEAST_LOAD")),
        ):
            r = run_policy_once(config, policy, seed=scale.base_seed)
            out[label] = r.metrics.mean_response_ratio
        return out

    ratios = run_once(benchmark, run)
    print()
    print(format_table(
        ["policy", "mean response ratio"],
        [[k, v] for k, v in ratios.items()],
        title=f"Extension: information spectrum on {speeds} at rho=0.7",
    ))

    # Information spectrum: more (usable) information → better.
    assert ratios["LEAST_LOAD"] <= ratios["JSQ2 (weighted)"] * 1.05
    assert ratios["JSQ2 (weighted)"] < ratios["ORR"]
    # The pitfall: uniform sampling overloads the slow class (its
    # offered work exceeds capacity, so the backlog grows with the
    # horizon) — far worse than every speed-aware policy.
    assert ratios["JSQ2 (uniform)"] > 3.0 * ratios["JSQ2 (weighted)"]
    assert ratios["JSQ2 (uniform)"] > ratios["ORR"]


def test_extension_feedback_staleness(benchmark, scale):
    """Least-Load degrades toward (and past) static ORR as its
    load-update messages get stale.

    The paper's feedback path is fast (~0.55 s mean lag vs 76.8 s mean
    job size).  Sweeping the message delay shows how much of Least-
    Load's advantage is purchased by that freshness — and therefore what
    the static schemes save by not needing it at all.
    """
    duration = min(scale.duration, 1.0e5)
    speeds = (1.0,) * 4 + (8.0,) * 2
    reps = max(scale.replications, 3)
    delays = (0.05, 10.0, 100.0, 1000.0)

    def run():
        orr_cfg = SimulationConfig(speeds=speeds, utilization=0.7,
                                   duration=duration)
        orr = evaluate_policy(orr_cfg, get_policy("ORR"),
                              replications=reps, base_seed=scale.base_seed)
        rows = []
        for delay in delays:
            cfg = SimulationConfig(
                speeds=speeds, utilization=0.7, duration=duration,
                feedback=FeedbackModel(detection_window=1.0,
                                       message_delay_mean=delay),
            )
            ll = evaluate_policy(cfg, get_policy("LEAST_LOAD"),
                                 replications=reps, base_seed=scale.base_seed)
            rows.append((delay, ll.mean_response_ratio.mean))
        return orr.mean_response_ratio.mean, rows

    orr_ratio, rows = run_once(benchmark, run)
    print()
    print(format_table(
        ["message delay (s)", "Least-Load mean response ratio", "vs ORR"],
        [[d, r, r / orr_ratio] for d, r in rows],
        title=(
            "Extension: Least-Load vs feedback staleness "
            f"(static ORR reference: {orr_ratio:.4g})"
        ),
    ))
    ratios = [r for _, r in rows]
    # Fresh feedback: the dynamic policy clearly beats static ORR.
    assert ratios[0] < orr_ratio
    # Staleness degrades it monotonically-ish (allow one inversion of
    # neighbouring points from replication noise, none across the sweep).
    assert ratios[-1] > ratios[0] * 1.3
    # With ~13 mean-job-size staleness the advantage is gone entirely.
    assert ratios[-1] > orr_ratio
