"""Bench: regenerate Table 1 (Dynamic Least-Load workload distribution).

Paper claim: the dynamic scheduler starves slow machines far below their
speed-proportional share and over-feeds the fastest ones; the skew is
monotone in speed.
"""

import numpy as np

from repro.experiments import run_table1

from .conftest import run_once


def test_table1_workload_distribution(benchmark, scale):
    result = run_once(benchmark, run_table1, scale)
    print()
    print(result.format())

    measured = result.measured_percent
    proportional = result.proportional_percent
    # Monotone increasing in speed.
    assert np.all(np.diff(measured) > 0), "shares must increase with speed"
    # Slowest machine starved: well under half its proportional share
    # (paper: 0.29% vs 3.2%).
    assert measured[0] < 0.5 * proportional[0]
    # Fastest machine over-fed relative to proportional share
    # (paper: 30.9% vs 31.7% — at least approximately its share).
    assert measured[-1] > 0.95 * proportional[-1]
    # The optimized closed form tracks the dynamic scheduler's skew
    # direction on every machine: both starve slow, feed fast.
    optimized = result.optimized_percent
    slow_half = slice(0, 3)
    assert np.all(optimized[slow_half] < proportional[slow_half])
    assert np.all(measured[slow_half] < proportional[slow_half])
