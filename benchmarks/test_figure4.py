"""Bench: regenerate Figure 4 (effect of system size, Section 5.2).

Paper claims encoded below:
* ORR keeps a large (paper: 35–40%) mean-response-ratio gain over WRAN
  once the system has more than ~6 computers;
* the gap between ORR and Dynamic Least-Load widens with system size;
* round-robin dispatch improves with size (smoother substreams), so the
  RR-vs-random gap does not shrink.
"""

import numpy as np

from repro.experiments import format_figure4, run_figure4

from .conftest import run_once


def test_figure4_system_size(benchmark, scale):
    result = run_once(benchmark, run_figure4, scale)
    print()
    print(format_figure4(result))

    ratio = {p: result.series(p, "mean_response_ratio") for p in result.policies}
    xs = np.asarray(result.x_values)
    big = xs >= 6.0

    # ORR gains over WRAN on every system with > 6 computers
    # (paper: 35–40%; require > 20% to absorb scale noise).
    gains = result.improvement("ORR", "WRAN", "mean_response_ratio")[big]
    assert np.all(gains > 0.20), f"ORR-over-WRAN gains too small: {gains}"

    # ORR-vs-Least-Load gap widens with size.
    gap = ratio["ORR"] / ratio["LEAST_LOAD"]
    assert gap[-1] > gap[0], "dynamic advantage should grow with system size"

    # Round-robin beats random dispatching under both allocations on the
    # larger systems.
    assert np.all(ratio["ORR"][big] <= ratio["ORAN"][big] * 1.02)
    assert np.all(ratio["WRR"][big] <= ratio["WRAN"][big] * 1.02)

    # Fairness: optimized allocation fairer than weighted at scale.
    fair = {p: result.series(p, "fairness") for p in ("ORR", "WRR")}
    assert np.all(fair["ORR"][big] < fair["WRR"][big])
