"""Micro-benchmarks of the hot kernels (throughput guards).

These keep the simulator honest against performance regressions: the
per-server PS replay and the per-job dispatch decisions dominate every
experiment's wall time (profiled per the HPC guide before optimizing).
"""

import numpy as np
import pytest

from repro.allocation import optimized_fractions
from repro.dispatch import RandomDispatcher, RoundRobinDispatcher
from repro.queueing import HeterogeneousNetwork
from repro.core.cache import ReplicationCache
from repro.core.executor import shutdown_shared_executor
from repro.experiments.base import SCALES
from repro.experiments.figure3 import run_figure3
from repro.sim import ckernel, fcfs_replay, ps_replay
from repro.sim.fastpath import _fcfs_replay_loop, _ps_replay_loop

from .conftest import run_once


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    n = 100_000
    times = np.cumsum(rng.exponential(1.0, n))
    sizes = rng.pareto(1.5, n) + 0.5
    return times, sizes


def test_ps_replay_throughput(benchmark, workload):
    times, sizes = workload
    completions = benchmark(ps_replay, times, sizes, 2.0)
    assert completions.shape == times.shape
    assert np.all(completions >= times)


def test_ps_replay_loop_baseline(benchmark, workload):
    """The pre-vectorization per-event loop, kept as the reference point
    the segmented kernel is compared against."""
    times, sizes = workload
    completions = benchmark(_ps_replay_loop, times[:20_000], sizes[:20_000], 2.0)
    assert completions.shape == (20_000,)


def test_fcfs_replay_throughput(benchmark, workload):
    times, sizes = workload
    completions = benchmark(fcfs_replay, times, sizes, 2.0)
    assert completions.shape == times.shape
    # FCFS departures never decrease.
    assert np.all(np.diff(completions) >= 0)


def test_fcfs_replay_loop_baseline(benchmark, workload):
    """Per-job Lindley loop: the baseline the prefix-max kernel beats."""
    times, sizes = workload
    completions = benchmark(_fcfs_replay_loop, times, sizes, 2.0)
    assert completions.shape == times.shape


def test_round_robin_dispatch_throughput(benchmark):
    alphas = np.array([0.35, 0.22, 0.15, 0.12, 0.04, 0.04, 0.04, 0.04])
    sizes = np.ones(50_000)

    def run():
        d = RoundRobinDispatcher()
        d.reset(alphas)
        return d.select_batch(sizes)

    targets = benchmark(run)
    counts = np.bincount(targets, minlength=8)
    np.testing.assert_allclose(counts / sizes.size, alphas, atol=1e-3)


def test_random_dispatch_throughput(benchmark):
    alphas = np.array([0.35, 0.22, 0.15, 0.12, 0.04, 0.04, 0.04, 0.04])
    sizes = np.ones(50_000)

    def run():
        d = RandomDispatcher(np.random.default_rng(1))
        d.reset(alphas)
        return d.select_batch(sizes)

    targets = benchmark(run)
    assert targets.size == sizes.size


@pytest.mark.skipif(
    not ckernel.kernel_available(), reason="compiled kernel unavailable"
)
def test_fcfs_cell_kernel_throughput(benchmark, workload):
    """The fused C FCFS sweep: 8 plans over 100k shared-stream jobs in
    one call — the kernel-v4 hot loop of cell-batched replay."""
    times, sizes = workload
    speeds = np.array([1.0, 1.0, 2.0, 4.0, 10.0])
    rng = np.random.default_rng(3)
    plans = [rng.integers(0, speeds.size, times.size) for _ in range(8)]
    fn = ckernel.cell_fn()

    def run():
        return ckernel.replay_cell_c(fn, times, sizes, speeds, plans, False)

    comp, _, _, _, ok = benchmark(run)
    assert ok
    assert comp.shape == (8, times.size)


@pytest.mark.skipif(
    not ckernel.kernel_available(), reason="compiled kernel unavailable"
)
def test_arena_reuse_steady_state(workload):
    """Steady-state replay must not regrow arena buffers: after a warm
    call at the high-water size, repeat calls reuse the same memory."""
    times, sizes = workload
    speeds = np.array([1.0, 2.0, 4.0])
    rng = np.random.default_rng(4)
    plans = [rng.integers(0, speeds.size, times.size) for _ in range(4)]
    fn = ckernel.cell_fn()
    ckernel.replay_cell_c(fn, times, sizes, speeds, plans, False, warmup_cut=100)
    a = ckernel.arena()
    grows_before = a.grows
    for _ in range(5):
        *_, ok = ckernel.replay_cell_c(
            fn, times, sizes, speeds, plans, False, warmup_cut=100
        )
        assert ok
    assert a.grows == grows_before


def test_algorithm1_latency(benchmark):
    """Algorithm 1 on a 1000-computer network stays sub-millisecond —
    the 'low overhead' claim that motivates static scheduling."""
    rng = np.random.default_rng(2)
    net = HeterogeneousNetwork(rng.uniform(0.5, 20.0, 1000), utilization=0.7)
    alphas = benchmark(optimized_fractions, net)
    assert alphas.sum() == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# End-to-end sweep benches: the grid executor against the serial path.
# ---------------------------------------------------------------------------

_SWEEP_KWARGS = dict(fast_speeds=(1.0, 10.0), policies=("ORR", "WRR"))


def _smoke_sweep(n_jobs=None):
    return run_figure3(SCALES["smoke"], n_jobs=n_jobs, **_SWEEP_KWARGS)


def test_sweep_serial_smoke(benchmark):
    result = run_once(benchmark, _smoke_sweep)
    assert result.cells


def test_sweep_grid_parallel_smoke(benchmark):
    """Same sweep through the shared pool; series must match serial.

    On many-core machines this is the speedup path; on small ones it
    mainly guards that the pool round-trip stays cheap and exact.
    """
    serial = _smoke_sweep()
    result = run_once(benchmark, _smoke_sweep, n_jobs=2)
    shutdown_shared_executor()
    for policy in _SWEEP_KWARGS["policies"]:
        np.testing.assert_array_equal(
            serial.series(policy, "mean_response_ratio"),
            result.series(policy, "mean_response_ratio"),
        )


def test_sweep_warm_cache_smoke(benchmark, tmp_path):
    """A fully warmed cache pass: no simulation, just lookups."""
    cache = ReplicationCache(tmp_path)
    cold = run_figure3(SCALES["smoke"], cache=cache, **_SWEEP_KWARGS)
    assert cold.cache_misses > 0
    warm = run_once(
        benchmark, run_figure3, SCALES["smoke"], cache=cache, **_SWEEP_KWARGS
    )
    assert warm.cache_hits == cold.cache_misses
    assert warm.cache_misses == 0
