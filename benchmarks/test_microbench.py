"""Micro-benchmarks of the hot kernels (throughput guards).

These keep the simulator honest against performance regressions: the
per-server PS replay and the per-job dispatch decisions dominate every
experiment's wall time (profiled per the HPC guide before optimizing).
"""

import numpy as np
import pytest

from repro.allocation import optimized_fractions
from repro.dispatch import RandomDispatcher, RoundRobinDispatcher
from repro.queueing import HeterogeneousNetwork
from repro.sim import ps_replay


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    n = 100_000
    times = np.cumsum(rng.exponential(1.0, n))
    sizes = rng.pareto(1.5, n) + 0.5
    return times, sizes


def test_ps_replay_throughput(benchmark, workload):
    times, sizes = workload
    completions = benchmark(ps_replay, times, sizes, 2.0)
    assert completions.shape == times.shape
    assert np.all(completions >= times)


def test_round_robin_dispatch_throughput(benchmark):
    alphas = np.array([0.35, 0.22, 0.15, 0.12, 0.04, 0.04, 0.04, 0.04])
    sizes = np.ones(50_000)

    def run():
        d = RoundRobinDispatcher()
        d.reset(alphas)
        return d.select_batch(sizes)

    targets = benchmark(run)
    counts = np.bincount(targets, minlength=8)
    np.testing.assert_allclose(counts / sizes.size, alphas, atol=1e-3)


def test_random_dispatch_throughput(benchmark):
    alphas = np.array([0.35, 0.22, 0.15, 0.12, 0.04, 0.04, 0.04, 0.04])
    sizes = np.ones(50_000)

    def run():
        d = RandomDispatcher(np.random.default_rng(1))
        d.reset(alphas)
        return d.select_batch(sizes)

    targets = benchmark(run)
    assert targets.size == sizes.size


def test_algorithm1_latency(benchmark):
    """Algorithm 1 on a 1000-computer network stays sub-millisecond —
    the 'low overhead' claim that motivates static scheduling."""
    rng = np.random.default_rng(2)
    net = HeterogeneousNetwork(rng.uniform(0.5, 20.0, 1000), utilization=0.7)
    alphas = benchmark(optimized_fractions, net)
    assert alphas.sum() == pytest.approx(1.0)
