"""Shared benchmark infrastructure.

Each benchmark regenerates one table/figure of the paper (or an ablation
from DESIGN.md), asserts the paper's qualitative claims — who wins, by
roughly what factor, where crossovers fall — and prints the regenerated
rows/series.  Absolute paper numbers are not asserted (different
horizon/replication counts), shapes are.

Scale: ``REPRO_SCALE`` env (smoke/quick/paper), default quick.  The
recorded EXPERIMENTS.md numbers come from these benches.
"""

from __future__ import annotations

import pytest

from repro.experiments import active_scale


@pytest.fixture(scope="session")
def scale():
    return active_scale()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
