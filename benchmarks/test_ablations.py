"""Ablation benches for the design choices called out in DESIGN.md.

1. PS vs finite-quantum round robin — justifies modeling the paper's
   "preemptive round-robin" CPUs as processor sharing.
2. Closed-form Algorithm 1 vs scipy SLSQP — identical optimum, orders of
   magnitude faster.
3. Algorithm 2's guard initialization (next = 1 vs 0) — the guard
   staggers first assignments and lowers early-cycle deviation.
4. Arrival burstiness (CV sweep) — round robin always beats random
   dispatching, but the *relative* edge is largest for smooth arrivals
   (the deterministic split removes a constant share of per-server
   arrival SCV while the baseline grows with c²).
5. Event engine vs vectorized fast path — identical statistics, large
   speedup.
6. Interleaving vs burst (quota) WRR — what Algorithm 2's smoothing
   buys beyond realizing the correct per-cycle counts.
7. Load index vs service discipline — for PS servers the run-queue
   count is the *correct* index; a clairvoyant outstanding-work index
   loses by multiples.
"""

import time

import numpy as np
import pytest

from repro.allocation import numeric_fractions, optimized_fractions
from repro.core import get_policy, run_policy_once
from repro.dispatch import RandomDispatcher, RoundRobinDispatcher, interval_deviations
from repro.experiments import format_table
from repro.queueing import HeterogeneousNetwork, objective_value
from repro.rng import substream
from repro.sim import SimulationConfig

from .conftest import run_once


def test_ablation_quantum_vs_ps(benchmark, scale):
    """Finite-quantum RR converges to PS as the quantum shrinks."""
    duration = min(scale.duration, 4.0e4)  # quantum runs are expensive
    base = dict(speeds=(1.0, 4.0), utilization=0.7, duration=duration)
    policy = get_policy("ORR")

    def run():
        rows = []
        ps = run_policy_once(SimulationConfig(**base), policy, seed=scale.base_seed)
        for quantum in (10.0, 1.0, 0.1):
            cfg = SimulationConfig(**base, discipline="rr_quantum", quantum=quantum)
            r = run_policy_once(cfg, policy, seed=scale.base_seed)
            rows.append((quantum, r.metrics.mean_response_ratio))
        return ps.metrics.mean_response_ratio, rows

    ps_ratio, rows = run_once(benchmark, run)
    print()
    print(format_table(
        ["quantum (s)", "mean response ratio", "gap vs PS"],
        [[q, r, abs(r - ps_ratio) / ps_ratio] for q, r in rows],
        title=f"Ablation: finite-quantum RR vs PS (PS ratio={ps_ratio:.4g})",
    ))
    gaps = [abs(r - ps_ratio) / ps_ratio for _, r in rows]
    # Convergence: smaller quantum → closer to PS, and 0.1 s is close.
    assert gaps[-1] < 0.05
    assert gaps[-1] <= gaps[0]


def test_ablation_closed_form_vs_numeric(benchmark):
    """Algorithm 1 equals SLSQP to tolerance and is much faster."""
    speeds = [1.0] * 5 + [1.5] * 4 + [2.0] * 3 + [5.0, 10.0, 12.0]
    nets = [
        HeterogeneousNetwork(np.asarray(speeds), utilization=rho)
        for rho in (0.3, 0.5, 0.7, 0.9)
    ]

    def closed_all():
        return [optimized_fractions(net) for net in nets]

    closed = benchmark(closed_all)

    t0 = time.perf_counter()
    numeric = [numeric_fractions(net) for net in nets]
    numeric_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(100):
        closed_all()
    closed_time = (time.perf_counter() - t0) / 100

    rows = []
    for net, a_closed, a_numeric in zip(nets, closed, numeric):
        gap = float(np.max(np.abs(a_closed - a_numeric)))
        f_gap = objective_value(net, a_numeric) - objective_value(net, a_closed)
        rows.append([net.utilization, gap, f_gap])
        assert gap < 1e-5
        assert f_gap > -1e-9  # closed form is never worse
    print()
    print(format_table(
        ["utilization", "max |alpha gap|", "objective gap"],
        rows,
        title=(
            "Ablation: Algorithm 1 vs SLSQP "
            f"(closed {closed_time*1e6:.0f} us vs numeric {numeric_time/4*1e6:.0f} us per solve)"
        ),
        float_fmt="{:.3g}",
    ))
    assert closed_time < numeric_time / 4.0, "closed form should be much faster"


def test_ablation_round_robin_guard(benchmark):
    """The guard (next=1) lowers early-cycle allocation deviation for the
    Figure 2 fraction vector."""
    alphas = np.array([0.35, 0.22, 0.15, 0.12, 0.04, 0.04, 0.04, 0.04])
    times = np.arange(1, 241, dtype=float)  # 240 unit-spaced arrivals

    def deviations(guard):
        d = RoundRobinDispatcher(guard_init=guard)
        d.reset(alphas)
        targets = d.select_batch(np.ones(times.size))
        series = interval_deviations(alphas, times, targets, 30.0, 8)
        return series.deviations

    result = run_once(benchmark, lambda: (deviations(1.0), deviations(0.0)))
    guarded, unguarded = result
    print()
    print(format_table(
        ["interval", "guarded (next=1)", "unguarded (next=0)"],
        [[i + 1, g, u] for i, (g, u) in enumerate(zip(guarded, unguarded))],
        title="Ablation: Algorithm 2 guard initialization — deviation per 30-arrival window",
        float_fmt="{:.5f}",
    ))
    # The startup window is where the guard earns its keep.
    assert guarded[0] <= unguarded[0]
    # Steady state is identical either way.
    np.testing.assert_allclose(guarded[-1], unguarded[-1], atol=1e-3)


def test_ablation_arrival_burstiness(benchmark, scale):
    """RR dispatching's *relative* edge over random shrinks as arrival
    burstiness grows (but stays positive).

    Splitting a renewal stream with SCV c² over n servers: random
    thinning gives per-server SCV ≈ c²/n + (n−1)/n while deterministic
    every-nth sampling gives c²/n — a *constant* absolute reduction of
    (n−1)/n.  Relative to a baseline that grows with c², the advantage
    is therefore largest for smooth arrivals and decays with CV.
    """
    duration = min(scale.duration, 1.0e5)
    cvs = (1.0, 3.0, 6.0)
    replications = max(scale.replications, 5)  # single runs are seed-noisy

    def run():
        from repro.core import evaluate_policy

        gains = []
        for cv in cvs:
            cfg = SimulationConfig(
                speeds=(2.0,) * 4, utilization=0.8, duration=duration,
                arrival_cv=cv,
            )
            wrr = evaluate_policy(cfg, get_policy("WRR"),
                                  replications=replications,
                                  base_seed=scale.base_seed)
            wran = evaluate_policy(cfg, get_policy("WRAN"),
                                   replications=replications,
                                   base_seed=scale.base_seed)
            gains.append(
                1.0
                - wrr.mean_response_ratio.mean / wran.mean_response_ratio.mean
            )
        return gains

    gains = run_once(benchmark, run)
    print()
    print(format_table(
        ["arrival CV", "RR gain over random"],
        [[cv, g] for cv, g in zip(cvs, gains)],
        title="Ablation: dispatching gain vs arrival burstiness (homogeneous, rho=0.8)",
        float_fmt="{:.3f}",
    ))
    # RR always helps, but its relative edge does not *grow* with
    # burstiness (the absolute SCV reduction is constant while the
    # baseline grows); the small slack absorbs replication noise.
    assert all(g > 0.0 for g in gains)
    assert gains[0] >= gains[-1] - 0.04


def test_ablation_engine_vs_fastpath(benchmark, scale):
    """The vectorized path reproduces the event engine and is faster."""
    duration = min(scale.duration, 1.0e5)
    cfg = SimulationConfig(speeds=(1.0, 2.0, 5.0, 10.0), utilization=0.7,
                           duration=duration)
    policy = get_policy("ORR")

    def fast():
        return run_policy_once(cfg, policy, seed=scale.base_seed)

    fast_result = benchmark(fast)

    t0 = time.perf_counter()
    slow_result = run_policy_once(
        cfg, policy, seed=scale.base_seed, force_engine=True
    )
    engine_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    fast()
    fast_time = time.perf_counter() - t0

    print()
    print(format_table(
        ["path", "seconds", "mean response ratio"],
        [
            ["event engine", engine_time, slow_result.metrics.mean_response_ratio],
            ["fast path", fast_time, fast_result.metrics.mean_response_ratio],
        ],
        title=f"Ablation: engine vs fast path (speedup {engine_time / fast_time:.1f}x)",
    ))
    assert fast_result.metrics.mean_response_ratio == pytest.approx(
        slow_result.metrics.mean_response_ratio, rel=1e-9
    )
    assert fast_time < engine_time


def test_ablation_interleaving_vs_burst_wrr(benchmark, scale):
    """Algorithm 2 vs classic quota ("burst") WRR.

    Both deterministic schemes realize the fractions exactly per cycle,
    so *allocation deviation* ties; the difference is *interleaving*:
    Algorithm 2 spreads each computer's jobs evenly while quota WRR
    serves them in bursts.  The burstiness shows up directly in each
    computer's inter-assignment gap variance and, under load, in the
    response metrics — this isolates what "smoothing" buys beyond the
    counts being right.
    """
    from repro.core.policies import SchedulingPolicy
    from repro.dispatch import BurstWeightedRoundRobinDispatcher
    from repro.allocation import WeightedAllocator

    alphas = np.array([0.35, 0.22, 0.15, 0.12, 0.04, 0.04, 0.04, 0.04])
    duration = min(scale.duration, 1.0e5)
    reps = max(scale.replications, 3)

    def gap_cv(dispatcher) -> float:
        """Mean per-computer CV of inter-assignment gaps (arrival counts)."""
        dispatcher.reset(alphas)
        targets = dispatcher.select_batch(np.ones(20_000))
        cvs = []
        for i in range(alphas.size):
            positions = np.nonzero(targets == i)[0]
            gaps = np.diff(positions)
            if gaps.size > 1 and gaps.mean() > 0:
                cvs.append(gaps.std() / gaps.mean())
        return float(np.mean(cvs))

    def run():
        smooth_cv = gap_cv(RoundRobinDispatcher())
        burst_cv = gap_cv(BurstWeightedRoundRobinDispatcher(cycle_length=100))

        speeds = (2.0,) * 4 + (4.0,) * 2  # alphas below are ignored here
        cfg = SimulationConfig(speeds=speeds, utilization=0.85,
                               duration=duration)
        burst_policy = SchedulingPolicy(
            name="BURST_WRR",
            allocator=WeightedAllocator(),
            dispatcher_factory=lambda s, rng: BurstWeightedRoundRobinDispatcher(
                cycle_length=100
            ),
        )
        from repro.core import evaluate_policy

        wrr = evaluate_policy(cfg, get_policy("WRR"), replications=reps,
                              base_seed=scale.base_seed)
        burst = evaluate_policy(cfg, burst_policy, replications=reps,
                                base_seed=scale.base_seed)
        return smooth_cv, burst_cv, wrr, burst

    smooth_cv, burst_cv, wrr, burst = run_once(benchmark, run)
    print()
    print(format_table(
        ["dispatcher", "gap CV (dispatch order)", "mean response ratio (rho=0.85)"],
        [
            ["Algorithm 2 (interleaved)", smooth_cv,
             wrr.mean_response_ratio.mean],
            ["quota WRR (bursty)", burst_cv, burst.mean_response_ratio.mean],
        ],
        title="Ablation: interleaving vs burst scheduling at equal fractions",
    ))
    # Algorithm 2's inter-assignment gaps are dramatically steadier.
    assert smooth_cv < 0.3 * burst_cv
    # Under load the smoother substreams yield better response ratios.
    assert wrr.mean_response_ratio.mean < burst.mean_response_ratio.mean


def test_ablation_load_index(benchmark, scale):
    """Queue length vs (clairvoyant) outstanding work as the load index.

    The paper's footnote 2 adopts the run-queue length, citing Kunz's
    finding that it is "simple and effective".  For PS servers it is in
    fact the *correct* index, not merely an adequate one: a new job's PS
    response scales with the number of competitors (each job receives
    rate s/n), not with their remaining work, so a scheduler that avoids
    machines holding a large elephant (high outstanding work, low job
    count) makes strictly worse PS decisions.  The measured gap is
    dramatic — the clairvoyant work index loses to the count index by
    multiples, and even to static ORR.
    """
    from repro.core import evaluate_policy
    from repro.core.policies import SchedulingPolicy
    from repro.dispatch import LeastWorkDispatcher

    duration = min(scale.duration, 1.0e5)
    reps = max(scale.replications, 3)
    speeds = (1.0,) * 4 + (8.0,) * 2
    cfg = SimulationConfig(speeds=speeds, utilization=0.75, duration=duration)

    def policy_for(use_sizes: bool) -> SchedulingPolicy:
        return SchedulingPolicy(
            name="LEAST_WORK" if use_sizes else "LEAST_COUNT",
            allocator=None,
            dispatcher_factory=lambda s, rng: LeastWorkDispatcher(
                s, use_sizes=use_sizes, mean_size=76.8
            ),
            is_static=False,
        )

    def run():
        out = {}
        out["queue length (paper)"] = evaluate_policy(
            cfg, get_policy("LEAST_LOAD"), replications=reps,
            base_seed=scale.base_seed,
        ).mean_response_ratio.mean
        out["outstanding work (clairvoyant)"] = evaluate_policy(
            cfg, policy_for(True), replications=reps,
            base_seed=scale.base_seed,
        ).mean_response_ratio.mean
        out["outstanding mean-size work"] = evaluate_policy(
            cfg, policy_for(False), replications=reps,
            base_seed=scale.base_seed,
        ).mean_response_ratio.mean
        out["ORR (static reference)"] = evaluate_policy(
            cfg, get_policy("ORR"), replications=reps,
            base_seed=scale.base_seed,
        ).mean_response_ratio.mean
        return out

    ratios = run_once(benchmark, run)
    print()
    print(format_table(
        ["load index", "mean response ratio"],
        [[k, v] for k, v in ratios.items()],
        title="Ablation: load index vs PS service (stale feedback, rho=0.75)",
    ))
    # Queue length is the right index for PS: the clairvoyant work index
    # is far worse (it shuns machines digesting an elephant that PS
    # would happily share with small jobs).
    assert (
        ratios["queue length (paper)"]
        < 0.7 * ratios["outstanding work (clairvoyant)"]
    )
    # Counting every job at the mean size is queue length in disguise:
    # the index ordering is identical, so the two differ only through
    # float tie-breaking, i.e. by replication-level noise.
    assert ratios["outstanding mean-size work"] == pytest.approx(
        ratios["queue length (paper)"], rel=0.15
    )
    assert (
        ratios["outstanding mean-size work"]
        < 0.7 * ratios["outstanding work (clairvoyant)"]
    )
    # The dynamic count index still beats the static reference ...
    assert ratios["queue length (paper)"] < ratios["ORR (static reference)"]
    # ... while the mis-matched work index loses even to static ORR.
    assert ratios["outstanding work (clairvoyant)"] > ratios["ORR (static reference)"]
