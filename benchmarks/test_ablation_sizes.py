"""Ablation: job-size distribution vs CPU scheduling discipline.

Demonstrates *why* the paper models processor-sharing CPUs: under PS,
the mean response ratio depends on the size distribution only through
its mean (M/G/1-PS insensitivity), so results with Bounded Pareto sizes
generalize.  Under FCFS, the same workloads diverge wildly with the
tail weight — run-to-completion scheduling is the wrong discipline for
heavy-tailed work.
"""

import pytest

from repro.core import get_policy, run_policy_once
from repro.distributions import (
    BoundedPareto,
    Exponential,
    Lognormal,
    Weibull,
    paper_job_sizes,
)
from repro.experiments import format_table
from repro.sim import SimulationConfig

from .conftest import run_once

MEAN_SIZE = 76.8


def _sizes():
    return {
        "exponential (cv=1)": Exponential.from_mean(MEAN_SIZE),
        "lognormal (cv=2)": Lognormal.from_mean_cv(MEAN_SIZE, 2.0),
        "weibull (cv=2)": Weibull.from_mean_cv(MEAN_SIZE, 2.0),
        "bounded pareto (paper)": paper_job_sizes(),
    }


def test_ablation_size_distribution_insensitivity(benchmark, scale):
    duration = min(scale.duration * 4, 6.0e5)  # insensitivity needs long runs
    # Random dispatch keeps each server's arrivals Poisson (thinning), so
    # M/G/1-PS insensitivity holds *exactly*: every size law must land on
    # R = (1/s)/(1-rho) = 1.25 for speed-2 servers at rho = 0.6.
    policy = get_policy("WRAN")

    def run():
        rows = {}
        for label, dist in _sizes().items():
            ps_cfg = SimulationConfig(
                speeds=(2.0, 2.0), utilization=0.6, duration=duration,
                size_distribution=dist, arrival_cv=1.0,
            )
            fcfs_cfg = SimulationConfig(
                speeds=(2.0, 2.0), utilization=0.6,
                duration=min(duration, 2.0e5),  # FCFS engine path is slower
                size_distribution=dist, arrival_cv=1.0, discipline="fcfs",
            )
            ps = run_policy_once(ps_cfg, policy, seed=scale.base_seed)
            fcfs = run_policy_once(fcfs_cfg, policy, seed=scale.base_seed)
            rows[label] = (
                ps.metrics.mean_response_ratio,
                fcfs.metrics.mean_response_ratio,
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(
        ["size distribution", "PS mean response ratio", "FCFS mean response ratio"],
        [[k, v[0], v[1]] for k, v in rows.items()],
        title="Ablation: M/G/1-PS insensitivity (Poisson arrivals, rho=0.6, mean size 76.8 s)",
    ))

    ps_values = [v[0] for v in rows.values()]
    fcfs_values = [v[1] for v in rows.values()]
    # PS insensitivity: every distribution within a tight band around the
    # analytic (1/s)/(1-rho) = 1.25.
    for v in ps_values:
        assert v == pytest.approx(1.25, rel=0.2)
    spread_ps = max(ps_values) / min(ps_values)
    spread_fcfs = max(fcfs_values) / min(fcfs_values)
    assert spread_ps < 1.4
    # FCFS: the response ratio varies by orders of magnitude with the
    # size law (small jobs stuck behind elephants dominate the metric).
    assert spread_fcfs > 3.0
    assert rows["bounded pareto (paper)"][1] > 3.0 * rows["bounded pareto (paper)"][0]
