"""Bench: regenerate Figure 2 (allocation deviation, RR vs random).

Paper claim: round-robin dispatching keeps the per-interval allocation
deviation far lower and far steadier than random dispatching.
"""

from repro.experiments.figure2 import run_figure2

from .conftest import run_once


def test_figure2_allocation_deviation(benchmark, scale):
    result = run_once(benchmark, run_figure2, scale)
    print()
    print(result.format())

    rr, rand = result.round_robin, result.random
    # Much lower deviation on average (paper figure shows ~an order of
    # magnitude; require >3x to stay robust to the random stream).
    assert rr.mean < rand.mean / 3.0
    # And far less fluctuation across intervals.
    assert rr.std < rand.std
    # Round robin is low in *every* interval, not just on average.
    assert rr.max < rand.max
