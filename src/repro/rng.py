"""Seeded random-stream management.

Every stochastic component of the simulator (arrival process, job sizes,
dispatch randomness, feedback-message delays, ...) draws from its own
independent substream so that

* replications with different seeds are statistically independent, and
* changing one component (e.g. swapping the dispatcher) does not perturb
  the random numbers consumed by the others — the classic *common random
  numbers* variance-reduction setup used when comparing scheduling
  policies on identical arrival streams.

Streams are derived with :class:`numpy.random.SeedSequence` spawning, which
guarantees non-overlapping, well-mixed substreams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

__all__ = ["StreamFactory", "substream", "replication_seeds"]

#: Named roles a simulation draws random numbers for.  Fixed role indices
#: (rather than spawn order) keep streams stable when a component is unused.
_ROLES = {
    "arrivals": 0,
    "sizes": 1,
    "dispatch": 2,
    "feedback": 3,
    "service": 4,
    "misc": 5,
    # Fault injection (repro.faults): index 6 is also the base of the
    # per-server fault substreams, which extend the spawn key with
    # (server, channel) — see repro.faults.models.
    "faults": 6,
}


@lru_cache(maxsize=4096)
def _pcg_state(entropy, spawn_key: tuple) -> dict:
    """Initial PCG64 state for one derived SeedSequence, memoized.

    Deriving a child sequence and mixing its entropy into generator
    state costs ~50µs; a sweep re-derives the same (seed, role) pairs
    for every member, so the mixed state is cached and each call below
    still returns a fresh, independently advancing generator.
    """
    child = np.random.SeedSequence(entropy=entropy, spawn_key=spawn_key)
    return np.random.PCG64(child).state


def substream(seed: int | np.random.SeedSequence, role: str) -> np.random.Generator:
    """Return an independent generator for *role* derived from *seed*.

    The same ``(seed, role)`` pair always yields the same stream, and
    different roles never overlap.
    """
    if role not in _ROLES:
        raise KeyError(f"unknown stream role {role!r}; expected one of {sorted(_ROLES)}")
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    entropy = root.entropy
    if isinstance(entropy, list):
        entropy = tuple(entropy)
    bg = np.random.PCG64(0)
    bg.state = _pcg_state(entropy, (*root.spawn_key, _ROLES[role]))
    return np.random.Generator(bg)


def replication_seeds(base_seed: int, replications: int) -> list[np.random.SeedSequence]:
    """Derive one root :class:`~numpy.random.SeedSequence` per replication.

    Replication *r* of any experiment configured with ``base_seed`` gets the
    same root sequence regardless of how many total replications run, so
    adding replications never changes earlier ones.
    """
    if replications < 0:
        raise ValueError("replications must be non-negative")
    return [
        np.random.SeedSequence(entropy=base_seed, spawn_key=(r,))
        for r in range(replications)
    ]


@dataclass
class StreamFactory:
    """Convenience bundle handing out per-role generators for one replication.

    Parameters
    ----------
    seed:
        Root seed (an ``int`` or a :class:`~numpy.random.SeedSequence`,
        typically from :func:`replication_seeds`).
    """

    seed: int | np.random.SeedSequence
    _cache: dict[str, np.random.Generator] = field(default_factory=dict, repr=False)

    def get(self, role: str) -> np.random.Generator:
        """Return the cached generator for *role* (created on first use)."""
        if role not in self._cache:
            self._cache[role] = substream(self.seed, role)
        return self._cache[role]

    @property
    def arrivals(self) -> np.random.Generator:
        return self.get("arrivals")

    @property
    def sizes(self) -> np.random.Generator:
        return self.get("sizes")

    @property
    def dispatch(self) -> np.random.Generator:
        return self.get("dispatch")

    @property
    def feedback(self) -> np.random.Generator:
        return self.get("feedback")

    @property
    def service(self) -> np.random.Generator:
        return self.get("service")

    @property
    def misc(self) -> np.random.Generator:
        return self.get("misc")
