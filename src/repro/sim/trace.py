"""Trace-driven workloads: replay recorded arrival/size traces.

The paper motivates its arrival model with Zhou's trace measurements
(inter-arrival CV 2.64).  This module closes the loop for users who have
real traces: load (time, size) pairs, inspect their moments, and replay
them through the static-policy simulator — exactly the same dispatch and
PS-replay machinery as the synthetic fast path, so results are directly
comparable with the distribution-driven experiments.

Dynamic policies need the event engine's feedback machinery and are not
supported on traces (a static trace cannot answer "what did the
scheduler know at time t" without the full engine; use
:func:`repro.sim.engine.run_simulation` with a synthetic workload
matched to the trace's moments instead).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..dispatch.base import Dispatcher
from ..metrics.response import MetricsCollector
from .fastpath import ps_replay
from .results import DispatchTrace, ServerStats, SimulationResults

__all__ = ["JobTrace", "run_trace_simulation"]


@dataclass(frozen=True)
class JobTrace:
    """An ordered sequence of (arrival time, size) job records."""

    arrival_times: np.ndarray
    sizes: np.ndarray

    def __post_init__(self):
        times = np.asarray(self.arrival_times, dtype=float)
        sizes = np.asarray(self.sizes, dtype=float)
        if times.ndim != 1 or times.shape != sizes.shape:
            raise ValueError("arrival_times and sizes must be matching 1-D arrays")
        if times.size == 0:
            raise ValueError("trace must contain at least one job")
        if np.any(np.diff(times) < 0):
            raise ValueError("arrival_times must be non-decreasing")
        if times[0] < 0:
            raise ValueError("arrival times must be non-negative")
        if np.any(sizes <= 0):
            raise ValueError("job sizes must be positive")
        object.__setattr__(self, "arrival_times", times)
        object.__setattr__(self, "sizes", sizes)

    # ------------------------------------------------------------------
    # Construction / serialization
    # ------------------------------------------------------------------

    @classmethod
    def from_csv(cls, path: str | Path) -> "JobTrace":
        """Load a two-column CSV (arrival_time, size); header optional."""
        times: list[float] = []
        sizes: list[float] = []
        with open(path, newline="") as fh:
            for row in csv.reader(fh):
                if not row or len(row) < 2:
                    continue
                try:
                    t, s = float(row[0]), float(row[1])
                except ValueError:
                    continue  # header or comment line
                times.append(t)
                sizes.append(s)
        if not times:
            raise ValueError(f"no job records found in {path}")
        return cls(np.asarray(times), np.asarray(sizes))

    def to_csv(self, path: str | Path) -> None:
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["arrival_time", "size"])
            for t, s in zip(self.arrival_times, self.sizes):
                writer.writerow([repr(float(t)), repr(float(s))])

    @classmethod
    def synthesize(cls, workload, rng: np.random.Generator, horizon: float) -> "JobTrace":
        """Generate a trace from a :class:`~repro.sim.arrivals.Workload`,
        e.g. to snapshot a reproducible input for cross-tool comparison."""
        times = workload.arrival_stream(rng).arrivals_until(horizon)
        if times.size == 0:
            raise ValueError("horizon too short: no arrivals generated")
        sizes = workload.sample_sizes(rng, times.size)
        return cls(times, sizes)

    # ------------------------------------------------------------------
    # Moments
    # ------------------------------------------------------------------

    @property
    def n_jobs(self) -> int:
        return int(self.arrival_times.size)

    @property
    def horizon(self) -> float:
        return float(self.arrival_times[-1])

    @property
    def mean_size(self) -> float:
        return float(self.sizes.mean())

    @property
    def mean_interarrival(self) -> float:
        if self.n_jobs < 2:
            raise ValueError("need at least two jobs for inter-arrival statistics")
        return float(np.diff(self.arrival_times).mean())

    @property
    def interarrival_cv(self) -> float:
        """The burstiness measure Zhou reported as 2.64 for real traces."""
        gaps = np.diff(self.arrival_times)
        if gaps.size < 2:
            raise ValueError("need at least three jobs for an inter-arrival CV")
        m = gaps.mean()
        if m == 0:
            raise ZeroDivisionError("degenerate trace: all arrivals simultaneous")
        return float(gaps.std() / m)

    def offered_load(self, total_speed: float) -> float:
        """Implied system utilization against a cluster of the given
        aggregate speed: (work arrived per second) / capacity."""
        if total_speed <= 0:
            raise ValueError(f"total speed must be positive, got {total_speed}")
        if self.horizon == 0:
            raise ValueError("trace horizon is zero")
        return float(self.sizes.sum()) / (self.horizon * total_speed)


def run_trace_simulation(
    trace: JobTrace,
    speeds,
    dispatcher: Dispatcher,
    alphas,
    *,
    warmup: float = 0.0,
    record_trace: bool = False,
) -> SimulationResults:
    """Replay *trace* through a static policy on PS servers.

    Mirrors :func:`repro.sim.fastpath.run_static_simulation` with the
    trace replacing the synthetic generators; all jobs run to completion
    (drain semantics) and statistics cover jobs arriving at or after
    *warmup*.
    """
    if not dispatcher.is_static:
        raise ValueError(
            f"{type(dispatcher).__name__} needs feedback; trace replay is static-only"
        )
    speeds = np.asarray(speeds, dtype=float)
    if speeds.ndim != 1 or speeds.size == 0 or np.any(speeds <= 0):
        raise ValueError(f"speeds must be a non-empty positive vector, got {speeds}")
    if warmup < 0:
        raise ValueError(f"warmup must be non-negative, got {warmup}")

    dispatcher.reset(alphas)
    targets = dispatcher.select_batch(trace.sizes)

    metrics = MetricsCollector(warmup_end=warmup)
    warmup_mask = trace.arrival_times >= warmup
    post_warmup_total = int(np.count_nonzero(warmup_mask))
    server_stats = []
    for i, speed in enumerate(speeds):
        mask = targets == i
        sub_times = trace.arrival_times[mask]
        sub_sizes = trace.sizes[mask]
        completions = ps_replay(sub_times, sub_sizes, float(speed))
        metrics.record_batch(sub_times, completions, sub_sizes)
        dispatched = int(np.count_nonzero(mask & warmup_mask))
        server_stats.append(
            ServerStats(
                index=i,
                speed=float(speed),
                jobs_received=int(sub_times.size),
                jobs_completed=int(sub_times.size),
                busy_time=float(sub_sizes.sum()) / float(speed),
                dispatch_fraction=(
                    dispatched / post_warmup_total if post_warmup_total else 0.0
                ),
            )
        )

    recorded = None
    if record_trace:
        recorded = DispatchTrace(times=trace.arrival_times, targets=targets)
    return SimulationResults(
        metrics=metrics.finalize(),
        servers=tuple(server_stats),
        duration=trace.horizon,
        warmup=warmup,
        total_arrivals=trace.n_jobs,
        trace=recorded,
    )
