"""The general discrete-event engine (Section 4.1's simulator).

Handles any dispatcher — including Dynamic Least-Load with its delayed
feedback — by processing three event kinds over a lazy-invalidation
event heap:

* ARRIVAL: draw the job's size, ask the dispatcher for a target, hand
  the job to that server, schedule the next arrival.
* DEPARTURE: a server's own next event (job completion or quantum
  rotation).  Version-stamped; stale events are skipped.
* LOAD_UPDATE: a delayed departure notification reaches the scheduler
  (only scheduled for dispatchers that want feedback).

Statistics follow the paper: only jobs *arriving* after the warm-up
period count, and each run processes every job to completion
(``drain=True``) or stops cold at the horizon (``drain=False``).

Fault injection (``config.faults``) adds four event kinds on top:
SERVER_DOWN / SERVER_UP (Markov failure/repair), SERVER_DEGRADE
(transient speed loss), and RETRY (a bounced job re-entering dispatch).
The full fault timeline is pre-generated from dedicated RNG substreams
before the run starts (:func:`repro.faults.models.build_timeline`), so
faulty runs are exactly reproducible and the arrival/size/dispatch
streams are never perturbed.  With ``faults=None`` none of this code
runs and results are bit-identical to a fault-free build.
"""

from __future__ import annotations

import numpy as np

from ..dispatch.base import Dispatcher
from ..metrics.response import MetricsCollector
from ..obs.spans import span
from .arrivals import _CHUNK
from .config import SimulationConfig
from .events import EventKind, EventQueue
from .job import Job
from .results import DispatchTrace, FaultStats, ServerStats, SimulationResults
from .server import FCFSServer, ProcessorSharingServer, RoundRobinQuantumServer, Server
from ..rng import StreamFactory

__all__ = ["run_simulation"]


def _make_server(config: SimulationConfig, speed: float) -> Server:
    if config.discipline == "ps":
        return ProcessorSharingServer(speed)
    if config.discipline == "fcfs":
        return FCFSServer(speed)
    return RoundRobinQuantumServer(speed, config.quantum)


class _SizeStream:
    """Chunked job-size sampler (consumes the stream like the fast path)."""

    __slots__ = ("dist", "rng", "_buf", "_pos")

    def __init__(self, dist, rng):
        self.dist = dist
        self.rng = rng
        self._buf = np.empty(0)
        self._pos = 0

    def next_size(self) -> float:
        if self._pos >= self._buf.size:
            self._buf = np.asarray(self.dist.sample(self.rng, _CHUNK), dtype=float)
            self._pos = 0
        x = self._buf[self._pos]
        self._pos += 1
        return float(x)


def run_simulation(
    config: SimulationConfig,
    dispatcher: Dispatcher,
    alphas=None,
    *,
    seed: int | np.random.SeedSequence = 0,
    record_trace: bool = False,
    sampler=None,
) -> SimulationResults:
    """Run one replication and return its :class:`SimulationResults`.

    Parameters
    ----------
    config:
        System and workload description.
    dispatcher:
        Dispatching strategy; it is ``reset`` here, so instances can be
        reused across runs.
    alphas:
        Workload fractions for static dispatchers; may be ``None`` for
        policies that ignore fractions (Dynamic Least-Load).
    seed:
        Root seed for this replication's independent substreams.
    record_trace:
        Keep the (time, target) dispatch trace — needed by the Figure 2
        deviation analysis, off by default (it is O(total jobs) memory).
    sampler:
        Optional :class:`~repro.sim.sampling.QueueSampler` recording
        per-server occupancy on a fixed grid during the run.
    """
    streams = StreamFactory(seed)
    workload = config.workload()
    servers = [_make_server(config, s) for s in config.speeds]
    n = len(servers)

    dispatcher.reset(alphas)
    wants_feedback = dispatcher.wants_feedback
    feedback_rng = streams.feedback if wants_feedback else None

    arrivals = workload.arrival_stream(streams.arrivals)
    sizes = _SizeStream(workload.sizes, streams.sizes)
    metrics = MetricsCollector(warmup_end=config.warmup)

    queue = EventQueue()
    queue.push(arrivals.next_arrival(), EventKind.ARRIVAL)
    if sampler is not None:
        queue.push(sampler.next_sample_time(), EventKind.SAMPLE)

    # ------------------------------------------------------------------
    # Fault injection setup (zero-cost when config.faults is None: no
    # events are scheduled, no RNG is touched, no per-event work added).
    # ------------------------------------------------------------------
    faults = config.faults if config.faults is not None and config.faults.enabled else None
    up = [True] * n
    if faults is not None:
        from ..faults import models as fault_models

        for ev in fault_models.build_timeline(faults, n, config.duration, seed):
            if ev.kind == fault_models.DOWN:
                queue.push(ev.time, EventKind.SERVER_DOWN, ev.server)
            elif ev.kind == fault_models.UP:
                queue.push(ev.time, EventKind.SERVER_UP, ev.server)
            elif ev.kind == fault_models.DEGRADE_START:
                queue.push(ev.time, EventKind.SERVER_DEGRADE, ev.server, 1)
            else:
                queue.push(ev.time, EventKind.SERVER_DEGRADE, ev.server, 0)
        drift_rng = (
            fault_models.drift_stream(seed) if faults.estimate_drift > 0 else None
        )
        degrade_depth = [0] * n
        base_speeds = list(config.speeds)
        retry_jobs: dict[int, Job] = {}
        failed_placements: dict[int, int] = {}
        retry_ticket = 0
        jobs_lost = jobs_lost_total = jobs_retried = fault_events = 0

    scheduled_version = [0] * n
    dispatch_counts = np.zeros(n, dtype=np.int64)  # post-warm-up only
    trace_times: list[float] = [] if record_trace else None
    trace_targets: list[int] = [] if record_trace else None

    duration = config.duration
    warmup = config.warmup
    drain = config.drain
    total_arrivals = 0
    job_counter = 0

    def resync(i: int) -> None:
        server = servers[i]
        if scheduled_version[i] != server.version:
            nxt = server.next_event_time()
            if nxt is not None:
                queue.push(nxt, EventKind.DEPARTURE, i, server.version)
            scheduled_version[i] = server.version

    def membership_change(now: float) -> None:
        """Notify the dispatcher that the surviving set changed."""
        capacity = sum(s for s, alive in zip(base_speeds, up) if alive)
        if capacity > 0.0:
            rho = config.utilization * config.total_speed / capacity
        else:
            rho = float("inf")
        perceived = None
        if drift_rng is not None:
            perceived = np.asarray(base_speeds) * drift_rng.lognormal(
                mean=0.0, sigma=faults.estimate_drift, size=n
            )
        dispatcher.on_membership_change(np.asarray(up, dtype=bool), rho, perceived)

    def handle_bounce(job: Job, now: float) -> None:
        """A placement failed (server down): retry with backoff or drop."""
        nonlocal jobs_lost, jobs_lost_total, retry_ticket
        attempts = failed_placements.get(job.job_id, 0) + 1
        failed_placements[job.job_id] = attempts
        if faults.on_failure == "lose" or attempts >= faults.retry.max_attempts:
            failed_placements.pop(job.job_id, None)
            jobs_lost_total += 1
            if job.arrival_time >= warmup:
                jobs_lost += 1
            return
        retry_ticket += 1
        retry_jobs[retry_ticket] = job
        queue.push(
            now + faults.retry.delay(attempts - 1), EventKind.RETRY, retry_ticket
        )

    # Manual enter/exit keeps the event loop un-indented; the span is
    # a shared no-op whenever tracing is off.
    replay_span = span("replay", backend="engine").__enter__()
    while queue:
        t, kind, a, b = queue.pop()
        if not drain and t > duration:
            break

        if kind == EventKind.DEPARTURE:
            server = servers[a]
            if b != server.version:
                continue  # superseded by a later state change
            job = server.on_event(t)
            resync(a)
            if job is not None:
                metrics.record(job.arrival_time, t, job.size)
                if wants_feedback:
                    delay = config.feedback.sample_delay(feedback_rng)
                    queue.push(t + delay, EventKind.LOAD_UPDATE, a)

        elif kind == EventKind.ARRIVAL:
            if t > duration:
                continue  # horizon reached: stop generating arrivals
            size = sizes.next_size()
            dispatcher.observe_arrival(t)
            target = dispatcher.select(size)
            job = Job(job_counter, t, size)
            job.server = target
            job_counter += 1
            total_arrivals += 1
            if faults is not None and not up[target]:
                handle_bounce(job, t)
            else:
                servers[target].arrive(job, t)
                resync(target)
            if t >= warmup:
                dispatch_counts[target] += 1
            if record_trace:
                trace_times.append(t)
                trace_targets.append(target)
            queue.push(arrivals.next_arrival(), EventKind.ARRIVAL)

        elif kind == EventKind.LOAD_UPDATE:
            dispatcher.on_load_update(a)

        elif kind == EventKind.SERVER_DOWN:
            up[a] = False
            evicted = servers[a].fail(t)
            resync(a)
            fault_events += 1
            membership_change(t)
            for job in evicted:
                handle_bounce(job, t)

        elif kind == EventKind.SERVER_UP:
            servers[a].repair(t)
            # A degradation episode spanning the outage still applies.
            factor = faults.degrade_factor if degrade_depth[a] > 0 else 1.0
            nominal = base_speeds[a] * factor
            if servers[a].speed != nominal:
                servers[a].set_speed(nominal, t)
            up[a] = True
            resync(a)
            fault_events += 1
            membership_change(t)

        elif kind == EventKind.SERVER_DEGRADE:
            degrade_depth[a] += 1 if b else -1
            if up[a]:
                factor = faults.degrade_factor if degrade_depth[a] > 0 else 1.0
                servers[a].set_speed(base_speeds[a] * factor, t)
                resync(a)
            fault_events += 1

        elif kind == EventKind.RETRY:
            job = retry_jobs.pop(a)
            target = dispatcher.select(job.size)
            if up[target]:
                job.server = target
                servers[target].arrive(job, t)
                resync(target)
                failed_placements.pop(job.job_id, None)
                jobs_retried += 1
            else:
                handle_bounce(job, t)

        else:  # EventKind.SAMPLE
            sampler.record(t, servers)
            nxt = sampler.next_sample_time()
            if nxt <= duration:
                queue.push(nxt, EventKind.SAMPLE)

    replay_span.set(jobs=total_arrivals).__exit__(None, None, None)

    summarize_span = span("summarize", jobs=total_arrivals).__enter__()
    post_warmup_total = int(dispatch_counts.sum())
    fractions = (
        dispatch_counts / post_warmup_total if post_warmup_total else np.zeros(n)
    )
    server_stats = tuple(
        ServerStats(
            index=i,
            speed=srv.speed,
            jobs_received=srv.jobs_received,
            jobs_completed=srv.jobs_completed,
            busy_time=srv.busy_time,
            dispatch_fraction=float(fractions[i]),
        )
        for i, srv in enumerate(servers)
    )
    trace = None
    if record_trace:
        trace = DispatchTrace(
            times=np.asarray(trace_times, dtype=float),
            targets=np.asarray(trace_targets, dtype=np.int64),
        )
    fault_stats = None
    if faults is not None:
        fault_stats = FaultStats(
            jobs_lost=jobs_lost,
            jobs_lost_total=jobs_lost_total,
            jobs_retried=jobs_retried,
            # Bounced jobs whose retry event lies beyond the processed
            # horizon: neither completed, lost, nor resident in a
            # server — the conservation ledger needs them named.
            jobs_pending_retry=len(retry_jobs),
            fault_events=fault_events,
            reallocations=getattr(dispatcher, "reallocations", 0),
            loss_rate=jobs_lost / post_warmup_total if post_warmup_total else 0.0,
        )
    out = SimulationResults(
        metrics=metrics.finalize(),
        servers=server_stats,
        duration=duration,
        warmup=warmup,
        total_arrivals=total_arrivals,
        trace=trace,
        faults=fault_stats,
    )
    summarize_span.__exit__(None, None, None)
    return out
