"""The general discrete-event engine (Section 4.1's simulator).

Handles any dispatcher — including Dynamic Least-Load with its delayed
feedback — by processing three event kinds over a lazy-invalidation
event heap:

* ARRIVAL: draw the job's size, ask the dispatcher for a target, hand
  the job to that server, schedule the next arrival.
* DEPARTURE: a server's own next event (job completion or quantum
  rotation).  Version-stamped; stale events are skipped.
* LOAD_UPDATE: a delayed departure notification reaches the scheduler
  (only scheduled for dispatchers that want feedback).

Statistics follow the paper: only jobs *arriving* after the warm-up
period count, and each run processes every job to completion
(``drain=True``) or stops cold at the horizon (``drain=False``).
"""

from __future__ import annotations

import numpy as np

from ..dispatch.base import Dispatcher
from ..metrics.response import MetricsCollector
from .arrivals import _CHUNK
from .config import SimulationConfig
from .events import EventKind, EventQueue
from .job import Job
from .results import DispatchTrace, ServerStats, SimulationResults
from .server import FCFSServer, ProcessorSharingServer, RoundRobinQuantumServer, Server
from ..rng import StreamFactory

__all__ = ["run_simulation"]


def _make_server(config: SimulationConfig, speed: float) -> Server:
    if config.discipline == "ps":
        return ProcessorSharingServer(speed)
    if config.discipline == "fcfs":
        return FCFSServer(speed)
    return RoundRobinQuantumServer(speed, config.quantum)


class _SizeStream:
    """Chunked job-size sampler (consumes the stream like the fast path)."""

    __slots__ = ("dist", "rng", "_buf", "_pos")

    def __init__(self, dist, rng):
        self.dist = dist
        self.rng = rng
        self._buf = np.empty(0)
        self._pos = 0

    def next_size(self) -> float:
        if self._pos >= self._buf.size:
            self._buf = np.asarray(self.dist.sample(self.rng, _CHUNK), dtype=float)
            self._pos = 0
        x = self._buf[self._pos]
        self._pos += 1
        return float(x)


def run_simulation(
    config: SimulationConfig,
    dispatcher: Dispatcher,
    alphas=None,
    *,
    seed: int | np.random.SeedSequence = 0,
    record_trace: bool = False,
    sampler=None,
) -> SimulationResults:
    """Run one replication and return its :class:`SimulationResults`.

    Parameters
    ----------
    config:
        System and workload description.
    dispatcher:
        Dispatching strategy; it is ``reset`` here, so instances can be
        reused across runs.
    alphas:
        Workload fractions for static dispatchers; may be ``None`` for
        policies that ignore fractions (Dynamic Least-Load).
    seed:
        Root seed for this replication's independent substreams.
    record_trace:
        Keep the (time, target) dispatch trace — needed by the Figure 2
        deviation analysis, off by default (it is O(total jobs) memory).
    sampler:
        Optional :class:`~repro.sim.sampling.QueueSampler` recording
        per-server occupancy on a fixed grid during the run.
    """
    streams = StreamFactory(seed)
    workload = config.workload()
    servers = [_make_server(config, s) for s in config.speeds]
    n = len(servers)

    dispatcher.reset(alphas)
    wants_feedback = dispatcher.wants_feedback
    feedback_rng = streams.feedback if wants_feedback else None

    arrivals = workload.arrival_stream(streams.arrivals)
    sizes = _SizeStream(workload.sizes, streams.sizes)
    metrics = MetricsCollector(warmup_end=config.warmup)

    queue = EventQueue()
    queue.push(arrivals.next_arrival(), EventKind.ARRIVAL)
    if sampler is not None:
        queue.push(sampler.next_sample_time(), EventKind.SAMPLE)

    scheduled_version = [0] * n
    dispatch_counts = np.zeros(n, dtype=np.int64)  # post-warm-up only
    trace_times: list[float] = [] if record_trace else None
    trace_targets: list[int] = [] if record_trace else None

    duration = config.duration
    warmup = config.warmup
    drain = config.drain
    total_arrivals = 0
    job_counter = 0

    def resync(i: int) -> None:
        server = servers[i]
        if scheduled_version[i] != server.version:
            nxt = server.next_event_time()
            if nxt is not None:
                queue.push(nxt, EventKind.DEPARTURE, i, server.version)
            scheduled_version[i] = server.version

    while queue:
        t, kind, a, b = queue.pop()
        if not drain and t > duration:
            break

        if kind == EventKind.DEPARTURE:
            server = servers[a]
            if b != server.version:
                continue  # superseded by a later state change
            job = server.on_event(t)
            resync(a)
            if job is not None:
                metrics.record(job.arrival_time, t, job.size)
                if wants_feedback:
                    delay = config.feedback.sample_delay(feedback_rng)
                    queue.push(t + delay, EventKind.LOAD_UPDATE, a)

        elif kind == EventKind.ARRIVAL:
            if t > duration:
                continue  # horizon reached: stop generating arrivals
            size = sizes.next_size()
            dispatcher.observe_arrival(t)
            target = dispatcher.select(size)
            job = Job(job_counter, t, size)
            job.server = target
            job_counter += 1
            total_arrivals += 1
            servers[target].arrive(job, t)
            resync(target)
            if t >= warmup:
                dispatch_counts[target] += 1
            if record_trace:
                trace_times.append(t)
                trace_targets.append(target)
            queue.push(arrivals.next_arrival(), EventKind.ARRIVAL)

        elif kind == EventKind.LOAD_UPDATE:
            dispatcher.on_load_update(a)

        else:  # EventKind.SAMPLE
            sampler.record(t, servers)
            nxt = sampler.next_sample_time()
            if nxt <= duration:
                queue.push(nxt, EventKind.SAMPLE)

    post_warmup_total = int(dispatch_counts.sum())
    fractions = (
        dispatch_counts / post_warmup_total if post_warmup_total else np.zeros(n)
    )
    server_stats = tuple(
        ServerStats(
            index=i,
            speed=srv.speed,
            jobs_received=srv.jobs_received,
            jobs_completed=srv.jobs_completed,
            busy_time=srv.busy_time,
            dispatch_fraction=float(fractions[i]),
        )
        for i, srv in enumerate(servers)
    )
    trace = None
    if record_trace:
        trace = DispatchTrace(
            times=np.asarray(trace_times, dtype=float),
            targets=np.asarray(trace_targets, dtype=np.int64),
        )
    return SimulationResults(
        metrics=metrics.finalize(),
        servers=server_stats,
        duration=duration,
        warmup=warmup,
        total_arrivals=total_arrivals,
        trace=trace,
    )
