"""Time-varying (diurnal) arrival processes.

The paper computes its allocation from a single long-run utilization and
argues (Section 5.4) that recomputing often is unnecessary.  Real
request streams, however, have daily load cycles; this module models
them so the adaptive-ORR extension can be evaluated honestly:

* :class:`RateProfile` — a periodic, piecewise-constant rate multiplier
  m(t) (e.g. 24 hourly factors), normalized to mean 1 so the *long-run*
  utilization of a modulated workload matches its nominal value.
* :class:`ModulatedArrivalStream` — warps a base renewal process through
  the profile by time rescaling: if Λ(t) = ∫₀ᵗ m(s) ds and the base
  process fires at operational times T₁ < T₂ < …, the modulated process
  fires at tᵢ = Λ⁻¹(Tᵢ), giving instantaneous rate λ·m(t) while
  preserving the base process's burstiness structure.
"""

from __future__ import annotations

import numpy as np

from ..distributions import Distribution
from .arrivals import ArrivalStream

__all__ = [
    "RateProfile",
    "ModulatedArrivalStream",
    "diurnal_profile",
    "step_profile",
    "drift_profile",
]


class RateProfile:
    """Periodic piecewise-constant rate multiplier.

    By default the multipliers are normalized to mean 1 so the long-run
    utilization of a modulated workload matches its nominal value (the
    diurnal-cycle use case).  ``normalize=False`` keeps them absolute:
    the instantaneous rate is λ·m(t) with m(t) as given, which is what
    the quasi-static service's step-change and drift workloads need —
    there the *point* is that the long-run load moves.
    """

    def __init__(self, multipliers, segment_length: float, *, normalize: bool = True):
        m = np.asarray(multipliers, dtype=float)
        if m.ndim != 1 or m.size == 0:
            raise ValueError("multipliers must be a non-empty 1-D vector")
        if np.any(m <= 0):
            raise ValueError(f"multipliers must be positive, got {m}")
        if segment_length <= 0:
            raise ValueError(f"segment_length must be positive, got {segment_length}")
        self.normalized = bool(normalize)
        self.multipliers = m / m.mean() if normalize else m.copy()
        self.segment_length = float(segment_length)
        # Cumulative integral at segment boundaries: breaks[k] = Λ(k·L).
        self._breaks = np.concatenate(
            [[0.0], np.cumsum(self.multipliers) * self.segment_length]
        )

    @property
    def period(self) -> float:
        return self.multipliers.size * self.segment_length

    @property
    def area_per_period(self) -> float:
        """Λ(period) — equals the period when normalized."""
        return float(self._breaks[-1])

    def multiplier_at(self, t: float) -> float:
        """Instantaneous multiplier m(t)."""
        if t < 0:
            raise ValueError(f"t must be non-negative, got {t}")
        phase = t % self.period
        idx = min(int(phase / self.segment_length), self.multipliers.size - 1)
        return float(self.multipliers[idx])

    def cumulative(self, t: float) -> float:
        """Λ(t) = ∫₀ᵗ m(s) ds."""
        if t < 0:
            raise ValueError(f"t must be non-negative, got {t}")
        periods, phase = divmod(t, self.period)
        idx = min(int(phase / self.segment_length), self.multipliers.size - 1)
        partial = self._breaks[idx] + self.multipliers[idx] * (
            phase - idx * self.segment_length
        )
        return periods * self.area_per_period + float(partial)

    def inverse_cumulative(self, u) -> np.ndarray | float:
        """Λ⁻¹(u): the wall time at which the integral reaches *u*.

        Vectorized; Λ is strictly increasing so the inverse is unique.
        """
        u_arr = np.asarray(u, dtype=float)
        scalar = u_arr.ndim == 0
        u_arr = np.atleast_1d(u_arr)
        if np.any(u_arr < 0):
            raise ValueError("u must be non-negative")
        periods, rem = np.divmod(u_arr, self.area_per_period)
        idx = np.clip(
            np.searchsorted(self._breaks, rem, side="right") - 1,
            0,
            self.multipliers.size - 1,
        )
        t = (
            periods * self.period
            + idx * self.segment_length
            + (rem - self._breaks[idx]) / self.multipliers[idx]
        )
        return float(t[0]) if scalar else t


def diurnal_profile(
    peak_to_trough: float = 3.0, segments: int = 24, period: float = 86400.0
) -> RateProfile:
    """A smooth day/night cycle: sinusoidal multipliers with the given
    peak-to-trough ratio over *segments* equal slices of *period*."""
    if peak_to_trough < 1.0:
        raise ValueError(f"peak_to_trough must be >= 1, got {peak_to_trough}")
    if segments < 2:
        raise ValueError(f"need at least 2 segments, got {segments}")
    phase = 2.0 * np.pi * (np.arange(segments) + 0.5) / segments
    # Sinusoid between 1 and peak_to_trough (then normalized by RateProfile).
    amplitude = (peak_to_trough - 1.0) / 2.0
    multipliers = 1.0 + amplitude * (1.0 + np.sin(phase))
    return RateProfile(multipliers, period / segments)


def step_profile(step_time: float, factor: float, horizon: float) -> RateProfile:
    """Absolute step change: rate λ before *step_time*, λ·*factor* after.

    The profile is built un-normalized with a period rounded up past
    *horizon*, so within the run it never wraps — the step happens once.
    Used by the quasi-static service experiments to test how fast the
    control loop re-converges after the workload jumps.
    """
    if step_time <= 0.0:
        raise ValueError(f"step_time must be positive, got {step_time}")
    if horizon <= step_time:
        raise ValueError(
            f"horizon ({horizon}) must exceed step_time ({step_time})"
        )
    if factor <= 0.0:
        raise ValueError(f"factor must be positive, got {factor}")
    segments_after = int(np.ceil((horizon - step_time) / step_time))
    multipliers = np.concatenate([[1.0], np.full(segments_after, factor)])
    return RateProfile(multipliers, step_time, normalize=False)


def drift_profile(
    start_factor: float, end_factor: float, horizon: float, segments: int = 64
) -> RateProfile:
    """Absolute linear drift from λ·*start_factor* to λ·*end_factor*.

    Piecewise-constant staircase over *segments* equal slices of
    *horizon* (un-normalized; wraps only past the horizon).  Models the
    slow-trend regime where the quasi-static loop continuously chases
    the load rather than reacting to one discrete event.
    """
    if segments < 2:
        raise ValueError(f"need at least 2 segments, got {segments}")
    if horizon <= 0.0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if start_factor <= 0.0 or end_factor <= 0.0:
        raise ValueError("drift factors must be positive")
    centers = (np.arange(segments) + 0.5) / segments
    multipliers = start_factor + (end_factor - start_factor) * centers
    return RateProfile(multipliers, horizon / segments, normalize=False)


class ModulatedArrivalStream:
    """Time-rescaled renewal process (same API as :class:`ArrivalStream`)."""

    __slots__ = ("base", "profile")

    def __init__(self, dist: Distribution, profile: RateProfile,
                 rng: np.random.Generator):
        self.base = ArrivalStream(dist, rng)
        self.profile = profile

    def next_arrival(self) -> float:
        return float(self.profile.inverse_cumulative(self.base.next_arrival()))

    def arrivals_until(self, horizon: float) -> np.ndarray:
        operational_horizon = self.profile.cumulative(horizon)
        base_times = self.base.arrivals_until(operational_horizon)
        return np.asarray(self.profile.inverse_cumulative(base_times))
