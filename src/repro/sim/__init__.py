"""Discrete-event simulation substrate (the paper's Section 4.1 simulator).

Two execution paths produce statistically identical results:

* :func:`run_simulation` — general event engine; required for Dynamic
  Least-Load (stale feedback) and the finite-quantum ablation.
* :func:`run_static_simulation` — vectorized path for static policies
  (generate → dispatch → per-server PS/FCFS replay), several times
  faster.

:func:`run_cell` batches the static path across every (policy ×
replication) member of a sweep cell, sharing each replication's arrival
and size streams through a :class:`~repro.sim.streams.StreamPool`.
"""

from .arrivals import ArrivalStream, Workload
from .config import PAPER_DURATION, PAPER_WARMUP_FRACTION, SimulationConfig
from .engine import run_simulation
from .events import EventKind, EventQueue
from .fastpath import (
    KERNEL_VERSION,
    fcfs_replay,
    ps_replay,
    run_cell,
    run_static_simulation,
)
from .feedback import (
    PAPER_DETECTION_WINDOW,
    PAPER_MESSAGE_DELAY_MEAN,
    FeedbackModel,
)
from .job import Job
from .results import DispatchTrace, ServerStats, SimulationResults
from .server import (
    FCFSServer,
    ProcessorSharingServer,
    RoundRobinQuantumServer,
    Server,
)
from .sampling import QueueSampler
from .trace import JobTrace, run_trace_simulation

__all__ = [
    "SimulationConfig",
    "PAPER_DURATION",
    "PAPER_WARMUP_FRACTION",
    "run_simulation",
    "run_static_simulation",
    "run_cell",
    "ps_replay",
    "fcfs_replay",
    "KERNEL_VERSION",
    "Workload",
    "ArrivalStream",
    "FeedbackModel",
    "PAPER_DETECTION_WINDOW",
    "PAPER_MESSAGE_DELAY_MEAN",
    "Job",
    "Server",
    "ProcessorSharingServer",
    "FCFSServer",
    "RoundRobinQuantumServer",
    "EventQueue",
    "EventKind",
    "SimulationResults",
    "ServerStats",
    "DispatchTrace",
    "JobTrace",
    "QueueSampler",
    "run_trace_simulation",
]
