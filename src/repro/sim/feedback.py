"""Load-update feedback path for Dynamic Least-Load (Section 4.2).

After a job completes on a computer, the scheduler's view is refreshed
only once the computer *notices* (it checks its load index every second
→ detection delay U(0, 1)) and a load-update message crosses the network
(transfer delay exponential with mean 0.05 s).  The total notification
lag is therefore U(0,1) + Exp(0.05), averaging ≈ 0.55 s of staleness —
small against the 76.8 s mean job size but enough to deny the dispatcher
oracle knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FeedbackModel", "PAPER_DETECTION_WINDOW", "PAPER_MESSAGE_DELAY_MEAN"]

#: Load-index polling period: detection delay is U(0, this).
PAPER_DETECTION_WINDOW = 1.0
#: Mean of the exponential message transfer delay.
PAPER_MESSAGE_DELAY_MEAN = 0.05


@dataclass(frozen=True)
class FeedbackModel:
    """Delay model for departure notifications.

    ``detection_window = 0`` and ``message_delay_mean = 0`` give an
    oracle scheduler (instant updates) for ablation.
    """

    detection_window: float = PAPER_DETECTION_WINDOW
    message_delay_mean: float = PAPER_MESSAGE_DELAY_MEAN

    def __post_init__(self):
        if self.detection_window < 0:
            raise ValueError(
                f"detection window must be non-negative, got {self.detection_window}"
            )
        if self.message_delay_mean < 0:
            raise ValueError(
                f"message delay mean must be non-negative, got {self.message_delay_mean}"
            )

    @property
    def mean_lag(self) -> float:
        """Expected total notification delay."""
        return self.detection_window / 2.0 + self.message_delay_mean

    def sample_delay(self, rng: np.random.Generator) -> float:
        """Draw one notification delay (detection + message transfer)."""
        delay = 0.0
        if self.detection_window > 0:
            delay += rng.uniform(0.0, self.detection_window)
        if self.message_delay_mean > 0:
            delay += rng.exponential(self.message_delay_mean)
        return delay
