"""Periodic state sampling during event-engine runs.

A :class:`QueueSampler` records every computer's instantaneous number-
in-system on a fixed wall-clock grid, turning a run into per-server
occupancy time series.  Uses:

* visualize how bursty each computer's backlog is under different
  dispatchers (the queue-level view of Figure 2's argument);
* feed :mod:`repro.analysis.warmup` with a state series to check the
  warm-up truncation;
* estimate time-average number-in-system L and cross-check Little's law
  (L = λT) against the job-level response statistics.
"""

from __future__ import annotations

import numpy as np

__all__ = ["QueueSampler"]


class QueueSampler:
    """Samples per-server queue lengths every *interval* seconds.

    Pass to :func:`repro.sim.engine.run_simulation` via ``sampler=``.
    Samples cover [0, duration] inclusive of t=0.
    """

    def __init__(self, interval: float):
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        self.interval = float(interval)
        self._times: list[float] = []
        self._samples: list[list[int]] = []

    # -- engine contract -------------------------------------------------

    def next_sample_time(self) -> float:
        return len(self._times) * self.interval

    def record(self, now: float, servers) -> None:
        self._times.append(now)
        self._samples.append([srv.n_active for srv in servers])

    # -- results ----------------------------------------------------------

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    @property
    def queue_lengths(self) -> np.ndarray:
        """Array of shape (samples, servers)."""
        if not self._samples:
            return np.empty((0, 0))
        return np.asarray(self._samples, dtype=np.int64)

    def time_average_number_in_system(self) -> float:
        """L estimated from the sample grid (all servers combined)."""
        q = self.queue_lengths
        if q.size == 0:
            raise ValueError("no samples recorded")
        return float(q.sum(axis=1).mean())

    def per_server_mean(self) -> np.ndarray:
        q = self.queue_lengths
        if q.size == 0:
            raise ValueError("no samples recorded")
        return q.mean(axis=0)
