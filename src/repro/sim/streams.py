"""Shared arrival/size stream materialization for cell-batched runs.

Under common random numbers every policy evaluated at one (config, seed)
point consumes the *same* stage-1 streams — the arrival instants and job
sizes drawn from the "arrivals" and "sizes" substream roles.  Evaluating
a sweep cell policy-by-policy therefore re-samples identical arrays once
per policy.  This module materializes each replication's streams exactly
once and shares them:

* :func:`materialize_streams` — the canonical stage-1 sampler, the same
  operations :func:`~repro.sim.fastpath.run_static_simulation` always
  performed, so pooled arrays are bit-identical to private draws;
* :class:`StreamPool` — in-process LRU memo handing out read-only views
  (zero-copy across the policies of a cell);
* :class:`SharedStreamPool` / :func:`attach_streams` — cross-process
  sharing over :mod:`multiprocessing.shared_memory`: the parent
  materializes once, workers map the segments and replay without
  re-sampling or pickling multi-megabyte arrays.  The parent owns every
  segment and unlinks them all in ``close()`` (or on context exit), so
  a crashed worker can never leak ``/dev/shm`` space.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..obs import counters
from ..obs.spans import span
from ..rng import StreamFactory
from .config import SimulationConfig

__all__ = [
    "materialize_streams",
    "stream_signature",
    "StreamPool",
    "SharedStreamPool",
    "StreamHandle",
    "attach_streams",
]


def materialize_streams(
    config: SimulationConfig, seed: int | np.random.SeedSequence
) -> tuple[np.ndarray, np.ndarray]:
    """Stage 1 of the static fast path: all arrivals and sizes up front.

    Exactly the draws :func:`run_static_simulation` performs — same
    substream roles, same chunked samplers — so the arrays are
    bit-identical to an unpooled run with the same (config, seed).
    """
    with span("materialize") as sp:
        streams = StreamFactory(seed)
        workload = config.workload()
        times = workload.arrival_stream(streams.arrivals).arrivals_until(
            config.duration
        )
        sizes = workload.sample_sizes(streams.sizes, times.size)
        sp.set(jobs=int(times.size))
        counters.inc("streams.jobs_materialized", value=int(times.size))
        return times, sizes


def stream_signature(config: SimulationConfig) -> tuple:
    """The config fields that shape stage-1 streams (pool cache key).

    Dispatch- and discipline-related fields are deliberately absent:
    two configs differing only there draw identical streams and share a
    pool entry.
    """
    return (
        tuple(float(s) for s in config.speeds),
        float(config.utilization),
        float(config.duration),
        repr(config.size_distribution),
        float(config.arrival_cv),
        repr(config.rate_profile),
    )


def _seed_signature(seed) -> tuple:
    if isinstance(seed, np.random.SeedSequence):
        return (seed.entropy, tuple(seed.spawn_key))
    return (int(seed), ())


def _freeze(arr: np.ndarray) -> np.ndarray:
    arr.flags.writeable = False
    return arr


class StreamPool:
    """In-process memo of materialized (times, sizes) stream pairs.

    Entries are read-only arrays shared zero-copy across every policy
    replayed at the same (config, seed); the LRU bound keeps at most
    ``max_entries`` replications resident.
    """

    def __init__(self, max_entries: int = 8):
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        #: Largest replication (in jobs) this pool has handed out — the
        #: high-water mark the compiled kernel's arena buffers converge
        #: to, surfaced so sizing diagnostics need no arena internals.
        self.peak_jobs = 0

    def _key(self, config: SimulationConfig, seed) -> tuple:
        return (stream_signature(config), _seed_signature(seed))

    def get(
        self, config: SimulationConfig, seed
    ) -> tuple[np.ndarray, np.ndarray]:
        """The (times, sizes) pair for one replication, memoized."""
        key = self._key(config, seed)
        entry = self._entries.pop(key, None)
        if entry is None:
            self.misses += 1
            counters.inc("streams.pool_miss")
            times, sizes = materialize_streams(config, seed)
            entry = (_freeze(times), _freeze(sizes))
        else:
            self.hits += 1
            counters.inc("streams.pool_hit")
        self._entries[key] = entry  # re-insert: dict order tracks LRU
        self.peak_jobs = max(self.peak_jobs, int(entry[0].size))
        while len(self._entries) > self.max_entries:
            self._entries.pop(next(iter(self._entries)))
        return entry

    def prime(
        self, config: SimulationConfig, seed, times: np.ndarray, sizes: np.ndarray
    ) -> None:
        """Insert externally materialized streams (e.g. shared-memory
        views attached by a grid worker) under their pool key."""
        self._entries[self._key(config, seed)] = (_freeze(times), _freeze(sizes))
        self.peak_jobs = max(self.peak_jobs, int(times.size))
        while len(self._entries) > self.max_entries:
            self._entries.pop(next(iter(self._entries)))


@dataclass(frozen=True)
class StreamHandle:
    """Picklable reference to one replication's shared-memory streams."""

    times_name: str
    sizes_name: str
    count: int


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker registration.

    The *parent* pool owns every segment's unlink; letting the attach
    register it too would double-book the resource tracker (spurious
    cleanup warnings, and under fork a KeyError in the shared tracker
    when both sides unregister).  Python 3.13 grew ``track=False`` for
    exactly this; on earlier versions the workaround is to mute the
    register call during attach.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class _AttachedStreams:
    """Worker-side view of a :class:`StreamHandle` (close when done)."""

    def __init__(self, handle: StreamHandle):
        self._times_shm = _attach_untracked(handle.times_name)
        self._sizes_shm = _attach_untracked(handle.sizes_name)
        n = handle.count
        self.times = _freeze(
            np.ndarray(n, dtype=np.float64, buffer=self._times_shm.buf)
        )
        self.sizes = _freeze(
            np.ndarray(n, dtype=np.float64, buffer=self._sizes_shm.buf)
        )

    def close(self) -> None:
        """Unmap the segments (the arrays become invalid)."""
        # Views pin the exported buffer; drop them before closing.
        self.times = None
        self.sizes = None
        self._times_shm.close()
        self._sizes_shm.close()

    def __enter__(self) -> "_AttachedStreams":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach_streams(handle: StreamHandle) -> _AttachedStreams:
    """Map a parent's shared streams into this process (read-only)."""
    return _AttachedStreams(handle)


class SharedStreamPool:
    """Parent-side owner of shared-memory stream segments.

    ``share()`` materializes one replication's streams straight into
    fresh segments and returns a picklable :class:`StreamHandle`;
    ``close()`` — always reached via the context manager's ``finally``
    — closes *and unlinks* every segment, whether or not the workers
    holding them crashed.
    """

    def __init__(self):
        self._segments: list[shared_memory.SharedMemory] = []

    def _export(self, arr: np.ndarray) -> shared_memory.SharedMemory:
        shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
        self._segments.append(shm)
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[:] = arr
        del view  # release the exported buffer before any later close()
        return shm

    def share(self, config: SimulationConfig, seed) -> StreamHandle:
        """Materialize one replication's streams into shared memory."""
        times, sizes = materialize_streams(config, seed)
        times_shm = self._export(times)
        sizes_shm = self._export(sizes)
        return StreamHandle(
            times_name=times_shm.name,
            sizes_name=sizes_shm.name,
            count=int(times.size),
        )

    def close(self) -> None:
        """Close and unlink every segment this pool ever created."""
        segments, self._segments = self._segments, []
        for shm in segments:
            try:
                shm.close()
            except OSError:
                pass
            try:
                shm.unlink()
            except (OSError, FileNotFoundError):
                pass

    def __enter__(self) -> "SharedStreamPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
