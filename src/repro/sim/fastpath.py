"""Vectorized simulation path for *static* dispatchers.

Static policies decide from the arrival sequence alone, so a run factors
into three independent stages — exactly the decomposition the HPC
guidance calls algorithmic optimization:

1. generate **all** arrival instants and job sizes as numpy arrays;
2. compute **all** dispatch decisions (one multinomial-style batch for
   the random dispatcher; a tight Python loop for round robin);
3. replay each computer's substream through an exact per-discipline
   queue independently — per-server state never interacts under static
   scheduling.

Two replay kernels are provided:

* :func:`fcfs_replay` — exact FCFS via the Lindley recursion vectorized
  as a prefix-max over cumulative ``size/speed − interarrival`` terms
  (pure numpy, no per-job Python loop);
* :func:`ps_replay` — exact processor sharing.  The substream is first
  segmented into busy periods with the same vectorized Lindley kernel
  (work conservation makes busy-period boundaries discipline-free);
  singleton busy periods — the common case at moderate load — are
  resolved in one batched numpy expression, and multi-job busy periods
  run through the compiled virtual-time heap (:mod:`repro.sim.ckernel`,
  bit-identical to the interpreted loop kept as fallback).

:func:`run_cell` batches the three stages across the (policy ×
replication) members of one sweep cell: stage 1 runs once per
replication through a :class:`~repro.sim.streams.StreamPool` and the
arrays are shared zero-copy across policies (common random numbers make
them identical by construction), while stages 2–3 stay per-member — so
every member's result is bit-identical to a private
:func:`run_static_simulation` call with the same seed.

Results are statistically identical to :func:`repro.sim.engine.run_simulation`
(same RNG substreams, same boundary rules, drain semantics built in);
the cross-validation tests assert agreement to float-accumulation noise.

:data:`KERNEL_VERSION` tags the numerical behaviour of these kernels and
participates in the persistent replication-cache key
(:mod:`repro.core.cache`): bump it whenever a change here could alter
results beyond float noise, and every cached replication is invalidated.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..dispatch.base import Dispatcher
from ..dispatch.random_dispatch import RandomDispatcher
from ..dispatch.round_robin import (
    RoundRobinDispatcher,
    build_dispatch_sequence,
    sequence_memo_key,
)
from ..metrics.online import RunningStats
from ..metrics.response import MetricsCollector
from ..obs import counters
from ..obs.spans import span
from ..rng import substream
from . import ckernel
from .config import SimulationConfig
from .results import DispatchTrace, ServerStats, SimulationResults
from .streams import StreamPool, materialize_streams

__all__ = [
    "run_static_simulation",
    "run_cell",
    "ps_replay",
    "fcfs_replay",
    "KERNEL_VERSION",
]

#: Version tag of the replay kernels (cache-key component).  v4: the
#: whole replay pipeline — FCFS Lindley recursion included — runs
#: through the fused compiled cell kernel (grouping, per-(plan, server)
#: replay, scatter-back in one C call, OpenMP over disjoint slices).
#: The bump is precautionary — v4 is asserted bit-identical to v3 at
#: any thread count — but the compiled surface grew substantially, so
#: cached v3 entries are retired rather than trusted across the
#: boundary.
KERNEL_VERSION = "4"


def _validate_substream(
    arrival_times: np.ndarray, sizes: np.ndarray, speed: float
) -> tuple[np.ndarray, np.ndarray]:
    times = np.ascontiguousarray(arrival_times, dtype=float)
    work = np.ascontiguousarray(sizes, dtype=float)
    if times.shape != work.shape:
        raise ValueError("arrival_times and sizes must align")
    if times.size > 1 and np.any(np.diff(times) < 0):
        raise ValueError("arrival_times must be non-decreasing")
    if np.any(work <= 0):
        raise ValueError("job sizes must be positive")
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")
    return times, work


def _lindley_departures(times: np.ndarray, service: np.ndarray) -> np.ndarray:
    """FCFS departure instants via the vectorized Lindley recursion.

    With service times s and cumulative service U_j = Σ_{i≤j} s_i, the
    recursion D_j = max(D_{j−1}, T_j) + s_j unrolls to

        D_j = U_j + max_{k≤j} (T_k − U_{k−1}),

    a prefix-max over numpy arrays — no per-job Python loop.
    """
    cum = np.cumsum(service)
    return cum + np.maximum.accumulate(times - (cum - service))


def fcfs_replay(arrival_times: np.ndarray, sizes: np.ndarray, speed: float) -> np.ndarray:
    """Exact FCFS replay of one server's substream (completion times)."""
    times, work = _validate_substream(arrival_times, sizes, speed)
    return _fcfs_replay_core(times, work, speed)


def _fcfs_replay_core(
    times: np.ndarray, work: np.ndarray, speed: float
) -> np.ndarray:
    """:func:`fcfs_replay` minus input validation (pre-validated callers)."""
    if times.size == 0:
        return np.empty(0)
    return _lindley_departures(times, work / speed)


def _fcfs_replay_loop(arrival_times, sizes, speed: float) -> np.ndarray:
    """Naive per-job Lindley recursion — test oracle and bench baseline."""
    times, work = _validate_substream(arrival_times, sizes, speed)
    out = np.empty(times.size)
    done = -np.inf
    for j in range(times.size):
        done = max(done, times[j]) + work[j] / speed
        out[j] = done
    return out


def _ps_busy_period(
    times: list, work: list, speed: float, start: int, end: int,
    completions: np.ndarray,
) -> None:
    """Exact virtual-time PS replay of one multi-job busy period.

    With m active jobs the virtual clock advances at rate speed/m, and a
    job of size x arriving at virtual time v departs when the clock
    reaches v + x.  Each busy period starts from a fresh clock, so no
    float drift accumulates across busy periods.
    """
    heap: list[tuple[float, int]] = []  # (departure tag, job index)
    push, pop = heapq.heappush, heapq.heappop
    v = 0.0  # virtual clock
    t_last = times[start]
    for j in range(start, end):
        t_a = times[j]
        # Retire every job whose departure tag is reached before t_a.
        while heap:
            tag = heap[0][0]
            dt = (tag - v) * len(heap) / speed
            if dt < 0.0:
                dt = 0.0
            t_dep = t_last + dt
            if t_dep > t_a:
                break
            completions[pop(heap)[1]] = t_dep
            t_last = t_dep
            v = tag
        if heap:
            v += (t_a - t_last) * speed / len(heap)
        t_last = t_a
        push(heap, (v + work[j], j))

    # Drain: no further arrivals in this busy period, retire in tag order.
    while heap:
        tag = heap[0][0]
        dt = (tag - v) * len(heap) / speed
        if dt < 0.0:
            dt = 0.0
        t_last += dt
        v = tag
        completions[pop(heap)[1]] = t_last


def ps_replay(arrival_times: np.ndarray, sizes: np.ndarray, speed: float) -> np.ndarray:
    """Exact processor-sharing replay of one server's substream.

    Returns the completion time of every job.  The stream is segmented
    into busy periods first: PS is work-conserving, so the instant all
    work from jobs 0..j is finished equals the FCFS departure of job j
    (computed by the vectorized Lindley kernel), and job j+1 opens a new
    busy period iff it arrives at or after that depletion instant.
    Busy periods containing a single job — the bulk of the stream at
    moderate load — complete at ``arrival + size/speed`` in one batched
    expression; multi-job busy periods replay through the compiled heap
    core when available (:mod:`repro.sim.ckernel`), falling back to the
    bit-identical per-job Python loop otherwise.
    """
    times, work = _validate_substream(arrival_times, sizes, speed)
    return _ps_replay_core(times, work, speed)


def _ps_replay_core(
    times: np.ndarray, work: np.ndarray, speed: float
) -> np.ndarray:
    """:func:`ps_replay` minus input validation (pre-validated callers)."""
    n = times.size
    if n == 0:
        return np.empty(0)

    svc = work / speed
    completions = np.empty(n)

    depletion = _lindley_departures(times, svc)
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    np.greater_equal(times[1:], depletion[:-1], out=starts[1:])
    bounds = np.flatnonzero(starts)
    ends = np.append(bounds[1:], n)

    single = (ends - bounds) == 1
    idx = bounds[single]
    completions[idx] = times[idx] + svc[idx]

    if idx.size < bounds.size:
        multi = ~single
        mb = np.ascontiguousarray(bounds[multi])
        me = np.ascontiguousarray(ends[multi])
        fn = ckernel.ps_periods_fn()
        if fn is not None:
            ckernel.replay_periods_c(
                fn, times, work, float(speed), mb, me, completions
            )
        else:
            # Plain-float lists: scalar indexing in the heap loop is
            # several times faster than indexing numpy element-wise.
            tl = times.tolist()
            wl = work.tolist()
            for b, e in zip(mb.tolist(), me.tolist()):
                _ps_busy_period(tl, wl, speed, b, e, completions)
    return completions


def _ps_replay_loop(arrival_times, sizes, speed: float) -> np.ndarray:
    """Single global heap loop over every job (the pre-segmentation
    implementation) — test oracle and bench baseline for :func:`ps_replay`."""
    times, work = _validate_substream(arrival_times, sizes, speed)
    n = times.size
    completions = np.empty(n)
    heap: list[tuple[float, int]] = []
    push, pop = heapq.heappush, heapq.heappop
    v = 0.0
    t_last = 0.0
    for j in range(n):
        t_a = times[j]
        while heap:
            tag = heap[0][0]
            dt = (tag - v) * len(heap) / speed
            if dt < 0.0:
                dt = 0.0
            t_dep = t_last + dt
            if t_dep > t_a:
                break
            completions[pop(heap)[1]] = t_dep
            t_last = t_dep
            v = tag
        if heap:
            v += (t_a - t_last) * speed / len(heap)
        else:
            v = 0.0
        t_last = t_a
        push(heap, (v + work[j], j))
    while heap:
        tag = heap[0][0]
        dt = (tag - v) * len(heap) / speed
        if dt < 0.0:
            dt = 0.0
        t_last += dt
        v = tag
        completions[pop(heap)[1]] = t_last
    return completions


#: Discipline → exact replay kernel for the static fast path.
_REPLAY_KERNELS = {"ps": ps_replay, "fcfs": fcfs_replay}

#: Discipline → validation-free kernel used by :func:`_replay_plan`,
#: which validates the whole arrival stream once instead of per server.
_REPLAY_CORES = {"ps": _ps_replay_core, "fcfs": _fcfs_replay_core}


# ----------------------------------------------------------------------
# Stage-2 dispatch-sequence memo
# ----------------------------------------------------------------------
#
# Weighted round robin (Algorithm 2) ignores job sizes and randomness:
# its target sequence is a pure function of (alphas, arrival count), and
# the sequence for N jobs is a prefix of the sequence for M > N jobs.
# Replications of one sweep cell therefore share a single sequence.
# The memo itself lives with the algorithm
# (:func:`repro.dispatch.round_robin.build_dispatch_sequence`) and owns
# private dispatchers, so caller-side resets can never corrupt a cached
# prefix; this wrapper only adds the telemetry span.


def _dispatch_targets(dispatcher: Dispatcher, sizes: np.ndarray) -> np.ndarray:
    """All stage-2 decisions, memoized for sequence-deterministic
    dispatchers (bit-identical to calling ``select_batch`` directly)."""
    with span("dispatch", jobs=int(sizes.size)) as sp:
        if dispatcher.sequence_deterministic and isinstance(
            dispatcher, RoundRobinDispatcher
        ):
            targets, status = build_dispatch_sequence(
                dispatcher.alphas, sizes.size, guard_init=dispatcher.guard_init
            )
            sp.set(memo=status)
            return targets
        sp.set(memo="bypass")
        return dispatcher.select_batch(sizes)


def _resolve_replay(config: SimulationConfig):
    try:
        return _REPLAY_KERNELS[config.discipline]
    except KeyError:
        raise ValueError(
            "the fast path implements the PS discipline and the FCFS "
            f"discipline ({sorted(_REPLAY_KERNELS)}); "
            f"discipline={config.discipline!r} needs the event engine — "
            "use repro.sim.engine.run_simulation instead"
        ) from None


def _replay_static(
    config: SimulationConfig,
    dispatcher: Dispatcher,
    alphas,
    times: np.ndarray,
    sizes: np.ndarray,
    record_trace: bool,
) -> SimulationResults:
    """Stages 2–3 for one member: dispatch, per-server replay, metrics."""
    # Stage 2 — all dispatch decisions (memoized across replications
    # for sequence-deterministic dispatchers like weighted round robin).
    dispatcher.reset(alphas)
    targets = _dispatch_targets(dispatcher, sizes)
    return _replay_plan(config, targets, times, sizes, record_trace)


def _validate_plan_inputs(
    times: np.ndarray, sizes: np.ndarray, speeds: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Whole-stream validation shared by every plan of a replication.

    Every per-server slice of a non-decreasing stream is itself
    non-decreasing, so validating once covers all plans and servers.
    """
    times = np.ascontiguousarray(times, dtype=float)
    sizes = np.ascontiguousarray(sizes, dtype=float)
    if times.shape != sizes.shape:
        raise ValueError("arrival times and sizes must align")
    if times.size > 1 and np.any(np.diff(times) < 0):
        raise ValueError("arrival_times must be non-decreasing")
    if np.any(sizes <= 0):
        raise ValueError("job sizes must be positive")
    if np.any(speeds <= 0):
        raise ValueError("server speeds must be positive")
    return times, sizes


def _summarize_plan(
    config: SimulationConfig,
    targets: np.ndarray,
    times: np.ndarray,
    sizes: np.ndarray,
    completions: np.ndarray,
    grouped_sizes: np.ndarray,
    offsets: np.ndarray,
    record_trace: bool,
    warmup_cut: int | None = None,
    job_size_stats: RunningStats | None = None,
    tail: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> SimulationResults:
    """One plan's metrics pass over arrival-order completions.

    ``grouped_sizes``/``offsets`` are the server-grouped job sizes and
    group bounds from the replay stage (server ``i`` owns
    ``grouped_sizes[offsets[i]:offsets[i+1]]``).  Arrivals are sorted,
    so the post-warm-up jobs form a suffix: ``warmup_cut`` is its start
    index (binary-searched here when not supplied; plans of one
    replication share the stream, so callers may share the cut).  The
    suffix holds exactly the jobs the boolean mask ``times >= warmup``
    selects, in the same order — the accumulated bits are identical,
    the gather copies are not made.  ``job_size_stats`` likewise depends
    only on the stream, so one accumulation may serve every plan of a
    replication: merging it into a fresh collector copies its aggregates
    verbatim, the same bits a private accumulation would produce.
    ``tail`` is this plan's ``(response, ratio, counts)`` precursor
    slice from the compiled kernel (see
    :func:`repro.sim.ckernel.replay_cell_c`) — elementwise subtraction
    and division plus integer counts, bit-identical to the numpy
    expressions computed here when absent.
    """
    n_servers = len(config.speeds)
    with span("summarize", jobs=int(times.size)):
        if warmup_cut is None:
            warmup_cut = int(np.searchsorted(times, config.warmup, side="left"))
        metrics = MetricsCollector(warmup_end=config.warmup)
        dispatched_counts = None
        if job_size_stats is not None and warmup_cut < times.size:
            if tail is not None:
                response, response_ratio, dispatched_counts = tail
            else:
                response = completions[warmup_cut:] - times[warmup_cut:]
                response_ratio = response / sizes[warmup_cut:]
            metrics.response_time.add_array(response)
            metrics.response_ratio.add_array(response_ratio)
            metrics.job_size.merge(job_size_stats)
        else:
            metrics.record_batch(
                times, completions, sizes, assume_valid=True, arrivals_sorted=True
            )
        post_warmup_total = int(times.size) - warmup_cut
        if dispatched_counts is None:
            dispatched_counts = np.bincount(
                targets[warmup_cut:], minlength=n_servers
            )
        server_stats = []
        for i, speed in enumerate(config.speeds):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            server_stats.append(
                ServerStats(
                    index=i,
                    speed=float(speed),
                    jobs_received=hi - lo,
                    jobs_completed=hi - lo,
                    # PS and FCFS are work-conserving: busy time equals
                    # served work/speed.
                    busy_time=float(grouped_sizes[lo:hi].sum()) / float(speed),
                    dispatch_fraction=(
                        int(dispatched_counts[i]) / post_warmup_total
                        if post_warmup_total
                        else 0.0
                    ),
                )
            )

        trace = None
        if record_trace:
            trace = DispatchTrace(times=times, targets=targets)
        return SimulationResults(
            metrics=metrics.finalize(),
            servers=tuple(server_stats),
            duration=config.duration,
            warmup=config.warmup,
            total_arrivals=int(times.size),
            trace=trace,
        )


def _replay_plan(
    config: SimulationConfig,
    targets: np.ndarray,
    times: np.ndarray,
    sizes: np.ndarray,
    record_trace: bool,
    *,
    validated: bool = False,
) -> SimulationResults:
    """Stage 3 for one dispatch plan: grouped replay plus one metrics pass.

    With the compiled kernel this is one fused C call (counting-sort
    grouping, per-server replay, scatter back to arrival order —
    :func:`repro.sim.ckernel.replay_cell_c` with a single plan, scratch
    from the arena).  The numpy fallback groups with one stable argsort
    on a narrow key — within a group the stable sort preserves arrival
    order, so each server's slice is bit-identical to the boolean-mask
    extraction it replaces — and replays per server in Python.  Both
    paths produce the same bits by construction.
    """
    n_servers = len(config.speeds)
    speeds = np.ascontiguousarray(config.speeds, dtype=float)
    if not validated:
        times, sizes = _validate_plan_inputs(times, sizes, speeds)

    fused = ckernel.cell_fn()
    counters.inc(
        "kernel.engaged",
        discipline=config.discipline,
        backend="c" if fused is not None else "python",
        version=KERNEL_VERSION,
        threads=ckernel.omp_max_threads() if fused is not None else 1,
    )
    if fused is not None:
        with span("replay", backend="c", servers=n_servers, jobs=int(times.size)):
            comp, gw, offs, _, ok = ckernel.replay_cell_c(
                fused, times, sizes, speeds, [targets],
                config.discipline == "ps",
            )
        if ok:
            return _summarize_plan(
                config, targets, times, sizes, comp[0], gw[0], offs[0],
                record_trace,
            )
        # Out-of-range target: fall through to the numpy path, whose
        # bincount raises the descriptive error.

    # Stable argsort on a narrow key: casting the targets to int8 (a
    # network never has 128 computers) keeps the radix passes to one
    # byte, several times faster than sorting int64 keys — and a cast
    # preserves key order, so the permutation is identical.
    sort_keys = targets.astype(np.int8) if n_servers <= 127 else targets
    order = np.argsort(sort_keys, kind="stable")
    counts = np.bincount(targets, minlength=n_servers)
    offsets = np.zeros(n_servers + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    grouped_times = times[order]
    grouped_sizes = sizes[order]
    grouped_completions = np.empty_like(grouped_times)

    core = _REPLAY_CORES[config.discipline]
    for i in range(n_servers):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        if lo == hi:
            continue
        with span("replay", backend="python", server=i, jobs=hi - lo):
            grouped_completions[lo:hi] = core(
                grouped_times[lo:hi], grouped_sizes[lo:hi], float(speeds[i])
            )

    completions = np.empty_like(times)
    completions[order] = grouped_completions
    return _summarize_plan(
        config, targets, times, sizes, completions, grouped_sizes, offsets,
        record_trace,
    )


def run_static_simulation(
    config: SimulationConfig,
    dispatcher: Dispatcher,
    alphas,
    *,
    seed: int | np.random.SeedSequence = 0,
    record_trace: bool = False,
) -> SimulationResults:
    """Run one replication of a static policy on the vectorized path."""
    if not dispatcher.is_static:
        raise ValueError(
            f"{type(dispatcher).__name__} needs feedback; use run_simulation instead"
        )
    _resolve_replay(config)  # fail fast on unsupported disciplines

    # Stage 1 — all arrivals and sizes up front.
    times, sizes = materialize_streams(config, seed)
    return _replay_static(config, dispatcher, alphas, times, sizes, record_trace)


def run_cell(
    config: SimulationConfig,
    policies,
    seeds,
    *,
    pool: StreamPool | None = None,
    members=None,
    record_trace: bool = False,
) -> dict[tuple[int, int], SimulationResults]:
    """Batched fast path over the (policy × replication) grid of one cell.

    Parameters
    ----------
    policies:
        Sequence of policy-like objects (``.name``, ``.is_static``,
        ``.fractions(network)``, ``.build_dispatcher(speeds, rng)`` —
        duck-typed so this module stays independent of
        :mod:`repro.core`).
    seeds:
        One root seed per replication (ints or ``SeedSequence``s,
        typically from :func:`repro.rng.replication_seeds`).
    pool:
        :class:`~repro.sim.streams.StreamPool` supplying stage-1 arrays
        (a private pool is created when omitted).  Replications present
        in the pool — e.g. shared-memory segments attached by a grid
        worker — are replayed without re-sampling.
    members:
        Optional iterable of ``(policy_index, replication_index)`` pairs
        restricting which members run (cache-served members are skipped
        this way); all members run when omitted.

    Returns ``{(policy_index, replication_index): SimulationResults}``.
    Each member's result is bit-identical to
    :func:`run_static_simulation` with the same (config, seed): stage 1
    is shared across policies precisely because common random numbers
    make the draws identical, and stages 2–3 run per member with the
    dispatcher rebuilt from the member's own "dispatch" substream.
    """
    _resolve_replay(config)  # fail fast on unsupported disciplines
    seeds = list(seeds)
    if members is None:
        wanted = [(pi, r) for r in range(len(seeds)) for pi in range(len(policies))]
    else:
        wanted = [(int(pi), int(r)) for pi, r in members]
        for pi, r in wanted:
            if not 0 <= r < len(seeds):
                raise IndexError(f"replication index {r} out of range")
            if not 0 <= pi < len(policies):
                raise IndexError(f"policy index {pi} out of range")
    if pool is None:
        pool = StreamPool()

    network = config.network()
    speeds = np.ascontiguousarray(config.speeds, dtype=float)
    alphas_memo: dict[int, object] = {}
    # Round-robin plans are a pure function of (alphas, guard_init,
    # count) — no stream dependence — so one materialized sequence
    # serves every member (and every same-length replication), and
    # members with equal allocations share the identical array, making
    # the dedup below an identity check.
    rr_memo: dict[tuple, np.ndarray] = {}
    dispatchers_ok: set[int] = set()
    results: dict[tuple[int, int], SimulationResults] = {}
    by_rep: dict[int, list[int]] = {}
    for pi, r in wanted:
        by_rep.setdefault(r, []).append(pi)

    for r in sorted(by_rep):
        times, sizes = pool.get(config, seeds[r])
        # Validate the shared streams once per replication: every plan
        # replays the same arrays, so per-plan validation is redundant.
        times, sizes = _validate_plan_inputs(times, sizes, speeds)
        # Dispatch-plan dedup, the cell-only optimization: two members
        # of the same replication whose stage-2 target sequences are
        # identical (ORR and WRR collapse to the same plan on a
        # homogeneous network, for instance) replay identical
        # per-server substreams, so one replay serves both members —
        # bit-identity is trivially preserved.
        u_shared: np.ndarray | None = None
        random_memo: dict[bytes, np.ndarray] = {}
        plans: list[np.ndarray] = []
        member_plan: dict[int, int] = {}
        for pi in by_rep[r]:
            policy = policies[pi]
            if pi not in alphas_memo:
                if not getattr(policy, "is_static", True):
                    raise ValueError(
                        f"policy {policy.name!r} needs feedback; "
                        "use run_simulation instead"
                    )
                alphas_memo[pi] = policy.fractions(network)
            dispatcher = policy.build_dispatcher(
                config.speeds, substream(seeds[r], "dispatch")
            )
            if pi not in dispatchers_ok:
                if not dispatcher.is_static:
                    raise ValueError(
                        f"{type(dispatcher).__name__} needs feedback; "
                        "use run_simulation instead"
                    )
                dispatchers_ok.add(pi)
            dispatcher.reset(alphas_memo[pi])
            if isinstance(dispatcher, RandomDispatcher):
                # Common random numbers, one level deeper: every random
                # dispatcher of this replication was just built from an
                # identical fresh "dispatch" substream, so the first
                # member's uniforms ARE every member's uniforms — draw
                # once and only re-map per allocation.
                with span("dispatch", jobs=int(sizes.size)) as sp:
                    if u_shared is None:
                        u_shared = dispatcher.draw(sizes.size)
                        sp.set(memo="bypass")
                    else:
                        sp.set(memo="cell-crn")
                    # Same uniforms + same cumulative fractions → same
                    # targets, so the mapping itself memoizes on the
                    # allocation (WRAN and ORAN coincide on a
                    # homogeneous network, for instance); the memo hit
                    # returns the identical array, making the plan
                    # dedup below an identity check.
                    key = dispatcher.allocation_key()
                    targets = random_memo.get(key)
                    if targets is None:
                        targets = dispatcher.select_batch_given(u_shared)
                        random_memo[key] = targets
            elif isinstance(dispatcher, RoundRobinDispatcher) and (
                dispatcher.sequence_deterministic
            ):
                key = (
                    sequence_memo_key(dispatcher.alphas, dispatcher.guard_init),
                    int(sizes.size),
                )
                targets = rr_memo.get(key)
                if targets is None:
                    targets = _dispatch_targets(dispatcher, sizes)
                    rr_memo[key] = targets
            else:
                targets = _dispatch_targets(dispatcher, sizes)
            plan_idx = None
            for j, prev in enumerate(plans):
                # Identity, not np.array_equal: the random and
                # round-robin memos above hand equal plans back as the
                # same object (ORR/WRR with equal fractions share one
                # cached array), and a missed dedup of coincidentally
                # equal arrays only costs a redundant replay — it can
                # never change results.
                if prev is targets:
                    plan_idx = j
                    counters.inc("cell.plan_reuse")
                    break
            if plan_idx is None:
                plans.append(targets)
                plan_idx = len(plans) - 1
            member_plan[pi] = plan_idx

        plan_results = _replay_cell_plans(
            config, plans, times, sizes, speeds, record_trace
        )
        for pi in by_rep[r]:
            result = plan_results[member_plan[pi]]
            results[(pi, r)] = result
            # One ledger entry per member, reused plans included, so the
            # cell path tallies exactly what the flat path would.
            counters.record_run(result)
    return results


def _replay_cell_plans(
    config: SimulationConfig,
    plans: list[np.ndarray],
    times: np.ndarray,
    sizes: np.ndarray,
    speeds: np.ndarray,
    record_trace: bool,
) -> list[SimulationResults]:
    """Stage 3 for every unique dispatch plan of one replication.

    With the compiled kernel the whole cell replays in ONE C call —
    grouping, per-(plan, server) replay (OpenMP over disjoint slices),
    and scatter-back share the materialized streams and the arena
    scratch — followed by one numpy metrics pass per plan (kept in
    numpy so the accumulation order, and hence the bits, match the flat
    path).  Without it, each plan runs the per-plan fallback.
    """
    if not plans:
        return []
    fused = ckernel.cell_fn()
    if fused is not None:
        threads = ckernel.omp_max_threads()
        with span(
            "replay",
            backend="c",
            plans=len(plans),
            servers=len(config.speeds),
            jobs=int(times.size),
        ):
            cut = int(np.searchsorted(times, config.warmup, side="left"))
            comp, gw, offs, tail, ok = ckernel.replay_cell_c(
                fused, times, sizes, speeds, plans,
                config.discipline == "ps", warmup_cut=cut,
            )
        if ok:
            job_size_stats = None
            if cut < times.size:
                job_size_stats = RunningStats()
                job_size_stats.add_array(sizes[cut:])
            out = []
            for k, targets in enumerate(plans):
                counters.inc(
                    "kernel.engaged",
                    discipline=config.discipline,
                    backend="c",
                    version=KERNEL_VERSION,
                    threads=threads,
                )
                out.append(
                    _summarize_plan(
                        config, targets, times, sizes, comp[k], gw[k],
                        offs[k], record_trace, warmup_cut=cut,
                        job_size_stats=job_size_stats,
                        tail=None if tail is None else (
                            tail[0][k], tail[1][k], tail[2][k]
                        ),
                    )
                )
            return out
    return [
        _replay_plan(config, targets, times, sizes, record_trace, validated=True)
        for targets in plans
    ]
