"""Vectorized simulation path for *static* dispatchers.

Static policies decide from the arrival sequence alone, so a run factors
into three independent stages — exactly the decomposition the HPC
guidance calls algorithmic optimization:

1. generate **all** arrival instants and job sizes as numpy arrays;
2. compute **all** dispatch decisions (one multinomial-style batch for
   the random dispatcher; a tight Python loop for round robin);
3. replay each computer's substream through an exact PS queue
   independently — per-server state never interacts under static
   scheduling.

Results are statistically identical to :func:`repro.sim.engine.run_simulation`
(same RNG substreams, same boundary rules, drain semantics built in);
the cross-validation test asserts agreement to float-accumulation noise.
Typical speedup is ~3-5× over the event engine, dominated by stage 3's
per-server heap loop.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..dispatch.base import Dispatcher
from ..metrics.response import MetricsCollector
from ..rng import StreamFactory
from .config import SimulationConfig
from .results import DispatchTrace, ServerStats, SimulationResults

__all__ = ["run_static_simulation", "ps_replay"]


def ps_replay(arrival_times: np.ndarray, sizes: np.ndarray, speed: float) -> np.ndarray:
    """Exact processor-sharing replay of one server's substream.

    Returns the completion time of every job.  Uses the virtual-time
    formulation: with m active jobs the virtual clock advances at rate
    speed/m, and a job of size x arriving at virtual time v departs when
    the clock reaches v + x.  The clock resets to zero whenever the
    server idles, so no float drift accumulates across busy periods.
    """
    times = np.ascontiguousarray(arrival_times, dtype=float)
    work = np.ascontiguousarray(sizes, dtype=float)
    if times.shape != work.shape:
        raise ValueError("arrival_times and sizes must align")
    if times.size > 1 and np.any(np.diff(times) < 0):
        raise ValueError("arrival_times must be non-decreasing")
    if np.any(work <= 0):
        raise ValueError("job sizes must be positive")
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")

    n = times.size
    completions = np.empty(n)
    heap: list[tuple[float, int]] = []  # (departure tag, job index)
    push, pop = heapq.heappush, heapq.heappop
    v = 0.0  # virtual clock
    t_last = 0.0

    for j in range(n):
        t_a = times[j]
        # Retire every job whose departure tag is reached before t_a.
        while heap:
            tag = heap[0][0]
            dt = (tag - v) * len(heap) / speed
            if dt < 0.0:
                dt = 0.0
            t_dep = t_last + dt
            if t_dep > t_a:
                break
            completions[pop(heap)[1]] = t_dep
            t_last = t_dep
            v = tag
        if heap:
            v += (t_a - t_last) * speed / len(heap)
        else:
            v = 0.0
        t_last = t_a
        push(heap, (v + work[j], j))

    # Drain: no further arrivals, remaining jobs retire in tag order.
    while heap:
        tag = heap[0][0]
        dt = (tag - v) * len(heap) / speed
        if dt < 0.0:
            dt = 0.0
        t_last += dt
        v = tag
        completions[pop(heap)[1]] = t_last
    return completions


def run_static_simulation(
    config: SimulationConfig,
    dispatcher: Dispatcher,
    alphas,
    *,
    seed: int | np.random.SeedSequence = 0,
    record_trace: bool = False,
) -> SimulationResults:
    """Run one replication of a static policy on the vectorized path."""
    if not dispatcher.is_static:
        raise ValueError(
            f"{type(dispatcher).__name__} needs feedback; use run_simulation instead"
        )
    if config.discipline != "ps":
        raise ValueError(
            "the fast path implements the PS discipline only; "
            f"use run_simulation for discipline={config.discipline!r}"
        )

    streams = StreamFactory(seed)
    workload = config.workload()

    # Stage 1 — all arrivals and sizes up front.
    times = workload.arrival_stream(streams.arrivals).arrivals_until(config.duration)
    sizes = workload.sample_sizes(streams.sizes, times.size)

    # Stage 2 — all dispatch decisions.
    dispatcher.reset(alphas)
    targets = dispatcher.select_batch(sizes)

    # Stage 3 — independent per-server PS replay.
    metrics = MetricsCollector(warmup_end=config.warmup)
    server_stats = []
    warmup_mask = times >= config.warmup
    post_warmup_total = int(np.count_nonzero(warmup_mask))
    for i, speed in enumerate(config.speeds):
        mask = targets == i
        sub_times = times[mask]
        sub_sizes = sizes[mask]
        completions = ps_replay(sub_times, sub_sizes, speed)
        metrics.record_batch(sub_times, completions, sub_sizes)
        dispatched = int(np.count_nonzero(mask & warmup_mask))
        server_stats.append(
            ServerStats(
                index=i,
                speed=float(speed),
                jobs_received=int(sub_times.size),
                jobs_completed=int(sub_times.size),
                # PS is work-conserving: busy time equals served work/speed.
                busy_time=float(sub_sizes.sum()) / float(speed),
                dispatch_fraction=(
                    dispatched / post_warmup_total if post_warmup_total else 0.0
                ),
            )
        )

    trace = None
    if record_trace:
        trace = DispatchTrace(times=times, targets=targets)
    return SimulationResults(
        metrics=metrics.finalize(),
        servers=tuple(server_stats),
        duration=config.duration,
        warmup=config.warmup,
        total_arrivals=int(times.size),
        trace=trace,
    )
