"""Vectorized simulation path for *static* dispatchers.

Static policies decide from the arrival sequence alone, so a run factors
into three independent stages — exactly the decomposition the HPC
guidance calls algorithmic optimization:

1. generate **all** arrival instants and job sizes as numpy arrays;
2. compute **all** dispatch decisions (one multinomial-style batch for
   the random dispatcher; a tight Python loop for round robin);
3. replay each computer's substream through an exact per-discipline
   queue independently — per-server state never interacts under static
   scheduling.

Two replay kernels are provided:

* :func:`fcfs_replay` — exact FCFS via the Lindley recursion vectorized
  as a prefix-max over cumulative ``size/speed − interarrival`` terms
  (pure numpy, no per-job Python loop);
* :func:`ps_replay` — exact processor sharing.  The substream is first
  segmented into busy periods with the same vectorized Lindley kernel
  (work conservation makes busy-period boundaries discipline-free);
  singleton busy periods — the common case at moderate load — are
  resolved in one batched numpy expression, and only multi-job busy
  periods fall back to the per-job virtual-time heap.

Results are statistically identical to :func:`repro.sim.engine.run_simulation`
(same RNG substreams, same boundary rules, drain semantics built in);
the cross-validation tests assert agreement to float-accumulation noise.

:data:`KERNEL_VERSION` tags the numerical behaviour of these kernels and
participates in the persistent replication-cache key
(:mod:`repro.core.cache`): bump it whenever a change here could alter
results beyond float noise, and every cached replication is invalidated.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..dispatch.base import Dispatcher
from ..metrics.response import MetricsCollector
from ..rng import StreamFactory
from .config import SimulationConfig
from .results import DispatchTrace, ServerStats, SimulationResults

__all__ = ["run_static_simulation", "ps_replay", "fcfs_replay", "KERNEL_VERSION"]

#: Version tag of the replay kernels (cache-key component).
KERNEL_VERSION = "2"


def _validate_substream(
    arrival_times: np.ndarray, sizes: np.ndarray, speed: float
) -> tuple[np.ndarray, np.ndarray]:
    times = np.ascontiguousarray(arrival_times, dtype=float)
    work = np.ascontiguousarray(sizes, dtype=float)
    if times.shape != work.shape:
        raise ValueError("arrival_times and sizes must align")
    if times.size > 1 and np.any(np.diff(times) < 0):
        raise ValueError("arrival_times must be non-decreasing")
    if np.any(work <= 0):
        raise ValueError("job sizes must be positive")
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")
    return times, work


def _lindley_departures(times: np.ndarray, service: np.ndarray) -> np.ndarray:
    """FCFS departure instants via the vectorized Lindley recursion.

    With service times s and cumulative service U_j = Σ_{i≤j} s_i, the
    recursion D_j = max(D_{j−1}, T_j) + s_j unrolls to

        D_j = U_j + max_{k≤j} (T_k − U_{k−1}),

    a prefix-max over numpy arrays — no per-job Python loop.
    """
    cum = np.cumsum(service)
    return cum + np.maximum.accumulate(times - (cum - service))


def fcfs_replay(arrival_times: np.ndarray, sizes: np.ndarray, speed: float) -> np.ndarray:
    """Exact FCFS replay of one server's substream (completion times)."""
    times, work = _validate_substream(arrival_times, sizes, speed)
    if times.size == 0:
        return np.empty(0)
    return _lindley_departures(times, work / speed)


def _fcfs_replay_loop(arrival_times, sizes, speed: float) -> np.ndarray:
    """Naive per-job Lindley recursion — test oracle and bench baseline."""
    times, work = _validate_substream(arrival_times, sizes, speed)
    out = np.empty(times.size)
    done = -np.inf
    for j in range(times.size):
        done = max(done, times[j]) + work[j] / speed
        out[j] = done
    return out


def _ps_busy_period(
    times: list, work: list, speed: float, start: int, end: int,
    completions: np.ndarray,
) -> None:
    """Exact virtual-time PS replay of one multi-job busy period.

    With m active jobs the virtual clock advances at rate speed/m, and a
    job of size x arriving at virtual time v departs when the clock
    reaches v + x.  Each busy period starts from a fresh clock, so no
    float drift accumulates across busy periods.
    """
    heap: list[tuple[float, int]] = []  # (departure tag, job index)
    push, pop = heapq.heappush, heapq.heappop
    v = 0.0  # virtual clock
    t_last = times[start]
    for j in range(start, end):
        t_a = times[j]
        # Retire every job whose departure tag is reached before t_a.
        while heap:
            tag = heap[0][0]
            dt = (tag - v) * len(heap) / speed
            if dt < 0.0:
                dt = 0.0
            t_dep = t_last + dt
            if t_dep > t_a:
                break
            completions[pop(heap)[1]] = t_dep
            t_last = t_dep
            v = tag
        if heap:
            v += (t_a - t_last) * speed / len(heap)
        t_last = t_a
        push(heap, (v + work[j], j))

    # Drain: no further arrivals in this busy period, retire in tag order.
    while heap:
        tag = heap[0][0]
        dt = (tag - v) * len(heap) / speed
        if dt < 0.0:
            dt = 0.0
        t_last += dt
        v = tag
        completions[pop(heap)[1]] = t_last


def ps_replay(arrival_times: np.ndarray, sizes: np.ndarray, speed: float) -> np.ndarray:
    """Exact processor-sharing replay of one server's substream.

    Returns the completion time of every job.  The stream is segmented
    into busy periods first: PS is work-conserving, so the instant all
    work from jobs 0..j is finished equals the FCFS departure of job j
    (computed by the vectorized Lindley kernel), and job j+1 opens a new
    busy period iff it arrives at or after that depletion instant.
    Busy periods containing a single job — the bulk of the stream at
    moderate load — complete at ``arrival + size/speed`` in one batched
    expression; only multi-job busy periods run the per-job heap loop.
    """
    times, work = _validate_substream(arrival_times, sizes, speed)
    n = times.size
    if n == 0:
        return np.empty(0)

    svc = work / speed
    completions = np.empty(n)

    depletion = _lindley_departures(times, svc)
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    np.greater_equal(times[1:], depletion[:-1], out=starts[1:])
    bounds = np.flatnonzero(starts)
    ends = np.append(bounds[1:], n)

    single = (ends - bounds) == 1
    idx = bounds[single]
    completions[idx] = times[idx] + svc[idx]

    if idx.size < bounds.size:
        multi = ~single
        # Plain-float lists: scalar indexing in the heap loop is several
        # times faster than indexing numpy arrays element-wise.
        tl = times.tolist()
        wl = work.tolist()
        for b, e in zip(bounds[multi].tolist(), ends[multi].tolist()):
            _ps_busy_period(tl, wl, speed, b, e, completions)
    return completions


def _ps_replay_loop(arrival_times, sizes, speed: float) -> np.ndarray:
    """Single global heap loop over every job (the pre-segmentation
    implementation) — test oracle and bench baseline for :func:`ps_replay`."""
    times, work = _validate_substream(arrival_times, sizes, speed)
    n = times.size
    completions = np.empty(n)
    heap: list[tuple[float, int]] = []
    push, pop = heapq.heappush, heapq.heappop
    v = 0.0
    t_last = 0.0
    for j in range(n):
        t_a = times[j]
        while heap:
            tag = heap[0][0]
            dt = (tag - v) * len(heap) / speed
            if dt < 0.0:
                dt = 0.0
            t_dep = t_last + dt
            if t_dep > t_a:
                break
            completions[pop(heap)[1]] = t_dep
            t_last = t_dep
            v = tag
        if heap:
            v += (t_a - t_last) * speed / len(heap)
        else:
            v = 0.0
        t_last = t_a
        push(heap, (v + work[j], j))
    while heap:
        tag = heap[0][0]
        dt = (tag - v) * len(heap) / speed
        if dt < 0.0:
            dt = 0.0
        t_last += dt
        v = tag
        completions[pop(heap)[1]] = t_last
    return completions


#: Discipline → exact replay kernel for the static fast path.
_REPLAY_KERNELS = {"ps": ps_replay, "fcfs": fcfs_replay}


# ----------------------------------------------------------------------
# Stage-2 dispatch-sequence memo
# ----------------------------------------------------------------------
#
# Weighted round robin (Algorithm 2) ignores job sizes and randomness:
# its target sequence is a pure function of (alphas, arrival count), and
# the sequence for N jobs is a prefix of the sequence for M > N jobs.
# Replications of one sweep cell therefore share a single sequence; the
# memo computes it once per process and extends it statefully (the live
# dispatcher is kept alongside the targets).  Entries are LRU-bounded
# and stored as int16 (a network never has 32k computers) to keep the
# footprint small at paper-scale job counts.

_DISPATCH_MEMO_ENTRIES = 4
_dispatch_memo: dict[tuple, tuple[np.ndarray, Dispatcher]] = {}


def _dispatch_targets(dispatcher: Dispatcher, sizes: np.ndarray) -> np.ndarray:
    """All stage-2 decisions, memoized for sequence-deterministic
    dispatchers (bit-identical to calling ``select_batch`` directly)."""
    if not dispatcher.sequence_deterministic:
        return dispatcher.select_batch(sizes)
    key = (
        type(dispatcher).__qualname__,
        getattr(dispatcher, "guard_init", None),
        dispatcher.alphas.tobytes(),
    )
    n = sizes.size
    entry = _dispatch_memo.pop(key, None)
    if entry is None:
        targets = dispatcher.select_batch(sizes).astype(np.int16)
        entry = (targets, dispatcher)
    else:
        targets, live = entry
        if n > targets.size:
            extra = live.select_batch(sizes[targets.size :]).astype(np.int16)
            targets = np.concatenate([targets, extra])
            entry = (targets, live)
    _dispatch_memo[key] = entry  # re-insert: dict preserves LRU order
    while len(_dispatch_memo) > _DISPATCH_MEMO_ENTRIES:
        _dispatch_memo.pop(next(iter(_dispatch_memo)))
    return entry[0][:n].astype(np.int64)


def run_static_simulation(
    config: SimulationConfig,
    dispatcher: Dispatcher,
    alphas,
    *,
    seed: int | np.random.SeedSequence = 0,
    record_trace: bool = False,
) -> SimulationResults:
    """Run one replication of a static policy on the vectorized path."""
    if not dispatcher.is_static:
        raise ValueError(
            f"{type(dispatcher).__name__} needs feedback; use run_simulation instead"
        )
    try:
        replay = _REPLAY_KERNELS[config.discipline]
    except KeyError:
        raise ValueError(
            "the fast path implements the PS discipline and the FCFS "
            f"discipline ({sorted(_REPLAY_KERNELS)}); "
            f"discipline={config.discipline!r} needs the event engine — "
            "use repro.sim.engine.run_simulation instead"
        ) from None

    streams = StreamFactory(seed)
    workload = config.workload()

    # Stage 1 — all arrivals and sizes up front.
    times = workload.arrival_stream(streams.arrivals).arrivals_until(config.duration)
    sizes = workload.sample_sizes(streams.sizes, times.size)

    # Stage 2 — all dispatch decisions (memoized across replications
    # for sequence-deterministic dispatchers like weighted round robin).
    dispatcher.reset(alphas)
    targets = _dispatch_targets(dispatcher, sizes)

    # Stage 3 — independent per-server replay (PS or FCFS).
    metrics = MetricsCollector(warmup_end=config.warmup)
    server_stats = []
    warmup_mask = times >= config.warmup
    post_warmup_total = int(np.count_nonzero(warmup_mask))
    for i, speed in enumerate(config.speeds):
        mask = targets == i
        sub_times = times[mask]
        sub_sizes = sizes[mask]
        completions = replay(sub_times, sub_sizes, speed)
        metrics.record_batch(sub_times, completions, sub_sizes)
        dispatched = int(np.count_nonzero(mask & warmup_mask))
        server_stats.append(
            ServerStats(
                index=i,
                speed=float(speed),
                jobs_received=int(sub_times.size),
                jobs_completed=int(sub_times.size),
                # PS and FCFS are work-conserving: busy time equals
                # served work/speed.
                busy_time=float(sub_sizes.sum()) / float(speed),
                dispatch_fraction=(
                    dispatched / post_warmup_total if post_warmup_total else 0.0
                ),
            )
        )

    trace = None
    if record_trace:
        trace = DispatchTrace(times=times, targets=targets)
    return SimulationResults(
        metrics=metrics.finalize(),
        servers=tuple(server_stats),
        duration=config.duration,
        warmup=config.warmup,
        total_arrivals=int(times.size),
        trace=trace,
    )
