"""Job records flowing through the simulator.

A job's *size* is its completion time on an idle machine of relative
speed 1 (the paper's Section 2.3 definition), so a job of size x
occupies a speed-s server for x/s seconds of dedicated service.
"""

from __future__ import annotations

__all__ = ["Job"]


class Job:
    """One job: identity, arrival, size, and (once known) outcome."""

    __slots__ = ("job_id", "arrival_time", "size", "server", "completion_time")

    def __init__(self, job_id: int, arrival_time: float, size: float):
        if size <= 0:
            raise ValueError(f"job size must be positive, got {size}")
        if arrival_time < 0:
            raise ValueError(f"arrival time must be non-negative, got {arrival_time}")
        self.job_id = job_id
        self.arrival_time = arrival_time
        self.size = size
        self.server: int = -1
        self.completion_time: float = -1.0

    @property
    def completed(self) -> bool:
        return self.completion_time >= 0.0

    @property
    def response_time(self) -> float:
        if not self.completed:
            raise ValueError(f"job {self.job_id} has not completed")
        return self.completion_time - self.arrival_time

    @property
    def response_ratio(self) -> float:
        """Response time / size — the paper's per-job slowdown measure."""
        return self.response_time / self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"done@{self.completion_time:.3f}" if self.completed else "pending"
        return (
            f"Job(id={self.job_id}, t={self.arrival_time:.3f}, "
            f"size={self.size:.3f}, server={self.server}, {state})"
        )
