/* Exact FCFS/PS replay kernels for the static fast path.
 *
 * Compiled on demand by repro.sim.ckernel (gcc -O3 -fPIC -shared
 * -ffp-contract=off, plus -fopenmp when the toolchain supports it) and
 * called through ctypes from repro.sim.fastpath.  The float arithmetic
 * mirrors the numpy/Python reference formulations operation for
 * operation, and -ffp-contract=off forbids fused multiply-adds, so on
 * the standard SSE2 double pipeline the completions are bit-identical
 * to the interpreted path.
 *
 * The heap is a binary min-heap over (tag, index) pairs ordered
 * lexicographically — exactly the tuple ordering heapq applies to
 * (tag, j) in the Python loop, so ties retire in the same order.
 *
 * OpenMP is used only across (plan, server) slices whose outputs are
 * disjoint: no reduction crosses a slice boundary, so the schedule and
 * thread count cannot affect the bits.
 */
#include <math.h>
#include <stddef.h>

#ifdef _OPENMP
#include <omp.h>
#endif

typedef long long i64;

static inline int heap_lt(const double *ht, const i64 *hi, i64 a, i64 b) {
    if (ht[a] < ht[b]) return 1;
    if (ht[a] > ht[b]) return 0;
    return hi[a] < hi[b];
}

static void sift_down(double *ht, i64 *hi, i64 n, i64 pos) {
    double t = ht[pos]; i64 ix = hi[pos];
    for (;;) {
        i64 c = 2 * pos + 1;
        if (c >= n) break;
        if (c + 1 < n && heap_lt(ht, hi, c + 1, c)) c++;
        if (ht[c] < t || (ht[c] == t && hi[c] < ix)) {
            ht[pos] = ht[c]; hi[pos] = hi[c]; pos = c;
        } else break;
    }
    ht[pos] = t; hi[pos] = ix;
}

static void sift_up(double *ht, i64 *hi, i64 pos) {
    double t = ht[pos]; i64 ix = hi[pos];
    while (pos > 0) {
        i64 p = (pos - 1) / 2;
        if (t < ht[p] || (t == ht[p] && ix < hi[p])) {
            ht[pos] = ht[p]; hi[pos] = hi[p]; pos = p;
        } else break;
    }
    ht[pos] = t; hi[pos] = ix;
}

/* Exact virtual-time PS replay of one multi-job busy period
 * [start, end): float-op-for-float-op the Python _ps_busy_period loop. */
static void replay_period(const double *times, const double *work, double speed,
                          i64 start, i64 end, double *completions,
                          double *ht, i64 *hi) {
    i64 n = 0;           /* active jobs (heap size) */
    double v = 0.0;      /* virtual PS clock, fresh per busy period */
    double t_last = times[start];
    for (i64 j = start; j < end; j++) {
        double t_a = times[j];
        while (n > 0) {
            double tag = ht[0];
            double dt = (tag - v) * (double)n / speed;
            if (dt < 0.0) dt = 0.0;
            double t_dep = t_last + dt;
            if (t_dep > t_a) break;
            completions[hi[0]] = t_dep;
            t_last = t_dep;
            v = tag;
            n--;
            if (n > 0) { ht[0] = ht[n]; hi[0] = hi[n]; sift_down(ht, hi, n, 0); }
        }
        if (n > 0) v += (t_a - t_last) * speed / (double)n;
        t_last = t_a;
        ht[n] = v + work[j]; hi[n] = j; sift_up(ht, hi, n); n++;
    }
    while (n > 0) {
        double tag = ht[0];
        double dt = (tag - v) * (double)n / speed;
        if (dt < 0.0) dt = 0.0;
        t_last += dt;
        v = tag;
        completions[hi[0]] = t_last;
        n--;
        if (n > 0) { ht[0] = ht[n]; hi[0] = hi[n]; sift_down(ht, hi, n, 0); }
    }
}

/* FCFS departure instants for one server slice: the vectorized-Lindley
 * float order of fastpath._lindley_departures —
 *   svc    = work[j] / speed                    (elementwise divide)
 *   cum_j  = cum_{j-1} + svc                    (np.cumsum is sequential)
 *   m_j    = max(m_{j-1}, t[j] - (cum_j - svc)) (np.maximum.accumulate)
 *   out[j] = cum_j + m_j
 */
static void lindley_slice(const double *t, const double *w, double sp,
                          i64 n, double *out) {
    double acc = 0.0, m = -INFINITY;
    for (i64 j = 0; j < n; j++) {
        double svc = w[j] / sp;
        acc += svc;
        double d = t[j] - (acc - svc);
        if (d > m) m = d;
        out[j] = acc + m;
    }
}

/* Full per-substream PS pipeline for one server slice, single pass:
 * the Lindley depletion recursion and the busy-period segmentation
 * (job j opens a period iff it arrives at or after the depletion of
 * everything before it) run fused — each completed period is resolved
 * immediately, the singleton closed form t[b] + w[b]/speed for the
 * common case, the virtual-time heap otherwise.  The depletion instant
 * is carried in a register instead of a scratch array, so the float
 * values — and hence the segmentation and the bits — are exactly those
 * of the two-pass numpy formulation.  ht/hi: heap scratch of at least
 * n entries each. */
static void ps_slice(const double *t, const double *w, double sp, i64 n,
                     double *comp, double *ht, i64 *hi) {
    if (n <= 0) return;
    double acc = 0.0, m = -INFINITY, dep_prev = 0.0;
    i64 b = 0;
    for (i64 j = 0; j < n; j++) {
        if (j > b && t[j] >= dep_prev) {
            if (j - b == 1) comp[b] = t[b] + w[b] / sp;
            else replay_period(t, w, sp, b, j, comp, ht, hi);
            b = j;
        }
        double svc = w[j] / sp;
        acc += svc;
        double d = t[j] - (acc - svc);
        if (d > m) m = d;
        dep_prev = acc + m;
    }
    if (n - b == 1) comp[b] = t[b] + w[b] / sp;
    else replay_period(t, w, sp, b, n, comp, ht, hi);
}

/* Replay nper busy periods of one server's substream.
 *
 * times/work: full substream arrays (arrival instants, job sizes);
 * bounds/ends: start (inclusive) and end (exclusive) job index of each
 * busy period to replay; completions: output array indexed like times;
 * ht/hi: caller-provided heap scratch, at least max(ends-bounds) long.
 */
void ps_replay_periods(const double *times, const double *work, double speed,
                       const i64 *bounds, const i64 *ends, i64 nper,
                       double *completions, double *ht, i64 *hi) {
    for (i64 p = 0; p < nper; p++)
        replay_period(times, work, speed, bounds[p], ends[p], completions, ht, hi);
}

/* Fused whole-network PS replay over server-grouped substreams.
 *
 * Jobs are pre-sorted by target server: server s owns the contiguous
 * slice [offsets[s], offsets[s+1]) of times/work/completions.
 * ht/hi: heap scratch of at least max(offsets[s+1]-offsets[s]) entries.
 */
void ps_replay_server_batch(const double *times, const double *work,
                            const double *speeds, const i64 *offsets,
                            i64 nservers, double *completions,
                            double *ht, i64 *hi) {
    for (i64 s = 0; s < nservers; s++) {
        i64 lo = offsets[s];
        i64 n = offsets[s + 1] - lo;
        if (n <= 0) continue;
        ps_slice(times + lo, work + lo, speeds[s], n,
                 completions + lo, ht, hi);
    }
}

/* Fused whole-network FCFS replay over server-grouped substreams: the
 * FCFS departures ARE the Lindley depletion instants, so no
 * segmentation or heap is needed (and no scratch). */
void fcfs_replay_server_batch(const double *times, const double *work,
                              const double *speeds, const i64 *offsets,
                              i64 nservers, double *completions) {
    for (i64 s = 0; s < nservers; s++) {
        i64 lo = offsets[s];
        i64 n = offsets[s + 1] - lo;
        if (n <= 0) continue;
        lindley_slice(times + lo, work + lo, speeds[s], n, completions + lo);
    }
}

/* numpy searchsorted(cum, u, side="right"): for each u[j] the first
 * index i with cum[i] > u[j].  Integer output — any correct upper-bound
 * search yields the identical targets, ties included.
 *
 * Accelerated with a 256-bucket index over [0, 1): bucket k caches the
 * answer for its left edge k/256, and the answer is monotone in u, so
 * each in-range uniform finishes with a short forward scan from
 * lut[k] — usually zero or one comparison.  Out-of-range inputs take
 * the plain binary search. */
void map_uniform_right(const double *cum, i64 nbins, const double *u,
                       i64 n, i64 *out) {
    i64 lut[257];
    i64 i = 0;
    for (i64 k = 0; k <= 256; k++) {
        double x = (double)k / 256.0;
        while (i < nbins && cum[i] <= x) i++;
        lut[k] = i;
    }
    for (i64 j = 0; j < n; j++) {
        double x = u[j];
        if (x >= 0.0 && x < 1.0) {
            i64 lo = lut[(i64)(x * 256.0)];
            while (lo < nbins && cum[lo] <= x) lo++;
            out[j] = lo;
        } else {
            i64 lo = 0, hi = nbins;
            while (lo < hi) {
                i64 mid = (lo + hi) >> 1;
                if (x < cum[mid]) hi = mid; else lo = mid + 1;
            }
            out[j] = lo;
        }
    }
}

/* OpenMP introspection/control for the Python side (1/no-op without). */
i64 pk_max_threads(void) {
#ifdef _OPENMP
    return (i64)omp_get_max_threads();
#else
    return 1;
#endif
}

void pk_set_threads(i64 n) {
#ifdef _OPENMP
    if (n > 0) omp_set_num_threads((int)n);
#else
    (void)n;
#endif
}

i64 pk_openmp_enabled(void) {
#ifdef _OPENMP
    return 1;
#else
    return 0;
#endif
}

/* ------------------------------------------------------------------
 * Serve hot path (quasi-static service loop)
 * ------------------------------------------------------------------ */

/* Carry-state FCFS window sweep: one control window of dispatched jobs
 * through the per-server Lindley recursion, with the servers' free-up
 * instants carried in from the previous window and written back out.
 *
 * Mirrors ServerBank.replay_window's numpy formulation bit for bit:
 * grouping jobs by server with a stable counting sort (the same
 * permutation as numpy's stable argsort on the targets), then per
 * server
 *     svc_j = size_j / speed
 *     cum_j = cum_{j-1} + svc_j
 *     dep_j = cum_j + max(free_at, max_{k<=j}(t_k - cum_{k-1}))
 * Seeding the running max with free_at instead of taking the
 * elementwise maximum afterwards is exact — max never rounds — so the
 * fused sweep needs no per-server arrays of starts at all: one
 * arrival-order pass with per-server (acc, m) registers in the state
 * scratch.
 *
 * Outputs: departures/service_times in arrival order, plus the stable
 * grouping permutation (order) and per-server group bounds (offsets,
 * nservers+1), which the service loop reuses to fold per-server speed
 * witnesses without a second argsort.  free_at (nservers) is updated
 * in place; servers with no jobs in the window keep their value.
 * cursor (nservers) and state (2*nservers) are caller scratch.
 *
 * Returns 0 on success, 1 if any target lies outside [0, nservers)
 * (the caller falls back to the numpy path, which raises cleanly).
 */
i64 fcfs_window_sweep(const double *times, const double *work, i64 n,
                      const double *speeds, i64 nservers,
                      const i64 *targets, double *free_at,
                      double *departures, double *service_times,
                      i64 *order, i64 *offsets, i64 *cursor,
                      double *state) {
    for (i64 s = 0; s <= nservers; s++) offsets[s] = 0;
    for (i64 j = 0; j < n; j++) {
        i64 t = targets[j];
        if (t < 0 || t >= nservers) return 1;
        offsets[t + 1]++;
    }
    for (i64 s = 0; s < nservers; s++) offsets[s + 1] += offsets[s];
    double *acc = state;
    double *m = state + nservers;
    for (i64 s = 0; s < nservers; s++) {
        cursor[s] = offsets[s];
        acc[s] = 0.0;
        m[s] = free_at[s];
    }
    for (i64 j = 0; j < n; j++) {
        i64 s = targets[j];
        double svc = work[j] / speeds[s];
        double a = acc[s] + svc;
        acc[s] = a;
        double d = times[j] - (a - svc);
        if (d > m[s]) m[s] = d;
        double dep = a + m[s];
        departures[j] = dep;
        service_times[j] = svc;
        free_at[s] = dep;
        order[cursor[s]++] = j;
    }
    return 0;
}

/* Algorithm 2 sequence extension: `count` further dispatch targets from
 * live (assign, next) state — the compiled mirror of
 * RoundRobinDispatcher.select, float op for float op (see
 * repro/dispatch/round_robin.py for the step-by-step commentary).
 * active/inv are the alpha > 0 participant indices and their
 * precomputed 1/alpha (the Python _setup values, so the tie-break
 * products use the identical doubles).  assign/nxt are updated in
 * place, exactly as `count` Python select() calls would leave them.
 */
void rr_sequence_extend(const double *inv, const i64 *active, i64 nactive,
                        i64 *assign, double *nxt, i64 count, i64 *out) {
    for (i64 k = 0; k < count; k++) {
        i64 sel = -1;
        double minnext = 0.0, norassign = 0.0;
        for (i64 a = 0; a < nactive; a++) {
            i64 i = active[a];
            double ni = nxt[i];
            if (sel == -1 || ni < minnext) {
                minnext = ni;
                norassign = (double)(assign[i] + 1) * inv[i];
                sel = i;
            } else if (ni == minnext) {
                double cand = (double)(assign[i] + 1) * inv[i];
                if (cand < norassign) { norassign = cand; sel = i; }
            }
        }
        if (assign[sel] == 0) nxt[sel] = 0.0;
        nxt[sel] += inv[sel];
        assign[sel] += 1;
        for (i64 a = 0; a < nactive; a++) {
            i64 i = active[a];
            if (assign[i] > 0) nxt[i] -= 1.0;
        }
        out[k] = sel;
    }
}

/* Bias-corrected EWMA fold: the sequential recursion of
 * EwmaEstimator.update over a batch of observations.
 *     raw  = (1-w)*raw  + w*x
 *     norm = (1-w)*norm + w
 * state = [raw, norm], updated in place.  The Python update computes
 * keep = 1.0 - weight per call with the same doubles, so the fold is
 * bit-identical to the per-observation loop.
 */
void ewma_fold(double *state, double weight, const double *xs, i64 n) {
    double raw = state[0], norm = state[1];
    double keep = 1.0 - weight;
    for (i64 j = 0; j < n; j++) {
        raw = keep * raw + weight * xs[j];
        norm = keep * norm + weight;
    }
    state[0] = raw;
    state[1] = norm;
}

/* P² (Jain–Chlamtac) streaming-quantile batch fold: the post-warmup
 * marker update of P2Quantile.update applied to m observations, with
 * the locate / position-shift / parabolic-else-linear adjustment
 * copied operation for operation from the Python method.  q/n/np_ are
 * the five marker heights, actual positions, and desired positions
 * (updated in place); dn the fixed desired-position increments.
 */
void p2_fold(double *q, double *n, double *np_, const double *dn,
             const double *xs, i64 m) {
    for (i64 t = 0; t < m; t++) {
        double x = xs[t];
        i64 k;
        if (x < q[0]) {
            q[0] = x;
            k = 0;
        } else if (x >= q[4]) {
            if (x > q[4]) q[4] = x;
            k = 3;
        } else {
            k = 0;
            while (k < 3 && x >= q[k + 1]) k++;
        }
        for (i64 i = k + 1; i < 5; i++) n[i] += 1.0;
        for (i64 i = 0; i < 5; i++) np_[i] += dn[i];
        for (i64 i = 1; i <= 3; i++) {
            double d = np_[i] - n[i];
            if ((d >= 1.0 && n[i + 1] - n[i] > 1.0) ||
                (d <= -1.0 && n[i - 1] - n[i] < -1.0)) {
                d = d >= 1.0 ? 1.0 : -1.0;
                double cand = q[i] + d / (n[i + 1] - n[i - 1]) *
                    ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) /
                         (n[i + 1] - n[i]) +
                     (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) /
                         (n[i] - n[i - 1]));
                if (!(q[i - 1] < cand && cand < q[i + 1])) {
                    i64 j = i + (i64)d;
                    cand = q[i] + d * (q[j] - q[i]) / (n[j] - n[i]);
                }
                q[i] = cand;
                n[i] += d;
            }
        }
    }
}

/* Whole-cell fused replay: every unique dispatch plan of one
 * replication in a single call.
 *
 * times/work: the replication's shared arrival/size streams (length n);
 * targets: nplans contiguous rows of n server indices (one dispatch
 * plan per row); completions: nplans rows of n output instants in
 * arrival order.  use_ps selects the PS pipeline (else FCFS).
 *
 * Scratch (caller-provided, reused across calls via the Python arena):
 *   gt/gw/gc        nplans*n   server-grouped times/work/completions
 *   order           nplans*n   grouping permutation (for scatter-back)
 *   offsets         nplans*(nservers+1)  per-plan group bounds (output:
 *                   the Python side reads them for per-server stats)
 *   pos             nplans*(nservers+1)  counting-sort cursors
 *   ht/hi           nthreads*n per-thread heap scratch
 *
 * Three phases, each an OpenMP parallel-for over disjoint outputs with
 * an implicit barrier between phases, so threaded output is
 * bit-identical to serial by construction:
 *   A. counting-sort grouping per plan — stable (arrival order kept
 *      within a server), the same permutation as numpy's stable argsort
 *      on the target keys;
 *   B. replay each (plan, server) slice;
 *   C. scatter each plan's completions back to arrival order.
 *
 * Returns 0 on success, 1 if any target is out of [0, nservers) (the
 * caller falls back to the numpy path, which raises cleanly).
 */
/* Phase D — per-plan summarize precursors for the post-warmup tail.
 * Response times and response ratios are elementwise (one subtract, one
 * divide per job — bit-identical wherever they are computed) and the
 * per-server dispatch counts are integers, so hoisting them out of the
 * per-plan numpy passes changes no bits.  Skipped when cut >= n. */
static void summarize_tail(const double *times, const double *work, i64 n,
                           i64 nservers, const i64 *targets, i64 nplans,
                           const double *completions, i64 cut,
                           double *resp, double *ratio, i64 *pcounts,
                           i64 nthreads) {
    i64 m = n - cut;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads((int)nthreads)
#endif
    for (i64 p = 0; p < nplans; p++) {
        const i64 *tg = targets + p * n;
        const double *out = completions + p * n;
        i64 *pc = pcounts + p * nservers;
        double *pr = resp + p * m;
        double *pq = ratio + p * m;
        for (i64 s = 0; s < nservers; s++) pc[s] = 0;
        for (i64 j = cut; j < n; j++) {
            double r = out[j] - times[j];
            pr[j - cut] = r;
            pq[j - cut] = r / work[j];
            pc[tg[j]]++;
        }
    }
}

i64 cell_replay_batch(const double *times, const double *work, i64 n,
                      const double *speeds, i64 nservers,
                      const i64 *targets, i64 nplans, i64 use_ps,
                      double *completions,
                      double *gt, double *gw, double *gc,
                      i64 *order, i64 *offsets, i64 *pos,
                      double *ht, i64 *hi, i64 nthreads,
                      i64 cut, double *resp, double *ratio, i64 *pcounts) {
    i64 bad = 0;
    if (nthreads < 1) nthreads = 1;
    /* Per-thread scratch stride, mirrored by the Python caller when it
     * sizes ht/hi: the PS heap needs n entries, the fused FCFS pass
     * needs 2*nservers doubles of per-server state. */
    i64 stride = n > 2 * nservers ? n : 2 * nservers;

    if (!use_ps) {
        /* FCFS fused path: the Lindley recursion is online — carrying
         * per-server (acc, m) state through one arrival-order sweep
         * performs the same float ops in the same per-server order as
         * grouping + lindley_slice + scatter, so the bits match while
         * the grouped-times copy, the order index, and the scatter
         * pass all disappear.  Only the server-grouped sizes (the
         * per-server busy-time sums) still need the counting sort,
         * and that write fuses into the same sweep. */
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads((int)nthreads) \
    reduction(|:bad)
#endif
        for (i64 p = 0; p < nplans; p++) {
            const i64 *tg = targets + p * n;
            i64 *off = offsets + p * (nservers + 1);
            i64 *cur = pos + p * (nservers + 1);
            for (i64 s = 0; s <= nservers; s++) off[s] = 0;
            i64 oops = 0;
            for (i64 j = 0; j < n; j++) {
                i64 t = tg[j];
                if (t < 0 || t >= nservers) { oops = 1; break; }
                off[t + 1]++;
            }
            if (oops) { bad |= 1; continue; }
            for (i64 s = 0; s < nservers; s++) off[s + 1] += off[s];
            for (i64 s = 0; s < nservers; s++) cur[s] = off[s];
            i64 tid = 0;
#ifdef _OPENMP
            tid = (i64)omp_get_thread_num();
#endif
            double *acc = ht + tid * stride;
            double *m = acc + nservers;
            for (i64 s = 0; s < nservers; s++) {
                acc[s] = 0.0;
                m[s] = -INFINITY;
            }
            double *pw = gw + p * n;
            double *out = completions + p * n;
            /* Phase D fused in: the completion is still in a register
             * when the post-warmup response/ratio are derived, saving
             * the re-read pass the PS path needs. */
            i64 dcut = (cut >= 0 && cut < n) ? cut : n;
            i64 *pc = pcounts + p * nservers;
            double *pr = resp + p * (n - dcut);
            double *pq = ratio + p * (n - dcut);
            if (dcut < n)
                for (i64 s = 0; s < nservers; s++) pc[s] = 0;
            for (i64 j = 0; j < n; j++) {
                i64 s = tg[j];
                pw[cur[s]++] = work[j];
                double svc = work[j] / speeds[s];
                double a = acc[s] + svc;
                acc[s] = a;
                double d = times[j] - (a - svc);
                if (d > m[s]) m[s] = d;
                double c = a + m[s];
                out[j] = c;
                if (j >= dcut) {
                    double r = c - times[j];
                    pr[j - dcut] = r;
                    pq[j - dcut] = r / work[j];
                    pc[s]++;
                }
            }
        }
        (void)gt; (void)gc; (void)order; (void)hi;
        return bad ? 1 : 0;
    }

    /* Phase A — group each plan's jobs by target server. */
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads((int)nthreads) \
    reduction(|:bad)
#endif
    for (i64 p = 0; p < nplans; p++) {
        const i64 *tg = targets + p * n;
        i64 *off = offsets + p * (nservers + 1);
        i64 *cur = pos + p * (nservers + 1);
        for (i64 s = 0; s <= nservers; s++) off[s] = 0;
        i64 oops = 0;
        for (i64 j = 0; j < n; j++) {
            i64 t = tg[j];
            if (t < 0 || t >= nservers) { oops = 1; break; }
            off[t + 1]++;
        }
        if (oops) { bad |= 1; continue; }
        for (i64 s = 0; s < nservers; s++) off[s + 1] += off[s];
        for (i64 s = 0; s < nservers; s++) cur[s] = off[s];
        i64 *ord = order + p * n;
        double *pt = gt + p * n, *pw = gw + p * n;
        for (i64 j = 0; j < n; j++) {
            i64 k = cur[tg[j]]++;
            ord[k] = j; pt[k] = times[j]; pw[k] = work[j];
        }
    }
    if (bad) return 1;

    /* Phase B — replay every (plan, server) slice. */
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads((int)nthreads)
#endif
    for (i64 q = 0; q < nplans * nservers; q++) {
        i64 p = q / nservers, s = q % nservers;
        const i64 *off = offsets + p * (nservers + 1);
        i64 lo = off[s], cnt = off[s + 1] - lo;
        if (cnt <= 0) continue;
        i64 tid = 0;
#ifdef _OPENMP
        tid = (i64)omp_get_thread_num();
#endif
        const double *pt = gt + p * n + lo, *pw = gw + p * n + lo;
        double *pc = gc + p * n + lo;
        ps_slice(pt, pw, speeds[s], cnt, pc, ht + tid * stride,
                 hi + tid * stride);
    }

    /* Phase C — scatter back to arrival order. */
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads((int)nthreads)
#endif
    for (i64 p = 0; p < nplans; p++) {
        const i64 *ord = order + p * n;
        const double *pc = gc + p * n;
        double *out = completions + p * n;
        for (i64 k = 0; k < n; k++) out[ord[k]] = pc[k];
    }
    if (cut >= 0 && cut < n)
        summarize_tail(times, work, n, nservers, targets, nplans,
                       completions, cut, resp, ratio, pcounts, nthreads);
    return 0;
}
