/* Exact processor-sharing busy-period replay.
 *
 * Compiled on demand by repro.sim.ckernel (gcc -O2 -fPIC -shared
 * -ffp-contract=off) and called through ctypes from repro.sim.fastpath.
 * The float arithmetic mirrors the Python reference loop
 * (_ps_busy_period) operation for operation, and -ffp-contract=off
 * forbids fused multiply-adds, so on the standard SSE2 double pipeline
 * the completions are bit-identical to the interpreted loop.
 *
 * The heap is a binary min-heap over (tag, index) pairs ordered
 * lexicographically — exactly the tuple ordering heapq applies to
 * (tag, j) in the Python loop, so ties retire in the same order.
 */
#include <math.h>
#include <stddef.h>

typedef long long i64;

static inline int heap_lt(const double *ht, const i64 *hi, i64 a, i64 b) {
    if (ht[a] < ht[b]) return 1;
    if (ht[a] > ht[b]) return 0;
    return hi[a] < hi[b];
}

static void sift_down(double *ht, i64 *hi, i64 n, i64 pos) {
    double t = ht[pos]; i64 ix = hi[pos];
    for (;;) {
        i64 c = 2 * pos + 1;
        if (c >= n) break;
        if (c + 1 < n && heap_lt(ht, hi, c + 1, c)) c++;
        if (ht[c] < t || (ht[c] == t && hi[c] < ix)) {
            ht[pos] = ht[c]; hi[pos] = hi[c]; pos = c;
        } else break;
    }
    ht[pos] = t; hi[pos] = ix;
}

static void sift_up(double *ht, i64 *hi, i64 pos) {
    double t = ht[pos]; i64 ix = hi[pos];
    while (pos > 0) {
        i64 p = (pos - 1) / 2;
        if (t < ht[p] || (t == ht[p] && ix < hi[p])) {
            ht[pos] = ht[p]; hi[pos] = hi[p]; pos = p;
        } else break;
    }
    ht[pos] = t; hi[pos] = ix;
}

/* Exact virtual-time PS replay of one multi-job busy period
 * [start, end): float-op-for-float-op the Python _ps_busy_period loop. */
static void replay_period(const double *times, const double *work, double speed,
                          i64 start, i64 end, double *completions,
                          double *ht, i64 *hi) {
    i64 n = 0;           /* active jobs (heap size) */
    double v = 0.0;      /* virtual PS clock, fresh per busy period */
    double t_last = times[start];
    for (i64 j = start; j < end; j++) {
        double t_a = times[j];
        while (n > 0) {
            double tag = ht[0];
            double dt = (tag - v) * (double)n / speed;
            if (dt < 0.0) dt = 0.0;
            double t_dep = t_last + dt;
            if (t_dep > t_a) break;
            completions[hi[0]] = t_dep;
            t_last = t_dep;
            v = tag;
            n--;
            if (n > 0) { ht[0] = ht[n]; hi[0] = hi[n]; sift_down(ht, hi, n, 0); }
        }
        if (n > 0) v += (t_a - t_last) * speed / (double)n;
        t_last = t_a;
        ht[n] = v + work[j]; hi[n] = j; sift_up(ht, hi, n); n++;
    }
    while (n > 0) {
        double tag = ht[0];
        double dt = (tag - v) * (double)n / speed;
        if (dt < 0.0) dt = 0.0;
        t_last += dt;
        v = tag;
        completions[hi[0]] = t_last;
        n--;
        if (n > 0) { ht[0] = ht[n]; hi[0] = hi[n]; sift_down(ht, hi, n, 0); }
    }
}

/* Replay nper busy periods of one server's substream.
 *
 * times/work: full substream arrays (arrival instants, job sizes);
 * bounds/ends: start (inclusive) and end (exclusive) job index of each
 * busy period to replay; completions: output array indexed like times;
 * ht/hi: caller-provided heap scratch, at least max(ends-bounds) long.
 */
void ps_replay_periods(const double *times, const double *work, double speed,
                       const i64 *bounds, const i64 *ends, i64 nper,
                       double *completions, double *ht, i64 *hi) {
    for (i64 p = 0; p < nper; p++)
        replay_period(times, work, speed, bounds[p], ends[p], completions, ht, hi);
}

/* Fused whole-network PS replay over server-grouped substreams.
 *
 * Jobs are pre-sorted by target server: server s owns the contiguous
 * slice [offsets[s], offsets[s+1]) of times/work/completions.  For each
 * server this runs the full per-substream pipeline in one pass — the
 * Lindley depletion recursion, busy-period segmentation, the singleton
 * closed form, and the virtual-time heap for multi-job periods.
 *
 * Bit-identity with the numpy formulation is maintained by mirroring
 * its float operation order exactly:
 *   svc    = work[j] / speed                  (elementwise divide)
 *   cum_j  = cum_{j-1} + svc                  (np.cumsum is sequential)
 *   m_j    = max(m_{j-1}, t[j] - (cum_j - svc))   (np.maximum.accumulate)
 *   dep[j] = cum_j + m_j
 * and the singleton completion t[b] + work[b]/speed.
 *
 * dep: scratch of at least max(offsets[s+1]-offsets[s]) doubles;
 * ht/hi: heap scratch of the same length.
 */
void ps_replay_server_batch(const double *times, const double *work,
                            const double *speeds, const i64 *offsets,
                            i64 nservers, double *completions,
                            double *dep, double *ht, i64 *hi) {
    for (i64 s = 0; s < nservers; s++) {
        i64 lo = offsets[s];
        i64 n = offsets[s + 1] - lo;
        if (n <= 0) continue;
        const double *t = times + lo;
        const double *w = work + lo;
        double *comp = completions + lo;
        double sp = speeds[s];

        /* FCFS depletion instants (vectorized-Lindley float order). */
        double acc = 0.0, m = -INFINITY;
        for (i64 j = 0; j < n; j++) {
            double svc = w[j] / sp;
            acc += svc;
            double d = t[j] - (acc - svc);
            if (d > m) m = d;
            dep[j] = acc + m;
        }

        /* Busy periods: job j opens one iff it arrives at or after the
         * depletion of everything before it. */
        i64 b = 0;
        for (i64 j = 1; j <= n; j++) {
            if (j < n && t[j] < dep[j - 1]) continue;
            if (j - b == 1) comp[b] = t[b] + w[b] / sp;
            else replay_period(t, w, sp, b, j, comp, ht, hi);
            b = j;
        }
    }
}
