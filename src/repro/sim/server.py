"""Server models: processor sharing, FCFS, and finite-quantum round robin.

The paper's computers apply *preemptive round-robin* CPU scheduling,
analyzed as processor sharing (PS) — the quantum → 0 limit.  We provide:

* :class:`ProcessorSharingServer` — exact PS via virtual-time departure
  tags: with n active jobs each receives rate speed/n, so tracking a
  virtual clock v with dv/dt = speed/n makes a job of size x arriving at
  virtual time v_a depart exactly when v reaches v_a + x.  O(log n) per
  arrival/departure, no quantum discretization error.
* :class:`FCFSServer` — run-to-completion baseline (what PS rescues the
  heavy-tailed workload from; used by tests against Pollaczek–Khinchine).
* :class:`RoundRobinQuantumServer` — literal preemptive round robin with
  a finite quantum, for the ablation showing PS is the right idealization.

All servers share a lazy-invalidation contract with the engine: every
state change bumps ``version``; the engine stamps scheduled events with
the version and drops stale ones on pop.
"""

from __future__ import annotations

import heapq
from collections import deque

from .job import Job

__all__ = ["Server", "ProcessorSharingServer", "FCFSServer", "RoundRobinQuantumServer"]


class Server:
    """Common bookkeeping: speed, utilization accounting, event version."""

    __slots__ = ("speed", "version", "busy_time", "jobs_completed", "jobs_received",
                 "_t_last", "is_up")

    def __init__(self, speed: float):
        if speed <= 0:
            raise ValueError(f"server speed must be positive, got {speed}")
        self.speed = float(speed)
        self.version = 0
        self.busy_time = 0.0
        self.jobs_completed = 0
        self.jobs_received = 0
        self._t_last = 0.0
        self.is_up = True

    # -- engine contract ------------------------------------------------

    def arrive(self, job: Job, now: float) -> None:
        raise NotImplementedError

    def next_event_time(self) -> float | None:
        """Wall time of this server's next self-generated event, or None."""
        raise NotImplementedError

    def on_event(self, now: float) -> Job | None:
        """Handle the server's own event at *now*; return a job if one
        completed (quantum rotations return None)."""
        raise NotImplementedError

    @property
    def n_active(self) -> int:
        raise NotImplementedError

    # -- fault injection (repro.faults) ---------------------------------

    def _drop_all(self, now: float) -> list[Job]:
        """Discipline hook: account up to *now*, empty the run queue,
        and return the evicted jobs (in arrival-ish order)."""
        raise NotImplementedError

    def fail(self, now: float) -> list[Job]:
        """Go down at *now*: evict and return every resident job.

        Work already performed on evicted jobs is wasted — a retried
        job starts from scratch on its next server, the usual crash
        semantics for stateless batch jobs.
        """
        jobs = self._drop_all(now)
        self.is_up = False
        self.version += 1
        return jobs

    def repair(self, now: float) -> None:
        """Come back up at *now*, empty (the queue was lost on failure)."""
        self._t_last = now  # idle while down: no busy time accrues
        self.is_up = True
        self.version += 1

    def set_speed(self, new_speed: float, now: float) -> None:
        """Change the service speed at *now* (degradation episodes).

        Work performed before *now* is accounted at the old speed; the
        discipline hook re-times its pending event under the new speed.
        """
        if new_speed <= 0:
            raise ValueError(f"server speed must be positive, got {new_speed}")
        self._retime(new_speed, now)
        self.speed = float(new_speed)
        self.version += 1

    def _retime(self, new_speed: float, now: float) -> None:
        """Discipline hook run before a speed change takes effect."""
        raise NotImplementedError

    # -- accounting ------------------------------------------------------

    def _account(self, now: float) -> None:
        if self.n_active > 0:
            self.busy_time += now - self._t_last
        self._t_last = now

    def utilization(self, horizon: float) -> float:
        """Fraction of [0, horizon] this server was busy."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        return self.busy_time / horizon


class ProcessorSharingServer(Server):
    """Exact PS discipline via virtual-time tags (see module docstring)."""

    __slots__ = ("_tags", "_v", "_counter")

    def __init__(self, speed: float):
        super().__init__(speed)
        self._tags: list[tuple[float, int, Job]] = []
        self._v = 0.0
        self._counter = 0  # tie-break equal tags deterministically

    @property
    def n_active(self) -> int:
        return len(self._tags)

    def _advance(self, now: float) -> None:
        n = len(self._tags)
        if n:
            self._v += (now - self._t_last) * self.speed / n
        self._account(now)

    def arrive(self, job: Job, now: float) -> None:
        self._advance(now)
        self._counter += 1
        heapq.heappush(self._tags, (self._v + job.size, self._counter, job))
        self.jobs_received += 1
        self.version += 1

    def next_event_time(self) -> float | None:
        if not self._tags:
            return None
        tag = self._tags[0][0]
        n = len(self._tags)
        dt = (tag - self._v) * n / self.speed
        return self._t_last + (dt if dt > 0.0 else 0.0)

    def on_event(self, now: float) -> Job:
        self._advance(now)
        tag, _, job = heapq.heappop(self._tags)
        # The pop lands v exactly on the departing tag up to rounding;
        # clamp so a follower with an equal tag departs immediately.
        if self._v < tag:
            self._v = tag
        if not self._tags:
            self._v = 0.0  # idle reset kills cumulative float drift
        job.completion_time = now
        self.jobs_completed += 1
        self.version += 1
        return job

    def _drop_all(self, now: float) -> list[Job]:
        self._advance(now)
        jobs = [job for _, _, job in sorted(self._tags, key=lambda c: c[1])]
        self._tags.clear()
        self._v = 0.0
        return jobs

    def _retime(self, new_speed: float, now: float) -> None:
        # Advancing the virtual clock at the old speed up to *now* is
        # all PS needs; departure tags are speed-independent.
        self._advance(now)


class FCFSServer(Server):
    """First-come-first-served, run to completion."""

    __slots__ = ("_queue", "_head_done")

    def __init__(self, speed: float):
        super().__init__(speed)
        self._queue: deque[Job] = deque()
        self._head_done = 0.0  # completion time of the in-service job

    @property
    def n_active(self) -> int:
        return len(self._queue)

    def arrive(self, job: Job, now: float) -> None:
        self._account(now)
        if not self._queue:
            self._head_done = now + job.size / self.speed
        self._queue.append(job)
        self.jobs_received += 1
        self.version += 1

    def next_event_time(self) -> float | None:
        return self._head_done if self._queue else None

    def on_event(self, now: float) -> Job:
        self._account(now)
        job = self._queue.popleft()
        job.completion_time = now
        self.jobs_completed += 1
        if self._queue:
            self._head_done = now + self._queue[0].size / self.speed
        self.version += 1
        return job

    def _drop_all(self, now: float) -> list[Job]:
        self._account(now)
        jobs = list(self._queue)
        self._queue.clear()
        return jobs

    def _retime(self, new_speed: float, now: float) -> None:
        self._account(now)
        if self._queue:
            remaining = (self._head_done - now) * self.speed
            if remaining < 0.0:
                remaining = 0.0
            self._head_done = now + remaining / new_speed


class RoundRobinQuantumServer(Server):
    """Preemptive round robin with a finite time quantum.

    The run queue is a deque of [job, remaining_work] cells.  The head
    runs for min(quantum, remaining/speed) seconds, then either departs
    or rotates to the tail.  As quantum → 0 the behaviour converges to
    :class:`ProcessorSharingServer` (the ablation benchmark quantifies
    the gap at realistic quanta).
    """

    __slots__ = ("quantum", "_queue", "_slice_end", "_slice_start")

    def __init__(self, speed: float, quantum: float):
        super().__init__(speed)
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.quantum = float(quantum)
        self._queue: deque[list] = deque()  # [job, remaining_work]
        self._slice_end = 0.0
        self._slice_start = 0.0

    @property
    def n_active(self) -> int:
        return len(self._queue)

    def _start_slice(self, now: float) -> None:
        job_cell = self._queue[0]
        run = min(self.quantum, job_cell[1] / self.speed)
        self._slice_start = now
        self._slice_end = now + run

    def arrive(self, job: Job, now: float) -> None:
        self._account(now)
        self._queue.append([job, job.size])
        if len(self._queue) == 1:
            self._start_slice(now)
        self.jobs_received += 1
        self.version += 1

    def next_event_time(self) -> float | None:
        return self._slice_end if self._queue else None

    def on_event(self, now: float) -> Job | None:
        self._account(now)
        cell = self._queue.popleft()
        job, remaining = cell
        remaining -= min(self.quantum * self.speed, remaining)
        self.version += 1
        if remaining <= 1e-12:
            job.completion_time = now
            self.jobs_completed += 1
            if self._queue:
                self._start_slice(now)
            return job
        cell[1] = remaining
        self._queue.append(cell)
        self._start_slice(now)
        return None

    def _drop_all(self, now: float) -> list[Job]:
        self._account(now)
        jobs = [cell[0] for cell in self._queue]
        self._queue.clear()
        return jobs

    def _retime(self, new_speed: float, now: float) -> None:
        self._account(now)
        if self._queue:
            # Charge the head for the part-slice run at the old speed,
            # then restart a fresh quantum under the new speed.
            cell = self._queue[0]
            done = (now - self._slice_start) * self.speed
            if done > 0.0:
                cell[1] = max(cell[1] - done, 0.0)
            run = min(self.quantum, cell[1] / new_speed)
            self._slice_start = now
            self._slice_end = now + run
