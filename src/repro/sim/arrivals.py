"""Arrival process and job-size generation.

The paper's workload (Section 4.1): a renewal arrival process with
two-stage hyperexponential inter-arrival times (CV = 3.0) and Bounded
Pareto job sizes.  :class:`Workload` bundles the two with their RNG
streams and knows how to derive the system arrival rate from a target
utilization:

    λ = ρ · μ · Σsᵢ        with μ = 1 / E[job size].

Sampling is chunked: both the event engine and the fast path consume
pre-drawn numpy blocks, amortizing RNG call overhead per the HPC
vectorization guidance.
"""

from __future__ import annotations

import numpy as np

from ..distributions import Distribution, distribution_from_mean_cv, paper_job_sizes

__all__ = ["Workload", "ArrivalStream"]

#: Paper default inter-arrival coefficient of variation.
PAPER_ARRIVAL_CV = 3.0

_CHUNK = 8192


class ArrivalStream:
    """Chunked sampler of a renewal process's arrival instants."""

    __slots__ = ("dist", "rng", "_buffer", "_pos", "_time")

    def __init__(self, dist: Distribution, rng: np.random.Generator, start: float = 0.0):
        self.dist = dist
        self.rng = rng
        self._buffer = np.empty(0)
        self._pos = 0
        self._time = float(start)

    def _refill(self) -> None:
        self._buffer = np.asarray(self.dist.sample(self.rng, _CHUNK), dtype=float)
        self._pos = 0

    def next_arrival(self) -> float:
        """Advance to and return the next arrival instant."""
        if self._pos >= self._buffer.size:
            self._refill()
        self._time += self._buffer[self._pos]
        self._pos += 1
        return self._time

    def arrivals_until(self, horizon: float) -> np.ndarray:
        """All remaining arrival instants ≤ *horizon* (vectorized).

        Consumes the stream: afterwards :meth:`next_arrival` continues
        past the horizon.  Used by the fast path.
        """
        out: list[np.ndarray] = []
        while True:
            if self._pos >= self._buffer.size:
                self._refill()
            gaps = self._buffer[self._pos:]
            times = self._time + np.cumsum(gaps)
            beyond = np.searchsorted(times, horizon, side="right")
            if beyond < times.size:
                out.append(times[:beyond])
                self._pos += beyond
                # Leave the stream positioned before the first arrival
                # past the horizon; _time reflects the last emitted one.
                self._time = float(times[beyond - 1]) if beyond else self._time
                break
            out.append(times)
            self._pos = self._buffer.size
            self._time = float(times[-1]) if times.size else self._time
        if not out:
            return np.empty(0)
        return np.concatenate(out)


class Workload:
    """Inter-arrival + size distributions for one simulated system."""

    def __init__(
        self,
        *,
        total_speed: float,
        utilization: float,
        size_distribution: Distribution | None = None,
        arrival_cv: float = PAPER_ARRIVAL_CV,
        rate_profile=None,
    ):
        if total_speed <= 0:
            raise ValueError(f"total speed must be positive, got {total_speed}")
        if not 0.0 < utilization < 1.0:
            raise ValueError(f"utilization must lie in (0, 1), got {utilization}")
        self.sizes = size_distribution if size_distribution is not None else paper_job_sizes()
        self.utilization = float(utilization)
        self.total_speed = float(total_speed)
        self.arrival_rate = utilization * total_speed / self.sizes.mean
        self.interarrival = distribution_from_mean_cv(1.0 / self.arrival_rate, arrival_cv)
        #: Optional :class:`~repro.sim.modulated.RateProfile` — when set,
        #: arrivals are time-rescaled so the instantaneous rate follows
        #: the profile while the long-run utilization stays *utilization*.
        self.rate_profile = rate_profile

    @property
    def mu(self) -> float:
        """Base-line service rate μ = 1/E[size] (speed-1 jobs/second)."""
        return 1.0 / self.sizes.mean

    def arrival_stream(self, rng: np.random.Generator):
        if self.rate_profile is not None:
            from .modulated import ModulatedArrivalStream

            return ModulatedArrivalStream(self.interarrival, self.rate_profile, rng)
        return ArrivalStream(self.interarrival, rng)

    def sample_sizes(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return np.asarray(self.sizes.sample(rng, count), dtype=float)
