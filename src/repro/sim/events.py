"""Event calendar for the discrete-event engine.

A thin wrapper over :mod:`heapq` with a monotonically increasing
sequence number as tie-breaker so simultaneous events process in
insertion order (deterministic across platforms).  Server departure
events carry a *version* token; the server bumps its version whenever
its schedule changes, which lazily invalidates superseded events —
cheaper than removing them from the heap.
"""

from __future__ import annotations

import heapq
from enum import IntEnum

__all__ = ["EventKind", "EventQueue"]


class EventKind(IntEnum):
    """Event types handled by the engine (order = same-time priority)."""

    #: A job completes on a server (payload: server index, version).
    DEPARTURE = 0
    #: A new job enters the system (payload unused).
    ARRIVAL = 1
    #: A delayed load-update message reaches the scheduler
    #: (payload: server index).
    LOAD_UPDATE = 2
    #: Periodic state-sampling tick (see repro.sim.sampling).
    SAMPLE = 3
    #: Fault injection (repro.faults): a server fails
    #: (payload: server index).
    SERVER_DOWN = 4
    #: Fault injection: a failed server comes back up
    #: (payload: server index).
    SERVER_UP = 5
    #: Fault injection: a degradation episode starts/ends
    #: (payload: server index, 1 = start / 0 = end).
    SERVER_DEGRADE = 6
    #: Fault injection: a bounced job re-enters dispatch
    #: (payload: retry ticket id).
    RETRY = 7


class EventQueue:
    """Min-heap of (time, kind, seq, a, b) tuples.

    ``a``/``b`` are small integer payload slots (server index, version);
    keeping events as plain tuples avoids per-event object overhead in
    the hot loop.  Departures sort before arrivals at identical times so
    a server freed at time t can immediately take a job arriving at t.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self):
        self._heap: list[tuple[float, int, int, int, int]] = []
        self._seq = 0

    def push(self, time: float, kind: EventKind, a: int = 0, b: int = 0) -> None:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        self._seq += 1
        heapq.heappush(self._heap, (time, int(kind), self._seq, a, b))

    def pop(self) -> tuple[float, int, int, int]:
        """Return (time, kind, a, b) of the earliest event."""
        time, kind, _seq, a, b = heapq.heappop(self._heap)
        return time, kind, a, b

    def peek_time(self) -> float:
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
