"""Simulation configuration mirroring Section 4.1's experimental setup."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..distributions import Distribution
from ..faults.models import FaultConfig
from ..queueing.network import HeterogeneousNetwork
from .arrivals import PAPER_ARRIVAL_CV, Workload
from .feedback import FeedbackModel

__all__ = ["SimulationConfig", "PAPER_DURATION", "PAPER_WARMUP_FRACTION"]

#: Section 4.1: each run simulates 4.0e6 seconds ...
PAPER_DURATION = 4.0e6
#: ... discarding the first quarter (1.0e6 s) as warm-up.
PAPER_WARMUP_FRACTION = 0.25

_DISCIPLINES = ("ps", "fcfs", "rr_quantum")


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to run one replication of one system.

    Parameters
    ----------
    speeds:
        Relative computer speeds (Section 2's sᵢ).
    utilization:
        Target system utilization ρ ∈ (0, 1).
    duration:
        Simulated seconds of the arrival horizon (paper: 4.0e6).
    warmup:
        Start-up period excluded from statistics; defaults to a quarter
        of the duration like the paper.
    size_distribution:
        Job sizes; defaults to the paper's Bounded Pareto.
    arrival_cv:
        Inter-arrival coefficient of variation (paper: 3.0 → H2).
    discipline:
        Per-computer CPU scheduling: "ps" (default, the paper's model),
        "fcfs", or "rr_quantum" (ablations).
    quantum:
        Time quantum for discipline "rr_quantum".
    drain:
        Run departures to completion after the arrival horizon
        (statistics still only count jobs arriving in the horizon).
    feedback:
        Delay model for the Dynamic Least-Load load-update messages.
    rate_profile:
        Optional :class:`~repro.sim.modulated.RateProfile`; when set the
        arrival rate follows the (normalized) profile while the long-run
        utilization stays at *utilization*.
    faults:
        Optional :class:`~repro.faults.FaultConfig`; when set the event
        engine injects server failures/repairs and speed-degradation
        episodes (static fast-path runs fall back to the engine).
        ``None`` (the default) is a strict no-op: no fault code runs
        and results are bit-identical to a fault-free build.
    """

    speeds: tuple[float, ...]
    utilization: float
    duration: float = PAPER_DURATION
    warmup: float | None = None
    size_distribution: Distribution | None = None
    arrival_cv: float = PAPER_ARRIVAL_CV
    discipline: str = "ps"
    quantum: float = 0.1
    drain: bool = True
    feedback: FeedbackModel = field(default_factory=FeedbackModel)
    #: Optional RateProfile for time-varying (e.g. diurnal) arrivals.
    rate_profile: object | None = None
    #: Optional FaultConfig enabling fault injection (engine path only).
    faults: FaultConfig | None = None

    def __post_init__(self):
        speeds = tuple(float(s) for s in self.speeds)
        if not speeds:
            raise ValueError("at least one computer speed is required")
        if any(s <= 0 for s in speeds):
            raise ValueError(f"speeds must be positive, got {speeds}")
        object.__setattr__(self, "speeds", speeds)
        if not 0.0 < self.utilization < 1.0:
            raise ValueError(f"utilization must lie in (0, 1), got {self.utilization}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.warmup is None:
            object.__setattr__(self, "warmup", PAPER_WARMUP_FRACTION * self.duration)
        elif not 0.0 <= self.warmup < self.duration:
            raise ValueError(
                f"warmup must lie in [0, duration), got {self.warmup}"
            )
        if self.discipline not in _DISCIPLINES:
            raise ValueError(
                f"unknown discipline {self.discipline!r}; expected one of {_DISCIPLINES}"
            )
        if self.quantum <= 0:
            raise ValueError(f"quantum must be positive, got {self.quantum}")
        if self.faults is not None and not isinstance(self.faults, FaultConfig):
            raise TypeError(
                f"faults must be a FaultConfig or None, got {type(self.faults).__name__}"
            )

    # ------------------------------------------------------------------
    # Derived models
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return len(self.speeds)

    @property
    def total_speed(self) -> float:
        return float(sum(self.speeds))

    def workload(self) -> Workload:
        return Workload(
            total_speed=self.total_speed,
            utilization=self.utilization,
            size_distribution=self.size_distribution,
            arrival_cv=self.arrival_cv,
            rate_profile=self.rate_profile,
        )

    def network(self) -> HeterogeneousNetwork:
        """The analytical model matching this configuration."""
        workload = self.workload()
        return HeterogeneousNetwork(
            np.asarray(self.speeds), mu=workload.mu, utilization=self.utilization
        )

    def scaled(self, duration: float, warmup: float | None = None) -> "SimulationConfig":
        """Copy with a different horizon (warm-up defaults to a quarter)."""
        from dataclasses import replace

        return replace(self, duration=duration,
                       warmup=warmup if warmup is not None else 0.25 * duration)
