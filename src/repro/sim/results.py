"""Result containers for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics.response import ResponseMetrics

__all__ = ["ServerStats", "DispatchTrace", "FaultStats", "SimulationResults"]


@dataclass(frozen=True)
class ServerStats:
    """Per-computer accounting for one run."""

    index: int
    speed: float
    jobs_received: int
    jobs_completed: int
    busy_time: float
    #: Fraction of post-warm-up dispatches sent here (Table 1's metric).
    dispatch_fraction: float

    def utilization(self, horizon: float) -> float:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        return self.busy_time / horizon


@dataclass(frozen=True)
class DispatchTrace:
    """Arrival instants and chosen computers, for deviation analysis."""

    times: np.ndarray
    targets: np.ndarray

    def __post_init__(self):
        if self.times.shape != self.targets.shape:
            raise ValueError("trace times/targets must align")

    @property
    def count(self) -> int:
        return int(self.times.size)


@dataclass(frozen=True)
class FaultStats:
    """Fault-injection accounting for one run (engine path only)."""

    #: Jobs dropped after exhausting retries (or immediately under the
    #: "lose" policy); post-warm-up arrivals only.
    jobs_lost: int = 0
    #: Total jobs dropped, including warm-up arrivals.
    jobs_lost_total: int = 0
    #: Successful re-dispatches of bounced jobs.
    jobs_retried: int = 0
    #: Bounced jobs still awaiting a retry when the run ended — not
    #: completed, not lost, not resident in any server.  Named so the
    #: conservation ledger (arrivals == completed + lost + in-system +
    #: pending-retry) closes exactly.
    jobs_pending_retry: int = 0
    #: DOWN/UP/DEGRADE events processed.
    fault_events: int = 0
    #: Failure-aware re-allocations performed (0 for oblivious runs).
    reallocations: int = 0
    #: jobs_lost / post-warm-up arrivals (0 when nothing arrived).
    loss_rate: float = 0.0


@dataclass(frozen=True)
class SimulationResults:
    """Everything a run reports back."""

    metrics: ResponseMetrics
    servers: tuple[ServerStats, ...]
    duration: float
    warmup: float
    total_arrivals: int
    trace: DispatchTrace | None = None
    #: Fault-injection accounting; None for fault-free runs (including
    #: every fast-path run), so fault-free results are unchanged.
    faults: FaultStats | None = None

    @property
    def dispatch_fractions(self) -> np.ndarray:
        """Post-warm-up dispatch fractions per computer."""
        return np.asarray([s.dispatch_fraction for s in self.servers])

    @property
    def per_server_utilization(self) -> np.ndarray:
        """Measured busy fraction over the arrival horizon.

        With ``drain=True`` work performed after the horizon still counts
        toward ``busy_time``, so values can exceed the analytic ρᵢ by the
        drained remainder (negligible at paper-scale horizons).
        """
        return np.asarray([s.busy_time / self.duration for s in self.servers])

    @property
    def loss_rate(self) -> float:
        """Post-warm-up job-loss rate (0.0 for fault-free runs)."""
        return self.faults.loss_rate if self.faults is not None else 0.0

    def summary(self) -> dict[str, float]:
        out = self.metrics.as_dict()
        out["total_arrivals"] = self.total_arrivals
        if self.faults is not None:
            out["jobs_lost"] = self.faults.jobs_lost
            out["loss_rate"] = self.faults.loss_rate
        return out

    def counters(self) -> dict[str, int]:
        """This run's job-conservation ledger as flat counter keys.

        Exactly the increments :func:`repro.obs.counters.record_run`
        tallies globally, derived locally — per-server dispatched and
        completed counts plus the fault ledger — so one run's counters
        can be inspected (and conservation asserted) without touching
        the process-wide registry.
        """
        out: dict[str, int] = {"runs.completed": 1}
        for i, s in enumerate(self.servers):
            out[f"jobs.dispatched{{server={i}}}"] = s.jobs_received
            out[f"jobs.completed{{server={i}}}"] = s.jobs_completed
        if self.faults is not None:
            for name, value in (
                ("jobs.lost", self.faults.jobs_lost_total),
                ("jobs.retried", self.faults.jobs_retried),
                ("jobs.pending_retry", self.faults.jobs_pending_retry),
            ):
                if value:
                    out[name] = value
        return out
