"""On-demand compiled core for the PS replay kernel.

The multi-job busy-period loop is the one part of the static fast path
that resists numpy vectorization: every departure changes the service
rate of every remaining job, so the recurrence is inherently sequential
(the pure-numpy lockstep formulations explored for kernel v3 topped out
at ~2x — see DESIGN.md).  Instead, :mod:`repro.sim._pskernel.c` carries
a C transliteration of the Python heap loop, compiled here at import
time with the system ``gcc`` and loaded through :mod:`ctypes` — no
third-party build dependency, no wheels, no code generation.

Bit-identity with the interpreted loop is a hard requirement (the
replication cache and the grid executor both assume replay kernels are
deterministic functions of their inputs): the C source copies the float
operation order verbatim and is compiled with ``-ffp-contract=off`` so
the compiler cannot fuse multiply-adds into FMA instructions.  The
cross-checking tests assert ``np.array_equal`` against the Python loop.

The shared object is cached under ``$XDG_CACHE_HOME/repro-sched`` (or
the system temp directory), keyed by the SHA-256 of the C source, and
published with an atomic rename so concurrent grid workers never race.
Everything degrades gracefully: no compiler, a failed compile, or
``REPRO_DISABLE_CKERNEL=1`` simply leaves the Python loop in place.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from ..obs import counters

__all__ = [
    "ps_periods_fn",
    "ps_servers_fn",
    "kernel_available",
    "compiled_library_path",
]

_SOURCE = Path(__file__).with_name("_pskernel.c")

#: Compile flags: -ffp-contract=off is load-bearing — FMA contraction
#: would change rounding and break bit-identity with the Python loop.
_CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off")

_c_double_p = ctypes.POINTER(ctypes.c_double)
_c_i64_p = ctypes.POINTER(ctypes.c_longlong)

#: None = not yet attempted; False = attempted and unavailable;
#: otherwise the (periods_fn, servers_fn) pair from the loaded library.
_fns: object = None


def _cache_dir() -> Path:
    root = os.environ.get("XDG_CACHE_HOME")
    base = Path(root) if root else Path(tempfile.gettempdir())
    return base / "repro-sched"


def compiled_library_path() -> Path:
    """Where the compiled shared object lives (keyed by source hash)."""
    digest = hashlib.sha256(_SOURCE.read_bytes()).hexdigest()[:16]
    return _cache_dir() / f"pskernel-{digest}.so"


def _compile() -> Path | None:
    target = compiled_library_path()
    if target.exists():
        return target
    gcc = shutil.which("gcc") or shutil.which("cc")
    if gcc is None:
        counters.inc("ckernel.unavailable", reason="no-compiler")
        return None
    target.parent.mkdir(parents=True, exist_ok=True)
    # Stage to a pid-unique name and publish atomically: concurrent
    # workers compiling the same source never see a half-written .so.
    staging = target.with_name(f"{target.name}.{os.getpid()}.tmp")
    try:
        subprocess.run(
            [gcc, *_CFLAGS, "-o", str(staging), str(_SOURCE)],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(staging, target)
    except (OSError, subprocess.SubprocessError):
        try:
            staging.unlink()
        except OSError:
            pass
        if target.exists():
            return target
        counters.inc("ckernel.unavailable", reason="compile-failed")
        return None
    return target


def _load(path: Path):
    lib = ctypes.CDLL(str(path))
    periods = lib.ps_replay_periods
    periods.argtypes = [
        _c_double_p,  # times
        _c_double_p,  # work
        ctypes.c_double,  # speed
        _c_i64_p,  # bounds
        _c_i64_p,  # ends
        ctypes.c_longlong,  # nper
        _c_double_p,  # completions (out)
        _c_double_p,  # heap tag scratch
        _c_i64_p,  # heap index scratch
    ]
    periods.restype = None
    servers = lib.ps_replay_server_batch
    servers.argtypes = [
        _c_double_p,  # times (server-grouped)
        _c_double_p,  # work (server-grouped)
        _c_double_p,  # speeds
        _c_i64_p,  # offsets (nservers + 1)
        ctypes.c_longlong,  # nservers
        _c_double_p,  # completions (out, server-grouped)
        _c_double_p,  # depletion scratch
        _c_double_p,  # heap tag scratch
        _c_i64_p,  # heap index scratch
    ]
    servers.restype = None
    return periods, servers


def _ensure_fns():
    """Resolve the compiled entry points once per process.

    Never raises: every failure mode — explicit disable, no compiler on
    PATH, a failed compile, a bad .so — degrades to the bit-identical
    Python loop with a telemetry counter recording why
    (``ckernel.disabled`` / ``ckernel.unavailable{reason=...}``), so a
    stripped-down host runs correctly and the trace still shows the
    kernel never engaged.
    """
    global _fns
    if _fns is False:
        return None
    if _fns is not None:
        return _fns
    if os.environ.get("REPRO_DISABLE_CKERNEL"):
        _fns = False
        counters.inc("ckernel.disabled")
        return None
    try:
        path = _compile()
        if path is None:
            _fns = False
            return None
        _fns = _load(path)
    except Exception:  # noqa: BLE001 — degrade, never break the run
        _fns = False
        counters.inc("ckernel.unavailable", reason="load-failed")
        return None
    return _fns


def ps_periods_fn():
    """The compiled busy-period replay entry point, or None.

    Returns a callable ``fn(times, work, speed, bounds, ends, nper,
    completions, ht, hi)`` over raw ctypes pointers, compiled and loaded
    on first call and cached for the process.  Returns None when the
    kernel is disabled (``REPRO_DISABLE_CKERNEL``), no compiler exists,
    or compilation/loading failed — callers fall back to the Python
    loop, which computes the exact same bits.
    """
    fns = _ensure_fns()
    return fns[0] if fns else None


def ps_servers_fn():
    """The fused whole-network PS replay entry point, or None.

    Returns a callable ``fn(times, work, speeds, offsets, nservers,
    completions, dep, ht, hi)`` replaying every server's contiguous
    slice — Lindley segmentation included — in one C call.  Same
    availability rules and fallback contract as :func:`ps_periods_fn`.
    """
    fns = _ensure_fns()
    return fns[1] if fns else None


def kernel_available() -> bool:
    """True when the compiled core is (or can be made) usable."""
    return _ensure_fns() is not None


def replay_periods_c(
    fn,
    times: np.ndarray,
    work: np.ndarray,
    speed: float,
    bounds: np.ndarray,
    ends: np.ndarray,
    completions: np.ndarray,
) -> None:
    """Replay the given busy periods through the compiled core.

    ``times``/``work``/``completions`` must be contiguous float64;
    ``bounds``/``ends`` contiguous int64.  Heap scratch is sized to the
    longest period and reused across all of them.
    """
    width = int((ends - bounds).max())
    ht = np.empty(width)
    hi = np.empty(width, dtype=np.int64)
    fn(
        times.ctypes.data_as(_c_double_p),
        work.ctypes.data_as(_c_double_p),
        ctypes.c_double(speed),
        bounds.ctypes.data_as(_c_i64_p),
        ends.ctypes.data_as(_c_i64_p),
        ctypes.c_longlong(bounds.size),
        completions.ctypes.data_as(_c_double_p),
        ht.ctypes.data_as(_c_double_p),
        hi.ctypes.data_as(_c_i64_p),
    )


def replay_servers_c(
    fn,
    times: np.ndarray,
    work: np.ndarray,
    speeds: np.ndarray,
    offsets: np.ndarray,
    completions: np.ndarray,
) -> None:
    """Replay every server's substream through the fused compiled core.

    ``times``/``work``/``completions`` are the server-grouped (stable
    argsort by target) job arrays; server ``s`` owns the slice
    ``[offsets[s], offsets[s+1])``.  All float arrays contiguous
    float64, ``offsets`` contiguous int64 of length ``len(speeds)+1``.
    Scratch is sized to the busiest server and reused across servers.
    """
    counts = np.diff(offsets)
    width = int(counts.max()) if counts.size else 0
    if width <= 0:
        return
    dep = np.empty(width)
    ht = np.empty(width)
    hi = np.empty(width, dtype=np.int64)
    fn(
        times.ctypes.data_as(_c_double_p),
        work.ctypes.data_as(_c_double_p),
        speeds.ctypes.data_as(_c_double_p),
        offsets.ctypes.data_as(_c_i64_p),
        ctypes.c_longlong(len(speeds)),
        completions.ctypes.data_as(_c_double_p),
        dep.ctypes.data_as(_c_double_p),
        ht.ctypes.data_as(_c_double_p),
        hi.ctypes.data_as(_c_i64_p),
    )
