"""On-demand compiled core for the FCFS/PS replay kernels.

The multi-job PS busy-period loop is the one part of the static fast
path that resists numpy vectorization: every departure changes the
service rate of every remaining job, so the recurrence is inherently
sequential (the pure-numpy lockstep formulations explored for kernel v3
topped out at ~2x — see DESIGN.md).  Kernel v4 widens the compiled
surface from that single loop to the whole replay pipeline:
:mod:`repro.sim._pskernel.c` carries the virtual-time heap, the FCFS
Lindley recursion, a fused whole-cell entry point (grouping + replay +
scatter for every unique dispatch plan of a replication in one call,
OpenMP-parallel over disjoint (plan, server) slices), and the
searchsorted-style uniform→target mapping used by the random
dispatchers — compiled here with the system ``gcc`` and loaded through
:mod:`ctypes`.  No third-party build dependency, no wheels.

Bit-identity with the interpreted path is a hard requirement (the
replication cache and the grid executor both assume replay kernels are
deterministic functions of their inputs): the C source copies the float
operation order verbatim and is compiled with ``-ffp-contract=off`` so
the compiler cannot fuse multiply-adds into FMA instructions.  OpenMP
is applied only across slices with disjoint outputs, so the thread
count cannot affect the bits either; the cross-checking tests assert
``np.array_equal`` against the Python formulations at 1 and N threads.

The shared object is cached under ``$XDG_CACHE_HOME/repro-sched`` (or
the system temp directory), keyed by the SHA-256 of the C source and
the OpenMP variant, and published with an atomic rename so concurrent
grid workers never race.  Everything degrades gracefully: no compiler,
a failed compile, or ``REPRO_DISABLE_CKERNEL=1`` simply leaves the
numpy/Python path in place; a toolchain without ``-fopenmp`` gets a
serial compile and a ``ckernel.openmp_unavailable`` counter, never a
failure.

Scratch memory for the compiled entry points comes from a per-process
:class:`Arena` — named buffers grown to the largest replication seen
and reused forever after, so steady-state replay performs no numpy
allocation at all.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..obs import counters

__all__ = [
    "ps_periods_fn",
    "ps_servers_fn",
    "fcfs_servers_fn",
    "cell_fn",
    "map_fn",
    "window_fn",
    "rr_fn",
    "ewma_fn",
    "p2_fn",
    "kernel_available",
    "compiled_library_path",
    "compile_flags",
    "openmp_enabled",
    "omp_max_threads",
    "set_omp_threads",
    "Arena",
    "arena",
    "replay_periods_c",
    "replay_servers_c",
    "replay_cell_c",
    "map_uniform_c",
    "replay_window_c",
    "rr_extend_c",
    "ewma_fold_c",
    "p2_fold_c",
]

_SOURCE = Path(__file__).with_name("_pskernel.c")

#: Compile flags: -ffp-contract=off is load-bearing — FMA contraction
#: would change rounding and break bit-identity with the Python loop.
#: -fopenmp is appended when the toolchain supports it (probed with a
#: graceful serial fallback, never a hard failure).
_CFLAGS = ("-O3", "-fPIC", "-shared", "-ffp-contract=off")
_OMP_FLAG = "-fopenmp"

_c_double_p = ctypes.POINTER(ctypes.c_double)
_c_i64_p = ctypes.POINTER(ctypes.c_longlong)


@dataclass(frozen=True)
class _Lib:
    """Resolved entry points of one loaded kernel library."""

    periods: object
    servers: object
    fcfs_servers: object
    cell: object
    map_uniform: object
    window: object
    rr_extend: object
    ewma: object
    p2: object
    max_threads: object
    set_threads: object
    openmp: bool
    flags: tuple[str, ...]


#: None = not yet attempted; False = attempted and unavailable;
#: otherwise the :class:`_Lib` of resolved entry points.
_fns: object = None


def _cache_dir() -> Path:
    root = os.environ.get("XDG_CACHE_HOME")
    base = Path(root) if root else Path(tempfile.gettempdir())
    return base / "repro-sched"


def _lib_path(openmp: bool) -> Path:
    digest = hashlib.sha256(_SOURCE.read_bytes()).hexdigest()[:16]
    suffix = "-omp" if openmp else ""
    return _cache_dir() / f"pskernel-{digest}{suffix}.so"


def compiled_library_path() -> Path:
    """Where the compiled shared object lives (keyed by source hash).

    Prefers the OpenMP variant; falls back to the serial variant's path
    when only that one has been built on this host.
    """
    omp = _lib_path(openmp=True)
    if omp.exists():
        return omp
    plain = _lib_path(openmp=False)
    if plain.exists():
        return plain
    return omp


def _compile_variant(gcc: str, target: Path, flags: tuple[str, ...]) -> Path | None:
    """Compile one flag variant, publishing atomically; None on failure."""
    target.parent.mkdir(parents=True, exist_ok=True)
    # Stage to a pid-unique name and publish atomically: concurrent
    # workers compiling the same source never see a half-written .so.
    staging = target.with_name(f"{target.name}.{os.getpid()}.tmp")
    try:
        subprocess.run(
            [gcc, *flags, "-o", str(staging), str(_SOURCE)],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(staging, target)
    except (OSError, subprocess.SubprocessError):
        try:
            staging.unlink()
        except OSError:
            pass
        if target.exists():
            return target
        return None
    return target


def _compile() -> tuple[Path, bool] | None:
    """The usable shared object and whether it carries OpenMP.

    Tries the OpenMP variant first; a toolchain without ``-fopenmp``
    degrades to the serial variant with a ``ckernel.openmp_unavailable``
    counter — the run itself never fails on a stripped-down compiler.
    """
    omp_target = _lib_path(openmp=True)
    if omp_target.exists():
        return omp_target, True
    plain_target = _lib_path(openmp=False)
    gcc = shutil.which("gcc") or shutil.which("cc")
    if gcc is None:
        if plain_target.exists():
            return plain_target, False
        counters.inc("ckernel.unavailable", reason="no-compiler")
        return None
    built = _compile_variant(gcc, omp_target, (*_CFLAGS, _OMP_FLAG))
    if built is not None:
        return built, True
    counters.inc("ckernel.openmp_unavailable")
    if plain_target.exists():
        return plain_target, False
    built = _compile_variant(gcc, plain_target, _CFLAGS)
    if built is not None:
        return built, False
    counters.inc("ckernel.unavailable", reason="compile-failed")
    return None


def _load(path: Path, openmp: bool) -> _Lib:
    lib = ctypes.CDLL(str(path))
    periods = lib.ps_replay_periods
    periods.argtypes = [
        _c_double_p,  # times
        _c_double_p,  # work
        ctypes.c_double,  # speed
        _c_i64_p,  # bounds
        _c_i64_p,  # ends
        ctypes.c_longlong,  # nper
        _c_double_p,  # completions (out)
        _c_double_p,  # heap tag scratch
        _c_i64_p,  # heap index scratch
    ]
    periods.restype = None
    servers = lib.ps_replay_server_batch
    servers.argtypes = [
        _c_double_p,  # times (server-grouped)
        _c_double_p,  # work (server-grouped)
        _c_double_p,  # speeds
        _c_i64_p,  # offsets (nservers + 1)
        ctypes.c_longlong,  # nservers
        _c_double_p,  # completions (out, server-grouped)
        _c_double_p,  # heap tag scratch
        _c_i64_p,  # heap index scratch
    ]
    servers.restype = None
    fcfs_servers = lib.fcfs_replay_server_batch
    fcfs_servers.argtypes = [
        _c_double_p,  # times (server-grouped)
        _c_double_p,  # work (server-grouped)
        _c_double_p,  # speeds
        _c_i64_p,  # offsets (nservers + 1)
        ctypes.c_longlong,  # nservers
        _c_double_p,  # completions (out, server-grouped)
    ]
    fcfs_servers.restype = None
    cell = lib.cell_replay_batch
    cell.argtypes = [
        _c_double_p,  # times (shared stream)
        _c_double_p,  # work (shared stream)
        ctypes.c_longlong,  # n
        _c_double_p,  # speeds
        ctypes.c_longlong,  # nservers
        _c_i64_p,  # targets (nplans × n)
        ctypes.c_longlong,  # nplans
        ctypes.c_longlong,  # use_ps
        _c_double_p,  # completions (out, nplans × n, arrival order)
        _c_double_p,  # gt scratch
        _c_double_p,  # gw scratch
        _c_double_p,  # gc scratch
        _c_i64_p,  # order scratch
        _c_i64_p,  # offsets (out, nplans × (nservers+1))
        _c_i64_p,  # pos scratch
        _c_double_p,  # ht scratch (per thread)
        _c_i64_p,  # hi scratch (per thread)
        ctypes.c_longlong,  # nthreads
        ctypes.c_longlong,  # cut (post-warmup start; >= n skips phase D)
        _c_double_p,  # resp (out, nplans × (n-cut))
        _c_double_p,  # ratio (out, nplans × (n-cut))
        _c_i64_p,  # pcounts (out, nplans × nservers)
    ]
    cell.restype = ctypes.c_longlong
    map_uniform = lib.map_uniform_right
    map_uniform.argtypes = [
        _c_double_p,  # cum
        ctypes.c_longlong,  # nbins
        _c_double_p,  # u
        ctypes.c_longlong,  # n
        _c_i64_p,  # out
    ]
    map_uniform.restype = None
    window = lib.fcfs_window_sweep
    window.argtypes = [
        _c_double_p,  # times (arrival order)
        _c_double_p,  # work (arrival order)
        ctypes.c_longlong,  # n
        _c_double_p,  # speeds
        ctypes.c_longlong,  # nservers
        _c_i64_p,  # targets
        _c_double_p,  # free_at (in/out)
        _c_double_p,  # departures (out)
        _c_double_p,  # service_times (out)
        _c_i64_p,  # order (out, stable grouping permutation)
        _c_i64_p,  # offsets (out, nservers + 1)
        _c_i64_p,  # cursor scratch (nservers)
        _c_double_p,  # state scratch (2 * nservers)
    ]
    window.restype = ctypes.c_longlong
    rr_extend = lib.rr_sequence_extend
    rr_extend.argtypes = [
        _c_double_p,  # inv (1/alpha per server)
        _c_i64_p,  # active indices
        ctypes.c_longlong,  # nactive
        _c_i64_p,  # assign (in/out)
        _c_double_p,  # next credits (in/out)
        ctypes.c_longlong,  # count
        _c_i64_p,  # out targets
    ]
    rr_extend.restype = None
    ewma = lib.ewma_fold
    ewma.argtypes = [
        _c_double_p,  # state [raw, norm] (in/out)
        ctypes.c_double,  # weight
        _c_double_p,  # xs
        ctypes.c_longlong,  # n
    ]
    ewma.restype = None
    p2 = lib.p2_fold
    p2.argtypes = [
        _c_double_p,  # q markers (in/out)
        _c_double_p,  # n positions (in/out)
        _c_double_p,  # np desired positions (in/out)
        _c_double_p,  # dn increments
        _c_double_p,  # xs
        ctypes.c_longlong,  # m
    ]
    p2.restype = None
    max_threads = lib.pk_max_threads
    max_threads.argtypes = []
    max_threads.restype = ctypes.c_longlong
    set_threads = lib.pk_set_threads
    set_threads.argtypes = [ctypes.c_longlong]
    set_threads.restype = None
    flags = (*_CFLAGS, _OMP_FLAG) if openmp else _CFLAGS
    return _Lib(
        periods=periods,
        servers=servers,
        fcfs_servers=fcfs_servers,
        cell=cell,
        map_uniform=map_uniform,
        window=window,
        rr_extend=rr_extend,
        ewma=ewma,
        p2=p2,
        max_threads=max_threads,
        set_threads=set_threads,
        openmp=openmp,
        flags=flags,
    )


def _ensure_fns():
    """Resolve the compiled entry points once per process.

    Never raises: every failure mode — explicit disable, no compiler on
    PATH, a failed compile, a bad .so — degrades to the bit-identical
    numpy/Python path with a telemetry counter recording why
    (``ckernel.disabled`` / ``ckernel.unavailable{reason=...}``), so a
    stripped-down host runs correctly and the trace still shows the
    kernel never engaged.
    """
    global _fns
    if _fns is False:
        return None
    if _fns is not None:
        return _fns
    if os.environ.get("REPRO_DISABLE_CKERNEL"):
        _fns = False
        counters.inc("ckernel.disabled")
        return None
    try:
        compiled = _compile()
        if compiled is None:
            _fns = False
            return None
        path, openmp = compiled
        _fns = _load(path, openmp)
    except Exception:  # noqa: BLE001 — degrade, never break the run
        _fns = False
        counters.inc("ckernel.unavailable", reason="load-failed")
        return None
    return _fns


def ps_periods_fn():
    """The compiled busy-period replay entry point, or None.

    Returns a callable ``fn(times, work, speed, bounds, ends, nper,
    completions, ht, hi)`` over raw ctypes pointers, compiled and loaded
    on first call and cached for the process.  Returns None when the
    kernel is disabled (``REPRO_DISABLE_CKERNEL``), no compiler exists,
    or compilation/loading failed — callers fall back to the Python
    loop, which computes the exact same bits.
    """
    lib = _ensure_fns()
    return lib.periods if lib else None


def ps_servers_fn():
    """The fused whole-network PS replay entry point, or None.

    Returns a callable ``fn(times, work, speeds, offsets, nservers,
    completions, ht, hi)`` replaying every server's contiguous
    slice — Lindley segmentation included — in one C call.  Same
    availability rules and fallback contract as :func:`ps_periods_fn`.
    """
    lib = _ensure_fns()
    return lib.servers if lib else None


def fcfs_servers_fn():
    """The fused whole-network FCFS replay entry point, or None."""
    lib = _ensure_fns()
    return lib.fcfs_servers if lib else None


def cell_fn():
    """The whole-cell fused replay entry point, or None.

    One call replays every unique dispatch plan of a replication:
    counting-sort grouping, per-(plan, server) FCFS/PS replay, and the
    scatter back to arrival order all happen in C (OpenMP-parallel over
    disjoint slices).  Same availability/fallback contract as
    :func:`ps_periods_fn`.
    """
    lib = _ensure_fns()
    return lib.cell if lib else None


def map_fn():
    """The compiled searchsorted-right uniform→bucket mapper, or None."""
    lib = _ensure_fns()
    return lib.map_uniform if lib else None


def window_fn():
    """The carry-state FCFS window sweep entry point, or None.

    One call replays a control window of dispatched jobs through the
    per-server Lindley recursion with the servers' ``free_at`` instants
    carried across windows — the serve-path counterpart of
    :func:`cell_fn`.  Same availability/fallback contract as
    :func:`ps_periods_fn`.
    """
    lib = _ensure_fns()
    return lib.window if lib else None


def rr_fn():
    """The Algorithm 2 sequence-extension entry point, or None."""
    lib = _ensure_fns()
    return lib.rr_extend if lib else None


def ewma_fn():
    """The bias-corrected EWMA batch-fold entry point, or None."""
    lib = _ensure_fns()
    return lib.ewma if lib else None


def p2_fn():
    """The P² streaming-quantile batch-fold entry point, or None."""
    lib = _ensure_fns()
    return lib.p2 if lib else None


def kernel_available() -> bool:
    """True when the compiled core is (or can be made) usable."""
    return _ensure_fns() is not None


def compile_flags() -> tuple[str, ...]:
    """The gcc flags the loaded kernel was built with (() if none)."""
    lib = _ensure_fns()
    return lib.flags if lib else ()


def openmp_enabled() -> bool:
    """True when the loaded kernel was compiled with OpenMP support."""
    lib = _ensure_fns()
    return bool(lib and lib.openmp)


# GNU OpenMP thread teams do not survive fork(): a worker forked after
# the parent ran a parallel region deadlocks on its first own region.
# Replay is bit-identical at any thread count, so forked children are
# simply clamped to serial.  Spawned workers re-import this module and
# get their own pid recorded, keeping threads available there.
_IMPORT_PID = os.getpid()


def omp_max_threads() -> int:
    """Threads the kernel's parallel regions may use (1 when serial)."""
    lib = _ensure_fns()
    if not lib or not lib.openmp:
        return 1
    if os.getpid() != _IMPORT_PID:
        return 1
    return int(lib.max_threads())


def set_omp_threads(n: int) -> None:
    """Cap the kernel's OpenMP thread count (no-op on serial builds).

    Exists for the threads=1 vs threads=N bit-identity tests; normal
    runs control threading with ``OMP_NUM_THREADS``.
    """
    lib = _ensure_fns()
    if lib and lib.openmp:
        lib.set_threads(int(n))


# ----------------------------------------------------------------------
# Scratch arena
# ----------------------------------------------------------------------


class Arena:
    """Named, monotonically grown scratch buffers for the compiled core.

    Each buffer is keyed by (name, dtype) and only ever grows — sized to
    the largest replication a worker has seen — so steady-state replay
    reuses the same memory instead of allocating fresh numpy arrays per
    plan.  Requests return a length-``size`` view of the underlying
    buffer (contiguous from the start, as the C entry points require).
    Not thread-safe by design: parallelism in this codebase is
    process-based, and each process owns one arena.
    """

    def __init__(self):
        self._bufs: dict[tuple[str, str], np.ndarray] = {}
        self.requests = 0
        self.grows = 0

    def _get(self, name: str, size: int, dtype) -> np.ndarray:
        self.requests += 1
        key = (name, np.dtype(dtype).char)
        buf = self._bufs.get(key)
        if buf is None or buf.size < size:
            # Grow geometrically so a sequence of slightly-larger
            # replications does not reallocate every time.
            cap = size if buf is None else max(size, 2 * buf.size)
            buf = np.empty(cap, dtype=dtype)
            self._bufs[key] = buf
            self.grows += 1
            counters.inc("arena.grow", buffer=name)
        return buf[:size]

    def f64(self, name: str, size: int) -> np.ndarray:
        """A float64 scratch view of ``size`` elements."""
        return self._get(name, int(size), np.float64)

    def i64(self, name: str, size: int) -> np.ndarray:
        """An int64 scratch view of ``size`` elements."""
        return self._get(name, int(size), np.int64)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return sum(b.nbytes for b in self._bufs.values())

    def reset(self) -> None:
        """Drop every buffer (tests and memory-pressure escapes)."""
        self._bufs.clear()


_arena: Arena | None = None


def arena() -> Arena:
    """The per-process scratch arena (created on first use)."""
    global _arena
    if _arena is None:
        _arena = Arena()
    return _arena


# ----------------------------------------------------------------------
# ctypes call wrappers
# ----------------------------------------------------------------------


def replay_periods_c(
    fn,
    times: np.ndarray,
    work: np.ndarray,
    speed: float,
    bounds: np.ndarray,
    ends: np.ndarray,
    completions: np.ndarray,
) -> None:
    """Replay the given busy periods through the compiled core.

    ``times``/``work``/``completions`` must be contiguous float64;
    ``bounds``/``ends`` contiguous int64.  Heap scratch is sized to the
    longest period and served from the arena.
    """
    width = int((ends - bounds).max())
    a = arena()
    ht = a.f64("periods.ht", width)
    hi = a.i64("periods.hi", width)
    fn(
        times.ctypes.data_as(_c_double_p),
        work.ctypes.data_as(_c_double_p),
        ctypes.c_double(speed),
        bounds.ctypes.data_as(_c_i64_p),
        ends.ctypes.data_as(_c_i64_p),
        ctypes.c_longlong(bounds.size),
        completions.ctypes.data_as(_c_double_p),
        ht.ctypes.data_as(_c_double_p),
        hi.ctypes.data_as(_c_i64_p),
    )


def replay_servers_c(
    fn,
    times: np.ndarray,
    work: np.ndarray,
    speeds: np.ndarray,
    offsets: np.ndarray,
    completions: np.ndarray,
) -> None:
    """Replay every server's substream through the fused compiled core.

    ``times``/``work``/``completions`` are the server-grouped (stable
    argsort by target) job arrays; server ``s`` owns the slice
    ``[offsets[s], offsets[s+1])``.  All float arrays contiguous
    float64, ``offsets`` contiguous int64 of length ``len(speeds)+1``.
    Scratch is sized to the busiest server and served from the arena.
    """
    counts = np.diff(offsets)
    width = int(counts.max()) if counts.size else 0
    if width <= 0:
        return
    a = arena()
    ht = a.f64("servers.ht", width)
    hi = a.i64("servers.hi", width)
    fn(
        times.ctypes.data_as(_c_double_p),
        work.ctypes.data_as(_c_double_p),
        speeds.ctypes.data_as(_c_double_p),
        offsets.ctypes.data_as(_c_i64_p),
        ctypes.c_longlong(len(speeds)),
        completions.ctypes.data_as(_c_double_p),
        ht.ctypes.data_as(_c_double_p),
        hi.ctypes.data_as(_c_i64_p),
    )


def replay_cell_c(
    fn,
    times: np.ndarray,
    work: np.ndarray,
    speeds: np.ndarray,
    plans,
    use_ps: bool,
    warmup_cut: int | None = None,
):
    """Replay every unique dispatch plan of one replication in one call.

    ``plans`` is a sequence of int64 target arrays (one per unique
    plan), each aligned with the shared ``times``/``work`` streams.
    Returns ``(completions, grouped_work, offsets, tail, ok)`` where
    ``completions`` is (nplans, n) in arrival order, ``grouped_work``
    is the server-grouped job sizes (for per-server busy-time sums),
    ``offsets`` is (nplans, nservers+1), and ``ok`` is False when a
    target was out of range (caller falls back to the numpy path).

    When ``warmup_cut`` is given (the index of the first post-warmup
    arrival), the kernel also emits the per-plan summarize precursors
    and ``tail`` is ``(resp, ratio, pcounts)``: response times and
    response ratios of the post-warmup jobs, (nplans, n-warmup_cut)
    each, plus per-server post-warmup dispatch counts,
    (nplans, nservers).  All elementwise or integer work, so the
    arrays are bit-identical to the numpy expressions they replace.
    ``tail`` is None when ``warmup_cut`` is omitted or >= n.

    All returned arrays are arena-backed views: consume them before the
    next replay call, never store them.
    """
    n = int(times.size)
    nplans = len(plans)
    nservers = int(speeds.size)
    nthreads = max(1, omp_max_threads())
    a = arena()
    if (
        nplans == 1
        and plans[0].dtype == np.int64
        and plans[0].flags.c_contiguous
    ):
        targets = plans[0]
    else:
        targets = a.i64("cell.targets", nplans * n).reshape(nplans, n)
        for k, plan in enumerate(plans):
            np.copyto(targets[k], plan)
    completions = a.f64("cell.comp", nplans * n)
    gt = a.f64("cell.gt", nplans * n)
    gw = a.f64("cell.gw", nplans * n)
    gc = a.f64("cell.gc", nplans * n)
    order = a.i64("cell.order", nplans * n)
    offsets = a.i64("cell.offsets", nplans * (nservers + 1))
    pos = a.i64("cell.pos", nplans * (nservers + 1))
    # Matches the kernel's per-thread scratch stride: the PS heap needs
    # n entries, the fused FCFS pass 2*nservers of per-server state.
    stride = max(n, 2 * nservers)
    ht = a.f64("cell.ht", nthreads * stride)
    hi = a.i64("cell.hi", nthreads * stride)
    cut = n if warmup_cut is None else min(max(int(warmup_cut), 0), n)
    tail_len = n - cut
    resp = a.f64("cell.resp", nplans * tail_len)
    ratio = a.f64("cell.ratio", nplans * tail_len)
    pcounts = a.i64("cell.pcounts", nplans * nservers)
    status = fn(
        times.ctypes.data_as(_c_double_p),
        work.ctypes.data_as(_c_double_p),
        ctypes.c_longlong(n),
        speeds.ctypes.data_as(_c_double_p),
        ctypes.c_longlong(nservers),
        targets.ctypes.data_as(_c_i64_p),
        ctypes.c_longlong(nplans),
        ctypes.c_longlong(1 if use_ps else 0),
        completions.ctypes.data_as(_c_double_p),
        gt.ctypes.data_as(_c_double_p),
        gw.ctypes.data_as(_c_double_p),
        gc.ctypes.data_as(_c_double_p),
        order.ctypes.data_as(_c_i64_p),
        offsets.ctypes.data_as(_c_i64_p),
        pos.ctypes.data_as(_c_i64_p),
        ht.ctypes.data_as(_c_double_p),
        hi.ctypes.data_as(_c_i64_p),
        ctypes.c_longlong(nthreads),
        ctypes.c_longlong(cut),
        resp.ctypes.data_as(_c_double_p),
        ratio.ctypes.data_as(_c_double_p),
        pcounts.ctypes.data_as(_c_i64_p),
    )
    tail = None
    if tail_len > 0:
        tail = (
            resp.reshape(nplans, tail_len),
            ratio.reshape(nplans, tail_len),
            pcounts.reshape(nplans, nservers),
        )
    return (
        completions.reshape(nplans, n),
        gw.reshape(nplans, n),
        offsets.reshape(nplans, nservers + 1),
        tail,
        status == 0,
    )


def replay_window_c(
    fn,
    times: np.ndarray,
    work: np.ndarray,
    speeds: np.ndarray,
    targets: np.ndarray,
    free_at: np.ndarray,
):
    """Replay one serving window through the carry-state compiled core.

    ``times``/``work`` are the window's admitted jobs in arrival order
    (contiguous float64), ``targets`` the dispatch decisions (contiguous
    int64), ``free_at`` the per-server free-up instants carried from
    the previous window — updated **in place** with the post-window
    state.  Returns ``(departures, service_times, order, offsets, ok)``
    where ``departures``/``service_times`` are in arrival order,
    ``order`` is the stable group-by-server permutation and ``offsets``
    the per-server group bounds (``nservers + 1``), and ``ok`` is False
    when a target was out of range (``free_at`` untouched in that case
    up to the offending job's server — callers must fall back to the
    validating numpy path and not trust the partial state).

    All returned arrays are arena-backed views: consume them before the
    next replay call, never store them.
    """
    n = int(times.size)
    nservers = int(speeds.size)
    a = arena()
    departures = a.f64("window.dep", n)
    service_times = a.f64("window.svc", n)
    order = a.i64("window.order", n)
    offsets = a.i64("window.offsets", nservers + 1)
    cursor = a.i64("window.cursor", nservers)
    state = a.f64("window.state", 2 * nservers)
    status = fn(
        times.ctypes.data_as(_c_double_p),
        work.ctypes.data_as(_c_double_p),
        ctypes.c_longlong(n),
        speeds.ctypes.data_as(_c_double_p),
        ctypes.c_longlong(nservers),
        targets.ctypes.data_as(_c_i64_p),
        free_at.ctypes.data_as(_c_double_p),
        departures.ctypes.data_as(_c_double_p),
        service_times.ctypes.data_as(_c_double_p),
        order.ctypes.data_as(_c_i64_p),
        offsets.ctypes.data_as(_c_i64_p),
        cursor.ctypes.data_as(_c_i64_p),
        state.ctypes.data_as(_c_double_p),
    )
    return departures, service_times, order, offsets, status == 0


def rr_extend_c(
    fn,
    inv: np.ndarray,
    active: np.ndarray,
    assign: np.ndarray,
    nxt: np.ndarray,
    out: np.ndarray,
) -> None:
    """Extend an Algorithm 2 sequence through the compiled select loop.

    ``inv`` (1/alpha per server, the exact doubles of the Python
    dispatcher's ``_inv_alpha``), ``active`` (int64 participant
    indices), ``assign``/``nxt`` live dispatcher state updated in
    place, ``out`` int64 receiving ``out.size`` further targets.
    """
    fn(
        inv.ctypes.data_as(_c_double_p),
        active.ctypes.data_as(_c_i64_p),
        ctypes.c_longlong(active.size),
        assign.ctypes.data_as(_c_i64_p),
        nxt.ctypes.data_as(_c_double_p),
        ctypes.c_longlong(out.size),
        out.ctypes.data_as(_c_i64_p),
    )


def ewma_fold_c(fn, state: np.ndarray, weight: float, xs: np.ndarray) -> None:
    """Fold a batch of observations into EWMA state [raw, norm]."""
    fn(
        state.ctypes.data_as(_c_double_p),
        ctypes.c_double(weight),
        xs.ctypes.data_as(_c_double_p),
        ctypes.c_longlong(xs.size),
    )


def p2_fold_c(
    fn,
    q: np.ndarray,
    n: np.ndarray,
    np_: np.ndarray,
    dn: np.ndarray,
    xs: np.ndarray,
) -> None:
    """Fold a batch of observations into P² marker state (in place)."""
    fn(
        q.ctypes.data_as(_c_double_p),
        n.ctypes.data_as(_c_double_p),
        np_.ctypes.data_as(_c_double_p),
        dn.ctypes.data_as(_c_double_p),
        xs.ctypes.data_as(_c_double_p),
        ctypes.c_longlong(xs.size),
    )


def map_uniform_c(fn, cum: np.ndarray, u: np.ndarray, out: np.ndarray) -> None:
    """searchsorted(cum, u, side="right") through the compiled mapper.

    ``cum`` and ``u`` contiguous float64, ``out`` contiguous int64 of
    ``u``'s length.  Integer output: bit-identical to numpy by
    construction.
    """
    fn(
        cum.ctypes.data_as(_c_double_p),
        ctypes.c_longlong(cum.size),
        u.ctypes.data_as(_c_double_p),
        ctypes.c_longlong(u.size),
        out.ctypes.data_as(_c_i64_p),
    )
