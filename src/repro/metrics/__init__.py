"""Performance metrics: the paper's three headline measures plus
streaming accumulators and replication confidence intervals."""

from .ci import ReplicationSummary, summarize_replications
from .online import RunningStats
from .response import MetricsCollector, ResponseMetrics

__all__ = [
    "RunningStats",
    "MetricsCollector",
    "ResponseMetrics",
    "ReplicationSummary",
    "summarize_replications",
]
