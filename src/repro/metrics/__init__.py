"""Performance metrics: the paper's three headline measures plus
streaming accumulators and replication confidence intervals."""

from .ci import (
    PairedSummary,
    ReplicationSummary,
    summarize_paired,
    summarize_replications,
)
from .online import (
    EwmaEstimator,
    EwmaRateEstimator,
    OnlineWorkloadEstimator,
    P2Quantile,
    RunningStats,
    ServerSpeedEstimator,
    WindowedRateEstimator,
    WorkloadEstimate,
)
from .response import MetricsCollector, ResponseMetrics

__all__ = [
    "RunningStats",
    "MetricsCollector",
    "ResponseMetrics",
    "ReplicationSummary",
    "summarize_replications",
    "PairedSummary",
    "summarize_paired",
    "EwmaEstimator",
    "EwmaRateEstimator",
    "WindowedRateEstimator",
    "ServerSpeedEstimator",
    "P2Quantile",
    "WorkloadEstimate",
    "OnlineWorkloadEstimator",
]
