"""Streaming statistics (Welford) for million-job simulation runs.

The paper's runs generate 1–2 million jobs; storing every response ratio
to compute a standard deviation at the end would be fine for one run but
wasteful across sweeps, so all job-level statistics are accumulated
online with Welford's numerically stable algorithm.  ``merge`` allows
combining accumulators (per-server → system, or chunked fast-path
batches) with the Chan/Golub/LeVeque pairwise update.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["RunningStats"]


class RunningStats:
    """Numerically stable streaming mean/variance/extremes."""

    __slots__ = ("count", "_mean", "_m2", "_min", "_max", "_total")

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._total = 0.0

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add(self, x: float) -> None:
        """Fold one observation in (Welford update)."""
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        self._total += x
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    def add_array(self, xs: np.ndarray) -> None:
        """Fold a whole array in at once (vectorized, then merged)."""
        xs = np.asarray(xs, dtype=float)
        if xs.size == 0:
            return
        other = RunningStats()
        other.count = int(xs.size)
        other._mean = float(xs.mean())
        other._m2 = float(((xs - other._mean) ** 2).sum())
        other._min = float(xs.min())
        other._max = float(xs.max())
        other._total = float(xs.sum())
        self.merge(other)

    def merge(self, other: "RunningStats") -> None:
        """Combine another accumulator into this one (parallel merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            self._total = other._total
            return
        n1, n2 = self.count, other.count
        delta = other._mean - self._mean
        total = n1 + n2
        self._mean += delta * n2 / total
        self._m2 += other._m2 + delta * delta * n1 * n2 / total
        self.count = total
        self._total += other._total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no observations")
        return self._mean

    @property
    def total(self) -> float:
        return self._total

    @property
    def variance(self) -> float:
        """Population variance (the paper's fairness metric is a plain
        standard deviation over all jobs, not a sample estimate)."""
        if self.count == 0:
            raise ValueError("no observations")
        return self._m2 / self.count

    @property
    def sample_variance(self) -> float:
        if self.count < 2:
            raise ValueError("need at least two observations")
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(max(self.variance, 0.0))

    @property
    def sample_std(self) -> float:
        return math.sqrt(max(self.sample_variance, 0.0))

    @property
    def min(self) -> float:
        if self.count == 0:
            raise ValueError("no observations")
        return self._min

    @property
    def max(self) -> float:
        if self.count == 0:
            raise ValueError("no observations")
        return self._max

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.count == 0:
            return "RunningStats(empty)"
        return f"RunningStats(n={self.count}, mean={self.mean:.6g}, std={self.std:.6g})"
