"""Streaming statistics and online workload estimators.

Two families live here:

* :class:`RunningStats` — Welford/Chan streaming mean/variance for
  million-job runs (per-server → system merges, chunked fast-path
  batches).
* The quasi-static service estimators.  The paper's Algorithm 1 takes
  λ, μ, and the speed vector as *known* constants; a long-running
  service has to estimate them from the live stream.  The control loop
  (:mod:`repro.service`) periodically re-solves Theorems 1–3 over:

  - :class:`EwmaEstimator` — bias-corrected exponentially weighted
    moving average, the building block for level-like quantities
    (mean job size, per-server effective speed);
  - :class:`EwmaRateEstimator` — arrival rate as the reciprocal of an
    EWMA over inter-arrival gaps;
  - :class:`WindowedRateEstimator` — arrival rate as an event count
    over a sliding time window: forgets a step change completely one
    window after it happens, at the cost of more variance;
  - :class:`ServerSpeedEstimator` — per-server effective speed from
    observed (size, service-time) pairs, nominal-seeded;
  - :class:`P2Quantile` — the Jain–Chlamtac P² streaming quantile
    estimator: five markers, constant memory, no stored samples — the
    response-time p50/p99 the service's SLO gate steers by;
  - :class:`OnlineWorkloadEstimator` — the facade the service feeds:
    per-arrival and per-completion hooks in, a
    :class:`WorkloadEstimate` snapshot (λ̂, m̂, ŝ, ρ̂) out.  A
    membership mask (set by the failure detector) restricts the
    capacity in ρ̂ to the servers currently up.

  All estimators are deterministic functions of the observation
  sequence (no hidden randomness), so service runs replay
  bit-identically under a fixed seed.  Each one exposes
  ``state_dict()``/``load_state()`` returning plain JSON-serializable
  values, so the crash-safe service checkpoints can snapshot and
  restore estimator state exactly (floats round-trip bit-identically
  through JSON).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

def _ckernel():
    """The compiled-kernel module, imported lazily.

    :mod:`repro.sim` imports this module (fastpath uses
    :class:`RunningStats`), so the dependency must not exist at import
    time.  The batch folds below call this once per window — a
    ``sys.modules`` lookup, not a re-import.
    """
    from ..sim import ckernel

    return ckernel


__all__ = [
    "RunningStats",
    "EwmaEstimator",
    "EwmaRateEstimator",
    "WindowedRateEstimator",
    "ServerSpeedEstimator",
    "P2Quantile",
    "WorkloadEstimate",
    "OnlineWorkloadEstimator",
    "LatencyStats",
]


class RunningStats:
    """Numerically stable streaming mean/variance/extremes."""

    __slots__ = ("count", "_mean", "_m2", "_min", "_max", "_total")

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._total = 0.0

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add(self, x: float) -> None:
        """Fold one observation in (Welford update)."""
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        self._total += x
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    def add_array(self, xs: np.ndarray) -> None:
        """Fold a whole array in at once (vectorized, then merged)."""
        xs = np.asarray(xs, dtype=float)
        if xs.size == 0:
            return
        other = RunningStats()
        other.count = int(xs.size)
        # One pairwise sum serves both aggregates: numpy's mean is the
        # same pairwise sum divided by the count, bit for bit.
        other._total = float(xs.sum())
        other._mean = other._total / other.count
        other._m2 = float(((xs - other._mean) ** 2).sum())
        other._min = float(xs.min())
        other._max = float(xs.max())
        self.merge(other)

    def merge(self, other: "RunningStats") -> None:
        """Combine another accumulator into this one (parallel merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            self._total = other._total
            return
        n1, n2 = self.count, other.count
        delta = other._mean - self._mean
        total = n1 + n2
        self._mean += delta * n2 / total
        self._m2 += other._m2 + delta * delta * n1 * n2 / total
        self.count = total
        self._total += other._total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no observations")
        return self._mean

    @property
    def total(self) -> float:
        return self._total

    @property
    def variance(self) -> float:
        """Population variance (the paper's fairness metric is a plain
        standard deviation over all jobs, not a sample estimate)."""
        if self.count == 0:
            raise ValueError("no observations")
        return self._m2 / self.count

    @property
    def sample_variance(self) -> float:
        if self.count < 2:
            raise ValueError("need at least two observations")
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(max(self.variance, 0.0))

    @property
    def sample_std(self) -> float:
        return math.sqrt(max(self.sample_variance, 0.0))

    @property
    def min(self) -> float:
        if self.count == 0:
            raise ValueError("no observations")
        return self._min

    @property
    def max(self) -> float:
        if self.count == 0:
            raise ValueError("no observations")
        return self._max

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.count == 0:
            return "RunningStats(empty)"
        return f"RunningStats(n={self.count}, mean={self.mean:.6g}, std={self.std:.6g})"


# ----------------------------------------------------------------------
# Quasi-static service estimators
# ----------------------------------------------------------------------


class EwmaEstimator:
    """Bias-corrected exponentially weighted moving average.

    Standard recursion ``raw ← (1−w)·raw + w·x`` with the warm-up
    normalization ``raw / (1 − (1−w)^k)`` so early estimates are the
    weighted mean of the observations seen so far rather than being
    pulled toward the arbitrary zero initialization.  The effective
    memory is ≈ 1/w observations.
    """

    __slots__ = ("weight", "_raw", "_norm", "count")

    def __init__(self, weight: float):
        if not 0.0 < weight <= 1.0:
            raise ValueError(f"weight must lie in (0, 1], got {weight}")
        self.weight = float(weight)
        self.reset()

    def reset(self) -> None:
        self._raw = 0.0
        self._norm = 0.0
        self.count = 0

    def update(self, x: float) -> float:
        keep = 1.0 - self.weight
        self._raw = keep * self._raw + self.weight * float(x)
        self._norm = keep * self._norm + self.weight
        self.count += 1
        return self.value

    def update_batch(self, xs) -> None:
        """Fold a batch of observations, oldest first.

        Bit-identical to calling :meth:`update` per element: the
        compiled fold runs the same ``keep·state + w·x`` recursion with
        the same doubles, and the fallback *is* the per-element loop.
        """
        xs = np.ascontiguousarray(xs, dtype=float)
        if xs.size == 0:
            return
        ck = _ckernel()
        fn = ck.ewma_fn()
        if fn is None:
            for x in xs:
                self.update(float(x))
            return
        state = ck.arena().f64("ewma.state", 2)
        state[0] = self._raw
        state[1] = self._norm
        ck.ewma_fold_c(fn, state, self.weight, xs)
        self._raw = float(state[0])
        self._norm = float(state[1])
        self.count += int(xs.size)

    @property
    def value(self) -> float:
        """Current estimate (NaN before the first observation)."""
        if self.count == 0:
            return math.nan
        return self._raw / self._norm

    def state_dict(self) -> dict:
        return {"raw": self._raw, "norm": self._norm, "count": self.count}

    def load_state(self, state: dict) -> None:
        self._raw = float(state["raw"])
        self._norm = float(state["norm"])
        self.count = int(state["count"])


class EwmaRateEstimator:
    """Arrival rate as the reciprocal of an EWMA over inter-arrival gaps.

    Feed it event timestamps in non-decreasing order; ``rate()`` is
    1/(mean gap).  Smooth but slow to forget: after a step change it
    converges geometrically with the EWMA weight rather than snapping
    after one window.
    """

    __slots__ = ("_gaps", "_last")

    def __init__(self, weight: float = 0.05):
        self._gaps = EwmaEstimator(weight)
        self._last: float | None = None

    def reset(self) -> None:
        self._gaps.reset()
        self._last = None

    def observe(self, t: float) -> None:
        t = float(t)
        if self._last is not None:
            gap = t - self._last
            if gap < 0.0:
                raise ValueError(
                    f"timestamps must be non-decreasing ({t} after {self._last})"
                )
            if gap > 0.0:
                self._gaps.update(gap)
        self._last = t

    def observe_batch(self, times) -> None:
        """Fold a batch of non-decreasing timestamps in at once.

        Same final state as per-element :meth:`observe` calls: the gaps
        are the identical ``t_i − t_{i−1}`` differences (the first one
        against the carried last timestamp) and the zero-gap filter
        matches the scalar path's ``gap > 0`` guard.
        """
        times = np.ascontiguousarray(times, dtype=float)
        if times.size == 0:
            return
        if self._last is not None:
            gaps = np.diff(times, prepend=self._last)
        else:
            gaps = np.diff(times)
        if gaps.size and float(gaps.min()) < 0.0:
            raise ValueError("timestamps must be non-decreasing")
        self._gaps.update_batch(gaps[gaps > 0.0])
        self._last = float(times[-1])

    def rate(self, now: float | None = None) -> float:
        """Events per unit time (0.0 until two distinct timestamps)."""
        gap = self._gaps.value
        if not math.isfinite(gap) or gap <= 0.0:
            return 0.0
        return 1.0 / gap

    def state_dict(self) -> dict:
        return {"gaps": self._gaps.state_dict(), "last": self._last}

    def load_state(self, state: dict) -> None:
        self._gaps.load_state(state["gaps"])
        last = state["last"]
        self._last = None if last is None else float(last)


class WindowedRateEstimator:
    """Arrival rate as an event count over a sliding time window.

    Keeps the timestamps of the last ``window`` time units and reports
    ``count / window`` — clock time in the denominator, so an emptying
    window honestly decays toward 0 instead of freezing at the last
    rate.  During the first window after t=0 the denominator is the
    elapsed time, keeping early estimates unbiased.
    """

    __slots__ = ("window", "_times")

    def __init__(self, window: float):
        if window <= 0.0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = float(window)
        self._times: deque[float] = deque()

    def reset(self) -> None:
        self._times.clear()

    def observe(self, t: float) -> None:
        t = float(t)
        if self._times and t < self._times[-1]:
            raise ValueError(
                f"timestamps must be non-decreasing ({t} after {self._times[-1]})"
            )
        self._times.append(t)
        self._evict(t)

    def observe_batch(self, times) -> None:
        """Append a batch of non-decreasing timestamps at once.

        Identical final deque to per-element :meth:`observe` calls:
        evictions only ever pop the front against the *latest*
        timestamp's cutoff, so one eviction pass at the end removes
        exactly the union of what the per-element passes would.
        ``tolist()`` keeps the deque holding builtin floats — the
        checkpoint ``state_dict`` serializes it straight to JSON.
        """
        times = np.asarray(times, dtype=float)
        if times.size == 0:
            return
        if self._times and float(times[0]) < self._times[-1]:
            raise ValueError(
                f"timestamps must be non-decreasing "
                f"({float(times[0])} after {self._times[-1]})"
            )
        if times.size > 1 and float(np.diff(times).min()) < 0.0:
            raise ValueError("timestamps must be non-decreasing")
        self._times.extend(times.tolist())
        self._evict(float(times[-1]))

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        times = self._times
        while times and times[0] < cutoff:
            times.popleft()

    def rate(self, now: float) -> float:
        """Events per unit time over ``[now − window, now]``."""
        self._evict(float(now))
        span = min(float(now), self.window)
        if span <= 0.0 or not self._times:
            return 0.0
        return len(self._times) / span

    def state_dict(self) -> dict:
        return {"times": list(self._times)}

    def load_state(self, state: dict) -> None:
        self._times = deque(float(t) for t in state["times"])


class ServerSpeedEstimator:
    """Per-server effective speed from observed (size, service-time) pairs.

    A completed job of size x that held the server for τ time units
    witnessed speed x/τ; each server keeps an EWMA of those witnesses.
    Servers that have not completed a job yet report their nominal
    speed, so a freshly zero-shared server does not poison the solver
    with NaN.
    """

    __slots__ = ("nominal", "_ewmas")

    def __init__(self, nominal_speeds, weight: float = 0.05):
        self.nominal = np.asarray(nominal_speeds, dtype=float).copy()
        if self.nominal.ndim != 1 or self.nominal.size == 0:
            raise ValueError("nominal_speeds must be a non-empty 1-D vector")
        if np.any(self.nominal <= 0.0):
            raise ValueError(f"speeds must be positive, got {self.nominal}")
        self._ewmas = [EwmaEstimator(weight) for _ in range(self.nominal.size)]

    def reset(self) -> None:
        for e in self._ewmas:
            e.reset()

    def reset_server(self, server: int) -> None:
        """Forget one server's witnesses — it reports nominal again.

        The rejoin warm-up guard: a restarted server's pre-crash EWMA
        is stale state, so it re-enters the solver at nominal speed
        until fresh completions arrive.
        """
        self._ewmas[server].reset()

    def observe(self, server: int, size: float, service_time: float) -> None:
        if service_time <= 0.0:
            raise ValueError(f"service_time must be positive, got {service_time}")
        self._ewmas[server].update(float(size) / float(service_time))

    def observe_grouped(self, witnesses: np.ndarray, offsets) -> None:
        """Fold server-grouped speed witnesses (``size/service_time``).

        ``witnesses`` holds every completion's witnessed speed with
        server ``s`` owning the slice ``[offsets[s], offsets[s+1])`` in
        within-server completion order.  Identical final state to
        per-job :meth:`observe` calls in arrival order: per-server
        EWMAs are independent and a stable grouping preserves each
        server's observation order.  Witness positivity is the caller's
        contract (the replay path guarantees ``service_time > 0``).
        """
        for s, e in enumerate(self._ewmas):
            lo = int(offsets[s])
            hi = int(offsets[s + 1])
            if hi > lo:
                e.update_batch(witnesses[lo:hi])

    def speeds(self) -> np.ndarray:
        """Current estimate per server (nominal where no data yet)."""
        out = self.nominal.copy()
        for i, e in enumerate(self._ewmas):
            if e.count > 0:
                out[i] = e.value
        return out

    def state_dict(self) -> dict:
        return {"ewmas": [e.state_dict() for e in self._ewmas]}

    def load_state(self, state: dict) -> None:
        states = state["ewmas"]
        if len(states) != len(self._ewmas):
            raise ValueError(
                f"speed state has {len(states)} servers, expected {len(self._ewmas)}"
            )
        for e, s in zip(self._ewmas, states):
            e.load_state(s)


class P2Quantile:
    """Streaming quantile estimation by the P² algorithm.

    Jain & Chlamtac (CACM 1985): five markers track the running
    estimate of the *p*-quantile plus the extremes and two midpoints,
    adjusted per observation by a piecewise-parabolic interpolation —
    O(1) memory and time, no stored samples.  Until five observations
    have arrived the estimate is the exact (linearly interpolated)
    sample quantile of what has been seen.

    The update is a deterministic function of the observation sequence,
    so a service run's p50/p99 replay bit-identically, and the five
    markers serialize losslessly for crash-safe checkpoints.
    """

    __slots__ = ("p", "count", "_init", "_q", "_n", "_np", "_dn")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must lie in (0, 1), got {p}")
        self.p = float(p)
        self.reset()

    def reset(self) -> None:
        self.count = 0
        self._init: list[float] = []
        self._q: list[float] | None = None  # marker heights
        self._n: list[float] | None = None  # actual marker positions
        self._np: list[float] | None = None  # desired marker positions
        self._dn: tuple[float, ...] = ()

    def _start(self) -> None:
        self._init.sort()
        self._q = list(self._init)
        self._n = [0.0, 1.0, 2.0, 3.0, 4.0]
        p = self.p
        self._np = [0.0, 2.0 * p, 4.0 * p, 2.0 + 2.0 * p, 4.0]
        self._dn = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)
        self._init = []

    def update(self, x: float) -> None:
        x = float(x)
        self.count += 1
        if self._q is None:
            self._init.append(x)
            if len(self._init) == 5:
                self._start()
            return
        q, n, np_ = self._q, self._n, self._np
        # Locate the cell k with q[k] <= x < q[k+1], extremes absorbed.
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            if x > q[4]:
                q[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            np_[i] += self._dn[i]
        # Adjust the three interior markers toward their desired spots.
        for i in (1, 2, 3):
            d = np_[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                d = 1.0 if d >= 1.0 else -1.0
                cand = self._parabolic(i, d)
                if not q[i - 1] < cand < q[i + 1]:
                    cand = self._linear(i, d)
                q[i] = cand
                n[i] += d

    def update_batch(self, xs) -> None:
        """Fold a batch of observations, oldest first.

        Bit-identical to per-element :meth:`update` calls: elements are
        fed through Python until the five-sample warm-up completes,
        then the rest goes through the compiled marker fold (the exact
        locate/shift/parabolic/linear operation order) — or the same
        Python loop when the kernel is absent.
        """
        xs = np.ascontiguousarray(xs, dtype=float)
        total = int(xs.size)
        i = 0
        while self._q is None and i < total:
            self.update(float(xs[i]))
            i += 1
        if i == total:
            return
        ck = _ckernel()
        fn = ck.p2_fn()
        if fn is None:
            for j in range(i, total):
                self.update(float(xs[j]))
            return
        a = ck.arena()
        q = a.f64("p2.q", 5)
        n = a.f64("p2.n", 5)
        np_ = a.f64("p2.np", 5)
        dn = a.f64("p2.dn", 5)
        q[:] = self._q
        n[:] = self._n
        np_[:] = self._np
        dn[:] = self._dn
        ck.p2_fold_c(fn, q, n, np_, dn, xs[i:])
        self._q = [float(x) for x in q]
        self._n = [float(x) for x in n]
        self._np = [float(x) for x in np_]
        self.count += total - i

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (NaN before any observation)."""
        if self._q is not None:
            return self._q[2]
        if not self._init:
            return math.nan
        s = sorted(self._init)
        h = (len(s) - 1) * self.p
        lo = math.floor(h)
        hi = min(lo + 1, len(s) - 1)
        return s[lo] + (h - lo) * (s[hi] - s[lo])

    def state_dict(self) -> dict:
        return {
            "p": self.p,
            "count": self.count,
            "init": list(self._init),
            "q": None if self._q is None else list(self._q),
            "n": None if self._n is None else list(self._n),
            "np": None if self._np is None else list(self._np),
        }

    def load_state(self, state: dict) -> None:
        if float(state["p"]) != self.p:
            raise ValueError(
                f"checkpointed quantile {state['p']} does not match {self.p}"
            )
        self.reset()
        self.count = int(state["count"])
        self._init = [float(x) for x in state["init"]]
        if state["q"] is not None:
            p = self.p
            self._q = [float(x) for x in state["q"]]
            self._n = [float(x) for x in state["n"]]
            self._np = [float(x) for x in state["np"]]
            self._dn = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)


@dataclass(frozen=True)
class WorkloadEstimate:
    """One control-loop snapshot of the estimated workload parameters.

    ``up`` is the membership mask the failure detector reported —
    ``None`` means every server is believed up.  ``utilization`` is the
    offered load over the *surviving* capacity, which is the quantity a
    failure-aware re-solve needs.
    """

    arrival_rate: float
    mean_size: float
    speeds: np.ndarray
    utilization: float
    up: np.ndarray | None = None

    @property
    def usable(self) -> bool:
        """True when every field is finite and positive enough to solve."""
        speeds = self.speeds if self.up is None else self.speeds[self.up]
        return (
            math.isfinite(self.arrival_rate)
            and self.arrival_rate > 0.0
            and math.isfinite(self.mean_size)
            and self.mean_size > 0.0
            and speeds.size > 0
            and bool(np.all(np.isfinite(speeds)))
            and bool(np.all(speeds > 0.0))
        )


class OnlineWorkloadEstimator:
    """Facade tying the stream observations to a solver-ready snapshot.

    The service calls :meth:`observe_arrival` for every arriving job —
    admitted or shed, since the *offered* load is what sizing must
    track — and :meth:`observe_service` for every completed job; ρ̂
    follows as λ̂·m̂ / Σŝᵢ, estimated offered load over estimated
    capacity.  The failure detector narrows the capacity sum to the
    surviving servers via :meth:`set_membership`, so a snapshot taken
    while machines are down reports the utilization the survivors
    actually face.
    """

    def __init__(
        self,
        nominal_speeds,
        *,
        window: float,
        ewma_weight: float = 0.05,
    ):
        self.windowed_rate = WindowedRateEstimator(window)
        self.ewma_rate = EwmaRateEstimator(ewma_weight)
        self.mean_size = EwmaEstimator(ewma_weight)
        self.speed = ServerSpeedEstimator(nominal_speeds, ewma_weight)
        self.arrivals_seen = 0
        self._up: np.ndarray | None = None  # None = everything up

    def observe_arrival(self, t: float, size: float) -> None:
        self.windowed_rate.observe(t)
        self.ewma_rate.observe(t)
        self.mean_size.update(size)
        self.arrivals_seen += 1

    def observe_arrivals(self, times: np.ndarray, sizes: np.ndarray) -> None:
        """Batch form of :meth:`observe_arrival` (one window at once).

        Same final estimator state as the per-job loop — each
        constituent batch fold is bit-identical to its scalar
        recursion.
        """
        if times.size == 0:
            return
        self.windowed_rate.observe_batch(times)
        self.ewma_rate.observe_batch(times)
        self.mean_size.update_batch(sizes)
        self.arrivals_seen += int(times.size)

    def observe_service(self, server: int, size: float, service_time: float) -> None:
        self.speed.observe(server, size, service_time)

    def observe_services_grouped(self, witnesses: np.ndarray, offsets) -> None:
        """Batch form of :meth:`observe_service` over one window.

        ``witnesses`` are the server-grouped ``size/service_time``
        values (see :meth:`ServerSpeedEstimator.observe_grouped`).
        """
        self.speed.observe_grouped(witnesses, offsets)

    def set_membership(self, up) -> None:
        """Record which servers are up (failure-detector health signal).

        An all-up mask restores the fault-free snapshot path exactly.
        """
        up = np.asarray(up, dtype=bool)
        if up.shape != self.speed.nominal.shape:
            raise ValueError(
                f"membership mask has {up.size} entries for "
                f"{self.speed.nominal.size} servers"
            )
        self._up = None if bool(up.all()) else up.copy()

    def arrival_rate(self, now: float) -> float:
        """Windowed estimate, EWMA fallback before the window has data."""
        rate = self.windowed_rate.rate(now)
        if rate > 0.0:
            return rate
        return self.ewma_rate.rate(now)

    def snapshot(self, now: float) -> WorkloadEstimate:
        lam = self.arrival_rate(now)
        mean_size = self.mean_size.value
        speeds = self.speed.speeds()
        if self._up is None:
            capacity = float(speeds.sum())
        else:
            capacity = float(speeds[self._up].sum())
        if (
            lam > 0.0
            and math.isfinite(mean_size)
            and mean_size > 0.0
            and capacity > 0.0
        ):
            rho = lam * mean_size / capacity
        else:
            rho = math.nan
        return WorkloadEstimate(
            arrival_rate=lam,
            mean_size=mean_size,
            speeds=speeds,
            utilization=rho,
            up=None if self._up is None else self._up.copy(),
        )

    def state_dict(self) -> dict:
        return {
            "windowed_rate": self.windowed_rate.state_dict(),
            "ewma_rate": self.ewma_rate.state_dict(),
            "mean_size": self.mean_size.state_dict(),
            "speed": self.speed.state_dict(),
            "arrivals_seen": self.arrivals_seen,
            "up": None if self._up is None else [bool(u) for u in self._up],
        }

    def load_state(self, state: dict) -> None:
        self.windowed_rate.load_state(state["windowed_rate"])
        self.ewma_rate.load_state(state["ewma_rate"])
        self.mean_size.load_state(state["mean_size"])
        self.speed.load_state(state["speed"])
        self.arrivals_seen = int(state["arrivals_seen"])
        up = state["up"]
        self._up = None if up is None else np.asarray(up, dtype=bool)


class LatencyStats:
    """Streaming wall-clock latency accounting for the dispatch plane.

    The networked orchestrator times each window's decision work
    (estimator folds, admission mask, Algorithm 2 batch, partition) and
    folds the measurement here: running mean/extremes over per-window
    latencies plus streaming P² tail quantiles, and the job count the
    time was spent on, so ``bench --net`` can report an amortized
    ``dispatch_ns_per_job`` without keeping per-window samples.
    """

    __slots__ = ("windows", "jobs", "p50", "p99")

    def __init__(self):
        self.windows = RunningStats()
        self.jobs = 0
        self.p50 = P2Quantile(0.5)
        self.p99 = P2Quantile(0.99)

    def observe(self, seconds: float, jobs: int = 0) -> None:
        """Fold one window's decision latency covering *jobs* jobs."""
        if seconds < 0:
            raise ValueError(f"latency must be >= 0, got {seconds}")
        self.windows.add(float(seconds))
        self.jobs += int(jobs)
        self.p50.update(float(seconds))
        self.p99.update(float(seconds))

    @property
    def total_seconds(self) -> float:
        return self.windows.total

    @property
    def ns_per_job(self) -> float:
        """Amortized decision cost; NaN before any jobs were decided."""
        if self.jobs == 0:
            return math.nan
        return self.windows.total * 1e9 / self.jobs

    def as_dict(self) -> dict:
        return {
            "windows": self.windows.count,
            "jobs": self.jobs,
            "total_seconds": self.total_seconds,
            "ns_per_job": self.ns_per_job,
            "window_p50_s": self.p50.value,
            "window_p99_s": self.p99.value,
        }
