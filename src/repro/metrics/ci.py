"""Replication statistics: each figure point averages independent runs.

The paper reports each data point as the average of 10 independent runs
with different random streams.  :class:`ReplicationSummary` carries that
average plus a Student-t confidence interval so EXPERIMENTS.md can state
whether paper-vs-measured gaps are within run-to-run noise.

:class:`PairedSummary` is the common-random-numbers companion: because
every policy evaluated with the same replication seed sees the *same*
arrival and size streams (see :mod:`repro.rng`), per-replication metric
differences between two policies are matched pairs.  The paired t
interval on those differences cancels the between-replication stream
noise that dominates independent intervals, so policy comparisons reach
a target precision with far fewer replications.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy import stats


@lru_cache(maxsize=256)
def _t_quantile(confidence: float, df: int) -> float:
    """Student-t quantile, memoized: sweeps call this thousands of times
    with a handful of distinct (confidence, df) pairs, and scipy's ppf
    costs ~100µs per evaluation."""
    return float(stats.t.ppf(0.5 + confidence / 2.0, df=df))

__all__ = [
    "ReplicationSummary",
    "summarize_replications",
    "PairedSummary",
    "summarize_paired",
]


def _safe_half_width(std: float, n: int, confidence: float) -> tuple[float, bool]:
    """t half-width guarded against degenerate spread estimates.

    ``std(ddof=1)`` is NaN for n=1 and can be NaN/inf when the inputs
    themselves are non-finite; a NaN half-width poisons every downstream
    comparison (``NaN <= target`` is False, so precision loops burn
    replications to their cap without ever converging).  Degenerate
    spreads collapse to an explicitly flagged zero-width interval
    instead: no spread estimate is possible, and adding replications of
    the same degenerate data would never tighten it.
    """
    if not math.isfinite(std):
        return 0.0, True
    if std == 0.0:
        return 0.0, True
    t = _t_quantile(confidence, n - 1)
    return t * std / math.sqrt(n), False


@dataclass(frozen=True)
class ReplicationSummary:
    """Mean over replications with a symmetric t confidence interval.

    ``degenerate`` marks intervals whose width is zero by *construction*
    rather than by measurement: a single replication, a zero-variance
    sample, or non-finite inputs.  Consumers that iterate "until the
    interval is tight" must treat a degenerate interval as final.
    """

    mean: float
    std: float
    n: int
    half_width: float
    confidence: float
    #: True when no spread estimate was possible (n=1, zero variance,
    #: or non-finite inputs) and the zero width is a flag, not a fact.
    degenerate: bool = False

    @property
    def lower(self) -> float:
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """CI half-width as a fraction of the mean (precision gauge)."""
        if not math.isfinite(self.mean):
            # A non-finite mean can never be measured to a precision;
            # inf (not NaN) keeps `<= target` comparisons well-defined.
            return math.inf
        if self.mean == 0:
            return math.inf if self.half_width > 0 else 0.0
        return self.half_width / abs(self.mean)

    def overlaps(self, other: "ReplicationSummary") -> bool:
        """True when the two intervals intersect (difference may be noise)."""
        return self.lower <= other.upper and other.lower <= self.upper

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.6g} ± {self.half_width:.2g} (n={self.n})"


def summarize_replications(values, confidence: float = 0.95) -> ReplicationSummary:
    """Summarize one metric across replications.

    A single replication, a zero-variance sample, or non-finite inputs
    yield a zero-width interval flagged ``degenerate`` (no spread
    estimate is possible); everything else uses the Student-t quantile.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("no replication values")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    mean = float(arr.mean())
    if arr.size == 1:
        return ReplicationSummary(mean=mean, std=0.0, n=1, half_width=0.0,
                                  confidence=confidence, degenerate=True)
    with np.errstate(invalid="ignore", over="ignore"):
        std = float(arr.std(ddof=1))
    half, degenerate = _safe_half_width(std, int(arr.size), confidence)
    if degenerate:
        std = 0.0
    return ReplicationSummary(mean=mean, std=std, n=int(arr.size),
                              half_width=half, confidence=confidence,
                              degenerate=degenerate)


@dataclass(frozen=True)
class PairedSummary:
    """Paired-difference summary of metric ``a − b`` under CRN.

    ``mean_diff`` is the mean per-replication difference; the t interval
    is on the differences, so shared stream noise cancels.  For the
    paper's metrics smaller is better, hence the verdict reads a
    significantly *negative* difference as a win for ``a``.
    """

    a: str
    b: str
    mean_diff: float
    std: float
    n: int
    half_width: float
    confidence: float
    #: True when the interval width is a flag, not a measurement: one
    #: pair, an exactly zero-variance difference vector (identical
    #: policies under CRN), or non-finite inputs.
    degenerate: bool = False

    @property
    def lower(self) -> float:
        return self.mean_diff - self.half_width

    @property
    def upper(self) -> float:
        return self.mean_diff + self.half_width

    @property
    def verdict(self) -> str:
        """``"a_wins"``, ``"b_wins"``, or ``"tie"`` (interval spans 0)."""
        if self.upper < 0.0:
            return "a_wins"
        if self.lower > 0.0:
            return "b_wins"
        return "tie"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.a}−{self.b}: {self.mean_diff:.6g} ± {self.half_width:.2g} "
            f"(n={self.n}, {self.verdict})"
        )


def summarize_paired(
    a_values,
    b_values,
    confidence: float = 0.95,
    labels: tuple[str, str] = ("A", "B"),
) -> PairedSummary:
    """Paired t interval on per-replication differences ``a − b``.

    The two sequences must come from replications sharing seeds (common
    random numbers) and be aligned by replication index — that is what
    makes them matched pairs.  A single pair yields a zero-width
    interval, mirroring :func:`summarize_replications`.
    """
    a = np.asarray(list(a_values), dtype=float)
    b = np.asarray(list(b_values), dtype=float)
    if a.size == 0:
        raise ValueError("no replication values")
    if a.shape != b.shape:
        raise ValueError(
            f"paired sequences must align, got {a.size} vs {b.size} values"
        )
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    diff = a - b
    mean = float(diff.mean())
    if diff.size == 1:
        return PairedSummary(a=labels[0], b=labels[1], mean_diff=mean, std=0.0,
                             n=1, half_width=0.0, confidence=confidence,
                             degenerate=True)
    with np.errstate(invalid="ignore", over="ignore"):
        std = float(diff.std(ddof=1))
    half, degenerate = _safe_half_width(std, int(diff.size), confidence)
    if degenerate:
        std = 0.0
    return PairedSummary(a=labels[0], b=labels[1], mean_diff=mean, std=std,
                         n=int(diff.size), half_width=half,
                         confidence=confidence, degenerate=degenerate)
