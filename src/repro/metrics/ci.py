"""Replication statistics: each figure point averages independent runs.

The paper reports each data point as the average of 10 independent runs
with different random streams.  :class:`ReplicationSummary` carries that
average plus a Student-t confidence interval so EXPERIMENTS.md can state
whether paper-vs-measured gaps are within run-to-run noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["ReplicationSummary", "summarize_replications"]


@dataclass(frozen=True)
class ReplicationSummary:
    """Mean over replications with a symmetric t confidence interval."""

    mean: float
    std: float
    n: int
    half_width: float
    confidence: float

    @property
    def lower(self) -> float:
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """CI half-width as a fraction of the mean (precision gauge)."""
        if self.mean == 0:
            return math.inf if self.half_width > 0 else 0.0
        return self.half_width / abs(self.mean)

    def overlaps(self, other: "ReplicationSummary") -> bool:
        """True when the two intervals intersect (difference may be noise)."""
        return self.lower <= other.upper and other.lower <= self.upper

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.6g} ± {self.half_width:.2g} (n={self.n})"


def summarize_replications(values, confidence: float = 0.95) -> ReplicationSummary:
    """Summarize one metric across replications.

    A single replication yields a zero-width interval (no spread
    estimate is possible); two or more use the Student-t quantile.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("no replication values")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    mean = float(arr.mean())
    if arr.size == 1:
        return ReplicationSummary(mean=mean, std=0.0, n=1, half_width=0.0,
                                  confidence=confidence)
    std = float(arr.std(ddof=1))
    t = float(stats.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1))
    half = t * std / math.sqrt(arr.size)
    return ReplicationSummary(mean=mean, std=std, n=int(arr.size),
                              half_width=half, confidence=confidence)
