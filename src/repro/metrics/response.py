"""Job-level performance metrics (Section 2.3 / 4.1 definitions).

* **Mean response time** — average completion time (departure − arrival)
  over all jobs.
* **Response ratio** of a job — response time divided by its *size*,
  where size is the job's run time on an idle speed-1 machine.  The mean
  response ratio removes the job-size effect; a ratio of r means the job
  took r times its standalone speed-1 duration.
* **Fairness** — the standard deviation of the response ratio over all
  jobs (smaller is better/fairer: users tolerate delays proportional to
  job size, not arbitrary ones).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .online import RunningStats

__all__ = ["ResponseMetrics", "MetricsCollector"]


@dataclass(frozen=True)
class ResponseMetrics:
    """Final metric values for one simulation run."""

    jobs: int
    mean_response_time: float
    mean_response_ratio: float
    fairness: float
    max_response_ratio: float
    mean_job_size: float

    def as_dict(self) -> dict[str, float]:
        return {
            "jobs": self.jobs,
            "mean_response_time": self.mean_response_time,
            "mean_response_ratio": self.mean_response_ratio,
            "fairness": self.fairness,
            "max_response_ratio": self.max_response_ratio,
            "mean_job_size": self.mean_job_size,
        }


class MetricsCollector:
    """Accumulates per-job statistics, honouring the warm-up cutoff.

    Only jobs *arriving* at or after ``warmup_end`` count (the paper
    collects statistics from the jobs that arrive after the start-up
    period); jobs arriving earlier are ignored entirely even if they
    complete later.
    """

    def __init__(self, warmup_end: float = 0.0):
        if warmup_end < 0:
            raise ValueError(f"warmup_end must be non-negative, got {warmup_end}")
        self.warmup_end = float(warmup_end)
        self.response_time = RunningStats()
        self.response_ratio = RunningStats()
        self.job_size = RunningStats()

    def record(self, arrival: float, completion: float, size: float) -> None:
        """Record one finished job (no-op if it arrived during warm-up)."""
        if arrival < self.warmup_end:
            return
        if completion < arrival:
            raise ValueError(
                f"completion {completion} precedes arrival {arrival}"
            )
        if size <= 0:
            raise ValueError(f"job size must be positive, got {size}")
        response = completion - arrival
        self.response_time.add(response)
        self.response_ratio.add(response / size)
        self.job_size.add(size)

    def record_batch(
        self,
        arrivals: np.ndarray,
        completions: np.ndarray,
        sizes: np.ndarray,
        *,
        assume_valid: bool = False,
        arrivals_sorted: bool = False,
    ) -> None:
        """Vectorized form of :meth:`record` for the fast path.

        ``assume_valid`` skips the completion/size sanity scans — for
        callers that already validated the whole stream (the static fast
        path checks sizes once per replication and its replay kernels
        produce completions at or after arrival by construction).
        ``arrivals_sorted`` replaces the warm-up boolean gather with a
        binary-searched suffix slice; the surviving jobs — and therefore
        the accumulated bits — are identical, the copies are not made.
        """
        arrivals = np.asarray(arrivals, dtype=float)
        completions = np.asarray(completions, dtype=float)
        sizes = np.asarray(sizes, dtype=float)
        if not (arrivals.shape == completions.shape == sizes.shape):
            raise ValueError("arrival/completion/size arrays must align")
        if not assume_valid:
            if np.any(completions < arrivals):
                raise ValueError("some completions precede their arrivals")
            if np.any(sizes <= 0):
                raise ValueError("job sizes must be positive")
        if arrivals_sorted:
            cut = int(np.searchsorted(arrivals, self.warmup_end, side="left"))
            if cut >= arrivals.size:
                return
            arrivals = arrivals[cut:]
            completions = completions[cut:]
            sizes = sizes[cut:]
        else:
            keep = arrivals >= self.warmup_end
            if not np.any(keep):
                return
            arrivals = arrivals[keep]
            completions = completions[keep]
            sizes = sizes[keep]
        response = completions - arrivals
        self.response_time.add_array(response)
        self.response_ratio.add_array(response / sizes)
        self.job_size.add_array(sizes)

    def merge(self, other: "MetricsCollector") -> None:
        """Fold another collector in (e.g. per-server collectors)."""
        if other.warmup_end != self.warmup_end:
            raise ValueError(
                f"warm-up mismatch: {self.warmup_end} vs {other.warmup_end}"
            )
        self.response_time.merge(other.response_time)
        self.response_ratio.merge(other.response_ratio)
        self.job_size.merge(other.job_size)

    @property
    def jobs(self) -> int:
        return self.response_time.count

    def finalize(self) -> ResponseMetrics:
        """Snapshot the three paper metrics (raises if nothing recorded)."""
        if self.jobs == 0:
            raise ValueError("no jobs recorded after warm-up")
        return ResponseMetrics(
            jobs=self.jobs,
            mean_response_time=self.response_time.mean,
            mean_response_ratio=self.response_ratio.mean,
            fairness=self.response_ratio.std,
            max_response_ratio=self.response_ratio.max,
            mean_job_size=self.job_size.mean,
        )
