"""Round-robin based job dispatching — the paper's Algorithm 2 (Section 3.2).

The strategy equalizes the number of *overall* arrivals falling between
successive jobs sent to the same computer, which smooths each computer's
substream without measuring inter-arrival times.  Each computer carries
two attributes:

* ``assign`` — jobs sent to it so far;
* ``next``   — expected number of further arrivals before its next job.

On each arrival the computer with the smallest ``next`` wins; ties go to
the smallest ``(assign + 1)/α`` (step 2.c.3 — the algorithm listing
normalizes by the workload fraction, which is the speed-proportional
quantity under weighted allocation).  The winner's ``next`` is advanced
by 1/α — it expects one job out of every 1/α arrivals — and every
computer that has started receiving jobs counts the dispatched arrival
down (step 2.h).

The guard initialization ``next = 1`` (step 1) staggers *first*
assignments: big-fraction computers start immediately (smallest
normalized assign), while small-fraction computers are held off until a
started computer's ``next`` drops below the guard, spreading their first
jobs evenly through a cycle.  When all fractions are equal the whole
scheme degenerates to the classic round robin.

Implementation notes: this is a *bit-exact* transcription of the paper's
listing (the test suite checks it against an independent oracle), with
state in plain Python lists — ``select`` runs once per arriving job and
small-list access is several times faster than numpy scalar indexing.
Only computers with α > 0 are scanned (step 2.c.1's ``continue``), and
the step 2.h decrement touches only started computers, exactly as the
guard semantics require.  ``next`` values stay bounded (they decrease by
1 per arrival and rise by 1/α on selection), so no drift accumulates
over multi-million-job runs beyond the ±ulp rounding the paper's own
float implementation had.
"""

from __future__ import annotations

import numpy as np

from .base import StaticDispatcher

__all__ = [
    "RoundRobinDispatcher",
    "SequenceRoundRobin",
    "build_dispatch_sequence",
    "dispatch_sequence_slice",
    "sequence_memo_key",
]


class RoundRobinDispatcher(StaticDispatcher):
    """Deterministic weighted round robin per Algorithm 2.

    Parameters
    ----------
    guard_init:
        Initial value of every ``next`` field.  The paper uses 1 (the
        guard that staggers first assignments); the ablation benchmark
        sets 0 to show the resulting early-cycle clumping.
    """

    name = "round_robin"
    # Algorithm 2 never looks at job sizes or random numbers: the target
    # sequence is a pure function of (alphas, arrival count), so the
    # fast path may memoize it across replications.
    sequence_deterministic = True

    def __init__(self, guard_init: float = 1.0):
        super().__init__()
        if guard_init < 0:
            raise ValueError(f"guard_init must be non-negative, got {guard_init}")
        self.guard_init = float(guard_init)
        self._assign: list[int] = []
        self._next: list[float] = []
        self._started: list[int] = []  # indices with assign > 0, scan order
        self._active: list[int] = []   # indices with alpha > 0
        self._inv_alpha: list[float] = []

    def _setup(self) -> None:
        alphas = self.alphas
        n = alphas.size
        active = np.nonzero(alphas > 0)[0]
        if active.size == 0:
            raise ValueError("round robin needs at least one positive fraction")
        self._assign = [0] * n
        self._next = [self.guard_init] * n
        self._started = []
        self._active = [int(i) for i in active]
        self._inv_alpha = [
            (1.0 / float(alphas[i]) if alphas[i] > 0 else float("inf"))
            for i in range(n)
        ]

    def select(self, size: float) -> int:
        """One iteration of Algorithm 2's dispatch loop (steps 2.b–2.h)."""
        self._require_reset()
        assign = self._assign
        nxt = self._next
        inv = self._inv_alpha

        # Steps 2.b/2.c: smallest `next` wins; ties by smallest
        # (assign + 1)/alpha.  Only alpha > 0 computers participate
        # (the `continue` of step 2.c.1).
        select = -1
        minnext = 0.0
        norassign = 0.0
        for i in self._active:
            ni = nxt[i]
            if select == -1 or ni < minnext:
                minnext = ni
                norassign = (assign[i] + 1) * inv[i]
                select = i
            elif ni == minnext:
                cand = (assign[i] + 1) * inv[i]
                if cand < norassign:
                    norassign = cand
                    select = i

        # Step 2.d: a first-time winner resets its `next` to 0 ("now").
        if assign[select] == 0:
            nxt[select] = 0.0
            self._started.append(select)
        # Steps 2.e/2.f: it expects its next job 1/alpha arrivals out.
        nxt[select] += inv[select]
        assign[select] += 1
        # Step 2.h: the dispatched arrival counts down every computer
        # that has started receiving jobs (assign != 0).
        for i in self._started:
            nxt[i] -= 1.0
        return select

    # ------------------------------------------------------------------
    # Introspection helpers used by tests
    # ------------------------------------------------------------------

    @property
    def assigned_counts(self) -> np.ndarray:
        """Jobs dispatched per computer so far (copy)."""
        self._require_reset()
        return np.asarray(self._assign, dtype=np.int64)

    @property
    def next_fields(self) -> np.ndarray:
        """Current ``next`` values (copy)."""
        self._require_reset()
        return np.asarray(self._next, dtype=float)

    # ------------------------------------------------------------------
    # Crash-safe service checkpoints
    # ------------------------------------------------------------------
    #
    # The service swaps sequences only at some window boundaries, so a
    # checkpoint usually lands mid-sequence; `assign`/`next` must be
    # restored exactly or the resumed run walks a different sequence.

    def state_dict(self) -> dict:
        return {
            "guard_init": self.guard_init,
            "alphas": None if self.alphas is None else [float(a) for a in self.alphas],
            "assign": [int(a) for a in self._assign],
            "next": [float(x) for x in self._next],
            "started": [int(i) for i in self._started],
        }

    def load_state(self, state: dict) -> None:
        self.guard_init = float(state["guard_init"])
        if state["alphas"] is None:
            self.alphas = None
            return
        self.reset(np.asarray(state["alphas"], dtype=float))
        if "assign" in state:
            self._assign = [int(a) for a in state["assign"]]
            self._next = [float(x) for x in state["next"]]
            self._started = [int(i) for i in state["started"]]
        else:
            # A SequenceRoundRobin checkpoint stores only the sequence
            # position; Algorithm 2 is a pure function of the arrival
            # count, so replaying `pos` selections reconstructs the
            # exact (assign, next, started) state.
            self.select_batch(np.zeros(int(state["pos"])))


# ----------------------------------------------------------------------
# Memoized sequence builder
# ----------------------------------------------------------------------
#
# Algorithm 2 never looks at job sizes or random numbers, so the target
# sequence is a pure function of (alphas, guard_init, arrival count) and
# the sequence for N jobs is a prefix of the sequence for M > N jobs.
# The memo computes each sequence once per process and extends it
# statefully: every entry owns a *private* dispatcher that nothing else
# can reset, so a caller reusing one dispatcher object across different
# allocations cannot corrupt a cached prefix (extending a corrupted
# entry used to leak zero-share servers into the sequence).  The key
# carries the full byte pattern of the allocation vector, so allocations
# that differ only in *which* server holds the zero share occupy
# distinct entries.  Targets are stored as int16 (a network never has
# 32k computers) and entries are LRU-bounded.

_SEQUENCE_MEMO_ENTRIES = 4
_sequence_memo: dict[tuple, tuple[np.ndarray, "RoundRobinDispatcher"]] = {}


def _extend_targets(private: "RoundRobinDispatcher", count: int) -> np.ndarray:
    """The next ``count`` Algorithm 2 targets from a live dispatcher.

    Advances ``private``'s state exactly as ``count`` ``select`` calls
    would, through the compiled ``rr_sequence_extend`` loop when the
    kernel is available (the tie-break products use the identical
    ``_inv_alpha`` doubles, so the sequence and the post-call state are
    bit-identical to the Python loop).  Falls back to ``select_batch``
    otherwise.  Returns int16 (the memo's storage dtype).
    """
    if count <= 0:
        return np.empty(0, dtype=np.int16)
    from ..sim import ckernel  # local: repro.sim.fastpath imports us

    fn = ckernel.rr_fn()
    if fn is None:
        return private.select_batch(np.zeros(count)).astype(np.int16)
    inv = np.asarray(private._inv_alpha, dtype=float)
    active = np.asarray(private._active, dtype=np.int64)
    assign = np.asarray(private._assign, dtype=np.int64)
    nxt = np.asarray(private._next, dtype=float)
    out = np.empty(count, dtype=np.int64)
    was_started = [a > 0 for a in private._assign]
    ckernel.rr_extend_c(fn, inv, active, assign, nxt, out)
    private._assign = [int(a) for a in assign]
    private._next = [float(x) for x in nxt]
    # `_started` keeps first-win append order (it only drives the
    # order-insensitive step 2.h decrement, but checkpoints serialize
    # it, so the Python loop's ordering is reproduced exactly).
    newly = [int(i) for i in active if not was_started[i] and assign[i] > 0]
    if newly:
        first_pos = {s: int(np.argmax(out == s)) for s in newly}
        newly.sort(key=first_pos.__getitem__)
        private._started.extend(newly)
    return out.astype(np.int16)


def sequence_memo_key(alphas: np.ndarray, guard_init: float = 1.0) -> tuple:
    """Memo key for Algorithm 2's target sequence.

    Includes the vector length and every byte of every entry: two
    allocations whose nonzero values match but whose zero share sits on
    a different server produce different sequences and must not share a
    cache line.
    """
    a = np.ascontiguousarray(np.asarray(alphas, dtype=float))
    return ("round_robin", float(guard_init), a.size, a.tobytes())


def build_dispatch_sequence(
    alphas: np.ndarray, count: int, *, guard_init: float = 1.0
) -> tuple[np.ndarray, str]:
    """First ``count`` dispatch targets of Algorithm 2, memoized.

    Bit-identical to resetting a fresh :class:`RoundRobinDispatcher`
    with ``alphas`` and calling ``select_batch`` on ``count`` jobs.
    Returns ``(targets, status)`` where ``targets`` is an int64 array of
    length ``count`` and ``status`` is ``"miss"``, ``"extend"``, or
    ``"hit"`` (exposed for telemetry).  Servers with an exactly zero
    share never appear in the sequence.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    key = sequence_memo_key(alphas, guard_init)
    entry = _sequence_memo.pop(key, None)
    if entry is None:
        status = "miss"
        private = RoundRobinDispatcher(guard_init=guard_init)
        private.reset(np.array(alphas, dtype=float, copy=True))
        targets = _extend_targets(private, count)
        entry = (targets, private)
    else:
        targets, private = entry
        if count > targets.size:
            status = "extend"
            extra = _extend_targets(private, count - targets.size)
            targets = np.concatenate([targets, extra])
            entry = (targets, private)
        else:
            status = "hit"
    _sequence_memo[key] = entry  # re-insert: dict preserves LRU order
    while len(_sequence_memo) > _SEQUENCE_MEMO_ENTRIES:
        _sequence_memo.pop(next(iter(_sequence_memo)))
    return entry[0][:count].astype(np.int64), status


def dispatch_sequence_slice(
    alphas: np.ndarray, start: int, stop: int, *, guard_init: float = 1.0
) -> np.ndarray:
    """Targets ``[start, stop)`` of Algorithm 2's sequence, memoized.

    The window-serving counterpart of :func:`build_dispatch_sequence`:
    where that returns (and copies) the whole prefix, this copies only
    the requested slice, so a service dispatching window after window
    pays O(window) per call instead of O(total dispatched so far).
    Extension is geometric (to ``max(stop, 2 × cached)``), keeping the
    amortized per-job cost constant across a long run; over-extension
    is harmless because the sequence for N jobs is a prefix of the
    sequence for M > N jobs.
    """
    if not 0 <= start <= stop:
        raise ValueError(f"invalid sequence slice [{start}, {stop})")
    key = sequence_memo_key(alphas, guard_init)
    entry = _sequence_memo.pop(key, None)
    if entry is None:
        private = RoundRobinDispatcher(guard_init=guard_init)
        private.reset(np.array(alphas, dtype=float, copy=True))
        entry = (_extend_targets(private, stop), private)
    else:
        targets, private = entry
        if stop > targets.size:
            grow_to = max(stop, 2 * targets.size)
            extra = _extend_targets(private, grow_to - targets.size)
            entry = (np.concatenate([targets, extra]), private)
    _sequence_memo[key] = entry  # re-insert: dict preserves LRU order
    while len(_sequence_memo) > _SEQUENCE_MEMO_ENTRIES:
        _sequence_memo.pop(next(iter(_sequence_memo)))
    return entry[0][start:stop].astype(np.int64)


class SequenceRoundRobin(StaticDispatcher):
    """Algorithm 2 served as slices of the memoized target sequence.

    Dispatch-wise indistinguishable from :class:`RoundRobinDispatcher`
    — the sequence is the same bits — but O(window) per batch with no
    per-job Python scan: the serving loop's fast path.  Carries only a
    position into the sequence; checkpoints interoperate both ways
    (either class restores the other's ``state_dict``, see
    ``load_state``).
    """

    name = "round_robin"
    sequence_deterministic = True

    def __init__(self, guard_init: float = 1.0):
        super().__init__()
        if guard_init < 0:
            raise ValueError(f"guard_init must be non-negative, got {guard_init}")
        self.guard_init = float(guard_init)
        self._pos = 0

    def _setup(self) -> None:
        if not np.any(self.alphas > 0):
            raise ValueError("round robin needs at least one positive fraction")
        self._pos = 0

    def select(self, size: float) -> int:
        self._require_reset()
        target = dispatch_sequence_slice(
            self.alphas, self._pos, self._pos + 1, guard_init=self.guard_init
        )
        self._pos += 1
        return int(target[0])

    def select_batch(self, sizes: np.ndarray) -> np.ndarray:
        self._require_reset()
        count = int(np.asarray(sizes).size)
        targets = dispatch_sequence_slice(
            self.alphas, self._pos, self._pos + count, guard_init=self.guard_init
        )
        self._pos += count
        return targets

    def state_dict(self) -> dict:
        return {
            "guard_init": self.guard_init,
            "alphas": None if self.alphas is None else [float(a) for a in self.alphas],
            "pos": int(self._pos),
        }

    def load_state(self, state: dict) -> None:
        self.guard_init = float(state["guard_init"])
        if state["alphas"] is None:
            self.alphas = None
            return
        self.reset(np.asarray(state["alphas"], dtype=float))
        if "pos" in state:
            self._pos = int(state["pos"])
        else:
            # Legacy RoundRobinDispatcher checkpoint: the sequence
            # position is the total number of jobs dispatched.
            self._pos = int(sum(int(a) for a in state["assign"]))
