"""Dynamic Least-Load dispatching — the paper's dynamic yardstick.

The central scheduler tracks each computer's run-queue length *as known
to it*.  An arriving job goes to the computer minimizing the normalized
load ``(run_queue_length + 1) / speed`` (Section 2.2).  Bookkeeping
follows Section 4.2 exactly:

* **Arrival** — the scheduler increments the target's known queue length
  immediately after sending the job (no rescheduling, so the information
  is locally exact).
* **Departure** — the *computer* must notice the completion (it polls
  its load index every second → U(0, 1) detection delay) and then send a
  load-update message (exponential transfer delay, mean 0.05 s).  Only
  when the message arrives does the scheduler decrement its view.

The delays make the scheduler's view stale, which is what keeps this an
honest dynamic baseline rather than an oracle.  The simulation engine
owns the delay machinery (:mod:`repro.sim.feedback`) and calls
:meth:`LeastLoadDispatcher.on_load_update` on message arrival.
"""

from __future__ import annotations

import numpy as np

from .base import Dispatcher

__all__ = ["LeastLoadDispatcher"]


class LeastLoadDispatcher(Dispatcher):
    """Least normalized-load policy over the scheduler's (stale) view.

    Ties on the normalized load are broken toward the fastest computer
    (it clears the extra job soonest), then lowest index for determinism.
    """

    name = "least_load"
    is_static = False

    def __init__(self, speeds):
        super().__init__()
        self.speeds = np.asarray(speeds, dtype=float)
        if self.speeds.ndim != 1 or self.speeds.size == 0:
            raise ValueError("speeds must be a non-empty 1-D vector")
        if np.any(self.speeds <= 0):
            raise ValueError(f"speeds must be positive, got {self.speeds}")
        self._known_queue: np.ndarray | None = None

    def reset(self, alphas=None) -> None:
        """Least-load ignores workload fractions; *alphas* may be None."""
        if alphas is None:
            self.alphas = np.full(self.speeds.size, 1.0 / self.speeds.size)
        else:
            super().reset(alphas)
            if self.alphas.size != self.speeds.size:
                raise ValueError(
                    f"{self.alphas.size} fractions for {self.speeds.size} speeds"
                )
        self._known_queue = np.zeros(self.speeds.size, dtype=np.int64)

    def _queue(self) -> np.ndarray:
        if self._known_queue is None:
            raise RuntimeError("reset() must be called before dispatching")
        return self._known_queue

    def select(self, size: float) -> int:
        q = self._queue()
        normalized = (q + 1) / self.speeds
        best = normalized.min()
        # Ties: fastest first, then lowest index.
        candidates = np.nonzero(normalized == best)[0]
        choice = int(candidates[np.argmax(self.speeds[candidates])])
        q[choice] += 1
        return choice

    def on_load_update(self, server: int) -> None:
        """A departure notification arrived: decrement the known load."""
        q = self._queue()
        if not 0 <= server < q.size:
            raise IndexError(f"server index {server} out of range")
        if q[server] <= 0:
            raise RuntimeError(
                f"load update for server {server} with known queue already 0 — "
                "feedback double-counted a departure"
            )
        q[server] -= 1

    @property
    def known_queue_lengths(self) -> np.ndarray:
        """Scheduler's current (possibly stale) per-computer view (copy)."""
        return self._queue().copy()
