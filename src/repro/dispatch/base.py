"""Job-dispatching interfaces (the paper's Section 3).

A *dispatcher* realizes an allocation α job-by-job: as each job arrives
it names the computer that must run it.  Static dispatchers (random,
round-robin) decide from the arrival sequence alone; the Dynamic
Least-Load yardstick additionally consumes load feedback delivered by
the simulation engine through :meth:`Dispatcher.on_load_update`.
"""

from __future__ import annotations

import abc

import numpy as np

from ..queueing.network import validate_allocation

__all__ = ["Dispatcher", "StaticDispatcher"]


class Dispatcher(abc.ABC):
    """Strategy object splitting the arrival stream into n substreams."""

    #: Short name used in experiment tables ("random", "round_robin", ...).
    name: str = "base"

    #: True when decisions depend only on the arrival sequence — such
    #: dispatchers are eligible for the vectorized fast simulation path.
    is_static: bool = True

    #: True when the target sequence is a pure function of the arrival
    #: *count* — no randomness, no dependence on job sizes.  The fast
    #: path may then serve decisions from a process-level memo: the
    #: sequence for N jobs is a prefix of the sequence for M > N jobs,
    #: so replications sharing one α vector compute it once.
    sequence_deterministic: bool = False

    def __init__(self):
        self.alphas: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def reset(self, alphas) -> None:
        """(Re)initialize for a run with workload fractions *alphas*."""
        self.alphas = validate_allocation(alphas)
        self._setup()

    def _setup(self) -> None:
        """Hook for subclass state initialization (alphas already set)."""

    def _require_reset(self) -> np.ndarray:
        if self.alphas is None:
            raise RuntimeError(
                f"{type(self).__name__}.reset(alphas) must be called before dispatching"
            )
        return self.alphas

    @property
    def n(self) -> int:
        return int(self._require_reset().size)

    # ------------------------------------------------------------------
    # Dispatching
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def select(self, size: float) -> int:
        """Return the index of the computer that runs the arriving job.

        *size* is the job's service demand; static policies other than
        the clairvoyant SITA extension ignore it (the paper's schemes do
        not assume sizes are known a priori).
        """

    def select_batch(self, sizes: np.ndarray) -> np.ndarray:
        """Vectorizable bulk form of :meth:`select` (same semantics).

        The default loops; subclasses override when a faster kernel
        exists (e.g. one multinomial draw for the random dispatcher).
        """
        sizes = np.asarray(sizes, dtype=float)
        return np.fromiter(
            (self.select(float(x)) for x in sizes), dtype=np.int64, count=sizes.size
        )

    # ------------------------------------------------------------------
    # Feedback hooks (dynamic policies only)
    # ------------------------------------------------------------------

    @property
    def wants_feedback(self) -> bool:
        """Whether the engine should deliver delayed departure messages.

        Defaults to "every dynamic dispatcher"; time-driven adaptive
        policies that only observe arrivals override this to False.
        """
        return not self.is_static

    def observe_arrival(self, now: float) -> None:
        """The engine's wall-clock notification of an arriving job,
        invoked just before :meth:`select`.  No-op by default; adaptive
        policies use it to drive periodic re-estimation."""

    def on_load_update(self, server: int) -> None:
        """A delayed job-departure notification reached the scheduler.

        No-op for static dispatchers.
        """

    def on_membership_change(
        self, up: np.ndarray, utilization: float, speeds=None
    ) -> None:
        """A server failed or was repaired (fault injection only).

        *up* is the boolean liveness mask, *utilization* the offered
        load relative to the surviving capacity, and *speeds* the
        (possibly drift-perturbed) speed estimates.  No-op by default —
        oblivious policies keep dispatching blindly; the failure-aware
        wrapper (:class:`repro.faults.FailureAwareDispatcher`)
        re-solves the allocation here.
        """


class StaticDispatcher(Dispatcher):
    """Marker base for dispatchers that never use feedback."""

    is_static = True
