"""Power-of-d-choices dispatching — JSQ(d) with stale information.

An extension filling the spectrum between the paper's two endpoints:

* d = 1 is random dispatching (no information), and
* d = n is exactly the Dynamic Least-Load yardstick (full information),

while 1 < d < n samples d computers per job and picks the one with the
least *known* normalized load — the classic "power of two choices"
scheme, here driven by the same delayed load-update feedback as
Least-Load so its information is equally stale.  The extension bench
shows how much of Least-Load's advantage two samples already capture,
and where ORR (zero runtime information) sits against it.
"""

from __future__ import annotations

import numpy as np

from .base import Dispatcher

__all__ = ["PowerOfDChoicesDispatcher"]


class PowerOfDChoicesDispatcher(Dispatcher):
    """JSQ(d) over the scheduler's (stale) per-computer queue view.

    Ties on normalized load go to the fastest sampled computer, then
    lowest index.

    **Heterogeneity pitfall** — with *uniform* sampling
    (``weighted_sampling=False``) the offered load per speed class is
    proportional to head-count, not capacity: on a cluster whose slow
    machines outnumber their capacity share, JSQ(d) with small d is
    outright *unstable* (the extension bench demonstrates it).  The
    default samples computers with probability proportional to speed,
    which restores capacity-proportional offered load while keeping the
    d-sample advantage.
    """

    is_static = False

    def __init__(self, speeds, d: int, rng: np.random.Generator,
                 *, weighted_sampling: bool = True):
        super().__init__()
        self.speeds = np.asarray(speeds, dtype=float)
        if self.speeds.ndim != 1 or self.speeds.size == 0:
            raise ValueError("speeds must be a non-empty 1-D vector")
        if np.any(self.speeds <= 0):
            raise ValueError(f"speeds must be positive, got {self.speeds}")
        if not 1 <= d <= self.speeds.size:
            raise ValueError(
                f"d must lie in [1, {self.speeds.size}], got {d}"
            )
        self.d = int(d)
        self.rng = rng
        self.weighted_sampling = bool(weighted_sampling)
        self._sample_p = self.speeds / self.speeds.sum()
        suffix = "" if weighted_sampling else ",uniform"
        self.name = f"jsq({d}{suffix})"
        self._known_queue: np.ndarray | None = None

    def reset(self, alphas=None) -> None:
        """JSQ ignores workload fractions; *alphas* may be None."""
        if alphas is None:
            self.alphas = np.full(self.speeds.size, 1.0 / self.speeds.size)
        else:
            super().reset(alphas)
            if self.alphas.size != self.speeds.size:
                raise ValueError(
                    f"{self.alphas.size} fractions for {self.speeds.size} speeds"
                )
        self._known_queue = np.zeros(self.speeds.size, dtype=np.int64)

    def _queue(self) -> np.ndarray:
        if self._known_queue is None:
            raise RuntimeError("reset() must be called before dispatching")
        return self._known_queue

    def select(self, size: float) -> int:
        q = self._queue()
        n = self.speeds.size
        if self.d == n:
            sample = np.arange(n)
        elif self.weighted_sampling:
            sample = self.rng.choice(n, size=self.d, replace=False, p=self._sample_p)
        else:
            sample = self.rng.choice(n, size=self.d, replace=False)
        normalized = (q[sample] + 1) / self.speeds[sample]
        best = normalized.min()
        candidates = sample[normalized == best]
        choice = int(candidates[np.argmax(self.speeds[candidates])])
        q[choice] += 1
        return choice

    def on_load_update(self, server: int) -> None:
        q = self._queue()
        if not 0 <= server < q.size:
            raise IndexError(f"server index {server} out of range")
        if q[server] <= 0:
            raise RuntimeError(
                f"load update for server {server} with known queue already 0"
            )
        q[server] -= 1

    @property
    def known_queue_lengths(self) -> np.ndarray:
        return self._queue().copy()
