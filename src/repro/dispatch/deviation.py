"""Workload allocation deviation — the paper's Figure 2 metric.

For a time interval, the deviation is Σᵢ (αᵢ − α'ᵢ)² where αᵢ is the
expected fraction of jobs for computer i and α'ᵢ the fraction actually
dispatched to it during the interval (paper footnote 4).  Low, stable
deviation across intervals means the dispatcher tracks the target
fractions even over short horizons — the round-robin dispatcher's whole
point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..queueing.network import validate_allocation

__all__ = ["allocation_deviation", "interval_deviations", "DeviationSeries"]


def allocation_deviation(expected, counts) -> float:
    """Deviation Σ(αᵢ − α'ᵢ)² for one interval's dispatch counts.

    An interval with no arrivals has no realized fractions (the bursty
    hyperexponential process does produce empty 120 s windows); such
    intervals carry no evidence about the dispatcher and are defined to
    have zero deviation.
    """
    expected = validate_allocation(expected)
    counts = np.asarray(counts, dtype=float)
    if counts.shape != expected.shape:
        raise ValueError(f"counts shape {counts.shape} != expected {expected.shape}")
    if np.any(counts < 0):
        raise ValueError("dispatch counts must be non-negative")
    total = counts.sum()
    if total == 0:
        return 0.0
    actual = counts / total
    return float(np.sum((expected - actual) ** 2))


def interval_deviations(
    expected,
    dispatch_times: np.ndarray,
    dispatch_targets: np.ndarray,
    interval_length: float,
    n_intervals: int,
    *,
    start_time: float = 0.0,
) -> "DeviationSeries":
    """Per-interval deviations for a dispatch trace (vectorized).

    Parameters
    ----------
    expected:
        Target fractions α.
    dispatch_times, dispatch_targets:
        Parallel arrays: arrival time and chosen computer per job.
    interval_length, n_intervals, start_time:
        The observation windows: [start + k·L, start + (k+1)·L) for
        k = 0..n_intervals−1.  Figure 2 uses L = 120 s, 30 intervals.
    """
    expected = validate_allocation(expected)
    times = np.asarray(dispatch_times, dtype=float)
    targets = np.asarray(dispatch_targets, dtype=np.int64)
    if times.shape != targets.shape:
        raise ValueError("dispatch_times and dispatch_targets must align")
    if interval_length <= 0:
        raise ValueError(f"interval_length must be positive, got {interval_length}")
    if n_intervals <= 0:
        raise ValueError(f"n_intervals must be positive, got {n_intervals}")
    if targets.size and (targets.min() < 0 or targets.max() >= expected.size):
        raise ValueError("dispatch target out of range for expected fractions")

    k = np.floor((times - start_time) / interval_length).astype(np.int64)
    in_window = (k >= 0) & (k < n_intervals)
    # 2-D histogram: counts[interval, server].
    counts = np.zeros((n_intervals, expected.size))
    np.add.at(counts, (k[in_window], targets[in_window]), 1.0)

    totals = counts.sum(axis=1, keepdims=True)
    actual = np.divide(counts, totals, out=np.zeros_like(counts), where=totals > 0)
    deviations = np.sum((actual - expected[None, :]) ** 2, axis=1)
    # Empty intervals carry no dispatch evidence: zero deviation.
    deviations[totals[:, 0] == 0] = 0.0
    return DeviationSeries(
        deviations=deviations,
        counts=counts,
        interval_length=interval_length,
        start_time=start_time,
    )


@dataclass(frozen=True)
class DeviationSeries:
    """Per-interval deviation values plus the underlying counts."""

    deviations: np.ndarray
    counts: np.ndarray
    interval_length: float
    start_time: float

    @property
    def n_intervals(self) -> int:
        return int(self.deviations.size)

    @property
    def mean(self) -> float:
        return float(self.deviations.mean())

    @property
    def max(self) -> float:
        return float(self.deviations.max())

    @property
    def std(self) -> float:
        return float(self.deviations.std())
