"""Random based job dispatching (Section 3.1).

Each arriving job is sent to computer cᵢ with probability αᵢ,
independently of everything else.  Combined with the weighted and
optimized allocations this yields the paper's WRAN and ORAN algorithms.
Its weakness — the motivation for Section 3.2 — is that the realized
fractions over short intervals fluctuate widely, so individual
computers see bursty substreams.
"""

from __future__ import annotations

import numpy as np

from .base import StaticDispatcher

__all__ = ["RandomDispatcher"]

#: Lazily imported repro.sim.ckernel module (function-level to keep the
#: dispatch package import-independent of the sim package).
_ck = None


def _ckernel():
    global _ck
    if _ck is None:
        from ..sim import ckernel

        _ck = ckernel
    return _ck


class RandomDispatcher(StaticDispatcher):
    """Probability-proportional random splitting driven by *rng*."""

    name = "random"

    def __init__(self, rng: np.random.Generator):
        super().__init__()
        self.rng = rng
        self._cum: np.ndarray | None = None

    def _setup(self) -> None:
        # Inverse-CDF lookup over the cumulative fractions: a single
        # uniform per job, searchsorted for the branch.  Guarantees the
        # last bucket absorbs rounding so every draw maps to a computer.
        cum = np.cumsum(self.alphas)
        cum[-1] = 1.0
        self._cum = cum

    def select(self, size: float) -> int:
        cum = self._cum
        if cum is None:
            self._require_reset()
            raise AssertionError("unreachable")  # pragma: no cover
        return int(np.searchsorted(cum, self.rng.random(), side="right"))

    def select_batch(self, sizes: np.ndarray) -> np.ndarray:
        return self.select_batch_given(self.draw(np.asarray(sizes).size))

    def allocation_key(self) -> bytes:
        """Hashable fingerprint of the reset allocation — two random
        dispatchers with equal keys map equal uniforms to equal targets
        (the cell path memoizes the mapping on this)."""
        cum = self._cum
        if cum is None:
            self._require_reset()
            raise AssertionError("unreachable")  # pragma: no cover
        return cum.tobytes()

    def draw(self, n_jobs: int) -> np.ndarray:
        """The next ``n_jobs`` uniforms from this dispatcher's stream —
        exactly the draws :meth:`select_batch` would consume.  Under
        common random numbers every random dispatcher of one replication
        is built from an identical fresh "dispatch" substream, so one
        member's draws can stand in for every member's (the cell path
        exploits this to draw once per replication)."""
        return self.rng.random(int(n_jobs))

    def select_batch_given(self, u: np.ndarray) -> np.ndarray:
        """Map externally drawn uniforms to targets — bit-identical to
        :meth:`select_batch` consuming the same draws.

        The inverse-CDF lookup is an integer-valued upper-bound search,
        so the compiled mapper (when available) and numpy's
        ``searchsorted`` produce identical targets, ties included.
        """
        cum = self._cum
        if cum is None:
            self._require_reset()
            raise AssertionError("unreachable")  # pragma: no cover
        u = np.ascontiguousarray(u, dtype=float)
        ck = _ckernel()
        fn = ck.map_fn()
        if fn is not None:
            out = np.empty(u.size, dtype=np.int64)
            ck.map_uniform_c(fn, cum, u, out)
            return out
        return np.searchsorted(cum, u, side="right").astype(np.int64, copy=False)
