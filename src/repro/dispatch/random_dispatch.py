"""Random based job dispatching (Section 3.1).

Each arriving job is sent to computer cᵢ with probability αᵢ,
independently of everything else.  Combined with the weighted and
optimized allocations this yields the paper's WRAN and ORAN algorithms.
Its weakness — the motivation for Section 3.2 — is that the realized
fractions over short intervals fluctuate widely, so individual
computers see bursty substreams.
"""

from __future__ import annotations

import numpy as np

from .base import StaticDispatcher

__all__ = ["RandomDispatcher"]


class RandomDispatcher(StaticDispatcher):
    """Probability-proportional random splitting driven by *rng*."""

    name = "random"

    def __init__(self, rng: np.random.Generator):
        super().__init__()
        self.rng = rng
        self._cum: np.ndarray | None = None

    def _setup(self) -> None:
        # Inverse-CDF lookup over the cumulative fractions: a single
        # uniform per job, searchsorted for the branch.  Guarantees the
        # last bucket absorbs rounding so every draw maps to a computer.
        cum = np.cumsum(self.alphas)
        cum[-1] = 1.0
        self._cum = cum

    def select(self, size: float) -> int:
        cum = self._cum
        if cum is None:
            self._require_reset()
            raise AssertionError("unreachable")  # pragma: no cover
        return int(np.searchsorted(cum, self.rng.random(), side="right"))

    def select_batch(self, sizes: np.ndarray) -> np.ndarray:
        cum = self._cum
        if cum is None:
            self._require_reset()
            raise AssertionError("unreachable")  # pragma: no cover
        n_jobs = np.asarray(sizes).size
        u = self.rng.random(n_jobs)
        return np.searchsorted(cum, u, side="right").astype(np.int64)
