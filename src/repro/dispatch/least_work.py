"""Least-work dispatching — a richer load index than queue length.

The paper's Dynamic Least-Load uses the run-queue length, citing Kunz's
finding that it is a "simple and effective" load index (footnote 2).
This dispatcher implements the richer alternative for the load-index
ablation: the scheduler tracks each computer's *outstanding work* (sum
of the sizes of jobs it has sent that have not yet been confirmed done)
and routes to the computer with the least normalized outstanding work
``(W + size) / speed``.

Two flavours:

* ``use_sizes=True`` (clairvoyant): counts actual job sizes — an upper
  bound on what any practical index could know;
* ``use_sizes=False``: counts every job at the long-run mean size,
  which collapses to queue-length scheduling with a different tie
  structure — quantifying how much of the gap is *size information*
  rather than index form.

Like Least-Load, the index is stale: it decrements only when the
delayed departure message arrives.
"""

from __future__ import annotations

import numpy as np

from .base import Dispatcher

__all__ = ["LeastWorkDispatcher"]


class LeastWorkDispatcher(Dispatcher):
    """Least normalized outstanding-work policy with stale feedback."""

    is_static = False

    def __init__(self, speeds, *, use_sizes: bool = True, mean_size: float = 1.0):
        super().__init__()
        self.speeds = np.asarray(speeds, dtype=float)
        if self.speeds.ndim != 1 or self.speeds.size == 0:
            raise ValueError("speeds must be a non-empty 1-D vector")
        if np.any(self.speeds <= 0):
            raise ValueError(f"speeds must be positive, got {self.speeds}")
        if mean_size <= 0:
            raise ValueError(f"mean_size must be positive, got {mean_size}")
        self.use_sizes = bool(use_sizes)
        self.mean_size = float(mean_size)
        self.name = "least_work" if use_sizes else "least_count_work"
        self._known_work: np.ndarray | None = None
        # FIFO of dispatched sizes per computer so departures retire the
        # right amount of work (jobs complete out of order under PS, but
        # the *sum* is what matters; FIFO keeps the bookkeeping exact in
        # aggregate even if per-job attribution is approximate).
        self._pending: list[list[float]] | None = None

    def reset(self, alphas=None) -> None:
        if alphas is None:
            self.alphas = np.full(self.speeds.size, 1.0 / self.speeds.size)
        else:
            super().reset(alphas)
            if self.alphas.size != self.speeds.size:
                raise ValueError(
                    f"{self.alphas.size} fractions for {self.speeds.size} speeds"
                )
        self._known_work = np.zeros(self.speeds.size)
        self._pending = [[] for _ in range(self.speeds.size)]

    def _state(self):
        if self._known_work is None:
            raise RuntimeError("reset() must be called before dispatching")
        return self._known_work, self._pending

    def select(self, size: float) -> int:
        work, pending = self._state()
        counted = size if self.use_sizes else self.mean_size
        normalized = (work + counted) / self.speeds
        best = normalized.min()
        candidates = np.nonzero(normalized == best)[0]
        choice = int(candidates[np.argmax(self.speeds[candidates])])
        work[choice] += counted
        pending[choice].append(counted)
        return choice

    def on_load_update(self, server: int) -> None:
        work, pending = self._state()
        if not 0 <= server < work.size:
            raise IndexError(f"server index {server} out of range")
        if not pending[server]:
            raise RuntimeError(
                f"load update for server {server} with no outstanding jobs"
            )
        done = pending[server].pop(0)
        work[server] = max(work[server] - done, 0.0)

    @property
    def known_outstanding_work(self) -> np.ndarray:
        return self._state()[0].copy()
