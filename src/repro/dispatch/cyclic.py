"""Plain cyclic round robin (the degenerate case of Algorithm 2).

Ignores the magnitude of the fractions beyond which computers are
active: jobs go 0, 1, 2, ..., n−1, 0, ... over the α > 0 computers.
Exactly what Algorithm 2 reduces to when all active fractions are equal;
kept as an independent implementation so tests can verify the reduction.
"""

from __future__ import annotations

import numpy as np

from .base import StaticDispatcher

__all__ = ["CyclicDispatcher"]


class CyclicDispatcher(StaticDispatcher):
    """Strict cycle over the computers with a positive fraction."""

    name = "cyclic"

    def __init__(self):
        super().__init__()
        self._order: np.ndarray | None = None
        self._pos = 0

    def _setup(self) -> None:
        self._order = np.nonzero(self.alphas > 0)[0]
        if self._order.size == 0:
            raise ValueError("cyclic dispatch needs at least one positive fraction")
        self._pos = 0

    def select(self, size: float) -> int:
        self._require_reset()
        choice = int(self._order[self._pos])
        self._pos = (self._pos + 1) % self._order.size
        return choice

    def select_batch(self, sizes: np.ndarray) -> np.ndarray:
        self._require_reset()
        count = np.asarray(sizes).size
        idx = (self._pos + np.arange(count)) % self._order.size
        self._pos = int((self._pos + count) % self._order.size)
        return self._order[idx].astype(np.int64)
