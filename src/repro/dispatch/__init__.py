"""Job-dispatching strategies (the paper's Section 3 plus baselines).

* :class:`RandomDispatcher` — Section 3.1 probability splitting
  (the *RAN half of WRAN/ORAN).
* :class:`RoundRobinDispatcher` — Algorithm 2 generalized round robin
  (the *RR half of WRR/ORR).
* :class:`CyclicDispatcher` — the equal-fraction degenerate case.
* :class:`LeastLoadDispatcher` — the Dynamic Least-Load yardstick with a
  stale, feedback-driven load view.
* :class:`SitaDispatcher` — clairvoyant size-interval extension.
* :mod:`~repro.dispatch.deviation` — the Figure 2 allocation-deviation
  metric.
"""

from .base import Dispatcher, StaticDispatcher
from .burst_wrr import BurstWeightedRoundRobinDispatcher
from .cyclic import CyclicDispatcher
from .deviation import DeviationSeries, allocation_deviation, interval_deviations
from .jsq import PowerOfDChoicesDispatcher
from .least_load import LeastLoadDispatcher
from .least_work import LeastWorkDispatcher
from .random_dispatch import RandomDispatcher
from .round_robin import (
    RoundRobinDispatcher,
    SequenceRoundRobin,
    build_dispatch_sequence,
    dispatch_sequence_slice,
    sequence_memo_key,
)
from .sita import SitaDispatcher, sita_cutoffs

__all__ = [
    "Dispatcher",
    "StaticDispatcher",
    "RandomDispatcher",
    "RoundRobinDispatcher",
    "SequenceRoundRobin",
    "build_dispatch_sequence",
    "dispatch_sequence_slice",
    "sequence_memo_key",
    "CyclicDispatcher",
    "BurstWeightedRoundRobinDispatcher",
    "LeastLoadDispatcher",
    "LeastWorkDispatcher",
    "PowerOfDChoicesDispatcher",
    "SitaDispatcher",
    "sita_cutoffs",
    "allocation_deviation",
    "interval_deviations",
    "DeviationSeries",
]
