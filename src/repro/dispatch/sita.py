"""SITA — size-interval task assignment (extension, not in the paper's matrix).

The related work the paper builds on (Crovella, Harchol-Balter et al.)
improves heavy-tailed performance by routing jobs to servers *by size
band* so short jobs never queue behind elephants.  The paper explicitly
avoids assuming job sizes are known a priori; this clairvoyant
dispatcher is included as an extension so the benchmark suite can show
where size information would (and would not) beat ORR.

SITA-E ("equal load") picks size cutoffs k = x₀ < x₁ < … < xₙ = p such
that the expected *work* falling in band i matches a target share wᵢ —
here the allocation fractions translated into work shares.  Small-size
bands go to slow computers, the largest band to the fastest computer
(big jobs finish soonest there).
"""

from __future__ import annotations

import numpy as np

from ..distributions.bounded_pareto import BoundedPareto
from .base import StaticDispatcher

__all__ = ["SitaDispatcher", "sita_cutoffs"]


def sita_cutoffs(sizes: BoundedPareto, work_shares, *, tol: float = 1e-12) -> np.ndarray:
    """Return the n+1 size cutoffs splitting work into the given shares.

    ``work_shares`` must be non-negative and sum to 1; zero shares
    produce zero-width (duplicate) cutoffs.  Cutoff i is found by
    bisection on the work-below function W(x) = 1 − load_share_above(x),
    which is continuous and strictly increasing on [k, p].
    """
    shares = np.asarray(work_shares, dtype=float)
    if shares.ndim != 1 or shares.size == 0:
        raise ValueError("work_shares must be a non-empty 1-D vector")
    if np.any(shares < 0):
        raise ValueError(f"work shares must be non-negative, got {shares}")
    total = shares.sum()
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"work shares must sum to 1, got {total}")

    def work_below(x: float) -> float:
        return 1.0 - sizes.load_share_above(x)

    cutoffs = np.empty(shares.size + 1)
    cutoffs[0] = sizes.k
    cutoffs[-1] = sizes.p
    target = 0.0
    for i, share in enumerate(shares[:-1]):
        target += share
        lo, hi = cutoffs[i], sizes.p
        # Bisection: W is monotone, so 60 iterations pin the cutoff to
        # ~(p-k)/2^60 absolute accuracy.
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if work_below(mid) < target:
                lo = mid
            else:
                hi = mid
            if hi - lo <= tol * max(1.0, hi):
                break
        cutoffs[i + 1] = 0.5 * (lo + hi)
    return cutoffs


class SitaDispatcher(StaticDispatcher):
    """Clairvoyant size-interval dispatcher over Bounded Pareto sizes.

    ``reset(alphas)`` interprets the fractions as *job-count* fractions
    under the given allocation; SITA instead needs *work* shares, so the
    canonical use is ``SitaDispatcher.for_speeds(...)`` which balances
    utilization like the weighted allocator.  Computers are used in
    speed order: slowest gets the smallest size band.
    """

    name = "sita"

    def __init__(self, sizes: BoundedPareto, speeds):
        super().__init__()
        self.sizes = sizes
        self.speeds = np.asarray(speeds, dtype=float)
        if np.any(self.speeds <= 0):
            raise ValueError(f"speeds must be positive, got {self.speeds}")
        self._cutoffs: np.ndarray | None = None
        self._band_to_server: np.ndarray | None = None

    def _setup(self) -> None:
        if self.alphas.size != self.speeds.size:
            raise ValueError(
                f"{self.alphas.size} fractions for {self.speeds.size} speeds"
            )
        # Work share of computer i under the fractions: relative to its
        # speed the paper's weighted allocation gives equal utilization;
        # in general a fraction alpha of *jobs* is alpha of *work* since
        # static non-size-based splits are size-blind.  SITA reassigns
        # that same work by size band.
        order = np.argsort(self.speeds, kind="stable")  # slow → fast
        shares_sorted = self.alphas[order]
        self._cutoffs = sita_cutoffs(self.sizes, shares_sorted)
        self._band_to_server = order

    def select(self, size: float) -> int:
        self._require_reset()
        cutoffs, band_map = self._cutoffs, self._band_to_server
        band = int(np.searchsorted(cutoffs, size, side="right")) - 1
        band = min(max(band, 0), band_map.size - 1)
        return int(band_map[band])

    def select_batch(self, sizes: np.ndarray) -> np.ndarray:
        self._require_reset()
        cutoffs, band_map = self._cutoffs, self._band_to_server
        bands = np.searchsorted(cutoffs, np.asarray(sizes, dtype=float), side="right") - 1
        bands = np.clip(bands, 0, band_map.size - 1)
        return band_map[bands].astype(np.int64)

    @property
    def cutoffs(self) -> np.ndarray:
        """Size cutoffs in slow→fast computer order (copy)."""
        self._require_reset()
        return self._cutoffs.copy()
