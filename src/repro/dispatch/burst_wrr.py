"""Burst (quota-based) weighted round robin — the naive WRR baseline.

Classic router/balancer WRR implementations serve each target its whole
per-cycle quota *consecutively*: with weights (2, 1, 1) the dispatch
order is A A B C, A A B C, ...  That realizes the long-run fractions
exactly but concentrates each computer's jobs into bursts — precisely
the behaviour the paper's Algorithm 2 is designed to avoid (its
objective is to *interleave*, equalizing the arrival count between
successive jobs to the same computer).

This dispatcher exists as a contrast baseline: the deviation ablation
shows Algorithm 2's per-interval allocation deviation matches burst-WRR
(both are deterministic and exact per cycle) while its *smoothness* —
the variance of per-computer inter-assignment gaps — is far better,
which is what shows up as lower response times under load.

Quotas come from rounding ``cycle_length × αᵢ`` with largest-remainder
apportionment, so every cycle realizes the fractions as exactly as an
integer cycle can.
"""

from __future__ import annotations

import numpy as np

from .base import StaticDispatcher

__all__ = ["BurstWeightedRoundRobinDispatcher"]


def _largest_remainder_quotas(alphas: np.ndarray, cycle_length: int) -> np.ndarray:
    """Integer quotas summing to cycle_length, proportional to alphas."""
    raw = alphas * cycle_length
    quotas = np.floor(raw).astype(np.int64)
    short = cycle_length - int(quotas.sum())
    if short > 0:
        order = np.argsort(-(raw - quotas), kind="stable")
        quotas[order[:short]] += 1
    return quotas


class BurstWeightedRoundRobinDispatcher(StaticDispatcher):
    """Quota WRR: each cycle serves every computer its quota in one burst.

    Parameters
    ----------
    cycle_length:
        Jobs per cycle.  Larger cycles realize fractional weights more
        precisely but make the bursts longer (worse smoothness).
    """

    name = "burst_wrr"

    def __init__(self, cycle_length: int = 100):
        super().__init__()
        if cycle_length < 1:
            raise ValueError(f"cycle_length must be positive, got {cycle_length}")
        self.cycle_length = int(cycle_length)
        self._schedule: np.ndarray | None = None
        self._pos = 0

    def _setup(self) -> None:
        quotas = _largest_remainder_quotas(self.alphas, self.cycle_length)
        if quotas.sum() == 0:
            raise ValueError("cycle too short: every quota rounded to zero")
        # The burst schedule: each computer's quota served consecutively.
        self._schedule = np.repeat(
            np.arange(self.alphas.size, dtype=np.int64), quotas
        )
        self._pos = 0

    def select(self, size: float) -> int:
        self._require_reset()
        choice = int(self._schedule[self._pos])
        self._pos = (self._pos + 1) % self._schedule.size
        return choice

    def select_batch(self, sizes: np.ndarray) -> np.ndarray:
        self._require_reset()
        count = np.asarray(sizes).size
        idx = (self._pos + np.arange(count)) % self._schedule.size
        self._pos = int((self._pos + count) % self._schedule.size)
        return self._schedule[idx]

    @property
    def quotas(self) -> np.ndarray:
        """Per-computer jobs per cycle (copy)."""
        self._require_reset()
        return np.bincount(self._schedule, minlength=self.alphas.size)
