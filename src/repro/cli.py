"""Command-line interface: ``repro-sched`` / ``python -m repro``.

Subcommands
-----------

* ``run <experiment-id> [--scale smoke|quick|paper]`` — regenerate one
  of the paper's tables/figures and print it.
* ``list`` — list available experiments.
* ``allocate --speeds 1,1,10 --utilization 0.7`` — print the weighted
  and optimized allocations plus their predicted metrics.
* ``simulate --speeds 1,1,10 --utilization 0.7 [--policies ORR,WRR]`` —
  run the scheduling policies on a custom system and print the three
  paper metrics.
* ``validate --speeds 1,4 --utilization 0.6`` — compare a static
  policy's simulated metrics against the analytical model.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description=(
            "Reproduction of 'Optimizing Static Job Scheduling in a Network "
            "of Heterogeneous Computers' (Tang & Chanson, ICPP 2000)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="regenerate a table or figure")
    run_p.add_argument(
        "experiment",
        help="experiment id (see `list`), or 'all' for every experiment",
    )
    run_p.add_argument(
        "--scale",
        choices=("smoke", "quick", "paper"),
        default=None,
        help="run length preset (default: REPRO_SCALE env or 'quick')",
    )
    run_p.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also export structured results (figure3-6 sweeps only)",
    )

    sub.add_parser("list", help="list available experiments")

    alloc_p = sub.add_parser(
        "allocate", help="compute allocations for a given system"
    )
    alloc_p.add_argument(
        "--speeds", required=True,
        help="comma-separated relative speeds, e.g. 1,1.5,2,10",
    )
    alloc_p.add_argument(
        "--utilization", type=float, required=True, help="system load in (0, 1)"
    )

    sim_p = sub.add_parser(
        "simulate", help="simulate scheduling policies on a custom system"
    )
    sim_p.add_argument("--speeds", required=True,
                       help="comma-separated relative speeds")
    sim_p.add_argument("--utilization", type=float, required=True)
    sim_p.add_argument("--policies", default="WRAN,WRR,ORAN,ORR,LEAST_LOAD",
                       help="comma-separated policy names")
    sim_p.add_argument("--duration", type=float, default=1.0e5,
                       help="simulated seconds per replication")
    sim_p.add_argument("--replications", type=int, default=3)
    sim_p.add_argument("--arrival-cv", type=float, default=3.0,
                       help="inter-arrival coefficient of variation")
    sim_p.add_argument("--seed", type=int, default=0)

    val_p = sub.add_parser(
        "validate", help="compare simulation against the analytical model"
    )
    val_p.add_argument("--speeds", required=True)
    val_p.add_argument("--utilization", type=float, required=True)
    val_p.add_argument("--policy", default="WRAN")
    # Heavy-tailed sizes converge slowly: validation needs long runs.
    val_p.add_argument("--duration", type=float, default=5.0e5)
    val_p.add_argument("--replications", type=int, default=4)
    val_p.add_argument("--arrival-cv", type=float, default=1.0,
                       help="1.0 (Poisson) makes the model exact")

    char_p = sub.add_parser(
        "characterize", help="measure a job trace's workload properties"
    )
    char_p.add_argument("trace", help="two-column CSV: arrival_time,size")
    char_p.add_argument("--speeds", default=None,
                        help="optional cluster speeds to compute offered load")
    return parser


def _parse_speeds(text: str) -> list[float] | None:
    try:
        speeds = [float(s) for s in text.split(",") if s.strip()]
    except ValueError:
        return None
    return speeds or None


_SWEEP_RUNNERS = {
    "figure3": ("run_figure3", "format_figure3"),
    "figure4": ("run_figure4", "format_figure4"),
    "figure5": ("run_figure5", "format_figure5"),
    "figure6": ("run_figure6", "format_figure6"),
}


def _cmd_run(args) -> int:
    from . import experiments

    if args.experiment == "all":
        if args.json:
            print("error: --json is per-experiment; run figures individually",
                  file=sys.stderr)
            return 2
        for key in experiments.experiment_ids():
            print(experiments.run_experiment(key, args.scale))
            print()
        return 0

    if args.json:
        if args.experiment not in _SWEEP_RUNNERS:
            print(
                f"error: --json supports {sorted(_SWEEP_RUNNERS)}, "
                f"not {args.experiment!r}",
                file=sys.stderr,
            )
            return 2
        run_name, fmt_name = _SWEEP_RUNNERS[args.experiment]
        result = getattr(experiments, run_name)(args.scale)
        print(getattr(experiments, fmt_name)(result))
        path = experiments.save_sweep_json(result, args.json)
        print(f"\nstructured results written to {path}")
        return 0

    print(experiments.run_experiment(args.experiment, args.scale))
    return 0


def _cmd_list(args) -> int:
    from .experiments import EXPERIMENTS

    width = max(len(k) for k in EXPERIMENTS)
    for key, (description, _) in EXPERIMENTS.items():
        print(f"{key.ljust(width)}  {description}")
    return 0


def _cmd_allocate(args) -> int:
    from .allocation import OptimizedAllocator, WeightedAllocator
    from .experiments.reporting import format_table
    from .queueing import HeterogeneousNetwork

    try:
        speeds = [float(s) for s in args.speeds.split(",") if s.strip()]
    except ValueError:
        print(f"error: could not parse speeds {args.speeds!r}", file=sys.stderr)
        return 2
    if not speeds:
        print("error: no speeds given", file=sys.stderr)
        return 2
    if not 0.0 < args.utilization < 1.0:
        print(
            f"error: utilization must lie in (0, 1), got {args.utilization}",
            file=sys.stderr,
        )
        return 2

    network = HeterogeneousNetwork(speeds, utilization=args.utilization)
    weighted = WeightedAllocator().compute(network)
    optimized = OptimizedAllocator().compute(network)
    rows = [
        [s, float(w), float(o)]
        for s, w, o in zip(speeds, weighted.alphas, optimized.alphas)
    ]
    print(
        format_table(
            ["speed", "weighted alpha", "optimized alpha"],
            rows,
            title=f"Workload allocation at utilization {args.utilization}",
        )
    )
    print()
    print(
        "predicted mean response ratio: "
        f"weighted={weighted.predicted_mean_response_ratio():.4g}, "
        f"optimized={optimized.predicted_mean_response_ratio():.4g}"
    )
    dropped = optimized.zero_share_indices
    if dropped:
        print(f"computers receiving zero work under optimized: {dropped}")
    return 0


def _cmd_simulate(args) -> int:
    from .core import evaluate_policy, get_policy
    from .experiments.reporting import format_table
    from .sim import SimulationConfig

    speeds = _parse_speeds(args.speeds)
    if speeds is None:
        print(f"error: could not parse speeds {args.speeds!r}", file=sys.stderr)
        return 2
    try:
        config = SimulationConfig(
            speeds=speeds, utilization=args.utilization,
            duration=args.duration, arrival_cv=args.arrival_cv,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    rows = []
    for name in (p for p in args.policies.split(",") if p.strip()):
        try:
            policy = get_policy(name.strip())
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        ev = evaluate_policy(
            config, policy, replications=args.replications, base_seed=args.seed
        )
        rows.append([
            policy.name,
            ev.mean_response_time.mean,
            ev.mean_response_ratio.mean,
            ev.fairness.mean,
            ev.mean_response_ratio.half_width,
        ])
    print(format_table(
        ["policy", "mean resp time", "mean resp ratio", "fairness", "ratio ±CI"],
        rows,
        title=(
            f"speeds={speeds} rho={args.utilization} cv={args.arrival_cv} "
            f"({args.replications} x {args.duration:.0f} s)"
        ),
    ))
    return 0


def _cmd_validate(args) -> int:
    from .analysis import validate_against_theory
    from .core import get_policy
    from .sim import SimulationConfig

    speeds = _parse_speeds(args.speeds)
    if speeds is None:
        print(f"error: could not parse speeds {args.speeds!r}", file=sys.stderr)
        return 2
    try:
        config = SimulationConfig(
            speeds=speeds, utilization=args.utilization,
            duration=args.duration, arrival_cv=args.arrival_cv,
        )
        policy = get_policy(args.policy)
        report = validate_against_theory(
            config, policy, replications=args.replications
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    print(
        f"response time: measured {report.measured_response_time:.4g} vs "
        f"predicted {report.predicted_response_time:.4g} "
        f"({report.response_time_error:+.1%})"
    )
    if args.arrival_cv == 1.0:
        print("Poisson arrivals: the M/G/1-PS model is exact; residual error "
              "is simulation noise.")
    else:
        print("non-Poisson arrivals: positive error measures the burstiness "
              "penalty the model ignores.")
    return 0


def _cmd_characterize(args) -> int:
    from .analysis import characterize
    from .sim import JobTrace

    try:
        trace = JobTrace.from_csv(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = characterize(trace)
    print(report.summary())
    for p, v in report.size_percentiles.items():
        print(f"  size p{p}: {v:.6g} s")
    if args.speeds:
        speeds = _parse_speeds(args.speeds)
        if speeds is None:
            print(f"error: could not parse speeds {args.speeds!r}", file=sys.stderr)
            return 2
        rho = trace.offered_load(sum(speeds))
        print(f"  offered load vs speeds {speeds}: {rho:.3f}")
    model = report.recommended_model()
    print(
        "suggested synthetic model: "
        f"sizes mean={model['size_mean']:.6g} cv={model['size_cv']:.3g}; "
        f"inter-arrivals cv={model['interarrival_cv']:.3g}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "list": _cmd_list,
        "allocate": _cmd_allocate,
        "simulate": _cmd_simulate,
        "validate": _cmd_validate,
        "characterize": _cmd_characterize,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
