"""Command-line interface: ``repro-sched`` / ``python -m repro``.

Subcommands
-----------

* ``run <experiment-id> [--scale smoke|quick|paper]`` — regenerate one
  of the paper's tables/figures and print it.
* ``list`` — list available experiments.
* ``allocate --speeds 1,1,10 --utilization 0.7`` — print the weighted
  and optimized allocations plus their predicted metrics.
* ``simulate --speeds 1,1,10 --utilization 0.7 [--policies ORR,WRR]`` —
  run the scheduling policies on a custom system and print the three
  paper metrics.
* ``validate --speeds 1,4 --utilization 0.6`` — compare a static
  policy's simulated metrics against the analytical model.
* ``bench`` — time the performance stack (vectorized kernels, grid
  executor, replication cache) against the serial baselines and append
  a record to the ``BENCH_sweep.json`` trajectory.

``run``, ``simulate``, and ``bench`` accept ``--n-jobs N|auto`` (or the
``REPRO_JOBS`` environment variable) to fan replications across worker
processes; results are bit-identical to serial runs.  The same three
commands accept ``--trace PATH`` (structured JSONL telemetry: spans and
counters, see :mod:`repro.obs`) and ``--profile [FOLDED]`` (per-phase
wall-time breakdown on stderr, optionally folded stacks for flamegraph
tooling); ``bench --gate`` compares the fresh record against the
recorded baseline and exits nonzero on regression.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description=(
            "Reproduction of 'Optimizing Static Job Scheduling in a Network "
            "of Heterogeneous Computers' (Tang & Chanson, ICPP 2000)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="regenerate a table or figure")
    run_p.add_argument(
        "experiment",
        help="experiment id (see `list`), or 'all' for every experiment",
    )
    run_p.add_argument(
        "--scale",
        choices=("smoke", "quick", "paper"),
        default=None,
        help="run length preset (default: REPRO_SCALE env or 'quick')",
    )
    run_p.add_argument(
        "--quick",
        action="store_const",
        dest="scale",
        const="quick",
        help="shorthand for --scale quick",
    )
    run_p.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also export structured results (figure3-6 sweeps only)",
    )
    run_p.add_argument(
        "--n-jobs",
        metavar="N",
        default=None,
        help="worker processes for sweep replications: an integer or "
             "'auto' (default: REPRO_JOBS env or 1)",
    )
    run_p.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="persistent replication cache directory "
             "(default: REPRO_CACHE env or no caching)",
    )
    run_p.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="inject server failures into sweep experiments, e.g. "
             "'mtbf=500,mttr=50' (keys: mtbf, mttr, degrade_rate, "
             "degrade_duration, degrade_factor, drift, on_failure, "
             "max_attempts, base_delay, backoff, max_delay)",
    )
    run_p.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry crashed or timed-out grid tasks up to N times "
             "with bounded backoff (default 0)",
    )
    run_p.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per grid task; a stuck task counts as "
             "crashed (parallel runs only)",
    )
    run_p.add_argument(
        "--resume",
        action="store_true",
        help="checkpoint completed sweep cells to "
             ".repro_checkpoints/<experiment>_<scale>.jsonl and skip "
             "them on re-runs",
    )
    run_p.add_argument(
        "--quarantine",
        action="store_true",
        help="report failing grid cells in the output instead of "
             "aborting the whole sweep",
    )

    sub.add_parser("list", help="list available experiments")

    def add_telemetry_flags(p):
        # dest avoids colliding with unrelated arguments named "trace"
        # (the characterize command's positional CSV, for one).
        p.add_argument(
            "--trace",
            dest="trace_out",
            metavar="PATH",
            default=None,
            help="write structured telemetry (spans + counters) as JSONL "
                 "to PATH; outputs are bit-identical with or without it",
        )
        p.add_argument(
            "--profile",
            dest="profile_out",
            nargs="?",
            const="",
            default=None,
            metavar="FOLDED",
            help="print a per-phase wall-time breakdown to stderr; with a "
                 "path, also write folded stacks for flamegraph tooling",
        )

    add_telemetry_flags(run_p)

    alloc_p = sub.add_parser(
        "allocate", help="compute allocations for a given system"
    )
    alloc_p.add_argument(
        "--speeds", required=True,
        help="comma-separated relative speeds, e.g. 1,1.5,2,10",
    )
    alloc_p.add_argument(
        "--utilization", type=float, required=True, help="system load in (0, 1)"
    )

    sim_p = sub.add_parser(
        "simulate", help="simulate scheduling policies on a custom system"
    )
    sim_p.add_argument("--speeds", required=True,
                       help="comma-separated relative speeds")
    sim_p.add_argument("--utilization", type=float, required=True)
    sim_p.add_argument("--policies", default="WRAN,WRR,ORAN,ORR,LEAST_LOAD",
                       help="comma-separated policy names")
    sim_p.add_argument("--duration", type=float, default=1.0e5,
                       help="simulated seconds per replication")
    sim_p.add_argument("--replications", type=int, default=3)
    sim_p.add_argument("--arrival-cv", type=float, default=3.0,
                       help="inter-arrival coefficient of variation")
    sim_p.add_argument("--seed", type=int, default=0)
    sim_p.add_argument(
        "--n-jobs",
        metavar="N",
        default=None,
        help="worker processes for replications: an integer or 'auto' "
             "(default: REPRO_JOBS env or 1)",
    )
    sim_p.add_argument(
        "--paired",
        action="store_true",
        help="also print paired-difference comparisons (common random "
             "numbers) of every policy against the first one listed",
    )
    sim_p.add_argument(
        "--precision",
        type=float,
        default=None,
        metavar="TARGET",
        help="add replications until confidence intervals reach the "
             "target relative half-width (with --paired: until the "
             "paired-vs-baseline intervals do); --replications caps "
             "the count",
    )
    add_telemetry_flags(sim_p)

    val_p = sub.add_parser(
        "validate", help="compare simulation against the analytical model"
    )
    val_p.add_argument("--speeds", required=True)
    val_p.add_argument("--utilization", type=float, required=True)
    val_p.add_argument("--policy", default="WRAN")
    # Heavy-tailed sizes converge slowly: validation needs long runs.
    val_p.add_argument("--duration", type=float, default=5.0e5)
    val_p.add_argument("--replications", type=int, default=4)
    val_p.add_argument("--arrival-cv", type=float, default=1.0,
                       help="1.0 (Poisson) makes the model exact")

    char_p = sub.add_parser(
        "characterize", help="measure a job trace's workload properties"
    )
    char_p.add_argument("trace", help="two-column CSV: arrival_time,size")
    char_p.add_argument("--speeds", default=None,
                        help="optional cluster speeds to compute offered load")

    serve_p = sub.add_parser(
        "serve",
        help="run the quasi-static scheduler service (online estimation, "
             "live re-allocation, admission control)",
    )
    serve_p.add_argument("--speeds", required=True,
                         help="comma-separated relative speeds")
    serve_p.add_argument("--utilization", type=float, default=0.6,
                         help="nominal utilization of the synthetic workload")
    serve_p.add_argument("--duration", type=float, default=2.0e4,
                         help="simulated seconds to serve")
    serve_p.add_argument("--resolve-period", type=float, default=100.0,
                         help="simulated seconds between control-loop "
                              "re-solves (and sequence-swap points)")
    serve_p.add_argument("--window", type=float, default=None,
                         help="rate-estimator window in simulated seconds "
                              "(default: 2 resolve periods)")
    serve_p.add_argument(
        "--workload",
        choices=("stationary", "step", "drift"),
        default="stationary",
        help="synthetic workload shape: constant rate, a one-time rate "
             "step, or a linear drift",
    )
    serve_p.add_argument("--step-time", type=float, default=None,
                         help="when the step happens (default: duration/2)")
    serve_p.add_argument("--step-factor", type=float, default=2.0,
                         help="rate multiplier after the step / at the end "
                              "of the drift")
    serve_p.add_argument("--arrival-cv", type=float, default=1.0,
                         help="inter-arrival coefficient of variation")
    serve_p.add_argument("--size-cv", type=float, default=1.0,
                         help="job-size coefficient of variation")
    serve_p.add_argument("--seed", type=int, default=0)
    serve_p.add_argument("--shed-threshold", type=float, default=0.95,
                         help="estimated utilization above which admission "
                              "control sheds load")
    serve_p.add_argument(
        "--replay",
        metavar="CSV",
        default=None,
        help="replay a recorded workload instead of the synthetic one "
             "(two-column CSV: arrival_time,size)",
    )
    serve_p.add_argument(
        "--slo",
        type=float,
        default=None,
        metavar="P99",
        help="response-time p99 target; shedding then engages exactly "
             "while the last window's p99 exceeds it (replaces the "
             "utilization-threshold rule)",
    )
    serve_p.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="inject failures, e.g. 'mtbf=2000,mttr=200' (same keys as "
             "`run --faults`); down servers bounce jobs through the "
             "retry policy",
    )
    serve_p.add_argument("--fault-seed", type=int, default=0,
                         help="seed of the fault-timeline substreams")
    serve_p.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="crash-safe JSONL checkpoint file (fsynced snapshot of the "
             "full loop state every --checkpoint-every windows)",
    )
    serve_p.add_argument("--checkpoint-every", type=int, default=10,
                         metavar="N",
                         help="windows between checkpoint snapshots")
    serve_p.add_argument(
        "--resume",
        action="store_true",
        help="continue from the last snapshot in --checkpoint (fresh "
             "start if the file has none)",
    )
    serve_p.add_argument(
        "--crash-after",
        type=int,
        default=None,
        metavar="N",
        help="simulate a hard crash after N windows (exit code 3) — "
             "test hook for the --resume round trip",
    )
    serve_p.add_argument("--json", action="store_true",
                         help="print the full service report as JSON")
    add_telemetry_flags(serve_p)

    bench_p = sub.add_parser(
        "bench",
        help="benchmark the performance stack and record a trajectory point",
    )
    bench_p.add_argument(
        "--scale",
        choices=("smoke", "quick", "paper"),
        default="smoke",
        help="sweep scale for the end-to-end benchmark (default: smoke)",
    )
    bench_p.add_argument(
        "--n-jobs",
        metavar="N",
        default=None,
        help="worker processes for the grid pass: an integer or 'auto' "
             "(default: REPRO_JOBS env or 1)",
    )
    bench_p.add_argument(
        "--output",
        metavar="PATH",
        default="BENCH_sweep.json",
        help="trajectory file to append the benchmark record to",
    )
    bench_p.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="cache directory for the cold/warm pass "
             "(default: a temporary directory)",
    )
    bench_p.add_argument(
        "--serve",
        action="store_true",
        help="also benchmark the serving hot path: vectorized window "
             "loop vs the per-job reference (report bit-identity "
             "enforced), recording jobs/sec and dispatch ns/job",
    )
    bench_p.add_argument(
        "--net",
        action="store_true",
        help="also benchmark the networked dispatcher: in-process "
             "transport vs SchedulerService (report bit-identity "
             "enforced), then a socket-mode overload drill recording "
             "sustained jobs/sec under backpressure and the dispatch "
             "decision latency (ns/job, absolute ceiling enforced)",
    )
    bench_p.add_argument(
        "--gate",
        action="store_true",
        help="compare this record against the most recent same-scale "
             "baseline in the trajectory; exit nonzero (and do not "
             "append) on a slowdown beyond the threshold or any "
             "bit-identity divergence",
    )
    bench_p.add_argument(
        "--gate-threshold",
        type=float,
        default=None,
        metavar="FRAC",
        help="allowed fractional speedup regression for --gate "
             "(default 0.20)",
    )
    add_telemetry_flags(bench_p)
    return parser


def _parse_speeds(text: str) -> list[float] | None:
    try:
        speeds = [float(s) for s in text.split(",") if s.strip()]
    except ValueError:
        return None
    return speeds or None


_SWEEP_RUNNERS = {
    "figure3": ("run_figure3", "format_figure3"),
    "figure4": ("run_figure4", "format_figure4"),
    "figure5": ("run_figure5", "format_figure5"),
    "figure6": ("run_figure6", "format_figure6"),
    "faults": ("run_faults_extension", "format_faults_extension"),
}


def _resolve_jobs(value) -> int | None:
    """Resolve an ``--n-jobs`` value; print the error and return None on
    bad input (the caller exits 2)."""
    from .core.executor import resolve_n_jobs

    try:
        return resolve_n_jobs(value)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _open_cache(path):
    from .core.cache import ReplicationCache

    return ReplicationCache(path) if path else None


def _grid_options(args, experiment: str) -> dict | None:
    """Harness-hardening and fault-injection kwargs from run flags.

    Returns None (after printing the error) on a malformed ``--faults``
    spec; an empty dict when no knob is set — the zero-overhead default.
    """
    from .experiments import active_scale

    grid: dict = {}
    if args.faults:
        from .faults import FaultConfig

        try:
            grid["faults"] = FaultConfig.parse(args.faults)
        except ValueError as exc:
            print(f"error: bad --faults spec: {exc}", file=sys.stderr)
            return None
    if args.retries:
        grid["retries"] = args.retries
    if args.task_timeout is not None:
        grid["task_timeout"] = args.task_timeout
    if args.quarantine:
        grid["quarantine"] = True
    if args.resume:
        from .core.checkpoint import SweepCheckpoint

        scale = active_scale(args.scale)
        path = f".repro_checkpoints/{experiment}_{scale.name}.jsonl"
        grid["checkpoint"] = SweepCheckpoint(path)
        print(f"checkpointing sweep cells to {path}", file=sys.stderr)
    return grid


def _cmd_run(args) -> int:
    from . import experiments

    n_jobs = _resolve_jobs(args.n_jobs)
    if n_jobs is None:
        return 2
    cache = _open_cache(args.cache)

    if args.experiment == "all":
        if args.json:
            print("error: --json is per-experiment; run figures individually",
                  file=sys.stderr)
            return 2
        if args.resume:
            print("error: --resume needs a single experiment (one "
                  "checkpoint per sweep)", file=sys.stderr)
            return 2
        grid = _grid_options(args, "all")
        if grid is None:
            return 2
        for key in experiments.experiment_ids():
            print(experiments.run_experiment(
                key, args.scale, n_jobs=n_jobs, cache=cache, **grid
            ))
            print()
        return 0

    grid = _grid_options(args, args.experiment)
    if grid is None:
        return 2

    if args.json:
        if args.experiment not in _SWEEP_RUNNERS:
            print(
                f"error: --json supports {sorted(_SWEEP_RUNNERS)}, "
                f"not {args.experiment!r}",
                file=sys.stderr,
            )
            return 2
        run_name, fmt_name = _SWEEP_RUNNERS[args.experiment]
        result = getattr(experiments, run_name)(
            args.scale, n_jobs=n_jobs, cache=cache, **grid
        )
        print(getattr(experiments, fmt_name)(result))
        path = experiments.save_sweep_json(result, args.json)
        print(f"\nstructured results written to {path}")
        return 0

    print(experiments.run_experiment(
        args.experiment, args.scale, n_jobs=n_jobs, cache=cache, **grid
    ))
    return 0


def _cmd_list(args) -> int:
    from .experiments import EXPERIMENTS

    width = max(len(k) for k in EXPERIMENTS)
    for key, (description, _) in EXPERIMENTS.items():
        print(f"{key.ljust(width)}  {description}")
    return 0


def _cmd_allocate(args) -> int:
    from .allocation import OptimizedAllocator, WeightedAllocator
    from .experiments.reporting import format_table
    from .queueing import HeterogeneousNetwork

    try:
        speeds = [float(s) for s in args.speeds.split(",") if s.strip()]
    except ValueError:
        print(f"error: could not parse speeds {args.speeds!r}", file=sys.stderr)
        return 2
    if not speeds:
        print("error: no speeds given", file=sys.stderr)
        return 2
    if not 0.0 < args.utilization < 1.0:
        print(
            f"error: utilization must lie in (0, 1), got {args.utilization}",
            file=sys.stderr,
        )
        return 2

    network = HeterogeneousNetwork(speeds, utilization=args.utilization)
    weighted = WeightedAllocator().compute(network)
    optimized = OptimizedAllocator().compute(network)
    rows = [
        [s, float(w), float(o)]
        for s, w, o in zip(speeds, weighted.alphas, optimized.alphas)
    ]
    print(
        format_table(
            ["speed", "weighted alpha", "optimized alpha"],
            rows,
            title=f"Workload allocation at utilization {args.utilization}",
        )
    )
    print()
    print(
        "predicted mean response ratio: "
        f"weighted={weighted.predicted_mean_response_ratio():.4g}, "
        f"optimized={optimized.predicted_mean_response_ratio():.4g}"
    )
    dropped = optimized.zero_share_indices
    if dropped:
        print(f"computers receiving zero work under optimized: {dropped}")
    return 0


def _cmd_simulate(args) -> int:
    from .core import evaluate_policy, evaluate_policy_parallel, get_policy
    from .experiments.reporting import format_table
    from .sim import SimulationConfig

    n_jobs = _resolve_jobs(args.n_jobs)
    if n_jobs is None:
        return 2
    speeds = _parse_speeds(args.speeds)
    if speeds is None:
        print(f"error: could not parse speeds {args.speeds!r}", file=sys.stderr)
        return 2
    try:
        config = SimulationConfig(
            speeds=speeds, utilization=args.utilization,
            duration=args.duration, arrival_cv=args.arrival_cv,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    names = [p.strip() for p in args.policies.split(",") if p.strip()]
    try:
        policies = [get_policy(name) for name in names]
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.paired or args.precision is not None:
        return _simulate_cell(args, config, policies, speeds)

    rows = []
    for name, policy in zip(names, policies):
        if n_jobs > 1:
            # Bit-identical to the serial path: same seeds, same
            # order-insensitive aggregation.
            ev = evaluate_policy_parallel(
                config, name, replications=args.replications,
                base_seed=args.seed, n_jobs=n_jobs,
            )
        else:
            ev = evaluate_policy(
                config, policy, replications=args.replications,
                base_seed=args.seed,
            )
        rows.append([
            policy.name,
            ev.mean_response_time.mean,
            ev.mean_response_ratio.mean,
            ev.fairness.mean,
            ev.mean_response_ratio.half_width,
        ])
    print(format_table(
        ["policy", "mean resp time", "mean resp ratio", "fairness", "ratio ±CI"],
        rows,
        title=(
            f"speeds={speeds} rho={args.utilization} cv={args.arrival_cv} "
            f"({args.replications} x {args.duration:.0f} s)"
        ),
    ))
    return 0


def _simulate_cell(args, config, policies, speeds) -> int:
    """``simulate --paired`` / ``--precision``: cell-batched evaluation.

    Every policy replays the same materialized streams per replication
    (common random numbers), so policy differences are matched pairs.
    The baseline for paired comparisons is the first policy listed.
    """
    from .core import evaluate_cell, evaluate_cell_to_precision
    from .experiments.reporting import format_table

    if args.paired and len(policies) < 2:
        print("error: --paired needs at least two policies", file=sys.stderr)
        return 2
    baseline = policies[0].name

    if args.precision is not None:
        if args.precision <= 0:
            print(f"error: --precision must be positive, got {args.precision}",
                  file=sys.stderr)
            return 2
        cell = evaluate_cell_to_precision(
            config, policies,
            target_relative_half_width=args.precision,
            paired_baseline=baseline if args.paired else None,
            min_replications=min(3, args.replications),
            max_replications=args.replications,
            base_seed=args.seed,
        )
    else:
        cell = evaluate_cell(
            config, policies, replications=args.replications,
            base_seed=args.seed,
        )

    rows = [
        [
            ev.policy_name,
            ev.mean_response_time.mean,
            ev.mean_response_ratio.mean,
            ev.fairness.mean,
            ev.mean_response_ratio.half_width,
        ]
        for ev in (cell[name] for name in cell.policy_names)
    ]
    print(format_table(
        ["policy", "mean resp time", "mean resp ratio", "fairness", "ratio ±CI"],
        rows,
        title=(
            f"speeds={speeds} rho={args.utilization} cv={args.arrival_cv} "
            f"({cell.replications} x {args.duration:.0f} s, shared streams)"
        ),
    ))
    if args.precision is not None:
        mode = "paired" if args.paired else "absolute"
        print(f"stopped after {cell.replications} replication(s) "
              f"({mode} target {args.precision:g})")
    if args.paired:
        prows = []
        for name in cell.policy_names:
            if name == baseline:
                continue
            ps = cell.paired(name, baseline, "mean_response_ratio")
            prows.append([f"{name} - {baseline}", ps.mean_diff,
                          ps.half_width, ps.verdict])
        print()
        print(format_table(
            ["comparison", "mean diff", "±CI", "verdict"],
            prows,
            title=(
                f"paired response-ratio differences vs {baseline} "
                f"(common random numbers; 'a_wins' = policy beats baseline)"
            ),
        ))
    return 0


def _cmd_validate(args) -> int:
    from .analysis import validate_against_theory
    from .core import get_policy
    from .sim import SimulationConfig

    speeds = _parse_speeds(args.speeds)
    if speeds is None:
        print(f"error: could not parse speeds {args.speeds!r}", file=sys.stderr)
        return 2
    try:
        config = SimulationConfig(
            speeds=speeds, utilization=args.utilization,
            duration=args.duration, arrival_cv=args.arrival_cv,
        )
        policy = get_policy(args.policy)
        report = validate_against_theory(
            config, policy, replications=args.replications
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    print(
        f"response time: measured {report.measured_response_time:.4g} vs "
        f"predicted {report.predicted_response_time:.4g} "
        f"({report.response_time_error:+.1%})"
    )
    if args.arrival_cv == 1.0:
        print("Poisson arrivals: the M/G/1-PS model is exact; residual error "
              "is simulation noise.")
    else:
        print("non-Poisson arrivals: positive error measures the burstiness "
              "penalty the model ignores.")
    return 0


def _cmd_characterize(args) -> int:
    from .analysis import characterize
    from .sim import JobTrace

    try:
        trace = JobTrace.from_csv(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = characterize(trace)
    print(report.summary())
    for p, v in report.size_percentiles.items():
        print(f"  size p{p}: {v:.6g} s")
    if args.speeds:
        speeds = _parse_speeds(args.speeds)
        if speeds is None:
            print(f"error: could not parse speeds {args.speeds!r}", file=sys.stderr)
            return 2
        rho = trace.offered_load(sum(speeds))
        print(f"  offered load vs speeds {speeds}: {rho:.3f}")
    model = report.recommended_model()
    print(
        "suggested synthetic model: "
        f"sizes mean={model['size_mean']:.6g} cv={model['size_cv']:.3g}; "
        f"inter-arrivals cv={model['interarrival_cv']:.3g}"
    )
    return 0


def _time(fn, *args, **kwargs):
    import time

    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - t0


def _counter_summary(delta: dict) -> list[str]:
    """Human-readable counter lines, job ledger first, labels grouped.

    Per-server ledger keys collapse to aggregates (``jobs.dispatched``
    across 8 servers prints one line) so the summary stays a glance, not
    a dump; everything else prints verbatim, sorted.
    """
    from .obs import counters as obs_counters

    rolled: dict[str, float] = {}
    for k, v in sorted(delta.items()):
        name, labels = obs_counters.parse_key(k)
        rolled[name] = rolled.get(name, 0) + v
    ledger = [n for n in rolled if n.startswith(("jobs.", "runs."))]
    rest = [n for n in rolled if n not in ledger]
    return [f"  {n:<24} {rolled[n]:g}" for n in ledger + rest]


def _cmd_serve(args) -> int:
    import json as json_module

    from .distributions import distribution_from_mean_cv
    from .service import (
        SchedulerService,
        ServiceCheckpoint,
        ServiceConfig,
        ServiceCrash,
        SyntheticJobSource,
        TraceJobSource,
    )
    from .sim.arrivals import Workload
    from .sim.modulated import drift_profile, step_profile

    speeds = _parse_speeds(args.speeds)
    if speeds is None:
        print(f"error: could not parse speeds {args.speeds!r}", file=sys.stderr)
        return 2
    faults = None
    if args.faults is not None:
        from .faults import FaultConfig

        try:
            faults = FaultConfig.parse(args.faults)
        except ValueError as exc:
            print(f"error: bad --faults spec: {exc}", file=sys.stderr)
            return 2
    if args.resume and args.checkpoint is None:
        print("error: --resume needs --checkpoint PATH", file=sys.stderr)
        return 2
    try:
        config = ServiceConfig(
            speeds=tuple(speeds),
            duration=args.duration,
            control_period=args.resolve_period,
            estimator_window=args.window,
            shed_threshold=args.shed_threshold,
            slo_target=args.slo,
            faults=faults,
            fault_seed=args.fault_seed,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.replay is not None:
        try:
            data = np.loadtxt(args.replay, delimiter=",", ndmin=2)
            source = TraceJobSource(data[:, 0], data[:, 1])
        except (OSError, ValueError, IndexError) as exc:
            print(f"error: could not read trace {args.replay!r}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        if not 0.0 < args.utilization < 1.0:
            print(
                f"error: utilization must lie in (0, 1), got {args.utilization}",
                file=sys.stderr,
            )
            return 2
        step_at = (
            args.step_time if args.step_time is not None else args.duration / 2.0
        )
        if args.workload == "step":
            profile = step_profile(
                step_time=step_at, factor=args.step_factor, horizon=args.duration
            )
        elif args.workload == "drift":
            profile = drift_profile(1.0, args.step_factor, horizon=args.duration)
        else:
            profile = None
        try:
            workload = Workload(
                total_speed=sum(speeds),
                utilization=args.utilization,
                size_distribution=distribution_from_mean_cv(1.0, args.size_cv),
                arrival_cv=args.arrival_cv,
                rate_profile=profile,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        source = SyntheticJobSource(workload, args.seed)

    checkpoint = (
        ServiceCheckpoint(args.checkpoint) if args.checkpoint is not None else None
    )
    service = SchedulerService(
        config,
        source,
        checkpoint=checkpoint,
        checkpoint_every=args.checkpoint_every,
        crash_after=args.crash_after,
    )
    if args.resume:
        try:
            state = checkpoint.load_last()
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if state is None:
            print(
                f"note: no snapshot in {args.checkpoint!r}; starting fresh",
                file=sys.stderr,
            )
        else:
            try:
                service.restore(state)
            except ValueError as exc:
                print(f"error: cannot resume: {exc}", file=sys.stderr)
                return 2
    try:
        report = service.run()
    except ServiceCrash as exc:
        print(f"crashed (simulated): {exc}", file=sys.stderr)
        return 3

    if args.json:
        print(json_module.dumps(report.as_dict(), indent=2))
        return 0

    from .experiments.reporting import format_table

    rows = [
        ["jobs offered", report.jobs_offered],
        ["jobs dispatched", report.jobs_dispatched],
        ["jobs shed", report.jobs_shed],
        ["re-solves", report.resolves],
        ["sequence swaps", report.swaps],
        ["time-averaged MRT", report.time_averaged_mrt],
        ["response p50", report.p50],
        ["response p99", report.p99],
        ["clean shutdown", report.clean_shutdown],
    ]
    if faults is not None or report.membership_changes:
        rows[6:6] = [
            ["jobs lost", report.jobs_lost],
            ["jobs retried", report.jobs_retried],
            ["loss rate", report.loss_rate],
            ["membership changes", report.membership_changes],
        ]
    alphas = ", ".join(f"{a:.4f}" for a in report.final_alphas)
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=(
                f"Quasi-static service: {len(speeds)} servers, "
                f"{args.duration:.0f} s, re-solve every "
                f"{args.resolve_period:.0f} s"
            ),
        )
    )
    print()
    print(f"final allocation: [{alphas}]")
    return 0


def _with_telemetry(handler, args) -> int:
    """Run *handler* under --trace / --profile, if requested.

    Everything telemetry adds goes to **stderr** (and the trace file);
    stdout stays byte-identical with or without these flags — asserted
    by the bench telemetry section and the observability tests.
    """
    trace = getattr(args, "trace_out", None)
    profile = getattr(args, "profile_out", None)
    if trace is None and profile is None:
        return handler(args)

    from .obs import (
        ProfileSink,
        add_sink,
        counters,
        disable_tracing,
        enable_tracing,
        remove_sink,
    )

    prof = None
    before = counters.snapshot()
    if trace is not None:
        enable_tracing(trace)
    if profile is not None:
        prof = ProfileSink()
        add_sink(prof)
    try:
        return handler(args)
    finally:
        if prof is not None:
            remove_sink(prof)
            print(prof.table(), file=sys.stderr)
            if profile:  # --profile PATH: folded stacks for flamegraphs
                with open(profile, "w", encoding="utf-8") as fh:
                    fh.write(prof.folded() + "\n")
                print(f"folded stacks written to {profile}", file=sys.stderr)
        if trace is not None:
            disable_tracing()
            print(f"trace written to {trace}", file=sys.stderr)
        delta = counters.diff_since(before)
        if delta:
            print("counters:", file=sys.stderr)
            for line in _counter_summary(delta):
                print(line, file=sys.stderr)


def _cmd_bench(args) -> int:
    """Benchmark the performance stack and append to the trajectory file.

    Three sections:

    * kernels — vectorized FCFS/PS replay vs the per-job reference loops
      on one synthetic substream (``ps_backend`` names the compiled or
      pure-Python busy-period core in use);
    * replication — one fast-path replication vs the event engine on the
      Figure 3 high-skew point, for both disciplines;
    * sweep — a Figure 3 subset serially, through the grid executor
      (verifying the series are identical), then cold/warm through the
      replication cache;
    * cell — the same subset per-replication vs cell-batched (shared
      streams, batched replay), plus paired-vs-unpaired ORR/WRR
      confidence-interval widths under common random numbers;
    * executor — a tiny grid through real workers vs the auto-serial
      small-task path;
    * telemetry — the disabled-telemetry overhead guard (<2% of one
      replication, priced from the no-op span path) and a trace-on vs
      trace-off bit-identity check over the emitted JSONL;
    * serve (with ``--serve``) — the serving hot path: one fault-free
      service run through the vectorized window loop vs the per-job
      reference loop on the same stream, asserting the two reports are
      field-for-field identical and recording end-to-end jobs/sec plus
      the dispatch plane's ns/job (memoized Algorithm 2 slices);
    * net (with ``--net``) — the networked dispatcher split: the
      in-process transport must reproduce the SchedulerService report
      byte-for-byte, a socket-mode overload drill must hold its
      backpressure bounds while staying byte-identical, a rebalanced
      overload drill over an imbalanced 2-shard pool must show the
      capacity-aware router shedding nothing where the legacy even
      split sheds, a kill+rejoin drill must stay byte-identical across
      transports, and the dispatch decision latency must sit under an
      absolute ceiling — all enforced before anything is appended.

    Every agreement gate (kernels vs loops, fast path vs engine, grid
    and cell sweeps vs serial, trace on vs off) must hold or the command
    exits nonzero.  With ``--gate`` the finished record is additionally
    compared against the most recent same-scale baseline in the
    trajectory — a tracked speedup ratio regressing more than the
    threshold (default 20%) fails the gate and nothing is appended.
    """
    import json
    import os
    import tempfile
    from datetime import datetime, timezone

    n_jobs = _resolve_jobs(args.n_jobs)
    if n_jobs is None:
        return 2

    from .core import get_policy
    from .core.evaluate import run_policy_once
    from .experiments.base import SCALES
    from .experiments.configs import skewness_config
    from .experiments.figure3 import run_figure3
    from .sim import SimulationConfig
    from .sim.fastpath import (
        KERNEL_VERSION,
        _fcfs_replay_loop,
        _ps_replay_loop,
        fcfs_replay,
        ps_replay,
    )

    from .sim import ckernel

    scale = SCALES[args.scale]
    record: dict = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "kernel_version": KERNEL_VERSION,
        # Provenance of the compiled core actually engaged for this
        # record: the exact flags the shared library was built with and
        # the OpenMP width it will fan out to (1 when OpenMP was
        # unavailable and the kernel degraded to the serial build).
        "compiler_flags": list(ckernel.compile_flags() or ()),
        "openmp": bool(ckernel.openmp_enabled()),
        "openmp_threads": int(ckernel.omp_max_threads()),
        "scale": scale.name,
        "n_jobs": n_jobs,
    }

    # --- kernels: vectorized replay vs the per-job reference loops ----
    rng = np.random.default_rng(12345)
    n = 200_000
    times = np.cumsum(rng.exponential(1.0, n))
    work = rng.lognormal(mean=0.0, sigma=1.5, size=n)
    ref, fcfs_loop_s = _time(_fcfs_replay_loop, times, work, 2.0)
    fast, fcfs_fast_s = _time(fcfs_replay, times, work, 2.0)
    if not np.allclose(ref, fast, rtol=1e-9):
        print("error: FCFS kernel disagrees with reference loop",
              file=sys.stderr)
        return 1
    m = 30_000
    ref, ps_loop_s = _time(_ps_replay_loop, times[:m], work[:m], 2.0)
    fast, ps_fast_s = _time(ps_replay, times[:m], work[:m], 2.0)
    if not np.allclose(np.sort(ref), np.sort(fast), rtol=1e-9):
        print("error: PS kernel disagrees with reference loop",
              file=sys.stderr)
        return 1

    # Compiled FCFS replay must be BIT-identical to the numpy Lindley
    # recursion — not merely close.  One multi-server plan through the
    # fused cell kernel against the per-server numpy cores.
    fcfs_bit_identical = None
    fused = ckernel.cell_fn()
    if fused is not None:
        kn = 50_000
        kspeeds = np.array([1.0, 1.0, 2.0, 4.0, 10.0])
        ktimes = np.ascontiguousarray(times[:kn])
        kwork = np.ascontiguousarray(work[:kn])
        kplan = rng.integers(0, kspeeds.size, kn)
        comp_c, _, _, _, ok = ckernel.replay_cell_c(
            fused, ktimes, kwork, kspeeds, [kplan], False
        )
        korder = np.argsort(kplan, kind="stable")
        kcounts = np.bincount(kplan, minlength=kspeeds.size)
        koffs = np.concatenate([[0], np.cumsum(kcounts)])
        comp_py = np.empty(kn)
        grouped = np.empty(kn)
        gt, gw = ktimes[korder], kwork[korder]
        for s in range(kspeeds.size):
            lo, hi = int(koffs[s]), int(koffs[s + 1])
            if hi > lo:
                grouped[lo:hi] = fcfs_replay(gt[lo:hi], gw[lo:hi],
                                             float(kspeeds[s]))
        comp_py[korder] = grouped
        fcfs_bit_identical = bool(ok and np.array_equal(comp_c[0], comp_py))
        if not fcfs_bit_identical:
            print("error: compiled FCFS replay is not bit-identical to "
                  "the numpy kernel", file=sys.stderr)
            return 1

    record["kernels"] = {
        "fcfs_jobs": n,
        "fcfs_loop_s": fcfs_loop_s,
        "fcfs_fast_s": fcfs_fast_s,
        "fcfs_speedup": fcfs_loop_s / fcfs_fast_s,
        "ps_jobs": m,
        "ps_loop_s": ps_loop_s,
        "ps_fast_s": ps_fast_s,
        "ps_speedup": ps_loop_s / ps_fast_s,
        "ps_backend": "c" if ckernel.kernel_available() else "python",
        "fcfs_backend": "c" if ckernel.kernel_available() else "python",
        "fcfs_bit_identical": fcfs_bit_identical,
    }

    # --- replication: fast path vs event engine, both disciplines -----
    base = skewness_config(10.0, 0.70)
    policy = get_policy("ORR")
    replication: dict = {}
    for discipline in ("ps", "fcfs"):
        config = SimulationConfig(
            speeds=base.speeds, utilization=base.utilization,
            duration=scale.duration, warmup=scale.warmup,
            size_distribution=base.size_distribution,
            arrival_cv=base.arrival_cv, discipline=discipline,
        )
        eng, engine_s = _time(
            run_policy_once, config, policy, seed=scale.base_seed,
            force_engine=True,
        )
        fastr, fast_s = _time(
            run_policy_once, config, policy, seed=scale.base_seed
        )
        replication[discipline] = {
            "engine_s": engine_s,
            "fast_s": fast_s,
            "speedup": engine_s / fast_s,
            "agree": bool(np.isclose(
                eng.metrics.mean_response_ratio,
                fastr.metrics.mean_response_ratio,
                rtol=1e-9,
            )),
        }
        if not replication[discipline]["agree"]:
            print(f"error: {discipline} fast path disagrees with the "
                  f"event engine", file=sys.stderr)
            return 1
    record["replication"] = replication

    # --- sweep: serial vs grid executor, then cold/warm cache ---------
    kwargs = dict(
        fast_speeds=(1.0, 10.0), policies=("WRAN", "WRR", "ORAN", "ORR")
    )
    serial, serial_s = _time(run_figure3, scale, **kwargs)
    grid, grid_s = _time(run_figure3, scale, n_jobs=n_jobs, **kwargs)
    identical = all(
        np.array_equal(
            serial.series(p, "mean_response_ratio"),
            grid.series(p, "mean_response_ratio"),
        )
        for p in kwargs["policies"]
    )
    if not identical:
        print("error: grid sweep diverged from the serial sweep",
              file=sys.stderr)
        return 1

    if args.cache:
        cold, cold_s = _time(
            run_figure3, scale, cache=_open_cache(args.cache), **kwargs
        )
        warm, warm_s = _time(
            run_figure3, scale, cache=_open_cache(args.cache), **kwargs
        )
    else:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            cold, cold_s = _time(
                run_figure3, scale, cache=_open_cache(tmp), **kwargs
            )
            warm, warm_s = _time(
                run_figure3, scale, cache=_open_cache(tmp), **kwargs
            )
    record["sweep"] = {
        "points": len(kwargs["fast_speeds"]),
        "policies": len(kwargs["policies"]),
        "replications": scale.replications,
        "serial_s": serial_s,
        "grid_s": grid_s,
        "grid_identical": identical,
        "cache_cold_s": cold_s,
        "cache_cold_hits": cold.cache_hits,
        "cache_warm_s": warm_s,
        "cache_warm_hits": warm.cache_hits,
        "cache_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
    }

    # --- cell batching: shared streams + batched replay ---------------
    # Both sweeps below run warm (the sweep section above already paid
    # the one-time memo and kernel warm-up), so the flat-vs-cell timing
    # compares steady-state costs rather than cold-start order.  Both
    # disciplines are measured: the headline ``cell_speedup`` is the
    # FCFS figure — the fully compiled kernel-v4 pipeline — while
    # ``cell_speedup_ps`` tracks the PS composition, whose per-plan
    # busy-period replay keeps a structurally lower flat:cell ratio
    # (see DESIGN.md §7.1).  The two legs of each ratio are timed
    # *interleaved* (flat, cell, flat, cell, ...) and the minima taken:
    # the legs are sub-second, ratios of minima damp scheduler noise,
    # and interleaving keeps slow system drift from biasing one leg —
    # the 2.0x floor gates a steady-state property, not a lucky draw.
    import dataclasses as _dc

    from .core import evaluate_cell
    from .experiments.base import run_policy_sweep

    def _best_pair(fn_a, fn_b, repeats=7):
        best_a = best_b = float("inf")
        out_a = out_b = None
        for _ in range(repeats):
            out_a, t = _time(fn_a)
            best_a = min(best_a, t)
            out_b, t = _time(fn_b)
            best_b = min(best_b, t)
        return out_a, best_a, out_b, best_b

    def _ps_sweep(cell_batch):
        return run_figure3(scale, cell_batch=cell_batch, **kwargs)

    flat, flat_ps_s, cellr, cell_ps_s = _best_pair(
        lambda: _ps_sweep(False), lambda: _ps_sweep(True)
    )
    cell_identical_ps = all(
        np.array_equal(
            cellr.series(p, "mean_response_ratio"),
            flat.series(p, "mean_response_ratio"),
        )
        and np.array_equal(
            cellr.series(p, "mean_response_ratio"),
            serial.series(p, "mean_response_ratio"),
        )
        for p in kwargs["policies"]
    )

    def _fcfs_config(x):
        return _dc.replace(skewness_config(x, 0.70), discipline="fcfs")

    def _fcfs_sweep(cell_batch):
        return run_policy_sweep(
            "bench-cell-fcfs", "bench cell (fcfs)", "x",
            list(kwargs["fast_speeds"]), _fcfs_config, kwargs["policies"],
            scale, cell_batch=cell_batch,
        )

    _fcfs_sweep(True)  # warm the fcfs leg (kernel + sequence memos)
    flat_f, flat_s, cell_f, cell_s = _best_pair(
        lambda: _fcfs_sweep(False), lambda: _fcfs_sweep(True)
    )
    cell_identical_fcfs = all(
        np.array_equal(
            cell_f.series(p, "mean_response_ratio"),
            flat_f.series(p, "mean_response_ratio"),
        )
        for p in kwargs["policies"]
    )
    cell_identical = cell_identical_ps and cell_identical_fcfs
    if not cell_identical:
        print("error: cell-batched sweep diverged from the flat grid",
              file=sys.stderr)
        return 1

    # Paired (CRN) vs unpaired (Welch) ORR-vs-WRR interval width on the
    # same samples.  The variance reduction tracks how similarly the two
    # policies route jobs: at mild skew their dispatch plans — and hence
    # the per-server substreams — nearly coincide and the replications
    # correlate strongly, while at extreme skew the routing diverges and
    # pairing buys less.  Both skew points are recorded; replications
    # are equal for both estimators by construction.
    from scipy import stats as sstats

    paired_reps = max(scale.replications, 10)
    paired_points = []
    for skew in (2.0, 10.0):
        sk_base = skewness_config(skew, 0.70)
        ps_config = SimulationConfig(
            speeds=sk_base.speeds, utilization=sk_base.utilization,
            duration=scale.duration, warmup=scale.warmup,
            size_distribution=sk_base.size_distribution,
            arrival_cv=sk_base.arrival_cv, discipline="ps",
        )
        cmp_cell = evaluate_cell(
            ps_config, ["ORR", "WRR"], replications=paired_reps,
            base_seed=scale.base_seed,
        )
        orr_name, wrr_name = cmp_cell.policy_names
        paired = cmp_cell.paired(orr_name, wrr_name, "mean_response_ratio")
        a = np.asarray(cmp_cell.samples[orr_name]["mean_response_ratio"])
        b = np.asarray(cmp_cell.samples[wrr_name]["mean_response_ratio"])
        reps = a.size
        va, vb = a.var(ddof=1), b.var(ddof=1)
        se2 = va / reps + vb / reps
        if se2 > 0:
            df = se2**2 / (
                (va / reps) ** 2 / (reps - 1) + (vb / reps) ** 2 / (reps - 1)
            )
            unpaired_hw = float(sstats.t.ppf(0.975, df) * np.sqrt(se2))
        else:
            unpaired_hw = 0.0
        paired_points.append({
            "skew": skew,
            "policies": [orr_name, wrr_name],
            "replications": reps,
            "paired_half_width": paired.half_width,
            "unpaired_half_width": unpaired_hw,
            "paired_vs_unpaired": (
                paired.half_width / unpaired_hw if unpaired_hw > 0 else 0.0
            ),
            "verdict": paired.verdict,
        })
    record["cell"] = {
        "flat_s": flat_s,
        "cell_s": cell_s,
        "cell_speedup": flat_s / cell_s if cell_s > 0 else float("inf"),
        "flat_ps_s": flat_ps_s,
        "cell_ps_s": cell_ps_s,
        "cell_speedup_ps": (
            flat_ps_s / cell_ps_s if cell_ps_s > 0 else float("inf")
        ),
        "cell_identical": cell_identical,
        "paired": paired_points,
    }

    # --- executor: real workers vs the auto-serial small-task path ----
    from .core import executor as executor_mod
    from .core.executor import (
        ReplicationTask,
        run_replication_grid,
        shutdown_shared_executor,
    )
    from .rng import replication_seeds

    small_config = SimulationConfig(
        speeds=base.speeds, utilization=base.utilization,
        duration=2.0e4, warmup=5.0e3,
        size_distribution=base.size_distribution,
        arrival_cv=base.arrival_cv, discipline="ps",
    )
    small_tasks = [
        ReplicationTask(key=("bench", "ORR", r), config=small_config,
                        policy_name="ORR", estimation_error=None, seed=s)
        for r, s in enumerate(
            replication_seeds(scale.base_seed, executor_mod._AUTO_SERIAL_TASKS)
        )
    ]
    workers = max(2, n_jobs)
    shutdown_shared_executor()
    saved_threshold = executor_mod._AUTO_SERIAL_TASKS
    try:
        executor_mod._AUTO_SERIAL_TASKS = 0
        pooled, pool_s = _time(
            run_replication_grid, list(small_tasks), n_jobs=workers
        )
    finally:
        executor_mod._AUTO_SERIAL_TASKS = saved_threshold
    shutdown_shared_executor()
    auto, auto_s = _time(
        run_replication_grid, list(small_tasks), n_jobs=workers
    )
    exec_identical = set(pooled.outcomes) == set(auto.outcomes) and all(
        all(
            np.array_equal(x, y) if isinstance(x, np.ndarray) else x == y
            for x, y in zip(pooled.outcomes[key], auto.outcomes[key])
        )
        for key in pooled.outcomes
    )
    if not exec_identical:
        print("error: auto-serial grid diverged from the worker pool",
              file=sys.stderr)
        return 1
    record["executor"] = {
        "small_tasks": len(small_tasks),
        "n_jobs": workers,
        "pool_s": pool_s,
        "auto_serial_s": auto_s,
        "auto_serial_speedup": pool_s / auto_s if auto_s > 0 else float("inf"),
    }

    # --- telemetry: disabled-overhead guard + trace bit-identity ------
    import time

    from .obs import JsonlSink, add_sink, remove_sink, validate_event
    from .obs import spans as spans_mod
    from .obs.digest import results_digest
    from .obs.spans import span as obs_span

    ps_config = SimulationConfig(
        speeds=base.speeds, utilization=base.utilization,
        duration=scale.duration, warmup=scale.warmup,
        size_distribution=base.size_distribution,
        arrival_cv=base.arrival_cv, discipline="ps",
    )
    untraced, untraced_s = _time(
        run_policy_once, ps_config, policy, seed=scale.base_seed
    )
    with tempfile.TemporaryDirectory(prefix="repro-trace-") as tmp:
        trace_path = os.path.join(tmp, "bench_trace.jsonl")
        sink = JsonlSink(trace_path)
        add_sink(sink)
        try:
            traced, traced_s = _time(
                run_policy_once, ps_config, policy, seed=scale.base_seed
            )
        finally:
            remove_sink(sink)
        with open(trace_path, encoding="utf-8") as fh:
            events = [json.loads(line) for line in fh if line.strip()]
    try:
        for event in events:
            validate_event(event)
    except ValueError as exc:
        print(f"error: trace emitted a schema-invalid event: {exc}",
              file=sys.stderr)
        return 1
    trace_identical = results_digest(traced) == results_digest(untraced)

    # Zero-overhead-when-disabled guard: price the no-op span path with
    # no sinks registered (sinks are parked, not closed, so an outer
    # --trace on this very command survives), then scale by the events
    # one traced replication actually emits.
    saved_sinks = spans_mod._sinks[:]
    spans_mod._sinks[:] = []
    try:
        noop_n = 200_000
        t0 = time.perf_counter()
        for _ in range(noop_n):
            with obs_span("bench.noop", probe=1):
                pass
        noop_s = time.perf_counter() - t0
    finally:
        spans_mod._sinks[:] = saved_sinks
    per_call = noop_s / noop_n
    overhead = len(events) * per_call / untraced_s if untraced_s > 0 else 0.0
    record["telemetry"] = {
        "noop_span_ns": per_call * 1e9,
        "events_per_replication": len(events),
        "untraced_s": untraced_s,
        "traced_s": traced_s,
        "overhead_fraction": overhead,
        "overhead_ok": overhead < 0.02,
        "trace_identical": trace_identical,
    }
    if not trace_identical:
        print("error: results diverged with tracing enabled",
              file=sys.stderr)
        return 1
    if not record["telemetry"]["overhead_ok"]:
        print(f"error: disabled-telemetry overhead {overhead:.2%} exceeds "
              f"the 2% budget", file=sys.stderr)
        return 1

    # --- serve: vectorized window loop vs the per-job reference -------
    if args.serve:
        from .dispatch.round_robin import dispatch_sequence_slice
        from .distributions.fitting import distribution_from_mean_cv
        from .service.loop import SchedulerService, ServiceConfig
        from .service.sources import SyntheticJobSource, Workload

        serve_speeds = (1.0, 2.0, 3.0, 4.0)
        serve_util = 0.85
        serve_jobs = {
            "smoke": 60_000, "quick": 240_000, "paper": 1_000_000,
        }[scale.name]
        # Mean-1 job sizes make the arrival rate util * total_speed, so
        # the horizon below offers ~serve_jobs arrivals over 50 windows.
        serve_rate = serve_util * sum(serve_speeds)
        serve_duration = serve_jobs / serve_rate
        serve_cp = serve_duration / 50.0

        def _serve_run(reference):
            cfg = ServiceConfig(
                speeds=serve_speeds, duration=serve_duration,
                control_period=serve_cp,
            )
            wl = Workload(
                total_speed=sum(serve_speeds), utilization=serve_util,
                size_distribution=distribution_from_mean_cv(1.0, 1.0),
            )
            svc = SchedulerService(
                cfg, SyntheticJobSource(wl, 7), reference=reference
            )
            return svc.run()

        ref_report, serve_ref_s, fast_report, serve_fast_s = _best_pair(
            lambda: _serve_run(True), lambda: _serve_run(False), repeats=3
        )
        # The acceptance criterion: the hot path must reproduce the
        # reference serve report bit-for-bit (JSON text equality keeps
        # NaN fields comparable), not merely approximately.
        serve_identical = (
            json.dumps(ref_report.as_dict(), sort_keys=True)
            == json.dumps(fast_report.as_dict(), sort_keys=True)
        )
        if not serve_identical:
            print("error: vectorized serve loop diverged from the "
                  "per-job reference report", file=sys.stderr)
            return 1
        serve_dispatched = int(fast_report.jobs_dispatched)

        # Dispatch-plane cost alone: memoized Algorithm 2 slices pulled
        # at window granularity, the way the service loop consumes them.
        serve_alphas = np.asarray(serve_speeds) / sum(serve_speeds)
        window_jobs = max(1, serve_jobs // 50)
        dispatch_sequence_slice(serve_alphas, 0, serve_jobs)  # warm memo
        t0 = time.perf_counter()
        for lo in range(0, serve_jobs, window_jobs):
            dispatch_sequence_slice(
                serve_alphas, lo, min(lo + window_jobs, serve_jobs)
            )
        dispatch_s = time.perf_counter() - t0

        record["serve"] = {
            "servers": len(serve_speeds),
            "utilization": serve_util,
            "jobs": serve_dispatched,
            "windows": len(fast_report.windows),
            "reference_s": serve_ref_s,
            "fast_s": serve_fast_s,
            "serve_speedup": (
                serve_ref_s / serve_fast_s if serve_fast_s > 0
                else float("inf")
            ),
            "jobs_per_sec": (
                serve_dispatched / serve_fast_s if serve_fast_s > 0
                else float("inf")
            ),
            "reference_jobs_per_sec": (
                serve_dispatched / serve_ref_s if serve_ref_s > 0
                else float("inf")
            ),
            "dispatch_ns_per_job": dispatch_s / serve_jobs * 1e9,
            "report_identical": serve_identical,
            "backend": "c" if ckernel.kernel_available() else "python",
        }

    # --- net: client / orchestrator / server split --------------------
    if args.net:
        import asyncio

        from .distributions.fitting import distribution_from_mean_cv
        from .net.runtime import run_in_process, run_sockets
        from .obs.gate import NET_DISPATCH_CEILING_NS
        from .service.loop import SchedulerService, ServiceConfig
        from .service.sources import SyntheticJobSource, Workload

        net_speeds = (1.0, 2.0, 3.0, 4.0)
        net_util = 0.85
        net_jobs = {
            "smoke": 20_000, "quick": 100_000, "paper": 400_000,
        }[scale.name]
        net_rate = net_util * sum(net_speeds)
        net_duration = net_jobs / net_rate
        net_cp = net_duration / 50.0
        net_cfg = ServiceConfig(
            speeds=net_speeds, duration=net_duration, control_period=net_cp,
        )

        def _net_source():
            wl = Workload(
                total_speed=sum(net_speeds), utilization=net_util,
                size_distribution=distribution_from_mean_cv(1.0, 1.0),
            )
            return SyntheticJobSource(wl, 7)

        # Simulation-vs-service equivalence: the in-process transport
        # must reproduce the SchedulerService report byte for byte.
        svc_report = SchedulerService(net_cfg, _net_source()).run()
        inproc = run_in_process(net_cfg, _net_source())
        net_identical = (
            json.dumps(svc_report.as_dict(), sort_keys=True)
            == json.dumps(inproc.report.as_dict(), sort_keys=True)
        )
        if not net_identical:
            print("error: networked in-process run diverged from the "
                  "SchedulerService report", file=sys.stderr)
            return 1

        # The overload drill: live sockets, client pushed 8 windows
        # ahead of a 2-window orchestrator buffer — backpressure must
        # hold the bounds and the report must still be byte-identical.
        overload = asyncio.run(run_sockets(
            net_cfg, _net_source(), max_inflight=8, queue_limit=2,
        ))
        overload_identical = (
            json.dumps(svc_report.as_dict(), sort_keys=True)
            == json.dumps(overload.report.as_dict(), sort_keys=True)
        )
        if not overload_identical:
            print("error: socket-mode overload run diverged from the "
                  "SchedulerService report", file=sys.stderr)
            return 1
        if overload.metrics.peak_submit_queue > 2:
            print("error: orchestrator buffered "
                  f"{overload.metrics.peak_submit_queue} windows past the "
                  "2-window bound", file=sys.stderr)
            return 1

        # The rebalanced overload drill: an imbalanced 2-shard pool
        # (shard 0 owns 3 units of speed, shard 1 owns 9) at a load the
        # full bank carries easily.  The legacy even split halves the
        # stream and overloads the slow shard into shedding; the
        # capacity-aware router must shed nothing — and its socket run
        # must still match the in-process run byte for byte.
        bal_speeds = (1.0, 4.0, 2.0, 5.0)
        bal_util = 0.6
        bal_duration = net_jobs / (bal_util * sum(bal_speeds))
        bal_cfg = ServiceConfig(
            speeds=bal_speeds, duration=bal_duration,
            control_period=bal_duration / 50.0,
        )

        def _bal_source():
            wl = Workload(
                total_speed=sum(bal_speeds), utilization=bal_util,
                size_distribution=distribution_from_mean_cv(1.0, 1.0),
            )
            return SyntheticJobSource(wl, 7)

        bal_even = run_in_process(
            bal_cfg, _bal_source(), n_shards=2, split="even")
        bal_cap = run_in_process(
            bal_cfg, _bal_source(), n_shards=2, split="capacity")
        bal_live = asyncio.run(run_sockets(
            bal_cfg, _bal_source(), n_shards=2, split="capacity"))
        even_split_shed = bal_even.metrics.jobs_shed
        balanced_no_shed = (
            bal_cap.metrics.jobs_shed == 0 and even_split_shed > 0
        )
        if not balanced_no_shed:
            print("error: capacity-aware split shed "
                  f"{bal_cap.metrics.jobs_shed} jobs (even split: "
                  f"{even_split_shed}) — rebalancing is broken",
                  file=sys.stderr)
            return 1
        balanced_identical = all(
            json.dumps(a.as_dict(), sort_keys=True)
            == json.dumps(b.as_dict(), sort_keys=True)
            for a, b in zip(bal_cap.reports, bal_live.reports)
        )
        if not balanced_identical:
            print("error: capacity-split socket run diverged from the "
                  "in-process run", file=sys.stderr)
            return 1

        # The rejoin drill: kill the fastest server mid-run, restart it
        # five windows later — both transports must agree byte for byte
        # through the whole death/rejoin membership cycle.
        rj_kill, rj_rejoin = {3: 9}, {3: 14}
        rj_sim = run_in_process(
            net_cfg, _net_source(), kill=rj_kill, rejoin=rj_rejoin)
        rj_live = asyncio.run(run_sockets(
            net_cfg, _net_source(), kill=rj_kill, rejoin=rj_rejoin))
        rejoin_identical = (
            json.dumps(rj_sim.report.as_dict(), sort_keys=True)
            == json.dumps(rj_live.report.as_dict(), sort_keys=True)
        )
        if not rejoin_identical:
            print("error: socket-mode kill+rejoin run diverged from the "
                  "in-process run", file=sys.stderr)
            return 1

        net_dispatch_ns = inproc.metrics.dispatch_ns_per_job
        record["net"] = {
            "servers": len(net_speeds),
            "utilization": net_util,
            "jobs": inproc.metrics.jobs_dispatched,
            "windows": inproc.metrics.windows,
            "report_identical": net_identical,
            "overload_report_identical": overload_identical,
            "rejoin_report_identical": rejoin_identical,
            "balanced_no_shed": balanced_no_shed,
            "even_split_shed": even_split_shed,
            "dispatch_ns_per_job": net_dispatch_ns,
            "dispatch_ceiling_ns": NET_DISPATCH_CEILING_NS,
            "inproc_s": inproc.metrics.wall_seconds,
            "inproc_jobs_per_sec": inproc.metrics.jobs_per_sec,
            "socket_s": overload.metrics.wall_seconds,
            "jobs_per_sec": overload.metrics.jobs_per_sec,
            "rtt_p50_s": overload.metrics.rtt_p50_s,
            "rtt_p99_s": overload.metrics.rtt_p99_s,
            "max_inflight": overload.metrics.max_inflight,
            "peak_inflight": overload.metrics.peak_inflight,
            "queue_limit": overload.metrics.queue_limit,
            "peak_submit_queue": overload.metrics.peak_submit_queue,
            "backend": "c" if ckernel.kernel_available() else "python",
        }
        # The latency gate: enforced before anything is appended, like
        # every other agreement gate in this command.
        if net_dispatch_ns > NET_DISPATCH_CEILING_NS:
            print(f"error: dispatch decision latency "
                  f"{net_dispatch_ns:.0f}ns/job exceeds the "
                  f"{NET_DISPATCH_CEILING_NS:.0f}ns ceiling",
                  file=sys.stderr)
            return 1

    # --- gate, then append to the trajectory and summarize ------------
    trajectory: list = []
    try:
        with open(args.output, encoding="utf-8") as fh:
            trajectory = json.load(fh)
        if not isinstance(trajectory, list):
            trajectory = [trajectory]
    except (OSError, ValueError):
        pass

    gate_summary = None
    if args.gate:
        from .obs.gate import DEFAULT_THRESHOLD, check_gate

        threshold = (
            args.gate_threshold
            if args.gate_threshold is not None
            else DEFAULT_THRESHOLD
        )
        gate = check_gate(record, trajectory, threshold)
        gate_summary = gate.summary()
        if not gate.passed:
            # Failing records never pollute the trajectory baseline.
            print(gate_summary)
            return 1

    trajectory.append(record)
    # Stage to a temp file and rename into place: an interrupted or
    # concurrent bench run can never truncate the trajectory mid-write.
    tmp_path = f"{args.output}.{os.getpid()}.tmp"
    try:
        with open(tmp_path, "w", encoding="utf-8") as fh:
            json.dump(trajectory, fh, indent=2)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, args.output)
    except OSError as exc:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        print(f"error: cannot write {args.output}: {exc}", file=sys.stderr)
        return 2

    k, r, s = record["kernels"], record["replication"], record["sweep"]
    c, e = record["cell"], record["executor"]
    print(f"benchmark @ scale={scale.name} n_jobs={n_jobs} "
          f"(kernel v{KERNEL_VERSION})")
    print(f"  FCFS kernel : {k['fcfs_loop_s']:.3f}s loop -> "
          f"{k['fcfs_fast_s']:.3f}s vectorized "
          f"({k['fcfs_speedup']:.1f}x, {k['fcfs_jobs']} jobs)")
    print(f"  PS kernel   : {k['ps_loop_s']:.3f}s loop -> "
          f"{k['ps_fast_s']:.3f}s segmented "
          f"({k['ps_speedup']:.1f}x, {k['ps_jobs']} jobs, "
          f"backend={k['ps_backend']})")
    for d in ("ps", "fcfs"):
        print(f"  {d.upper():4} run    : {r[d]['engine_s']:.3f}s engine -> "
              f"{r[d]['fast_s']:.3f}s fast path ({r[d]['speedup']:.1f}x, "
              f"agree={r[d]['agree']})")
    print(f"  sweep       : serial {s['serial_s']:.3f}s, "
          f"grid {s['grid_s']:.3f}s (identical={s['grid_identical']})")
    print(f"  cache       : cold {s['cache_cold_s']:.3f}s "
          f"({s['cache_cold_hits']} hits) -> warm {s['cache_warm_s']:.3f}s "
          f"({s['cache_warm_hits']} hits, {s['cache_speedup']:.1f}x)")
    print(f"  cell batch  : fcfs flat {c['flat_s']:.3f}s -> cell "
          f"{c['cell_s']:.3f}s ({c['cell_speedup']:.2f}x); "
          f"ps flat {c['flat_ps_s']:.3f}s -> cell "
          f"{c['cell_ps_s']:.3f}s ({c['cell_speedup_ps']:.2f}x, "
          f"identical={c['cell_identical']})")
    for pp in c["paired"]:
        print(f"  paired CI   : skew {pp['skew']:g}: "
              f"±{pp['paired_half_width']:.4g} paired vs "
              f"±{pp['unpaired_half_width']:.4g} unpaired "
              f"({pp['paired_vs_unpaired']:.2f}x, n={pp['replications']}, "
              f"{pp['verdict']})")
    print(f"  executor    : {e['small_tasks']} tasks via pool "
          f"{e['pool_s']:.3f}s -> auto-serial {e['auto_serial_s']:.3f}s "
          f"({e['auto_serial_speedup']:.1f}x)")
    t = record["telemetry"]
    print(f"  telemetry   : noop span {t['noop_span_ns']:.0f}ns, "
          f"{t['events_per_replication']} events/rep, disabled overhead "
          f"{t['overhead_fraction']:.3%} (<2%), "
          f"trace identical={t['trace_identical']}")
    if "serve" in record:
        sv = record["serve"]
        print(f"  serve       : ref {sv['reference_s']:.3f}s -> fast "
              f"{sv['fast_s']:.3f}s ({sv['serve_speedup']:.1f}x, "
              f"{sv['jobs_per_sec']:,.0f} jobs/s, dispatch "
              f"{sv['dispatch_ns_per_job']:.0f}ns/job, "
              f"identical={sv['report_identical']}, "
              f"backend={sv['backend']})")
    if "net" in record:
        nv = record["net"]
        print(f"  net         : inproc {nv['inproc_s']:.3f}s "
              f"({nv['inproc_jobs_per_sec']:,.0f} jobs/s) -> sockets "
              f"{nv['socket_s']:.3f}s ({nv['jobs_per_sec']:,.0f} jobs/s "
              f"under overload), dispatch "
              f"{nv['dispatch_ns_per_job']:.0f}ns/job "
              f"(ceiling {nv['dispatch_ceiling_ns']:.0f}), rtt p50/p99 "
              f"{nv['rtt_p50_s'] * 1e3:.1f}/{nv['rtt_p99_s'] * 1e3:.1f}ms, "
              f"identical={nv['report_identical']}/"
              f"{nv['overload_report_identical']}/"
              f"{nv['rejoin_report_identical']}, "
              f"rebalance sheds 0 vs {nv['even_split_shed']} even, "
              f"inflight {nv['peak_inflight']}/{nv['max_inflight']}, "
              f"queue {nv['peak_submit_queue']}/{nv['queue_limit']}")
    if gate_summary is not None:
        print(gate_summary)
    print(f"trajectory point #{len(trajectory)} appended to {args.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "list": _cmd_list,
        "allocate": _cmd_allocate,
        "simulate": _cmd_simulate,
        "validate": _cmd_validate,
        "characterize": _cmd_characterize,
        "serve": _cmd_serve,
        "bench": _cmd_bench,
    }
    return _with_telemetry(handlers[args.command], args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
