"""Windowed FCFS replay with residual backlog carried across windows.

The offline fast path (:mod:`repro.sim.fastpath`) replays a *complete*
substream at once; the service dispatches in control windows, so each
server's queue state must survive the window boundary.  The only state
FCFS needs is the time the server frees up: with per-window arrival
times t, service demands ``svc = size/speed``, and carried ``free_at``,
the Lindley recursion vectorizes as

    dep_j = cum_j + max( free_at, max_{k≤j}( t_k − cum_{k−1} ) )

where ``cum`` is the running sum of svc — identical to the fast path's
prefix-max kernel with the carried term folded into the max.  Replaying
one stream in windows agrees with replaying it whole to float-rounding
accuracy (the window split re-bases the cumulative sums), which lets
the oracle comparison in the online experiments attribute MRT
differences to the *allocation*, not the replay.

**Failure support.**  The fault-tolerant serving path needs more than
``free_at``: a down server must reject dispatches and bounce its
resident jobs, and a degraded server stretches everything still in
flight.  In fault mode the bank therefore tracks each in-flight job
(origin arrival, size, service time, projected departure, failed
placements) in a per-server FIFO whose departure projections stay valid
until a fault event rewrites them:

* :meth:`dispatch` queues one job (or refuses, if the server is down),
* :meth:`collect_completions` finalizes jobs whose departure has passed,
* :meth:`fail` / :meth:`repair` flip membership, bouncing residents,
* :meth:`set_speed_factor` rescales in-flight work for degradation —
  for FCFS everything after *now* on one server is service work at the
  new speed, so ``dep' = now + (dep − now)·(s_old/s_new)`` is exact.

The fault-free :meth:`replay_window` path is untouched, keeping
fault-free service runs bit-identical.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..sim import ckernel

__all__ = ["ServerBank", "lindley_window"]

#: In-flight record layout: [origin, size, svc, dep, attempts].
_ORIGIN, _SIZE, _SVC, _DEP, _ATTEMPTS = range(5)


def lindley_window(
    times: np.ndarray, sizes: np.ndarray, speed: float, free_at: float
) -> tuple[np.ndarray, np.ndarray, float]:
    """One server's FCFS Lindley recursion over one window slice.

    Returns ``(departures, service_times, new_free_at)`` for jobs
    arriving at *times* with demands *sizes* on a server of *speed*
    that frees up at *free_at*.  This is the exact float-op sequence of
    the per-server body of :meth:`ServerBank._replay_grouped_python`
    (proven bit-identical to the compiled sweep), factored out so the
    networked server stubs replay windows with the very same bits the
    in-process bank produces.
    """
    svc = sizes / speed
    cum = np.cumsum(svc)
    starts = times - (cum - svc)
    dep = cum + np.maximum(np.maximum.accumulate(starts), free_at)
    return dep, svc, float(dep[-1]) if dep.size else float(free_at)


class ServerBank:
    """Per-server FCFS queues whose backlog persists across windows."""

    def __init__(self, speeds):
        s = np.asarray(speeds, dtype=float)
        if s.ndim != 1 or s.size == 0:
            raise ValueError("speeds must be a non-empty 1-D vector")
        if np.any(s <= 0):
            raise ValueError(f"speeds must be positive, got {s}")
        self.speeds = s.copy()
        self.free_at = np.zeros(s.size)
        self.up = np.ones(s.size, dtype=bool)
        self.speed_factor = np.ones(s.size)
        self._inflight: list[deque] = [deque() for _ in range(s.size)]

    @property
    def n(self) -> int:
        return int(self.speeds.size)

    def replay_window(
        self, targets: np.ndarray, times: np.ndarray, sizes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Process one window of dispatched jobs; update server state.

        Returns ``(departures, service_times)`` aligned with the input
        arrival order.  ``times`` must be non-decreasing and must not
        precede any earlier window.

        Validating compatibility wrapper around
        :meth:`replay_window_grouped`; the returned arrays are fresh
        copies the caller may keep across windows.
        """
        targets = np.ascontiguousarray(targets, dtype=np.int64)
        times = np.ascontiguousarray(times, dtype=float)
        sizes = np.ascontiguousarray(sizes, dtype=float)
        if not (targets.shape == times.shape == sizes.shape):
            raise ValueError("targets, times, and sizes must align")
        departures, service_times, _, _ = self.replay_window_grouped(
            targets, times, sizes
        )
        return departures.copy(), service_times.copy()

    def replay_window_grouped(
        self, targets: np.ndarray, times: np.ndarray, sizes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The serve hot path: one window in one compiled call.

        Inputs must be contiguous, shape-aligned arrays (int64 targets,
        float64 times/sizes) — the service loop guarantees this, so the
        per-window cost carries no re-validation or conversion.  Returns
        ``(departures, service_times, order, offsets)``: the first two
        in arrival order, ``order`` the stable group-by-server
        permutation and ``offsets`` the per-server group bounds
        (length ``n + 1``), which callers reuse to fold per-server
        speed witnesses without a second argsort.

        All four arrays are views of per-process arena buffers —
        consume them before the next replay call, never store them
        (:meth:`replay_window` copies for callers that accumulate).
        The compiled carry-state sweep (``fcfs_window_sweep``) and the
        numpy fallback compute identical bits; either updates
        ``free_at`` in place.
        """
        n = times.size
        a = ckernel.arena()
        if n == 0:
            offsets = a.i64("window.offsets", self.n + 1)
            offsets[:] = 0
            return (
                a.f64("window.dep", 0),
                a.f64("window.svc", 0),
                a.i64("window.order", 0),
                offsets,
            )
        fn = ckernel.window_fn()
        if fn is not None:
            dep, svc, order, offsets, ok = ckernel.replay_window_c(
                fn, times, sizes, self.speeds, targets, self.free_at
            )
            if not ok:
                # The kernel validates every target before touching any
                # state, so free_at is intact here.
                raise ValueError("dispatch target out of range")
            return dep, svc, order, offsets
        return self._replay_grouped_python(targets, times, sizes)

    def _replay_grouped_python(
        self, targets: np.ndarray, times: np.ndarray, sizes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Numpy fallback of :meth:`replay_window_grouped` (same bits).

        The per-server Lindley recursion in its vectorized form; the
        compiled sweep folds ``free_at`` into the running max instead of
        taking the elementwise maximum afterwards, which is exact
        because max never rounds.  Kept separate so the bit-identity
        property tests can pin the two paths against each other.
        """
        n = times.size
        a = ckernel.arena()
        departures = a.f64("window.dep", n)
        service_times = a.f64("window.svc", n)
        if np.any(targets < 0) or np.any(targets >= self.n):
            raise ValueError("dispatch target out of range")
        # Stable argsort groups jobs by server while preserving arrival
        # order within each group (same trick as the fast path).
        order = np.argsort(targets, kind="stable")
        sorted_targets = targets[order]
        bounds = np.searchsorted(sorted_targets, np.arange(self.n + 1))
        for i in range(self.n):
            idx = order[bounds[i]:bounds[i + 1]]
            if idx.size == 0:
                continue
            dep, svc, self.free_at[i] = lindley_window(
                times[idx], sizes[idx], self.speeds[i], self.free_at[i]
            )
            departures[idx] = dep
            service_times[idx] = svc
        order_out = a.i64("window.order", n)
        np.copyto(order_out, order)
        offsets = a.i64("window.offsets", self.n + 1)
        np.copyto(offsets, bounds)
        return departures, service_times, order_out, offsets

    def backlog_at(self, now: float) -> np.ndarray:
        """Remaining busy time per server as of *now* (≥ 0)."""
        return np.maximum(self.free_at - float(now), 0.0)

    # ------------------------------------------------------------------
    # Fault-mode API (job-level tracking; replay_window stays untouched)
    # ------------------------------------------------------------------

    def effective_speed(self, server: int) -> float:
        return float(self.speeds[server] * self.speed_factor[server])

    def dispatch(
        self, server: int, t: float, size: float, origin: float, attempts: int
    ) -> float | None:
        """Queue one job on *server* at time *t*; ``None`` if it is down.

        ``origin`` is the job's first arrival time (response times span
        retries); ``attempts`` counts its failed placements so far.
        Returns the projected departure.
        """
        if not self.up[server]:
            return None
        svc = float(size) / self.effective_speed(server)
        dep = max(float(self.free_at[server]), float(t)) + svc
        self.free_at[server] = dep
        self._inflight[server].append([float(origin), float(size), svc, dep,
                                       int(attempts)])
        return dep

    def collect_completions(self, now: float) -> list[tuple]:
        """Finalize jobs whose departure is ≤ *now*.

        Returns ``(server, origin, size, svc, dep)`` tuples in
        server-major, per-server FIFO order — a fixed, documented order
        so downstream streaming estimators stay deterministic.
        """
        now = float(now)
        done: list[tuple] = []
        for i in range(self.n):
            q = self._inflight[i]
            # FCFS departures are non-decreasing within one server, so
            # the FIFO prefix is exactly the finished set.
            while q and q[0][_DEP] <= now:
                origin, size, svc, dep, _ = q.popleft()
                done.append((i, origin, size, svc, dep))
        return done

    def fail(self, server: int, now: float) -> list[tuple]:
        """Take *server* down at *now*; bounce its unfinished residents.

        Jobs already past their projected departure are finalized by the
        caller via :meth:`collect_completions` *before* applying the
        failure; everything still resident is returned as
        ``(origin, size, attempts)`` for the retry policy to re-place.
        The server rejoins empty on :meth:`repair`.
        """
        self.up[server] = False
        q = self._inflight[server]
        bounced = [(job[_ORIGIN], job[_SIZE], job[_ATTEMPTS]) for job in q]
        q.clear()
        self.free_at[server] = float(now)
        return bounced

    def repair(self, server: int, now: float) -> None:
        """Bring *server* back at *now*, empty (its backlog was bounced)."""
        self.up[server] = True
        self.free_at[server] = float(now)

    def set_speed_factor(self, server: int, now: float, factor: float) -> None:
        """Change *server*'s speed multiplier; rescale in-flight work.

        All work on one FCFS server after *now* is service time at the
        (old) effective speed, so departures and the free-up point shift
        affinely: ``x' = now + (x − now)·(s_old/s_new)``.  Recorded
        service times rescale by the same factor, so the speed
        estimator's witnesses reflect the degraded speed.
        """
        if factor <= 0.0:
            raise ValueError(f"speed factor must be positive, got {factor}")
        now = float(now)
        old = self.effective_speed(server)
        self.speed_factor[server] = float(factor)
        scale = old / self.effective_speed(server)
        if scale == 1.0:
            return
        for job in self._inflight[server]:
            if job[_DEP] > now:
                job[_DEP] = now + (job[_DEP] - now) * scale
                job[_SVC] *= scale
        if self.free_at[server] > now:
            self.free_at[server] = now + (self.free_at[server] - now) * scale

    def inflight_count(self) -> int:
        return sum(len(q) for q in self._inflight)

    def state_dict(self) -> dict:
        return {
            "free_at": [float(x) for x in self.free_at],
            "up": [bool(u) for u in self.up],
            "speed_factor": [float(x) for x in self.speed_factor],
            "inflight": [[list(job) for job in q] for q in self._inflight],
        }

    def load_state(self, state: dict) -> None:
        free_at = np.asarray(state["free_at"], dtype=float)
        if free_at.shape != self.free_at.shape:
            raise ValueError(
                f"bank state has {free_at.size} servers, expected {self.n}"
            )
        self.free_at = free_at
        self.up = np.asarray(state["up"], dtype=bool)
        self.speed_factor = np.asarray(state["speed_factor"], dtype=float)
        self._inflight = [
            deque(
                [float(j[0]), float(j[1]), float(j[2]), float(j[3]), int(j[4])]
                for j in q
            )
            for q in state["inflight"]
        ]
