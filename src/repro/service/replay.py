"""Windowed FCFS replay with residual backlog carried across windows.

The offline fast path (:mod:`repro.sim.fastpath`) replays a *complete*
substream at once; the service dispatches in control windows, so each
server's queue state must survive the window boundary.  The only state
FCFS needs is the time the server frees up: with per-window arrival
times t, service demands ``svc = size/speed``, and carried ``free_at``,
the Lindley recursion vectorizes as

    dep_j = cum_j + max( free_at, max_{k≤j}( t_k − cum_{k−1} ) )

where ``cum`` is the running sum of svc — identical to the fast path's
prefix-max kernel with the carried term folded into the max.  Replaying
one stream in windows agrees with replaying it whole to float-rounding
accuracy (the window split re-bases the cumulative sums), which lets
the oracle comparison in the online experiments attribute MRT
differences to the *allocation*, not the replay.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ServerBank"]


class ServerBank:
    """Per-server FCFS queues whose backlog persists across windows."""

    def __init__(self, speeds):
        s = np.asarray(speeds, dtype=float)
        if s.ndim != 1 or s.size == 0:
            raise ValueError("speeds must be a non-empty 1-D vector")
        if np.any(s <= 0):
            raise ValueError(f"speeds must be positive, got {s}")
        self.speeds = s.copy()
        self.free_at = np.zeros(s.size)

    @property
    def n(self) -> int:
        return int(self.speeds.size)

    def replay_window(
        self, targets: np.ndarray, times: np.ndarray, sizes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Process one window of dispatched jobs; update server state.

        Returns ``(departures, service_times)`` aligned with the input
        arrival order.  ``times`` must be non-decreasing and must not
        precede any earlier window.
        """
        targets = np.asarray(targets)
        times = np.asarray(times, dtype=float)
        sizes = np.asarray(sizes, dtype=float)
        if not (targets.shape == times.shape == sizes.shape):
            raise ValueError("targets, times, and sizes must align")
        departures = np.empty(times.size)
        service_times = np.empty(times.size)
        if times.size == 0:
            return departures, service_times
        # Stable argsort groups jobs by server while preserving arrival
        # order within each group (same trick as the fast path).
        order = np.argsort(targets, kind="stable")
        sorted_targets = targets[order]
        bounds = np.searchsorted(sorted_targets, np.arange(self.n + 1))
        for i in range(self.n):
            idx = order[bounds[i]:bounds[i + 1]]
            if idx.size == 0:
                continue
            svc = sizes[idx] / self.speeds[i]
            cum = np.cumsum(svc)
            starts = times[idx] - (cum - svc)
            dep = cum + np.maximum(np.maximum.accumulate(starts), self.free_at[i])
            departures[idx] = dep
            service_times[idx] = svc
            self.free_at[i] = dep[-1]
        return departures, service_times

    def backlog_at(self, now: float) -> np.ndarray:
        """Remaining busy time per server as of *now* (≥ 0)."""
        return np.maximum(self.free_at - float(now), 0.0)
