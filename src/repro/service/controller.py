"""The quasi-static control loop: estimate → re-solve → swap → shed.

The paper computes one static allocation from known (λ, μ, s) and
argues (Section 5.4) that frequent recomputation is unnecessary.  The
service relaxes "known" to "estimated": every control period the
controller snapshots the online estimators
(:class:`~repro.metrics.online.OnlineWorkloadEstimator`), re-solves
Theorems 1–3 over the estimated parameters with the *same* Algorithm 1
code the offline path uses, and decides whether the new allocation
differs enough to justify swapping the dispatch sequence.

Swaps happen only at control-window boundaries (drain-and-switch): the
outgoing round-robin sequence finishes its window intact, so
Algorithm 2's interleaving invariant — every prefix of a sequence is
balanced — holds within each segment; no job is ever dispatched from a
half-rebuilt sequence.

Two control signals can shed load.  Legacy mode (no SLO target) thins
arrivals when the estimated utilization exceeds ``shed_threshold``,
down to the fraction that brings the admitted load back to the
threshold.  SLO mode (``slo_target`` set) re-targets the gate at the
tail: a streaming P² p99 over the *last control window's* response
times engages shedding exactly while ``p99 > slo_target``, thinning by
``1 − slo_target/p99`` — graceful degradation judged by the tail, not
the mean.  Thinning is deterministic (a fractional accumulator, not a
coin flip), so service runs replay bit-identically.

The controller doubles as the **failure detector** sink: the service
loop reports membership transitions (:meth:`mark_server_down` /
:meth:`mark_server_up`), which feed the estimator's membership mask —
so ρ̂ is offered load over *surviving* capacity — and force the next
boundary re-solve to run out-of-band over the survivors with FA_ORR
semantics (:func:`~repro.faults.aware.survivor_fractions`), bypassing
the ``swap_tolerance`` hysteresis so a membership change always swaps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..faults.aware import survivor_fractions
from ..metrics.online import OnlineWorkloadEstimator, P2Quantile, WorkloadEstimate
from ..obs import counters
from ..obs.spans import span

__all__ = ["ControlDecision", "AdmissionGate", "QuasiStaticController"]


@dataclass(frozen=True)
class ControlDecision:
    """Outcome of one control period."""

    time: float
    alphas: np.ndarray
    estimate: WorkloadEstimate | None
    swapped: bool
    resolved: bool
    shed_fraction: float
    #: Why this resolve ran: ``periodic`` (plain boundary), ``membership``
    #: (failure detector forced it), or ``slo`` (tail SLO violated).
    reason: str = "periodic"
    #: Response-time quantiles over the window that just closed (NaN
    #: when nothing completed in it).
    window_p50: float = float("nan")
    window_p99: float = float("nan")


class AdmissionGate:
    """Deterministic thinning to a target admitted fraction.

    A fractional accumulator admits ⌈f·k⌉-ish jobs out of every k in a
    maximally even pattern — the load-shedding analog of the dispatch
    sequence itself.  Carrying the accumulator across windows keeps the
    admitted fraction exact in the long run.

    :meth:`admit_mask` computes the pattern as a cumulative-sum keep
    mask in one vectorized pass: job *j* is admitted when the ideal
    admitted count ``⌊acc₀ + j·f⌋`` steps up at *j*.  This is the exact
    closed form of the scalar accumulator loop (kept as
    :meth:`admit_mask_scalar` for the reference path); the two can
    differ only when an accumulated value lands within ~1e−9 of an
    integer boundary, which the pinned-fraction tests show never
    happens for the rational shed fractions the controller produces —
    and the fault-free default (``keep = 1``) short-circuits before
    either formulation runs.
    """

    def __init__(self) -> None:
        self._acc = 0.0

    def admit_mask(self, count: int, keep_fraction: float) -> np.ndarray:
        if not 0.0 <= keep_fraction <= 1.0:
            raise ValueError(f"keep_fraction must lie in [0, 1], got {keep_fraction}")
        if keep_fraction >= 1.0:
            return np.ones(count, dtype=bool)
        if count == 0:
            return np.zeros(0, dtype=bool)
        # Ideal admitted-so-far counts; the epsilon absorbs the ~k·ulp
        # accumulation error of k·fl(f) so exact-fraction patterns (the
        # long-run exactness guarantee) survive large windows.
        cum = self._acc + np.arange(1, count + 1, dtype=float) * keep_fraction
        admitted = np.floor(cum + 1e-9)
        mask = np.diff(admitted, prepend=math.floor(self._acc + 1e-9)) > 0.5
        self._acc = float(cum[-1] - admitted[-1])
        return mask

    def admit_mask_scalar(self, count: int, keep_fraction: float) -> np.ndarray:
        """The original per-job accumulator loop (reference path)."""
        if not 0.0 <= keep_fraction <= 1.0:
            raise ValueError(f"keep_fraction must lie in [0, 1], got {keep_fraction}")
        if keep_fraction >= 1.0:
            return np.ones(count, dtype=bool)
        mask = np.empty(count, dtype=bool)
        acc = self._acc
        for j in range(count):
            acc += keep_fraction
            if acc >= 1.0 - 1e-12:
                acc -= 1.0
                mask[j] = True
            else:
                mask[j] = False
        self._acc = acc
        return mask

    def state_dict(self) -> dict:
        return {"acc": self._acc}

    def load_state(self, state: dict) -> None:
        self._acc = float(state["acc"])


class QuasiStaticController:
    """Estimator-driven re-solver for the scheduler service.

    Parameters
    ----------
    nominal_speeds:
        Speed vector the service believes before any completions are
        observed; also the solver input dimension.
    window:
        Time width of the windowed rate estimator.
    shed_threshold:
        Estimated ρ above which admission control engages (legacy mode,
        ignored when ``slo_target`` is set).
    rho_cap:
        Utilization handed to the solver is clamped here: Algorithm 1
        requires ρ < 1, and near-saturation estimates would otherwise
        make the re-solve blow up exactly when the estimate is noisiest.
    swap_tolerance:
        Minimum L∞ change in the allocation vector that triggers a
        sequence swap; smaller drifts keep the running sequence (the
        paper's own insensitivity result, Section 5.4, says small
        allocation errors cost little).  Membership changes bypass this
        hysteresis: a failed server must lose its share *now*.
    min_arrivals_to_shed:
        Arrivals that must be observed before admission control may
        engage.  The first-window rate estimate can transiently
        overshoot; dropping real jobs on a few seconds of noisy data is
        worse than serving one slow window.
    slo_target:
        Response-time p99 target.  When set, shedding is SLO-targeted:
        it engages exactly while the last window's p99 exceeds the
        target, replacing the ρ̂ threshold rule.
    min_responses_to_shed:
        Completions the window's p99 estimate must rest on before SLO
        shedding may engage (a two-sample p99 is noise, not a signal).
    max_shed_fraction:
        Ceiling on the SLO shed fraction — some trickle of admitted
        jobs must survive or the p99 estimate (and hence the gate) can
        never observe a recovery.
    """

    def __init__(
        self,
        nominal_speeds,
        *,
        window: float,
        ewma_weight: float = 0.05,
        shed_threshold: float = 0.95,
        rho_cap: float = 0.98,
        swap_tolerance: float = 0.01,
        min_arrivals_to_shed: int = 200,
        slo_target: float | None = None,
        min_responses_to_shed: int = 50,
        max_shed_fraction: float = 0.9,
    ):
        if not 0.0 < shed_threshold < 1.0:
            raise ValueError(f"shed_threshold must lie in (0, 1), got {shed_threshold}")
        if not 0.0 < rho_cap < 1.0:
            raise ValueError(f"rho_cap must lie in (0, 1), got {rho_cap}")
        if slo_target is not None and slo_target <= 0.0:
            raise ValueError(f"slo_target must be positive, got {slo_target}")
        if not 0.0 < max_shed_fraction < 1.0:
            raise ValueError(
                f"max_shed_fraction must lie in (0, 1), got {max_shed_fraction}"
            )
        speeds = np.asarray(nominal_speeds, dtype=float)
        self.estimator = OnlineWorkloadEstimator(
            speeds, window=window, ewma_weight=ewma_weight
        )
        self.shed_threshold = float(shed_threshold)
        self.rho_cap = float(rho_cap)
        self.swap_tolerance = float(swap_tolerance)
        self.min_arrivals_to_shed = int(min_arrivals_to_shed)
        self.slo_target = None if slo_target is None else float(slo_target)
        self.min_responses_to_shed = int(min_responses_to_shed)
        self.max_shed_fraction = float(max_shed_fraction)
        # Until the first usable estimate the best guess is the
        # capacity-proportional split — optimal at ρ → 1 and never
        # saturating for ρ < 1.
        self.alphas = speeds / speeds.sum()
        self.shed_fraction = 0.0
        self.resolves = 0
        self.swaps = 0
        # Failure-detector state: believed membership, and whether it
        # changed since the last resolve (forces an out-of-band solve).
        self.up = np.ones(speeds.size, dtype=bool)
        self._membership_dirty = False
        self.membership_events = 0
        # Response-time quantiles: lifetime (reported) and per-window
        # (drives the SLO gate, restarted at each resolve).
        self.p50 = P2Quantile(0.5)
        self.p99 = P2Quantile(0.99)
        self._win_p50 = P2Quantile(0.5)
        self._win_p99 = P2Quantile(0.99)
        self.responses_seen = 0

    # Delegation: the service loop feeds the controller, the controller
    # feeds the estimators.
    def observe_arrival(self, t: float, size: float) -> None:
        self.estimator.observe_arrival(t, size)

    def observe_arrivals(self, times: np.ndarray, sizes: np.ndarray) -> None:
        """Batch form of :meth:`observe_arrival` (one window at once)."""
        self.estimator.observe_arrivals(times, sizes)

    def observe_service(self, server: int, size: float, service_time: float) -> None:
        self.estimator.observe_service(server, size, service_time)

    def observe_services_grouped(self, witnesses: np.ndarray, offsets) -> None:
        """Batch form of :meth:`observe_service` (server-grouped)."""
        self.estimator.observe_services_grouped(witnesses, offsets)

    def observe_response(self, response_time: float) -> None:
        """Fold one completed job's response time into the quantiles."""
        self.p50.update(response_time)
        self.p99.update(response_time)
        self._win_p50.update(response_time)
        self._win_p99.update(response_time)
        self.responses_seen += 1

    def observe_responses(self, response_times: np.ndarray) -> None:
        """Batch form of :meth:`observe_response` (one window at once)."""
        if response_times.size == 0:
            return
        self.p50.update_batch(response_times)
        self.p99.update_batch(response_times)
        self._win_p50.update_batch(response_times)
        self._win_p99.update_batch(response_times)
        self.responses_seen += int(response_times.size)

    # -- failure detector ----------------------------------------------

    def mark_server_down(self, server: int, now: float) -> None:
        """Health signal: *server* stopped responding at *now*."""
        if self.up[server]:
            self.up[server] = False
            self._membership_dirty = True
            self.membership_events += 1
            self.estimator.set_membership(self.up)
            counters.inc("service.membership_events", kind="down")

    def mark_server_up(
        self, server: int, now: float, *, fresh_estimates: bool = False
    ) -> None:
        """Health signal: *server* rejoined at *now*.

        ``fresh_estimates`` is the rejoin warm-up guard: a server that
        comes back as a *restarted process* (the networked REGISTER
        path) has no backlog and no continuity with its pre-crash
        throughput, so its speed EWMA is reset and it re-enters at its
        nominal speed until new completions arrive.  The sim-only fault
        timeline keeps the default — a repaired server there resumes
        the same machine, so its history is still informative.
        """
        if not self.up[server]:
            if fresh_estimates:
                self.estimator.speed.reset_server(server)
            self.up[server] = True
            self._membership_dirty = True
            self.membership_events += 1
            self.estimator.set_membership(self.up)
            counters.inc("service.membership_events", kind="up")

    # -- the control period --------------------------------------------

    def _close_window_quantiles(self) -> tuple[float, float, int]:
        """Read and restart the per-window response quantiles."""
        p50 = self._win_p50.value
        p99 = self._win_p99.value
        n = self._win_p99.count
        self._win_p50 = P2Quantile(0.5)
        self._win_p99 = P2Quantile(0.99)
        return p50, p99, n

    def resolve(self, now: float) -> ControlDecision:
        """Run one control period: snapshot, re-solve, decide swap/shed."""
        with span("service.resolve", time=float(now)) as sp:
            membership = self._membership_dirty
            self._membership_dirty = False
            win_p50, win_p99, win_n = self._close_window_quantiles()
            slo_violated = (
                self.slo_target is not None
                and math.isfinite(win_p99)
                and win_p99 > self.slo_target
                and win_n >= self.min_responses_to_shed
            )
            reason = (
                "membership" if membership else ("slo" if slo_violated else "periodic")
            )
            estimate = self.estimator.snapshot(now)
            if not estimate.usable:
                if membership:
                    # Out-of-band: no usable estimate, but routing to a
                    # dead server is worse than re-planning from the
                    # nominal speeds (capacity-proportional fallback).
                    target = survivor_fractions(
                        self.estimator.speed.nominal, self.up, float("nan")
                    )
                    if target is not None and bool(np.any(target != self.alphas)):
                        self.alphas = target
                        self.swaps += 1
                        counters.inc("service.swaps")
                        self.resolves += 1
                        counters.inc("service.resolves", reason=reason)
                        sp.set(status="resolved", reason=reason, swapped=True)
                        return ControlDecision(
                            time=float(now), alphas=self.alphas, estimate=None,
                            swapped=True, resolved=True,
                            shed_fraction=self.shed_fraction, reason=reason,
                            window_p50=win_p50, window_p99=win_p99,
                        )
                sp.set(status="skipped")
                counters.inc("service.resolve_skipped")
                return ControlDecision(
                    time=float(now), alphas=self.alphas, estimate=None,
                    swapped=False, resolved=False,
                    shed_fraction=self.shed_fraction, reason=reason,
                    window_p50=win_p50, window_p99=win_p99,
                )
            rho_hat = estimate.utilization
            target = survivor_fractions(
                estimate.speeds, self.up, min(rho_hat, self.rho_cap)
            )
            if target is None:  # total outage: keep the last allocation
                target = self.alphas
            delta = float(np.max(np.abs(target - self.alphas)))
            # Membership changes bypass the hysteresis: a survivors-only
            # plan must take effect at this boundary, not once estimator
            # drift happens to push the delta over the tolerance.
            swapped = delta > self.swap_tolerance or (membership and delta > 0.0)
            if swapped:
                self.alphas = target
                self.swaps += 1
                counters.inc("service.swaps")
            if self.slo_target is not None:
                if slo_violated:
                    self.shed_fraction = min(
                        self.max_shed_fraction, 1.0 - self.slo_target / win_p99
                    )
                else:
                    self.shed_fraction = 0.0
            elif (
                rho_hat > self.shed_threshold
                and self.estimator.arrivals_seen >= self.min_arrivals_to_shed
            ):
                self.shed_fraction = 1.0 - self.shed_threshold / rho_hat
            else:
                self.shed_fraction = 0.0
            self.resolves += 1
            counters.inc("service.resolves", reason=reason)
            sp.set(status="resolved", reason=reason, rho_hat=round(rho_hat, 6),
                   delta=round(delta, 6), swapped=swapped,
                   shed_fraction=round(self.shed_fraction, 6))
            return ControlDecision(
                time=float(now), alphas=self.alphas, estimate=estimate,
                swapped=swapped, resolved=True,
                shed_fraction=self.shed_fraction, reason=reason,
                window_p50=win_p50, window_p99=win_p99,
            )

    # -- crash-safe checkpointing --------------------------------------

    def state_dict(self) -> dict:
        return {
            "alphas": [float(a) for a in self.alphas],
            "shed_fraction": self.shed_fraction,
            "resolves": self.resolves,
            "swaps": self.swaps,
            "up": [bool(u) for u in self.up],
            "membership_dirty": self._membership_dirty,
            "membership_events": self.membership_events,
            "estimator": self.estimator.state_dict(),
            "p50": self.p50.state_dict(),
            "p99": self.p99.state_dict(),
            "win_p50": self._win_p50.state_dict(),
            "win_p99": self._win_p99.state_dict(),
            "responses_seen": self.responses_seen,
        }

    def load_state(self, state: dict) -> None:
        alphas = np.asarray(state["alphas"], dtype=float)
        if alphas.shape != self.alphas.shape:
            raise ValueError(
                f"controller state has {alphas.size} servers, "
                f"expected {self.alphas.size}"
            )
        self.alphas = alphas
        self.shed_fraction = float(state["shed_fraction"])
        self.resolves = int(state["resolves"])
        self.swaps = int(state["swaps"])
        self.up = np.asarray(state["up"], dtype=bool)
        self._membership_dirty = bool(state["membership_dirty"])
        self.membership_events = int(state["membership_events"])
        self.estimator.load_state(state["estimator"])
        self.p50.load_state(state["p50"])
        self.p99.load_state(state["p99"])
        self._win_p50.load_state(state["win_p50"])
        self._win_p99.load_state(state["win_p99"])
        self.responses_seen = int(state["responses_seen"])
