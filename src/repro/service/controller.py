"""The quasi-static control loop: estimate → re-solve → swap → shed.

The paper computes one static allocation from known (λ, μ, s) and
argues (Section 5.4) that frequent recomputation is unnecessary.  The
service relaxes "known" to "estimated": every control period the
controller snapshots the online estimators
(:class:`~repro.metrics.online.OnlineWorkloadEstimator`), re-solves
Theorems 1–3 over the estimated parameters with the *same* Algorithm 1
code the offline path uses, and decides whether the new allocation
differs enough to justify swapping the dispatch sequence.

Swaps happen only at control-window boundaries (drain-and-switch): the
outgoing round-robin sequence finishes its window intact, so
Algorithm 2's interleaving invariant — every prefix of a sequence is
balanced — holds within each segment; no job is ever dispatched from a
half-rebuilt sequence.

Admission control sheds load when the estimated utilization approaches
saturation: above ``shed_threshold`` the controller asks the gate to
thin arrivals to the fraction that brings the *admitted* load back to
the threshold.  Thinning is deterministic (a fractional accumulator,
not a coin flip), so service runs replay bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..allocation.optimized import optimized_fractions
from ..metrics.online import OnlineWorkloadEstimator, WorkloadEstimate
from ..obs import counters
from ..obs.spans import span
from ..queueing.network import HeterogeneousNetwork

__all__ = ["ControlDecision", "AdmissionGate", "QuasiStaticController"]


@dataclass(frozen=True)
class ControlDecision:
    """Outcome of one control period."""

    time: float
    alphas: np.ndarray
    estimate: WorkloadEstimate | None
    swapped: bool
    resolved: bool
    shed_fraction: float


class AdmissionGate:
    """Deterministic thinning to a target admitted fraction.

    A fractional accumulator admits ⌈f·k⌉-ish jobs out of every k in a
    maximally even pattern — the load-shedding analog of the dispatch
    sequence itself.  Carrying the accumulator across windows keeps the
    admitted fraction exact in the long run.
    """

    def __init__(self) -> None:
        self._acc = 0.0

    def admit_mask(self, count: int, keep_fraction: float) -> np.ndarray:
        if not 0.0 <= keep_fraction <= 1.0:
            raise ValueError(f"keep_fraction must lie in [0, 1], got {keep_fraction}")
        if keep_fraction >= 1.0:
            return np.ones(count, dtype=bool)
        mask = np.empty(count, dtype=bool)
        acc = self._acc
        for j in range(count):
            acc += keep_fraction
            if acc >= 1.0 - 1e-12:
                acc -= 1.0
                mask[j] = True
            else:
                mask[j] = False
        self._acc = acc
        return mask


class QuasiStaticController:
    """Estimator-driven re-solver for the scheduler service.

    Parameters
    ----------
    nominal_speeds:
        Speed vector the service believes before any completions are
        observed; also the solver input dimension.
    window:
        Time width of the windowed rate estimator.
    shed_threshold:
        Estimated ρ above which admission control engages.
    rho_cap:
        Utilization handed to the solver is clamped here: Algorithm 1
        requires ρ < 1, and near-saturation estimates would otherwise
        make the re-solve blow up exactly when the estimate is noisiest.
    swap_tolerance:
        Minimum L∞ change in the allocation vector that triggers a
        sequence swap; smaller drifts keep the running sequence (the
        paper's own insensitivity result, Section 5.4, says small
        allocation errors cost little).
    min_arrivals_to_shed:
        Arrivals that must be observed before admission control may
        engage.  The first-window rate estimate can transiently
        overshoot; dropping real jobs on a few seconds of noisy data is
        worse than serving one slow window.
    """

    def __init__(
        self,
        nominal_speeds,
        *,
        window: float,
        ewma_weight: float = 0.05,
        shed_threshold: float = 0.95,
        rho_cap: float = 0.98,
        swap_tolerance: float = 0.01,
        min_arrivals_to_shed: int = 200,
    ):
        if not 0.0 < shed_threshold < 1.0:
            raise ValueError(f"shed_threshold must lie in (0, 1), got {shed_threshold}")
        if not 0.0 < rho_cap < 1.0:
            raise ValueError(f"rho_cap must lie in (0, 1), got {rho_cap}")
        speeds = np.asarray(nominal_speeds, dtype=float)
        self.estimator = OnlineWorkloadEstimator(
            speeds, window=window, ewma_weight=ewma_weight
        )
        self.shed_threshold = float(shed_threshold)
        self.rho_cap = float(rho_cap)
        self.swap_tolerance = float(swap_tolerance)
        self.min_arrivals_to_shed = int(min_arrivals_to_shed)
        # Until the first usable estimate the best guess is the
        # capacity-proportional split — optimal at ρ → 1 and never
        # saturating for ρ < 1.
        self.alphas = speeds / speeds.sum()
        self.shed_fraction = 0.0
        self.resolves = 0
        self.swaps = 0

    # Delegation: the service loop feeds the controller, the controller
    # feeds the estimators.
    def observe_arrival(self, t: float, size: float) -> None:
        self.estimator.observe_arrival(t, size)

    def observe_service(self, server: int, size: float, service_time: float) -> None:
        self.estimator.observe_service(server, size, service_time)

    def resolve(self, now: float) -> ControlDecision:
        """Run one control period: snapshot, re-solve, decide swap/shed."""
        with span("service.resolve", time=float(now)) as sp:
            estimate = self.estimator.snapshot(now)
            if not estimate.usable:
                sp.set(status="skipped")
                counters.inc("service.resolve_skipped")
                return ControlDecision(
                    time=float(now), alphas=self.alphas, estimate=None,
                    swapped=False, resolved=False,
                    shed_fraction=self.shed_fraction,
                )
            rho_hat = estimate.utilization
            network = HeterogeneousNetwork(
                estimate.speeds, utilization=min(rho_hat, self.rho_cap)
            )
            target = optimized_fractions(network)
            delta = float(np.max(np.abs(target - self.alphas)))
            swapped = delta > self.swap_tolerance
            if swapped:
                self.alphas = target
                self.swaps += 1
                counters.inc("service.swaps")
            if (
                rho_hat > self.shed_threshold
                and self.estimator.arrivals_seen >= self.min_arrivals_to_shed
            ):
                self.shed_fraction = 1.0 - self.shed_threshold / rho_hat
            else:
                self.shed_fraction = 0.0
            self.resolves += 1
            counters.inc("service.resolves")
            sp.set(status="resolved", rho_hat=round(rho_hat, 6),
                   delta=round(delta, 6), swapped=swapped,
                   shed_fraction=round(self.shed_fraction, 6))
            return ControlDecision(
                time=float(now), alphas=self.alphas, estimate=estimate,
                swapped=swapped, resolved=True,
                shed_fraction=self.shed_fraction,
            )
