"""Quasi-static scheduler service (the online extension of the paper).

The paper's scheme is *static*: Algorithm 1 turns known workload
parameters into an allocation once, offline.  This package runs the
same mathematics as a long-lived control loop — estimate (λ̂, m̂, ŝ)
from the live stream, re-solve Theorems 1–3 every control period,
drain-and-switch the Algorithm 2 dispatch sequence at window
boundaries, and shed load when the estimated utilization approaches
saturation.  See DESIGN.md §10 for the architecture and
``repro serve`` for the CLI driver.
"""

from .checkpoint import STATE_VERSION, ServiceCheckpoint
from .controller import AdmissionGate, ControlDecision, QuasiStaticController
from .loop import (
    SchedulerService,
    ServiceConfig,
    ServiceCrash,
    ServiceReport,
    WindowRecord,
)
from .replay import ServerBank
from .sources import JobSource, SyntheticJobSource, TraceJobSource

__all__ = [
    "AdmissionGate",
    "ControlDecision",
    "QuasiStaticController",
    "SchedulerService",
    "ServiceConfig",
    "ServiceCrash",
    "ServiceReport",
    "WindowRecord",
    "ServerBank",
    "ServiceCheckpoint",
    "STATE_VERSION",
    "JobSource",
    "SyntheticJobSource",
    "TraceJobSource",
]
