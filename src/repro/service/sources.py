"""Job sources for the quasi-static scheduler service.

A source hands the service loop the jobs arriving in each control
window: :meth:`JobSource.jobs_until` is incremental and monotone, so
calling it with successive window boundaries walks the stream exactly
once.  Two implementations:

* :class:`SyntheticJobSource` — the paper's workload (renewal arrivals,
  configurable size distribution) drawn from seeded substreams, with an
  optional :class:`~repro.sim.modulated.RateProfile` for step-change
  and drift scenarios (pass un-normalized profiles from
  :func:`~repro.sim.modulated.step_profile` /
  :func:`~repro.sim.modulated.drift_profile` so the load actually
  moves).
* :class:`TraceJobSource` — replays recorded (time, size) pairs, the
  workload-replay driver behind ``repro serve --trace``.
"""

from __future__ import annotations

import abc

import numpy as np

from ..rng import substream
from ..sim.arrivals import Workload

__all__ = ["JobSource", "SyntheticJobSource", "TraceJobSource"]


class JobSource(abc.ABC):
    """Incremental supplier of (arrival time, job size) pairs."""

    @abc.abstractmethod
    def jobs_until(self, horizon: float) -> tuple[np.ndarray, np.ndarray]:
        """All jobs with arrival time ≤ *horizon* not yet emitted.

        Horizons must be non-decreasing across calls; the returned
        times are non-decreasing within and across calls.
        """


class SyntheticJobSource(JobSource):
    """Seeded synthetic stream built on :class:`~repro.sim.arrivals.Workload`.

    Uses the same substream roles as the offline simulators (arrivals /
    sizes), so a service run and a static replication with the same
    seed see related — not identical — streams: the service's horizon
    chunking consumes the arrival stream in the same order, keeping the
    run reproducible end to end.
    """

    def __init__(self, workload: Workload, seed: int):
        self.workload = workload
        self._stream = workload.arrival_stream(substream(seed, "arrivals"))
        self._size_rng = substream(seed, "sizes")
        self._horizon = 0.0

    def jobs_until(self, horizon: float) -> tuple[np.ndarray, np.ndarray]:
        if horizon < self._horizon:
            raise ValueError(
                f"horizons must be non-decreasing ({horizon} after {self._horizon})"
            )
        self._horizon = float(horizon)
        times = self._stream.arrivals_until(horizon)
        sizes = self.workload.sample_sizes(self._size_rng, times.size)
        return times, sizes


class TraceJobSource(JobSource):
    """Replay of a recorded trace of (arrival time, size) pairs."""

    def __init__(self, times, sizes):
        t = np.asarray(times, dtype=float)
        s = np.asarray(sizes, dtype=float)
        if t.ndim != 1 or t.shape != s.shape:
            raise ValueError(
                f"times and sizes must be matching 1-D vectors, got {t.shape} vs {s.shape}"
            )
        if t.size and np.any(np.diff(t) < 0):
            raise ValueError("trace times must be non-decreasing")
        if np.any(s <= 0):
            raise ValueError("trace sizes must be positive")
        self.times = t
        self.sizes = s
        self._pos = 0
        self._horizon = 0.0

    @property
    def remaining(self) -> int:
        return self.times.size - self._pos

    def jobs_until(self, horizon: float) -> tuple[np.ndarray, np.ndarray]:
        if horizon < self._horizon:
            raise ValueError(
                f"horizons must be non-decreasing ({horizon} after {self._horizon})"
            )
        self._horizon = float(horizon)
        end = int(np.searchsorted(self.times, horizon, side="right"))
        start, self._pos = self._pos, max(self._pos, end)
        return self.times[start:self._pos], self.sizes[start:self._pos]
