"""Crash-safe service checkpoints: fsynced JSONL state snapshots.

Same durability pattern as :class:`~repro.core.checkpoint.SweepCheckpoint`
(append one JSON line per snapshot, flush + fsync before returning, skip
torn lines on load), different payload: where the sweep checkpoint
records *finished cells*, a service checkpoint records the **entire
control-loop state** — controller (allocation, estimators, quantile
markers, membership), admission gate accumulator, server bank
(free-up points, membership, in-flight jobs), pending retries, and the
report accumulated so far — everything `serve --resume` needs to
continue the run as if the crash never happened.

Restoration is exact: every float round-trips bit-identically through
JSON (``repr``-based encoding), and the job source is deterministic, so
a resumed run's final :class:`~repro.service.loop.ServiceReport` equals
the uninterrupted run's report field for field.  The CI ``chaos-smoke``
job asserts exactly that.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["ServiceCheckpoint", "STATE_VERSION"]

#: Bump when the state payload layout changes incompatibly.
STATE_VERSION = 1


class ServiceCheckpoint:
    """Append-only JSONL store of full service-state snapshots."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, state: dict) -> None:
        """Durably append one snapshot (flush + fsync, like the sweep
        checkpoint — a crash mid-append tears at most this line, which
        the loader then skips in favour of the previous one)."""
        payload = dict(state)
        payload["version"] = STATE_VERSION
        line = json.dumps(payload, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def load_last(self) -> dict | None:
        """Most recent parseable snapshot, or ``None`` if there is none.

        Torn or corrupt lines (crash mid-append) are skipped; a snapshot
        from an incompatible state version is rejected loudly rather
        than half-restored.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return None
        last: dict | None = None
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn append
            if not isinstance(entry, dict) or "next_window" not in entry:
                continue
            last = entry
        if last is not None and last.get("version") != STATE_VERSION:
            raise ValueError(
                f"checkpoint {self.path} has state version "
                f"{last.get('version')!r}, this build expects {STATE_VERSION}"
            )
        return last

    def __len__(self) -> int:
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return 0
        return sum(1 for line in text.splitlines() if line.strip())
