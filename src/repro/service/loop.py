"""The quasi-static scheduler service loop.

:class:`SchedulerService` ties the pieces together: a
:class:`~repro.service.sources.JobSource` supplies arrivals, the
:class:`~repro.service.controller.QuasiStaticController` estimates the
workload and periodically re-solves Theorems 1–3, the live
:class:`~repro.dispatch.round_robin.RoundRobinDispatcher` turns
allocations into a dispatch sequence, and the
:class:`~repro.service.replay.ServerBank` carries each server's FCFS
backlog across control windows.

Time advances one control period at a time.  Within a window the
dispatch sequence is immutable — Algorithm 2's interleaving invariant
holds for the segment — and the controller may swap it only at the
boundary (drain-and-switch).  Admission thinning decided at the last
re-solve applies to the *next* window's arrivals, mirroring how a real
controller can only act on what it has already measured.

The run is fully deterministic given the seed: estimator updates,
thinning, dispatch, and replay all avoid hidden randomness, so a
service run is a reproducible experiment, not just a demo.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dispatch.round_robin import RoundRobinDispatcher
from ..obs import counters
from ..obs.spans import span
from .controller import AdmissionGate, ControlDecision, QuasiStaticController
from .replay import ServerBank
from .sources import JobSource

__all__ = ["ServiceConfig", "WindowRecord", "ServiceReport", "SchedulerService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the service loop (workload construction lives with
    the callers — CLI and experiments — which build the JobSource)."""

    speeds: tuple[float, ...]
    duration: float
    control_period: float
    estimator_window: float | None = None  # default: 2 control periods
    # 1/weight ≈ 100-sample memory: mean-size estimates with a shorter
    # memory make ρ̂ swing ±20% on exponential sizes, which churns the
    # swap logic for nothing.
    ewma_weight: float = 0.01
    shed_threshold: float = 0.95
    rho_cap: float = 0.98
    swap_tolerance: float = 0.01
    min_arrivals_to_shed: int = 200

    def __post_init__(self):
        if len(self.speeds) == 0 or any(s <= 0 for s in self.speeds):
            raise ValueError(f"speeds must be positive, got {self.speeds}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.control_period <= 0 or self.control_period > self.duration:
            raise ValueError(
                f"control_period must lie in (0, duration], got {self.control_period}"
            )

    @property
    def window(self) -> float:
        return (
            self.estimator_window
            if self.estimator_window is not None
            else 2.0 * self.control_period
        )


@dataclass(frozen=True)
class WindowRecord:
    """Telemetry of one control window."""

    start: float
    end: float
    offered: int
    admitted: int
    shed: int
    mean_response_time: float  # NaN when the window dispatched nothing
    mean_response_ratio: float
    lambda_hat: float
    rho_hat: float
    swapped: bool
    alphas: np.ndarray


@dataclass
class ServiceReport:
    """Everything a service run produced, JSON-serializable."""

    config: ServiceConfig
    windows: list[WindowRecord] = field(default_factory=list)
    jobs_offered: int = 0
    jobs_dispatched: int = 0
    jobs_shed: int = 0
    swaps: int = 0
    resolves: int = 0
    clean_shutdown: bool = False

    @property
    def final_alphas(self) -> np.ndarray:
        if not self.windows:
            raise ValueError("no windows recorded")
        return self.windows[-1].alphas

    @property
    def time_averaged_mrt(self) -> float:
        """Job-weighted mean response time over the whole run."""
        total_jobs = sum(w.admitted for w in self.windows)
        if total_jobs == 0:
            return float("nan")
        weighted = sum(
            w.admitted * w.mean_response_time
            for w in self.windows
            if w.admitted > 0
        )
        return weighted / total_jobs

    def allocation_history(self) -> list[tuple[float, np.ndarray]]:
        """(window end, allocation) at every swap, initial included."""
        out: list[tuple[float, np.ndarray]] = []
        for w in self.windows:
            if not out or w.swapped:
                out.append((w.end, w.alphas))
        return out

    def as_dict(self) -> dict:
        return {
            "speeds": list(self.config.speeds),
            "duration": self.config.duration,
            "control_period": self.config.control_period,
            "jobs_offered": self.jobs_offered,
            "jobs_dispatched": self.jobs_dispatched,
            "jobs_shed": self.jobs_shed,
            "swaps": self.swaps,
            "resolves": self.resolves,
            "clean_shutdown": self.clean_shutdown,
            "time_averaged_mrt": self.time_averaged_mrt,
            "final_alphas": [float(a) for a in self.final_alphas]
            if self.windows
            else [],
            "windows": [
                {
                    "start": w.start,
                    "end": w.end,
                    "offered": w.offered,
                    "admitted": w.admitted,
                    "shed": w.shed,
                    "mean_response_time": w.mean_response_time,
                    "mean_response_ratio": w.mean_response_ratio,
                    "lambda_hat": w.lambda_hat,
                    "rho_hat": w.rho_hat,
                    "swapped": w.swapped,
                }
                for w in self.windows
            ],
        }


class SchedulerService:
    """Run the quasi-static loop over a job source until the horizon."""

    def __init__(
        self,
        config: ServiceConfig,
        source: JobSource,
        controller: QuasiStaticController | None = None,
    ):
        self.config = config
        self.source = source
        self.controller = controller or QuasiStaticController(
            np.asarray(config.speeds, dtype=float),
            window=config.window,
            ewma_weight=config.ewma_weight,
            shed_threshold=config.shed_threshold,
            rho_cap=config.rho_cap,
            swap_tolerance=config.swap_tolerance,
            min_arrivals_to_shed=config.min_arrivals_to_shed,
        )
        self.bank = ServerBank(config.speeds)
        self.gate = AdmissionGate()
        self.dispatcher = RoundRobinDispatcher()
        self.dispatcher.reset(self.controller.alphas)

    def run(self) -> ServiceReport:
        config = self.config
        report = ServiceReport(config=config)
        n_windows = int(np.ceil(config.duration / config.control_period))
        with span("service.run", windows=n_windows,
                  servers=len(config.speeds)):
            for k in range(n_windows):
                start = k * config.control_period
                end = min((k + 1) * config.control_period, config.duration)
                self._run_window(start, end, report)
        report.swaps = self.controller.swaps
        report.resolves = self.controller.resolves
        report.clean_shutdown = True
        return report

    def _run_window(self, start: float, end: float, report: ServiceReport) -> None:
        controller = self.controller
        times, sizes = self.source.jobs_until(end)
        # The estimator sees the *offered* stream — shed jobs included —
        # because sizing decisions must track demand, not what survived
        # the previous shedding decision.
        for t, x in zip(times, sizes):
            controller.observe_arrival(t, x)
        keep = 1.0 - controller.shed_fraction
        mask = self.gate.admit_mask(times.size, keep)
        adm_times = times[mask]
        adm_sizes = sizes[mask]

        # Dispatch under the window's (immutable) sequence, replay with
        # carried backlog, and feed completions back to the estimator.
        targets = self.dispatcher.select_batch(adm_sizes)
        departures, service_times = self.bank.replay_window(
            targets, adm_times, adm_sizes
        )
        for srv, x, svc in zip(targets, adm_sizes, service_times):
            controller.observe_service(int(srv), float(x), float(svc))

        shed = int(times.size - adm_times.size)
        counters.inc("service.jobs_dispatched", value=int(adm_times.size))
        if shed:
            counters.inc("service.jobs_shed", value=shed)

        if adm_times.size:
            response = departures - adm_times
            mrt = float(response.mean())
            ratio = float((response / adm_sizes).mean())
        else:
            mrt = float("nan")
            ratio = float("nan")

        # Drain-and-switch: the controller may change the allocation
        # only here, between windows; a swap restarts the sequence.
        decision: ControlDecision = controller.resolve(end)
        if decision.swapped:
            self.dispatcher = RoundRobinDispatcher()
            self.dispatcher.reset(decision.alphas)

        estimate = decision.estimate
        report.windows.append(
            WindowRecord(
                start=start,
                end=end,
                offered=int(times.size),
                admitted=int(adm_times.size),
                shed=shed,
                mean_response_time=mrt,
                mean_response_ratio=ratio,
                lambda_hat=(estimate.arrival_rate if estimate else float("nan")),
                rho_hat=(estimate.utilization if estimate else float("nan")),
                swapped=decision.swapped,
                alphas=decision.alphas,
            )
        )
        report.jobs_offered += int(times.size)
        report.jobs_dispatched += int(adm_times.size)
        report.jobs_shed += shed
