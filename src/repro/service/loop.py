"""The quasi-static scheduler service loop.

:class:`SchedulerService` ties the pieces together: a
:class:`~repro.service.sources.JobSource` supplies arrivals, the
:class:`~repro.service.controller.QuasiStaticController` estimates the
workload and periodically re-solves Theorems 1–3, the live
:class:`~repro.dispatch.round_robin.RoundRobinDispatcher` turns
allocations into a dispatch sequence, and the
:class:`~repro.service.replay.ServerBank` carries each server's FCFS
backlog across control windows.

Time advances one control period at a time.  Within a window the
dispatch sequence is immutable — Algorithm 2's interleaving invariant
holds for the segment — and the controller may swap it only at the
boundary (drain-and-switch).  Admission thinning decided at the last
re-solve applies to the *next* window's arrivals, mirroring how a real
controller can only act on what it has already measured.

**Fault tolerance.**  With a :class:`~repro.faults.models.FaultConfig`
(or a scripted event list — the chaos harness) the loop runs a
job-level variant of the window: the pre-generated fault timeline
splits each window into segments, jobs dispatch one at a time through
:meth:`ServerBank.dispatch`, and each fault event is applied after the
jobs at or before its timestamp.  A job aimed at a down server — and
every resident of a server that fails — bounces through the
:class:`~repro.faults.models.RetryPolicy`: it re-enters the stream at
``bounce_time + delay`` with its original arrival as response-time
origin, or counts as lost once ``max_attempts`` placements failed (or
immediately under ``on_failure="lose"``).  The dispatch sequence stays
immutable within the window even when a failure lands mid-window; the
controller learns of the membership change (failure detector) and the
*next boundary* re-solve runs out-of-band over the survivors.  The
fault-free path is a separate, untouched code branch, so fault-free
runs stay bit-identical.

**Crash safety.**  A :class:`~repro.service.checkpoint.ServiceCheckpoint`
snapshots the full loop state (controller, gate, bank, dispatcher
mid-sequence position, pending retries, report-so-far) every
``checkpoint_every`` windows; :meth:`SchedulerService.restore` plus the
source fast-forward in :meth:`run` continue a crashed run to a report
field-for-field equal to the uninterrupted one.  ``crash_after``
simulates the crash (raising :class:`ServiceCrash`) so the CI
``chaos-smoke`` job can assert exactly that round trip.

The run is fully deterministic given the seed: estimator updates,
thinning, dispatch, replay, fault timelines, and retry backoff all
avoid hidden randomness, so a service run is a reproducible
experiment, not just a demo.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..dispatch.round_robin import RoundRobinDispatcher, SequenceRoundRobin
from ..faults.models import (
    DEGRADE_END,
    DEGRADE_START,
    DOWN,
    UP,
    FaultConfig,
    FaultEvent,
    RetryPolicy,
    build_timeline,
)
from ..obs import counters
from ..obs.spans import span
from ..sim import ckernel
from .checkpoint import ServiceCheckpoint
from .controller import AdmissionGate, ControlDecision, QuasiStaticController
from .replay import ServerBank
from .sources import JobSource

__all__ = [
    "ServiceConfig",
    "WindowRecord",
    "ServiceReport",
    "SchedulerService",
    "ServiceCrash",
    "build_controller",
]


def build_controller(config: "ServiceConfig") -> QuasiStaticController:
    """The controller a service run gets from its config.

    Shared by :class:`SchedulerService` and the networked orchestrator
    shards (:mod:`repro.net.orchestrator`) so the two stacks can never
    drift apart in how config knobs map to controller parameters —
    a prerequisite for the sim-vs-live equivalence guarantee.
    """
    return QuasiStaticController(
        np.asarray(config.speeds, dtype=float),
        window=config.window,
        ewma_weight=config.ewma_weight,
        shed_threshold=config.shed_threshold,
        rho_cap=config.rho_cap,
        swap_tolerance=config.swap_tolerance,
        min_arrivals_to_shed=config.min_arrivals_to_shed,
        slo_target=config.slo_target,
        min_responses_to_shed=config.min_responses_to_shed,
        max_shed_fraction=config.max_shed_fraction,
    )


class ServiceCrash(RuntimeError):
    """Simulated hard crash (``crash_after``): the loop stops mid-run,
    leaving recovery to ``serve --resume`` from the last checkpoint."""

    def __init__(self, windows_completed: int):
        super().__init__(f"simulated crash after window {windows_completed}")
        self.windows_completed = windows_completed


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the service loop (workload construction lives with
    the callers — CLI and experiments — which build the JobSource)."""

    speeds: tuple[float, ...]
    duration: float
    control_period: float
    estimator_window: float | None = None  # default: 2 control periods
    # 1/weight ≈ 100-sample memory: mean-size estimates with a shorter
    # memory make ρ̂ swing ±20% on exponential sizes, which churns the
    # swap logic for nothing.
    ewma_weight: float = 0.01
    shed_threshold: float = 0.95
    rho_cap: float = 0.98
    swap_tolerance: float = 0.01
    min_arrivals_to_shed: int = 200
    # SLO-targeted shedding (None keeps the legacy ρ̂-threshold rule).
    slo_target: float | None = None
    min_responses_to_shed: int = 50
    max_shed_fraction: float = 0.9
    # Fault injection: a FaultConfig drives a pre-generated failure
    # timeline from its own RNG substreams (never the arrival streams).
    faults: FaultConfig | None = None
    fault_seed: int = 0

    def __post_init__(self):
        if len(self.speeds) == 0 or any(s <= 0 for s in self.speeds):
            raise ValueError(f"speeds must be positive, got {self.speeds}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.control_period <= 0 or self.control_period > self.duration:
            raise ValueError(
                f"control_period must lie in (0, duration], got {self.control_period}"
            )
        if self.slo_target is not None and self.slo_target <= 0:
            raise ValueError(f"slo_target must be positive, got {self.slo_target}")

    @property
    def window(self) -> float:
        return (
            self.estimator_window
            if self.estimator_window is not None
            else 2.0 * self.control_period
        )


@dataclass(frozen=True)
class WindowRecord:
    """Telemetry of one control window."""

    start: float
    end: float
    offered: int
    admitted: int
    shed: int
    mean_response_time: float  # NaN when the window completed nothing
    mean_response_ratio: float
    lambda_hat: float
    rho_hat: float
    swapped: bool
    alphas: np.ndarray
    # Tail telemetry (per-window P² estimates; NaN when nothing completed).
    p50: float = float("nan")
    p99: float = float("nan")
    # Fault accounting.  In fault mode response-time stats cover jobs
    # *completed* in the window (jobs still in flight at the boundary
    # count in the window their departure lands in); the fault-free path
    # keeps its dispatch-window attribution.
    completed: int = 0
    lost: int = 0
    retried: int = 0
    bounced: int = 0
    servers_up: int = 0
    reason: str = "periodic"


@dataclass
class ServiceReport:
    """Everything a service run produced, JSON-serializable."""

    config: ServiceConfig
    windows: list[WindowRecord] = field(default_factory=list)
    jobs_offered: int = 0
    jobs_dispatched: int = 0
    jobs_shed: int = 0
    swaps: int = 0
    resolves: int = 0
    clean_shutdown: bool = False
    # Fault accounting (all zero on a fault-free run).
    jobs_lost: int = 0
    jobs_retried: int = 0
    jobs_pending_retry: int = 0
    jobs_in_flight: int = 0
    membership_changes: int = 0
    # Lifetime response-time quantiles (streaming P²).
    p50: float = float("nan")
    p99: float = float("nan")

    @property
    def final_alphas(self) -> np.ndarray:
        if not self.windows:
            raise ValueError("no windows recorded")
        return self.windows[-1].alphas

    @property
    def loss_rate(self) -> float:
        """Fraction of offered jobs lost to failures (0 when none offered)."""
        if self.jobs_offered == 0:
            return 0.0
        return self.jobs_lost / self.jobs_offered

    @property
    def time_averaged_mrt(self) -> float:
        """Job-weighted mean response time over the whole run."""
        total_jobs = sum(w.admitted for w in self.windows)
        if total_jobs == 0:
            return float("nan")
        weighted = sum(
            w.admitted * w.mean_response_time
            for w in self.windows
            if w.admitted > 0
        )
        return weighted / total_jobs

    def allocation_history(self) -> list[tuple[float, np.ndarray]]:
        """(window end, allocation) at every swap, initial included."""
        out: list[tuple[float, np.ndarray]] = []
        for w in self.windows:
            if not out or w.swapped:
                out.append((w.end, w.alphas))
        return out

    def as_dict(self) -> dict:
        return {
            "speeds": list(self.config.speeds),
            "duration": self.config.duration,
            "control_period": self.config.control_period,
            "jobs_offered": self.jobs_offered,
            "jobs_dispatched": self.jobs_dispatched,
            "jobs_shed": self.jobs_shed,
            "jobs_lost": self.jobs_lost,
            "jobs_retried": self.jobs_retried,
            "jobs_pending_retry": self.jobs_pending_retry,
            "jobs_in_flight": self.jobs_in_flight,
            "loss_rate": self.loss_rate,
            "membership_changes": self.membership_changes,
            "swaps": self.swaps,
            "resolves": self.resolves,
            "clean_shutdown": self.clean_shutdown,
            "time_averaged_mrt": self.time_averaged_mrt,
            "p50": self.p50,
            "p99": self.p99,
            "final_alphas": [float(a) for a in self.final_alphas]
            if self.windows
            else [],
            "windows": [
                {
                    "start": w.start,
                    "end": w.end,
                    "offered": w.offered,
                    "admitted": w.admitted,
                    "shed": w.shed,
                    "mean_response_time": w.mean_response_time,
                    "mean_response_ratio": w.mean_response_ratio,
                    "lambda_hat": w.lambda_hat,
                    "rho_hat": w.rho_hat,
                    "swapped": w.swapped,
                    "p50": w.p50,
                    "p99": w.p99,
                    "completed": w.completed,
                    "lost": w.lost,
                    "retried": w.retried,
                    "bounced": w.bounced,
                    "servers_up": w.servers_up,
                    "reason": w.reason,
                }
                for w in self.windows
            ],
        }


# ----------------------------------------------------------------------
# Checkpoint (de)serialization of report state
# ----------------------------------------------------------------------

_REPORT_SCALARS = (
    "jobs_offered", "jobs_dispatched", "jobs_shed", "swaps", "resolves",
    "jobs_lost", "jobs_retried", "jobs_pending_retry", "jobs_in_flight",
    "membership_changes", "p50", "p99",
)


def _window_state(w: WindowRecord) -> dict:
    return {
        "start": w.start,
        "end": w.end,
        "offered": w.offered,
        "admitted": w.admitted,
        "shed": w.shed,
        "mean_response_time": w.mean_response_time,
        "mean_response_ratio": w.mean_response_ratio,
        "lambda_hat": w.lambda_hat,
        "rho_hat": w.rho_hat,
        "swapped": w.swapped,
        "alphas": [float(a) for a in w.alphas],
        "p50": w.p50,
        "p99": w.p99,
        "completed": w.completed,
        "lost": w.lost,
        "retried": w.retried,
        "bounced": w.bounced,
        "servers_up": w.servers_up,
        "reason": w.reason,
    }


def _window_from_state(state: dict) -> WindowRecord:
    kwargs = dict(state)
    kwargs["alphas"] = np.asarray(kwargs["alphas"], dtype=float)
    return WindowRecord(**kwargs)


def _report_state(report: ServiceReport) -> dict:
    out = {name: getattr(report, name) for name in _REPORT_SCALARS}
    out["windows"] = [_window_state(w) for w in report.windows]
    return out


def _report_from_state(config: ServiceConfig, state: dict) -> ServiceReport:
    report = ServiceReport(config=config)
    for name in _REPORT_SCALARS:
        setattr(report, name, state[name])
    report.windows = [_window_from_state(w) for w in state["windows"]]
    return report


class SchedulerService:
    """Run the quasi-static loop over a job source until the horizon.

    Parameters
    ----------
    fault_events:
        Optional scripted fault timeline (the chaos harness passes one).
        When omitted and ``config.faults`` is enabled, the timeline is
        pre-generated via :func:`~repro.faults.models.build_timeline`.
        Passing a list — even an empty one — selects the job-level
        fault-mode window; otherwise fault mode engages only for an
        enabled ``config.faults``.
    checkpoint:
        A :class:`~repro.service.checkpoint.ServiceCheckpoint` to
        snapshot into every ``checkpoint_every`` completed windows.
    crash_after:
        Simulate a crash (raise :class:`ServiceCrash`) once this many
        windows completed in *this* run — test/CI hook for resume.
    reference:
        Run the fault-free window through the original per-job loop
        (scalar gate, per-job estimator updates, live Algorithm 2
        scans) instead of the vectorized hot path.  The two produce
        field-for-field identical reports — the reference branch exists
        as the oracle the bit-identity tests and the ``bench --serve``
        speedup measure against.
    """

    def __init__(
        self,
        config: ServiceConfig,
        source: JobSource,
        controller: QuasiStaticController | None = None,
        *,
        fault_events: list[FaultEvent] | None = None,
        checkpoint: ServiceCheckpoint | None = None,
        checkpoint_every: int = 10,
        crash_after: int | None = None,
        reference: bool = False,
    ):
        self.config = config
        self.source = source
        self.controller = controller or build_controller(config)
        self.reference = bool(reference)
        self.bank = ServerBank(config.speeds)
        self.gate = AdmissionGate()
        self.dispatcher = self._make_dispatcher()
        self.dispatcher.reset(self.controller.alphas)

        timeline = fault_events
        if timeline is None and config.faults is not None and config.faults.enabled:
            timeline = build_timeline(
                config.faults, len(config.speeds), config.duration, config.fault_seed
            )
        self._faulted = timeline is not None
        self.fault_events: list[FaultEvent] = sorted(
            timeline or [], key=lambda e: (e.time, e.server, e.kind)
        )
        fc = config.faults
        self._retry: RetryPolicy = fc.retry if fc is not None else RetryPolicy()
        self._on_failure = fc.on_failure if fc is not None else "retry"
        self._degrade_factor = fc.degrade_factor if fc is not None else 0.5
        self._event_pos = 0
        # Pending retries, heap-ordered by (due time, insertion seq):
        # (due, seq, origin arrival, size, failed placements).  The seq
        # tie-break reproduces the schedule order a stable sort by due
        # time would give, while due-time re-entry pops the heap front
        # instead of scanning the whole list every window.
        self._pending: list[tuple] = []
        self._pending_seq = 0
        self._degrade_level = [0] * len(config.speeds)

        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self.checkpoint = checkpoint
        self.checkpoint_every = int(checkpoint_every)
        self.crash_after = None if crash_after is None else int(crash_after)
        self._start_window = 0
        self._restored_report: ServiceReport | None = None

    def _make_dispatcher(self):
        """A fresh dispatcher for the configured execution mode.

        Both classes walk the identical Algorithm 2 sequence; the fast
        path serves it as memoized slices (O(window) per batch), the
        reference path runs the live per-job scan.
        """
        if self.reference:
            return RoundRobinDispatcher()
        return SequenceRoundRobin()

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------

    def run(self) -> ServiceReport:
        config = self.config
        report = (
            self._restored_report
            if self._restored_report is not None
            else ServiceReport(config=config)
        )
        self._restored_report = None
        cp = config.control_period
        n_windows = int(np.ceil(config.duration / cp))
        with span("service.run", windows=n_windows,
                  servers=len(config.speeds), faulted=self._faulted):
            for k in range(n_windows):
                end = min((k + 1) * cp, config.duration)
                if k < self._start_window:
                    # Resume fast-forward: replay the job source with the
                    # original call pattern so its stream state matches
                    # the crashed run exactly; everything else came from
                    # the checkpoint.
                    self.source.jobs_until(end)
                    continue
                start = k * cp
                if self._faulted:
                    self._run_window_faulted(start, end, report)
                elif self.reference:
                    self._run_window_reference(start, end, report)
                else:
                    self._run_window(start, end, report)
                done = k + 1
                self._refresh_totals(report)
                if (
                    self.checkpoint is not None
                    and done < n_windows
                    and done % self.checkpoint_every == 0
                ):
                    self.checkpoint.append(self.state_dict(done, report))
                if (
                    self.crash_after is not None
                    and done < n_windows
                    and done - self._start_window >= self.crash_after
                ):
                    raise ServiceCrash(done)
        self._refresh_totals(report)
        report.clean_shutdown = True
        return report

    def _refresh_totals(self, report: ServiceReport) -> None:
        report.swaps = self.controller.swaps
        report.resolves = self.controller.resolves
        report.membership_changes = self.controller.membership_events
        report.jobs_pending_retry = len(self._pending)
        report.jobs_in_flight = self.bank.inflight_count()
        report.p50 = self.controller.p50.value
        report.p99 = self.controller.p99.value

    # ------------------------------------------------------------------
    # Fault-free window (bit-identical to the pre-fault service)
    # ------------------------------------------------------------------

    def _run_window(self, start: float, end: float, report: ServiceReport) -> None:
        """The vectorized serve hot path (default fault-free window).

        One compiled carry-state replay call plus batched estimator
        folds per window — no per-job Python.  Field-for-field
        identical report to :meth:`_run_window_reference`: every batch
        operation either runs the identical float recursion (compiled
        folds, grouped replay) or a formulation proven equal on the
        values the loop produces (the gate's cumulative-sum mask).
        """
        controller = self.controller
        times, sizes = self.source.jobs_until(end)
        # The estimator sees the *offered* stream — shed jobs included —
        # because sizing decisions must track demand, not what survived
        # the previous shedding decision.
        controller.observe_arrivals(times, sizes)
        keep = 1.0 - controller.shed_fraction
        mask = self.gate.admit_mask(times.size, keep)
        if mask.all():
            # The fault-free default: nothing shed, no fancy-index copy.
            adm_times = times
            adm_sizes = sizes
        else:
            adm_times = times[mask]
            adm_sizes = sizes[mask]

        # Dispatch under the window's (immutable) sequence, replay with
        # carried backlog, and feed completions back to the estimator.
        targets = self.dispatcher.select_batch(adm_sizes)
        departures, service_times, order, offsets = self.bank.replay_window_grouped(
            targets, adm_times, adm_sizes
        )

        shed = int(times.size - adm_times.size)
        counters.inc("service.jobs_dispatched", value=int(adm_times.size))
        if shed:
            counters.inc("service.jobs_shed", value=shed)

        n_adm = int(adm_times.size)
        if n_adm:
            a = ckernel.arena()
            # Per-server speed witnesses, folded in server-grouped order
            # (identical EWMA state: per-server estimators are
            # independent and the stable grouping preserves each
            # server's observation order).
            wit = a.f64("loop.wit", n_adm)
            np.divide(adm_sizes, service_times, out=wit)
            witg = a.f64("loop.witg", n_adm)
            np.take(wit, order, out=witg)
            controller.observe_services_grouped(witg, offsets)
            response = a.f64("loop.resp", n_adm)
            np.subtract(departures, adm_times, out=response)
            mrt = float(response.mean())
            ratio_buf = a.f64("loop.ratio", n_adm)
            np.divide(response, adm_sizes, out=ratio_buf)
            ratio = float(ratio_buf.mean())
            controller.observe_responses(response)
        else:
            mrt = float("nan")
            ratio = float("nan")

        # Drain-and-switch: the controller may change the allocation
        # only here, between windows; a swap restarts the sequence.
        decision: ControlDecision = controller.resolve(end)
        if decision.swapped:
            self.dispatcher = self._make_dispatcher()
            self.dispatcher.reset(decision.alphas)

        estimate = decision.estimate
        report.windows.append(
            WindowRecord(
                start=start,
                end=end,
                offered=int(times.size),
                admitted=int(adm_times.size),
                shed=shed,
                mean_response_time=mrt,
                mean_response_ratio=ratio,
                lambda_hat=(estimate.arrival_rate if estimate else float("nan")),
                rho_hat=(estimate.utilization if estimate else float("nan")),
                swapped=decision.swapped,
                alphas=decision.alphas,
                p50=decision.window_p50,
                p99=decision.window_p99,
                completed=int(adm_times.size),
                servers_up=len(self.config.speeds),
                reason=decision.reason,
            )
        )
        report.jobs_offered += int(times.size)
        report.jobs_dispatched += int(adm_times.size)
        report.jobs_shed += shed

    def _run_window_reference(
        self, start: float, end: float, report: ServiceReport
    ) -> None:
        """The original per-job fault-free window (oracle path).

        Kept verbatim — scalar admission accumulator, per-job estimator
        updates, live Algorithm 2 scans, fresh replay outputs — so the
        property tests and ``bench --serve`` can pin the vectorized
        path against it, report for report.
        """
        controller = self.controller
        times, sizes = self.source.jobs_until(end)
        for t, x in zip(times, sizes):
            controller.observe_arrival(t, x)
        keep = 1.0 - controller.shed_fraction
        mask = self.gate.admit_mask_scalar(times.size, keep)
        adm_times = times[mask]
        adm_sizes = sizes[mask]

        targets = self.dispatcher.select_batch(adm_sizes)
        departures, service_times = self.bank.replay_window(
            targets, adm_times, adm_sizes
        )
        for srv, x, svc in zip(targets, adm_sizes, service_times):
            controller.observe_service(int(srv), float(x), float(svc))

        shed = int(times.size - adm_times.size)
        counters.inc("service.jobs_dispatched", value=int(adm_times.size))
        if shed:
            counters.inc("service.jobs_shed", value=shed)

        if adm_times.size:
            response = departures - adm_times
            mrt = float(response.mean())
            ratio = float((response / adm_sizes).mean())
            for r in response:
                controller.observe_response(float(r))
        else:
            mrt = float("nan")
            ratio = float("nan")

        decision: ControlDecision = controller.resolve(end)
        if decision.swapped:
            self.dispatcher = self._make_dispatcher()
            self.dispatcher.reset(decision.alphas)

        estimate = decision.estimate
        report.windows.append(
            WindowRecord(
                start=start,
                end=end,
                offered=int(times.size),
                admitted=int(adm_times.size),
                shed=shed,
                mean_response_time=mrt,
                mean_response_ratio=ratio,
                lambda_hat=(estimate.arrival_rate if estimate else float("nan")),
                rho_hat=(estimate.utilization if estimate else float("nan")),
                swapped=decision.swapped,
                alphas=decision.alphas,
                p50=decision.window_p50,
                p99=decision.window_p99,
                completed=int(adm_times.size),
                servers_up=len(self.config.speeds),
                reason=decision.reason,
            )
        )
        report.jobs_offered += int(times.size)
        report.jobs_dispatched += int(adm_times.size)
        report.jobs_shed += shed

    # ------------------------------------------------------------------
    # Fault-mode window (job-level dispatch, segmented by fault events)
    # ------------------------------------------------------------------

    def _bounce(self, now: float, origin: float, size: float, attempts: int) -> str:
        """A placement just failed; retry or lose the job.

        *attempts* counts failed placements *before* this one.  Returns
        ``"lost"`` or ``"retried"``.
        """
        failed = attempts + 1
        if self._on_failure == "lose" or failed >= self._retry.max_attempts:
            counters.inc("service.jobs_lost")
            return "lost"
        counters.inc("service.jobs_retried")
        due = now + self._retry.delay(attempts)
        heapq.heappush(
            self._pending,
            (float(due), self._pending_seq, float(origin), float(size), int(failed)),
        )
        self._pending_seq += 1
        return "retried"

    def _apply_degrade(self, server: int, now: float) -> None:
        level = self._degrade_level[server]
        self.bank.set_speed_factor(server, now, self._degrade_factor**level)

    def _run_window_faulted(
        self, start: float, end: float, report: ServiceReport
    ) -> None:
        controller = self.controller
        times, sizes = self.source.jobs_until(end)
        for t, x in zip(times, sizes):
            controller.observe_arrival(t, x)
        keep = 1.0 - controller.shed_fraction
        mask = self.gate.admit_mask(times.size, keep)
        adm_times = times[mask]
        adm_sizes = sizes[mask]
        shed = int(times.size - adm_times.size)

        # Fold due retries into the window's stream: a retry scheduled
        # for time d re-enters the sequence as an arrival at max(d,
        # start) — bounces become eligible at the *next* window, never
        # inside the one that bounced them.  Ties go to fresh arrivals
        # (stable sort, arrivals listed first).
        # Heap pops come out ordered by (due, insertion seq) — exactly
        # the stable sort by due time the list scan used to do, at
        # O(due · log pending) instead of two full-list passes.
        due: list[tuple] = []
        while self._pending and self._pending[0][0] <= end:
            due.append(heapq.heappop(self._pending))
        if due:
            job_times = np.concatenate(
                [adm_times, [max(r[0], start) for r in due]]
            )
            job_sizes = np.concatenate([adm_sizes, [r[3] for r in due]])
            job_origins = np.concatenate([adm_times, [r[2] for r in due]])
            job_attempts = np.concatenate(
                [np.zeros(adm_times.size, dtype=np.int64),
                 np.asarray([r[4] for r in due], dtype=np.int64)]
            )
            order = np.argsort(job_times, kind="stable")
            job_times = job_times[order]
            job_sizes = job_sizes[order]
            job_origins = job_origins[order]
            job_attempts = job_attempts[order]
        else:
            job_times = adm_times
            job_sizes = adm_sizes
            job_origins = adm_times
            job_attempts = np.zeros(adm_times.size, dtype=np.int64)

        # The window's dispatch sequence is fixed up front — a failure
        # mid-window never rewrites it (Algorithm 2's invariant); the
        # re-plan waits for the boundary resolve below.
        targets = self.dispatcher.select_batch(job_sizes)

        events: list[FaultEvent] = []
        while (
            self._event_pos < len(self.fault_events)
            and self.fault_events[self._event_pos].time <= end
        ):
            events.append(self.fault_events[self._event_pos])
            self._event_pos += 1

        completed: list[tuple] = []
        lost = retried = bounced = 0
        pos = 0
        n_jobs = int(job_times.size)
        for ev in [*events, None]:
            seg_end = end if ev is None else ev.time
            # Jobs at exactly an event's timestamp dispatch before the
            # event applies (arrival-then-event tie-break, documented).
            while pos < n_jobs and job_times[pos] <= seg_end:
                srv = int(targets[pos])
                dep = self.bank.dispatch(
                    srv,
                    float(job_times[pos]),
                    float(job_sizes[pos]),
                    float(job_origins[pos]),
                    int(job_attempts[pos]),
                )
                if dep is None:
                    bounced += 1
                    outcome = self._bounce(
                        float(job_times[pos]),
                        float(job_origins[pos]),
                        float(job_sizes[pos]),
                        int(job_attempts[pos]),
                    )
                    if outcome == "lost":
                        lost += 1
                    else:
                        retried += 1
                pos += 1
            # Finalize everything that departed before the event — a
            # failure must not bounce jobs that already finished.
            completed.extend(self.bank.collect_completions(seg_end))
            if ev is None:
                continue
            if ev.kind == DOWN:
                if self.bank.up[ev.server]:
                    residents = self.bank.fail(ev.server, ev.time)
                    controller.mark_server_down(ev.server, ev.time)
                    for origin, size, att in residents:
                        bounced += 1
                        outcome = self._bounce(ev.time, origin, size, int(att))
                        if outcome == "lost":
                            lost += 1
                        else:
                            retried += 1
            elif ev.kind == UP:
                if not self.bank.up[ev.server]:
                    self.bank.repair(ev.server, ev.time)
                    # The same machine resumes, so its pre-outage speed
                    # history stays; the networked rejoin path passes
                    # fresh_estimates=True instead (restarted process).
                    controller.mark_server_up(ev.server, ev.time)
            elif ev.kind == DEGRADE_START:
                self._degrade_level[ev.server] += 1
                self._apply_degrade(ev.server, ev.time)
            elif ev.kind == DEGRADE_END:
                self._degrade_level[ev.server] = max(
                    0, self._degrade_level[ev.server] - 1
                )
                self._apply_degrade(ev.server, ev.time)

        counters.inc("service.jobs_dispatched", value=int(adm_times.size))
        if shed:
            counters.inc("service.jobs_shed", value=shed)

        # Completion-based accounting: response times span retries
        # (departure minus *original* arrival) and land in the window
        # the job actually finished in.
        resp_sum = 0.0
        ratio_sum = 0.0
        n_completed = len(completed)
        for srv, origin, size, svc, dep in completed:
            controller.observe_service(int(srv), float(size), float(svc))
            r = float(dep) - float(origin)
            controller.observe_response(r)
            resp_sum += r
            ratio_sum += r / float(size)
        mrt = resp_sum / n_completed if n_completed else float("nan")
        ratio = ratio_sum / n_completed if n_completed else float("nan")

        decision: ControlDecision = controller.resolve(end)
        if decision.swapped:
            self.dispatcher = self._make_dispatcher()
            self.dispatcher.reset(decision.alphas)

        estimate = decision.estimate
        report.windows.append(
            WindowRecord(
                start=start,
                end=end,
                offered=int(times.size),
                admitted=int(adm_times.size),
                shed=shed,
                mean_response_time=mrt,
                mean_response_ratio=ratio,
                lambda_hat=(estimate.arrival_rate if estimate else float("nan")),
                rho_hat=(estimate.utilization if estimate else float("nan")),
                swapped=decision.swapped,
                alphas=decision.alphas,
                p50=decision.window_p50,
                p99=decision.window_p99,
                completed=n_completed,
                lost=lost,
                retried=retried,
                bounced=bounced,
                servers_up=int(np.count_nonzero(self.bank.up)),
                reason=decision.reason,
            )
        )
        report.jobs_offered += int(times.size)
        report.jobs_dispatched += int(adm_times.size)
        report.jobs_shed += shed
        report.jobs_lost += lost
        report.jobs_retried += retried

    # ------------------------------------------------------------------
    # Crash-safe checkpointing
    # ------------------------------------------------------------------

    def state_dict(self, next_window: int, report: ServiceReport) -> dict:
        """Full loop state after ``next_window`` windows completed."""
        return {
            "next_window": int(next_window),
            "config": self._config_fingerprint(),
            "controller": self.controller.state_dict(),
            "gate": self.gate.state_dict(),
            "bank": self.bank.state_dict(),
            "dispatcher": self.dispatcher.state_dict(),
            # External format unchanged from the list era: 4-field
            # records in (due, schedule) order, no heap internals.
            "pending": [
                [r[0], r[2], r[3], r[4]] for r in sorted(self._pending)
            ],
            "degrade_level": [int(x) for x in self._degrade_level],
            "event_pos": int(self._event_pos),
            "report": _report_state(report),
        }

    def _config_fingerprint(self) -> dict:
        return {
            "speeds": [float(s) for s in self.config.speeds],
            "duration": float(self.config.duration),
            "control_period": float(self.config.control_period),
            "faulted": bool(self._faulted),
        }

    def restore(self, state: dict) -> None:
        """Adopt a checkpointed state; :meth:`run` then continues it.

        The service must be constructed with the same config and an
        equivalent job source (same seed / trace) as the crashed run —
        the fingerprint check catches mismatched geometry, but stream
        identity is the caller's contract.
        """
        fingerprint = self._config_fingerprint()
        if state["config"] != fingerprint:
            raise ValueError(
                "checkpoint belongs to a different run configuration: "
                f"{state['config']} != {fingerprint}"
            )
        self.controller.load_state(state["controller"])
        self.gate.load_state(state["gate"])
        self.bank.load_state(state["bank"])
        self.dispatcher = self._make_dispatcher()
        self.dispatcher.load_state(state["dispatcher"])
        # Re-number insertion seqs in checkpointed (due, schedule)
        # order: future pops keep breaking due-time ties exactly as the
        # uninterrupted run would.
        self._pending = [
            (float(r[0]), seq, float(r[1]), float(r[2]), int(r[3]))
            for seq, r in enumerate(state["pending"])
        ]
        self._pending_seq = len(self._pending)
        heapq.heapify(self._pending)
        self._degrade_level = [int(x) for x in state["degrade_level"]]
        self._event_pos = int(state["event_pos"])
        self._start_window = int(state["next_window"])
        self._restored_report = _report_from_state(self.config, state["report"])
