"""Systematic simulation-vs-theory validation.

The paper's optimizer rests on the M/M/1-PS model; the simulator runs a
more general workload.  This module quantifies the gap on demand: for a
configuration and a static policy it computes

* the analytical prediction from equations (1)–(3) (exact when arrivals
  are Poisson, an approximation under the H2 arrival process), and
* the simulated measurement with confidence interval,

and reports relative errors.  Used by the test suite to pin the engine
to theory under Poisson arrivals, and available to users to judge how
far the hyperexponential burstiness pushes their own configuration away
from the model (the gap the round-robin dispatcher narrows).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.evaluate import evaluate_policy
from ..core.policies import SchedulingPolicy
from ..sim.config import SimulationConfig

__all__ = ["ValidationReport", "validate_against_theory"]


@dataclass(frozen=True)
class ValidationReport:
    """Measured vs predicted metrics for one (config, policy) pair."""

    policy_name: str
    utilization: float
    arrival_cv: float
    predicted_response_time: float
    measured_response_time: float
    measured_response_time_half_width: float
    predicted_response_ratio: float
    measured_response_ratio: float
    measured_response_ratio_half_width: float
    replications: int

    @property
    def response_time_error(self) -> float:
        """Relative error of the model: (measured − predicted)/predicted."""
        return (
            self.measured_response_time - self.predicted_response_time
        ) / self.predicted_response_time

    @property
    def response_ratio_error(self) -> float:
        return (
            self.measured_response_ratio - self.predicted_response_ratio
        ) / self.predicted_response_ratio

    @property
    def within_ci(self) -> bool:
        """True if the prediction falls inside the measurement's CI."""
        return (
            abs(self.measured_response_ratio - self.predicted_response_ratio)
            <= self.measured_response_ratio_half_width
        )

    def summary(self) -> str:
        return (
            f"{self.policy_name} @ rho={self.utilization:.2f} cv={self.arrival_cv:g}: "
            f"ratio measured {self.measured_response_ratio:.4g} "
            f"± {self.measured_response_ratio_half_width:.2g} "
            f"vs predicted {self.predicted_response_ratio:.4g} "
            f"({self.response_ratio_error:+.1%})"
        )


def validate_against_theory(
    config: SimulationConfig,
    policy: SchedulingPolicy,
    *,
    replications: int = 5,
    base_seed: int = 0,
) -> ValidationReport:
    """Run the policy and compare with the paper's analytical model.

    Only static policies have a closed-form prediction (the model needs
    the fraction vector α); dynamic policies raise.
    """
    network = config.network()
    alphas = policy.fractions(network)
    if alphas is None:
        raise ValueError(
            f"policy {policy.name} has no static fraction vector to predict from"
        )
    predicted_time = network.mean_response_time(alphas)
    predicted_ratio = network.mean_response_ratio(alphas)

    evaluation = evaluate_policy(
        config, policy, replications=replications, base_seed=base_seed
    )
    return ValidationReport(
        policy_name=policy.name,
        utilization=config.utilization,
        arrival_cv=config.arrival_cv,
        predicted_response_time=predicted_time,
        measured_response_time=evaluation.mean_response_time.mean,
        measured_response_time_half_width=evaluation.mean_response_time.half_width,
        predicted_response_ratio=predicted_ratio,
        measured_response_ratio=evaluation.mean_response_ratio.mean,
        measured_response_ratio_half_width=evaluation.mean_response_ratio.half_width,
        replications=replications,
    )
